"""Record → replay → report: the traffic-replay acceptance bench.

The acceptance claim: a **1,000-query mixed workload** recorded from a
live :class:`~repro.serve.CostService` replays against every scheduler
config — ``thread``, ``process``, ``auto``, and the telemetry-learned
``tuned`` backend — with **zero bitwise mismatches** against the
recording, and the run dir carries the full artifact chain
(``raw/*.json`` → ``results.csv`` → ``report.md`` + ``profile.json``).

Parity and artifact asserts always run.  The latency-sanity assert
(replay percentiles are finite and ordered) also always runs; the
cross-config comparison is *recorded* in ``BENCH_replay.json`` but only
narrated — backend ranking on a loaded CI box is weather, not signal.
``REPRO_BENCH_PARITY_ONLY=1`` shrinks the workload to a smoke size for
CI legs that only need the parity signal.

The record lands in ``benchmarks/BENCH_replay.json`` (one JSON object,
one key per claim) and the shared ``BENCH_repro.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from conftest import emit, emit_json
from repro.core import TransistorCostModel, WaferCostModel
from repro.core.optimization import FIG8_FAB, FabCharacterization
from repro.geometry import Wafer
from repro.obs.recording import load_recorded_log
from repro.replay.rundir import run_all
from repro.serve import CostService, FabCostQuery, ModelCostQuery
from repro.yieldsim import ReferenceAreaYield

PARITY_ONLY = bool(os.environ.get("REPRO_BENCH_PARITY_ONLY"))
N_QUERIES = 200 if PARITY_ONLY else 1_000
WORKERS = 2
CONFIGS = ("thread", "process", "auto", "tuned")

_BENCH_REPLAY_JSON = Path(__file__).resolve().parent / "BENCH_replay.json"

_DERATED_FAB = FabCharacterization(
    cost_growth_rate=FIG8_FAB.cost_growth_rate,
    reference_cost_dollars=1.25 * FIG8_FAB.reference_cost_dollars,
    wafer_radius_cm=FIG8_FAB.wafer_radius_cm,
    design_density=FIG8_FAB.design_density,
    defect_coefficient=FIG8_FAB.defect_coefficient,
    size_exponent_p=FIG8_FAB.size_exponent_p)

_MODEL = TransistorCostModel(
    wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                              cost_growth_rate=1.8),
    wafer=Wafer(radius_cm=7.5))
_YIELD_LAW = ReferenceAreaYield(reference_yield=0.7,
                                reference_area_cm2=1.0)


def _grid(n_lams, n_counts):
    lams = [round(0.4 + 1.0 * i / (n_lams - 1), 12)
            for i in range(n_lams)]
    counts = [10 ** (5 + 2.0 * j / (n_counts - 1))
              for j in range(n_counts)]
    return [(n, lam) for lam in lams for n in counts]


def _mixed_workload(n_queries):
    """Mixed traffic: two fab signatures + a model, with duplicates.

    Five interleaved explorer streams over the same grid — the same
    shape the serving bench uses, so the recorded log carries the
    coalescing and dedup behaviour replay must reproduce bitwise.
    """
    per_stream = n_queries // 5
    grid = _grid(max(per_stream // 10, 2), 10)[:per_stream]
    streams = [
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam, fab=_DERATED_FAB) for n, lam in grid],
        [ModelCostQuery(n, lam, model=_MODEL, design_density=150.0,
                        yield_model=_YIELD_LAW) for n, lam in grid],
    ]
    queries = [q for batch in zip(*streams) for q in batch]
    assert len(queries) == n_queries
    return queries


def _update_bench_json(key, record):
    """Read-modify-write one claim's record into BENCH_replay.json."""
    data = {}
    if _BENCH_REPLAY_JSON.exists():
        try:
            data = json.loads(_BENCH_REPLAY_JSON.read_text())
        except (OSError, ValueError):
            data = {}
    if not isinstance(data, dict) or "kind" in data:
        data = {}
    data[key] = record
    _BENCH_REPLAY_JSON.write_text(json.dumps(data, indent=2) + "\n")


def test_recorded_workload_replays_bitwise_on_every_config():
    queries = _mixed_workload(N_QUERIES)
    with tempfile.TemporaryDirectory(prefix="bench_replay_") as tmp:
        tmp = Path(tmp)
        log_path = tmp / "traffic.jsonl"

        # Record the live pass.
        with CostService(max_batch_size=256, max_wait_s=0.002,
                         record=log_path) as svc:
            svc.costs(queries)
        log = load_recorded_log(log_path)
        assert len(log) == N_QUERIES
        assert log.unreplayable == 0

        # Replay against every config; "tuned" learns its profile from
        # the flush telemetry of the three plain configs.
        run_dir = tmp / "run"
        summary = run_all(log, run_dir, names=CONFIGS,
                          workers=WORKERS, mode="closed")

        artifacts = [f"raw/{name}.json" for name in CONFIGS]
        artifacts += ["profile.json", "results.csv", "report.md"]
        missing = [a for a in artifacts if not (run_dir / a).exists()]
        profile = summary["profile"]
        results = {r.config.name: r for r in summary["results"]}

    mismatches = summary["mismatches"]
    per_config = {
        name: {
            "wall_s": r.wall_s,
            "qps": r.qps,
            "p50_ms": r.p50_ms,
            "p95_ms": r.p95_ms,
            "p99_ms": r.p99_ms,
            "mean_occupancy": r.mean_occupancy,
            "dedup_rate": r.dedup_rate,
            "mismatches": r.mismatches,
        } for name, r in results.items()}
    record = {
        "kind": "replay_parity",
        "queries": N_QUERIES,
        "workers": WORKERS,
        "parity_only": PARITY_ONLY,
        "configs": per_config,
        "mismatches": mismatches,
        "missing_artifacts": missing,
        "learned_signatures": len(profile.signatures),
    }
    _update_bench_json("replay_parity", record)
    emit_json(record)

    rows = "\n".join(
        f"{name:8s}: wall {stats['wall_s'] * 1e3:8.1f} ms  "
        f"qps {stats['qps']:7.0f}  p50 {stats['p50_ms']:7.2f} ms  "
        f"p99 {stats['p99_ms']:7.2f} ms  "
        f"occ {stats['mean_occupancy']:.2f}  "
        f"mismatches {stats['mismatches']}"
        for name, stats in per_config.items())
    emit("Traffic replay — recorded workload vs every scheduler config",
         f"workload      : {N_QUERIES} recorded mixed queries "
         f"(3 signatures, duplicate explorer traffic)\n"
         f"{rows}\n"
         f"tuned profile : {len(profile.signatures)} learned "
         f"signature(s), default threshold "
         f"{profile.default_process_threshold}\n"
         f"contract      : zero bitwise mismatches on every config, "
         f"full artifact chain")

    assert not missing, f"run dir is missing artifacts: {missing}"
    assert mismatches == 0, \
        f"{mismatches} replayed costs differ bitwise from the recording"
    assert set(per_config) == set(CONFIGS)
    if not PARITY_ONLY:
        # The smoke leg's single flush per config stays under the
        # learner's min_samples evidence gate; the full workload must
        # learn real per-signature thresholds.
        assert len(profile.signatures) >= 1, \
            "the tuned leg learned no per-signature thresholds"
    for name, stats in per_config.items():
        assert 0.0 <= stats["p50_ms"] <= stats["p95_ms"] \
            <= stats["p99_ms"], f"{name}: latency percentiles unordered"
        assert stats["qps"] > 0.0, f"{name}: no throughput measured"
