"""Fig. 6 — cost per transistor under Scenario #1 (X = 1.1/1.2/1.3).

Paper claim: with C₀ = $500, d_d = 30, R_w = 7.5 cm and perfect yield,
"C_tr goes down when feature size decreases" for every modest X — the
historical regime that made shrink synonymous with cheaper.
"""

import numpy as np

from conftest import emit_figure
from repro.analysis import fig6_scenario1


def test_fig6_scenario1_curves(benchmark):
    data = benchmark(fig6_scenario1)
    emit_figure(data)

    for name, ys in data.series.items():
        # Cost strictly increases with lambda = strictly falls with shrink.
        assert np.all(np.diff(ys) > 0), name

    # Magnitudes: ~0.85e-6 $ at 1 um (C0*d_d/A_w); ~10x cheaper at 0.25 um.
    x12 = data.series["X=1.2"]
    at_1um = x12[-1]
    at_025 = x12[0]
    assert abs(at_1um - 0.85) / 0.85 < 0.05
    assert 4.0 < at_1um / at_025 < 30.0

    # Higher X erodes but does not reverse the gain in this band.
    x13 = data.series["X=1.3"]
    x11 = data.series["X=1.1"]
    assert np.all(x13 >= x11)
