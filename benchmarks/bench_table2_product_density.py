"""Table 2 — design densities across a spectrum of ICs [23, 24].

Paper data: 17 products from 16 Mb SRAM (17.8) to a 1.2k-gate PLD
(2631) — two orders of magnitude of layout density.
"""

from conftest import emit_table
from repro.analysis import table2
from repro.technology.density import PRODUCT_DENSITIES, density_class


def test_table2_product_densities(benchmark):
    data = benchmark(table2)
    emit_table(data)

    dds = data.column("d_d [lambda^2/tr]")
    assert max(dds) / min(dds) > 100.0  # two-orders-of-magnitude spread

    # Classification sanity over the whole catalog.
    classes = {density_class(p.d_d) for p in PRODUCT_DENSITIES}
    assert {"memory", "logic", "programmable"} <= classes

    memories = [p.d_d for p in PRODUCT_DENSITIES if "RAM" in p.name]
    processors = [p.d_d for p in PRODUCT_DENSITIES if p.name.startswith("uP")]
    assert max(memories) < min(processors)
