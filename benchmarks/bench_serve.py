"""Serving throughput — micro-batched queries vs the scalar loop.

The :mod:`repro.serve` acceptance claim: 1,000 mixed single-point
cost queries answered through :class:`~repro.serve.CostService` run at
least **5x** faster than the same 1,000 queries priced one at a time
through the scalar reference path — while every answer stays bitwise
identical.

The workload models the traffic the service exists for: several
design-space explorers sweeping overlapping (λ, N_tr) grids against a
mix of models — two fitted fabs (Fig.-8 and a derated variant) plus a
general ``TransistorCostModel`` — so flushes contain multiple
signature groups and naturally duplicated points (the dedup win) and
revisited grids (the shared-``BatchCache`` win).

Reported numbers: the *cold* pass (fresh service, empty cache) and
the *steady-state* best-of-N (a long-lived service, the deployment
shape).  The ≥ 5x contract is asserted on steady state; both land in
``benchmarks/BENCH_serve.json`` and the shared ``BENCH_repro.json``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from conftest import emit, emit_json
from repro.batch.cache import BatchCache
from repro.core import TransistorCostModel, WaferCostModel
from repro.core.optimization import (
    FIG8_FAB,
    FabCharacterization,
    transistor_cost_full,
)
from repro.geometry import Wafer
from repro.serve import CostService, FabCostQuery, ModelCostQuery
from repro.yieldsim import ReferenceAreaYield

N_QUERIES = 1_000
MIN_SPEEDUP = 5.0
REPS = 5
_BENCH_SERVE_JSON = Path(__file__).resolve().parent / "BENCH_serve.json"

_DERATED_FAB = FabCharacterization(
    cost_growth_rate=FIG8_FAB.cost_growth_rate,
    reference_cost_dollars=1.25 * FIG8_FAB.reference_cost_dollars,
    wafer_radius_cm=FIG8_FAB.wafer_radius_cm,
    design_density=FIG8_FAB.design_density,
    defect_coefficient=FIG8_FAB.defect_coefficient,
    size_exponent_p=FIG8_FAB.size_exponent_p)

_MODEL = TransistorCostModel(
    wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                              cost_growth_rate=1.8),
    wafer=Wafer(radius_cm=7.5))
_YIELD_LAW = ReferenceAreaYield(reference_yield=0.7,
                                reference_area_cm2=1.0)


def _grid(n_lams, n_counts):
    lams = [round(0.4 + 1.0 * i / (n_lams - 1), 12)
            for i in range(n_lams)]
    counts = [10 ** (5 + 2.0 * j / (n_counts - 1))
              for j in range(n_counts)]
    return [(n, lam) for lam in lams for n in counts]


def _mixed_workload():
    """1,000 queries: explorers over two fabs + a model, interleaved.

    Three explorers revisit the same Fig.-8 grid (duplicate traffic a
    per-request loop prices three times), one sweeps a derated fab,
    one prices the grid through the general evaluate() form.
    """
    grid = _grid(20, 10)  # 200 unique (λ, N_tr) points
    streams = [
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam, fab=_DERATED_FAB) for n, lam in grid],
        [ModelCostQuery(n, lam, model=_MODEL, design_density=150.0,
                        yield_model=_YIELD_LAW) for n, lam in grid],
    ]
    queries = [q for batch in zip(*streams) for q in batch]
    assert len(queries) == N_QUERIES
    return queries


def _scalar_answer(query):
    if isinstance(query, FabCostQuery):
        return transistor_cost_full(query.n_transistors,
                                    query.feature_size_um, query.fab)
    breakdown = query.model.evaluate(
        n_transistors=query.n_transistors,
        feature_size_um=query.feature_size_um,
        design_density=query.design_density,
        yield_model=query.yield_model)
    return breakdown.cost_per_transistor_dollars


def test_serve_throughput_vs_scalar_loop():
    queries = _mixed_workload()

    # Per-request scalar baseline: best of REPS identical passes.
    t_scalar = math.inf
    for _ in range(REPS):
        t0 = time.perf_counter()
        want = [_scalar_answer(q) for q in queries]
        t_scalar = min(t_scalar, time.perf_counter() - t0)

    # Served: one long-lived service; the first pass is the cold
    # number (fresh cache), later passes the steady state.
    t_serve = []
    with CostService(max_batch_size=256, max_wait_s=0.002,
                     cache=BatchCache()) as svc:
        for _ in range(REPS):
            t0 = time.perf_counter()
            got = svc.costs(queries)
            t_serve.append(time.perf_counter() - t0)
    t_cold, t_steady = t_serve[0], min(t_serve[1:])

    mismatches = sum(a != b for a, b in zip(got, want))
    speedup_cold = t_scalar / t_cold
    speedup_steady = t_scalar / t_steady

    record = {
        "kind": "serve_throughput",
        "queries": N_QUERIES,
        "unique_points_per_signature": 200,
        "signatures": 3,
        "reps": REPS,
        "scalar_best_s": t_scalar,
        "serve_cold_s": t_cold,
        "serve_steady_s": t_steady,
        "speedup_cold": speedup_cold,
        "speedup_steady": speedup_steady,
        "min_speedup_required": MIN_SPEEDUP,
        "bitwise_mismatches": mismatches,
    }
    _BENCH_SERVE_JSON.write_text(json.dumps(record, indent=2) + "\n")
    emit_json(record)
    emit("Serving throughput — repro.serve vs per-request scalar loop",
         f"workload      : {N_QUERIES} mixed queries "
         f"(3 signatures, 200 unique points each, explorers overlap)\n"
         f"scalar loop   : {t_scalar * 1e3:8.2f} ms (best of {REPS})\n"
         f"serve (cold)  : {t_cold * 1e3:8.2f} ms  "
         f"-> {speedup_cold:5.1f}x\n"
         f"serve (steady): {t_steady * 1e3:8.2f} ms  "
         f"-> {speedup_steady:5.1f}x\n"
         f"contract      : steady-state >= {MIN_SPEEDUP}x, "
         f"bitwise parity on every query\n"
         f"mismatches    : {mismatches}")

    assert mismatches == 0, \
        f"{mismatches} served answers differ from the scalar reference"
    assert speedup_steady >= MIN_SPEEDUP, \
        f"steady-state speedup {speedup_steady:.1f}x is below the " \
        f"{MIN_SPEEDUP}x contract (scalar {t_scalar * 1e3:.2f} ms, " \
        f"serve {t_steady * 1e3:.2f} ms)"
