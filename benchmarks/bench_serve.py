"""Serving throughput — micro-batching, and the process-backend win.

Two acceptance claims live here:

1. **Batching vs scalar** — 1,000 mixed single-point cost queries
   answered through :class:`~repro.serve.CostService` run at least
   **5x** faster than the same 1,000 queries priced one at a time
   through the scalar reference path, bitwise identically.  This pass
   also records the service's operational shape: a per-flush
   batch-size histogram (from ``flush_history``) and p50/p95/p99
   queue latency from raw per-ticket timestamps.
2. **Process vs thread backend** — on a CPU-bound workload (a yield
   law whose per-point cost is a numeric integral, so the executor's
   Python loop dominates and the GIL serializes the thread backend),
   ≥ 10,000 mostly-unique queries at 4 workers run at least **2x**
   faster through the shared-memory process backend than through the
   thread backend — again bitwise identical, to the scalar reference
   and to each other.  The speedup assert self-skips below 4 CPUs
   (the parity asserts always run); ``REPRO_BENCH_PARITY_ONLY=1``
   additionally shrinks the workload to a smoke size for CI legs that
   only need the parity signal.

Both records land in ``benchmarks/BENCH_serve.json`` (one JSON object,
one key per claim) and the shared ``BENCH_repro.json``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from conftest import emit, emit_json
from repro.batch.cache import BatchCache
from repro.core import TransistorCostModel, WaferCostModel
from repro.core.optimization import (
    FIG8_FAB,
    FabCharacterization,
    transistor_cost_full,
)
from repro.errors import ParameterError
from repro.geometry import Wafer
from repro.serve import CostService, FabCostQuery, ModelCostQuery
from repro.yieldsim import ReferenceAreaYield
from repro.yieldsim.models import YieldModel

N_QUERIES = 1_000
MIN_SPEEDUP = 5.0
REPS = 5

PARITY_ONLY = bool(os.environ.get("REPRO_BENCH_PARITY_ONLY"))
N_PROCESS_QUERIES = 1_200 if PARITY_ONLY else 10_000
MIN_PROCESS_SPEEDUP = 2.0
PROCESS_WORKERS = 4
PROCESS_REPS = 2

_BENCH_SERVE_JSON = Path(__file__).resolve().parent / "BENCH_serve.json"

_DERATED_FAB = FabCharacterization(
    cost_growth_rate=FIG8_FAB.cost_growth_rate,
    reference_cost_dollars=1.25 * FIG8_FAB.reference_cost_dollars,
    wafer_radius_cm=FIG8_FAB.wafer_radius_cm,
    design_density=FIG8_FAB.design_density,
    defect_coefficient=FIG8_FAB.defect_coefficient,
    size_exponent_p=FIG8_FAB.size_exponent_p)

_MODEL = TransistorCostModel(
    wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                              cost_growth_rate=1.8),
    wafer=Wafer(radius_cm=7.5))
_YIELD_LAW = ReferenceAreaYield(reference_yield=0.7,
                                reference_area_cm2=1.0)


class IntegratedMurphyYield(YieldModel):
    """Murphy's yield integral, evaluated numerically per point.

    ``Y(m) = ∫₀² e^{−m·u}·tri(u) du`` with the triangular defect
    distribution ``tri(u) = u`` below 1, ``2 − u`` above — integrated
    by composite Simpson instead of the closed form, so each point
    costs ~``steps`` ``exp`` calls of *pure Python*.  That is the
    workload shape the process backend exists for: the executor's
    generic yield loop holds the GIL, so thread workers serialize
    while process workers scale.  (Deliberately deterministic — the
    parity asserts quantify over it like any other law.)

    Defined at module top level so exemplar queries pickle to pool
    workers.
    """

    def __init__(self, steps: int = 128) -> None:
        if steps < 2 or steps % 2:
            raise ParameterError(
                f"steps must be an even integer >= 2, got {steps}")
        self.steps = steps

    def yield_from_expectation(self, m: float) -> float:
        h = 2.0 / self.steps
        exp = math.exp
        total = 0.0
        for i in range(self.steps + 1):
            u = i * h
            tri = u if u <= 1.0 else 2.0 - u
            weight = 1.0 if i in (0, self.steps) else (4.0 if i % 2 else 2.0)
            total += weight * exp(-m * u) * tri
        return total * h / 3.0


def _grid(n_lams, n_counts):
    lams = [round(0.4 + 1.0 * i / (n_lams - 1), 12)
            for i in range(n_lams)]
    counts = [10 ** (5 + 2.0 * j / (n_counts - 1))
              for j in range(n_counts)]
    return [(n, lam) for lam in lams for n in counts]


def _mixed_workload():
    """1,000 queries: explorers over two fabs + a model, interleaved.

    Three explorers revisit the same Fig.-8 grid (duplicate traffic a
    per-request loop prices three times), one sweeps a derated fab,
    one prices the grid through the general evaluate() form.
    """
    grid = _grid(20, 10)  # 200 unique (λ, N_tr) points
    streams = [
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam) for n, lam in grid],
        [FabCostQuery(n, lam, fab=_DERATED_FAB) for n, lam in grid],
        [ModelCostQuery(n, lam, model=_MODEL, design_density=150.0,
                        yield_model=_YIELD_LAW) for n, lam in grid],
    ]
    queries = [q for batch in zip(*streams) for q in batch]
    assert len(queries) == N_QUERIES
    return queries


def _scalar_answer(query):
    if isinstance(query, FabCostQuery):
        return transistor_cost_full(query.n_transistors,
                                    query.feature_size_um, query.fab)
    try:
        breakdown = query.model.evaluate(
            n_transistors=query.n_transistors,
            feature_size_um=query.feature_size_um,
            design_density=query.design_density,
            yield_model=query.yield_model,
            defect_density_per_cm2=query.defect_density_per_cm2)
    except ParameterError:
        return math.inf  # the service masks unfittable dies to inf
    return breakdown.cost_per_transistor_dollars


def _percentile(sorted_values, q):
    """Nearest-rank percentile of an already sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def _latency_percentiles(svc, queries):
    """One served pass with raw per-ticket queue latencies."""
    done = []
    t0 = time.perf_counter()
    tickets = svc.submit_many(queries)
    for ticket in tickets:
        ticket.add_done_callback(
            lambda _t: done.append(time.perf_counter() - t0))
    for ticket in tickets:
        ticket.cost(timeout=30.0)
    done.sort()
    return {f"p{q}_ms": _percentile(done, q) * 1e3 for q in (50, 95, 99)}


def _flush_size_histogram(records):
    """Power-of-two buckets over per-flush request counts."""
    buckets = {}
    for rec in records:
        width = 1 << max(0, (rec.requests - 1).bit_length())
        label = f"<={width}"
        buckets[label] = buckets.get(label, 0) + 1
    return dict(sorted(buckets.items(), key=lambda kv: int(kv[0][2:])))


def _update_bench_json(key, record):
    """Read-modify-write one claim's record into BENCH_serve.json."""
    data = {}
    if _BENCH_SERVE_JSON.exists():
        try:
            data = json.loads(_BENCH_SERVE_JSON.read_text())
        except (OSError, ValueError):
            data = {}
    if not isinstance(data, dict) or "kind" in data:
        data = {}  # legacy single-record layout: start fresh
    data[key] = record
    _BENCH_SERVE_JSON.write_text(json.dumps(data, indent=2) + "\n")


def test_serve_throughput_vs_scalar_loop():
    queries = _mixed_workload()

    # Per-request scalar baseline: best of REPS identical passes.
    t_scalar = math.inf
    for _ in range(REPS):
        t0 = time.perf_counter()
        want = [_scalar_answer(q) for q in queries]
        t_scalar = min(t_scalar, time.perf_counter() - t0)

    # Served: one long-lived service; the first pass is the cold
    # number (fresh cache), later passes the steady state.
    t_serve = []
    with CostService(max_batch_size=256, max_wait_s=0.002,
                     flush_history=4096, cache=BatchCache()) as svc:
        for _ in range(REPS):
            t0 = time.perf_counter()
            got = svc.costs(queries)
            t_serve.append(time.perf_counter() - t0)
        latency = _latency_percentiles(svc, queries)
        histogram = _flush_size_histogram(svc.scheduler.recent_flushes)
    t_cold, t_steady = t_serve[0], min(t_serve[1:])

    mismatches = sum(a != b for a, b in zip(got, want))
    speedup_cold = t_scalar / t_cold
    speedup_steady = t_scalar / t_steady

    record = {
        "kind": "serve_throughput",
        "queries": N_QUERIES,
        "unique_points_per_signature": 200,
        "signatures": 3,
        "reps": REPS,
        "scalar_best_s": t_scalar,
        "serve_cold_s": t_cold,
        "serve_steady_s": t_steady,
        "speedup_cold": speedup_cold,
        "speedup_steady": speedup_steady,
        "min_speedup_required": MIN_SPEEDUP,
        "bitwise_mismatches": mismatches,
        "flush_size_histogram": histogram,
        "queue_latency": latency,
    }
    _update_bench_json("throughput", record)
    emit_json(record)
    hist_text = "  ".join(f"{k}:{v}" for k, v in histogram.items())
    emit("Serving throughput — repro.serve vs per-request scalar loop",
         f"workload      : {N_QUERIES} mixed queries "
         f"(3 signatures, 200 unique points each, explorers overlap)\n"
         f"scalar loop   : {t_scalar * 1e3:8.2f} ms (best of {REPS})\n"
         f"serve (cold)  : {t_cold * 1e3:8.2f} ms  "
         f"-> {speedup_cold:5.1f}x\n"
         f"serve (steady): {t_steady * 1e3:8.2f} ms  "
         f"-> {speedup_steady:5.1f}x\n"
         f"flush sizes   : {hist_text}\n"
         f"queue latency : p50 {latency['p50_ms']:.2f} ms  "
         f"p95 {latency['p95_ms']:.2f} ms  "
         f"p99 {latency['p99_ms']:.2f} ms\n"
         f"contract      : steady-state >= {MIN_SPEEDUP}x, "
         f"bitwise parity on every query\n"
         f"mismatches    : {mismatches}")

    assert mismatches == 0, \
        f"{mismatches} served answers differ from the scalar reference"
    assert speedup_steady >= MIN_SPEEDUP, \
        f"steady-state speedup {speedup_steady:.1f}x is below the " \
        f"{MIN_SPEEDUP}x contract (scalar {t_scalar * 1e3:.2f} ms, " \
        f"serve {t_steady * 1e3:.2f} ms)"


def _cpu_bound_workload(n_queries):
    """Mostly-unique queries dominated by per-point Python compute.

    Three Murphy-integral model signatures (one per defect density)
    carry the CPU weight; a fab stream keeps the flush mix realistic.
    Points are unique within each signature, so caching cannot erase
    the compute being measured.
    """
    per_stream = n_queries // 4
    laws = [(IntegratedMurphyYield(steps=128), dd)
            for dd in (0.5, 1.0, 1.5)]
    streams = []
    for s, (law, density) in enumerate(laws):
        points = [(1e5 + 97.0 * (s * per_stream + i),
                   0.45 + 0.9 * i / per_stream)
                  for i in range(per_stream)]
        streams.append([
            ModelCostQuery(n, lam, model=_MODEL, design_density=150.0,
                           yield_model=law, defect_density_per_cm2=density)
            for n, lam in points])
    fab_points = [(2e5 + 131.0 * i, 0.5 + 0.8 * i / per_stream)
                  for i in range(n_queries - 3 * per_stream)]
    streams.append([FabCostQuery(n, lam) for n, lam in fab_points])
    return [q for group in zip(*streams) for q in group] \
        + streams[-1][per_stream:]


def _timed_pass(queries, backend):
    times = []
    with CostService(backend=backend, workers=PROCESS_WORKERS,
                     max_batch_size=1024, max_wait_s=0.002,
                     max_queue_depth=2 * len(queries),
                     cache=None) as svc:
        got = svc.costs(queries)  # warm-up (pool fork, imports)
        for _ in range(PROCESS_REPS):
            t0 = time.perf_counter()
            got = svc.costs(queries)
            times.append(time.perf_counter() - t0)
    return min(times), got


def test_process_backend_beats_threads_on_cpu_bound_flushes():
    queries = _cpu_bound_workload(N_PROCESS_QUERIES)
    assert len(queries) == N_PROCESS_QUERIES

    t_thread, got_thread = _timed_pass(queries, "thread")
    t_process, got_process = _timed_pass(queries, "process")
    speedup = t_thread / t_process

    want = [_scalar_answer(q) for q in queries]
    thread_mismatches = sum(a != b for a, b in zip(got_thread, want))
    process_mismatches = sum(a != b for a, b in zip(got_process, want))

    cpus = os.cpu_count() or 1
    assert_speedup = cpus >= PROCESS_WORKERS and not PARITY_ONLY
    record = {
        "kind": "serve_process_backend",
        "queries": N_PROCESS_QUERIES,
        "workers": PROCESS_WORKERS,
        "cpus": cpus,
        "reps": PROCESS_REPS,
        "parity_only": PARITY_ONLY,
        "thread_best_s": t_thread,
        "process_best_s": t_process,
        "speedup_process_over_thread": speedup,
        "min_speedup_required": MIN_PROCESS_SPEEDUP,
        "speedup_asserted": assert_speedup,
        "thread_mismatches": thread_mismatches,
        "process_mismatches": process_mismatches,
    }
    _update_bench_json("process_backend", record)
    emit_json(record)
    if assert_speedup:
        gate = "asserted"
    elif PARITY_ONLY:
        gate = "recorded only: parity-only leg"
    else:
        gate = f"recorded only: {cpus} CPU(s)"
    emit("Serve backends — shared-memory process pool vs thread pool",
         f"workload      : {N_PROCESS_QUERIES} queries, "
         f"3 Murphy-integral signatures + 1 fab stream, "
         f"{PROCESS_WORKERS} workers\n"
         f"thread backend: {t_thread * 1e3:8.1f} ms (best of "
         f"{PROCESS_REPS})\n"
         f"process       : {t_process * 1e3:8.1f} ms  "
         f"-> {speedup:5.2f}x\n"
         f"contract      : >= {MIN_PROCESS_SPEEDUP}x at "
         f">= {PROCESS_WORKERS} CPUs ({gate})\n"
         f"mismatches    : thread {thread_mismatches}, "
         f"process {process_mismatches}")

    assert thread_mismatches == 0, \
        f"{thread_mismatches} thread-backend answers differ from scalar"
    assert process_mismatches == 0, \
        f"{process_mismatches} process-backend answers differ from scalar"
    if assert_speedup:
        assert speedup >= MIN_PROCESS_SPEEDUP, \
            f"process backend is only {speedup:.2f}x over threads " \
            f"(thread {t_thread * 1e3:.1f} ms, " \
            f"process {t_process * 1e3:.1f} ms); the CPU-bound " \
            f"contract requires {MIN_PROCESS_SPEEDUP}x"
