"""Extension bench — transistor cost over calendar time.

Temporal restatement of Figs. 6/7: the Scenario-#1 trajectory keeps
falling through the 1990s while the Scenario-#2 trajectory reverses
right around the paper's publication ("Recently the situation has
changed ... the cost per transistor may no longer decrease" — Sec. III,
written 1994).
"""

import numpy as np

from conftest import emit
from repro.analysis import ascii_chart
from repro.core import divergence_year, optimistic_trajectory, realistic_trajectory


def _compute():
    opt = optimistic_trajectory(1.2)
    real = realistic_trajectory(1.8)
    years = np.linspace(1985.0, 2004.0, 39)
    return (
        years,
        np.array([opt.cost_at_year(y) * 1e6 for y in years]),
        np.array([real.cost_at_year(y) * 1e6 for y in years]),
        real.reversal_year(1985.0, 2005.0),
        divergence_year(ratio=4.0),
    )


def test_cost_per_transistor_over_time(benchmark):
    years, opt_costs, real_costs, reversal, diverge = benchmark(_compute)
    emit("Extension — C_tr vs year (Scenario #1 X=1.2 vs Scenario #2 X=1.8)",
         ascii_chart(years, {"optimistic": opt_costs,
                             "realistic": real_costs},
                     log_y=True, x_label="year", y_label="C_tr [$1e-6]")
         + f"\n\nrealistic-trajectory cost reversal year: {reversal}"
         + f"\noptimistic/realistic 4x divergence year: {diverge}")

    # Optimistic: monotone decline through the whole span.
    assert np.all(np.diff(opt_costs) < 0)
    # Realistic: reverses in the paper's era.
    assert reversal is not None and 1988.0 <= reversal <= 1996.0
    assert real_costs[-1] > real_costs[0]  # net rise over the span
    # Divergence precedes the paper: planning on memory economics was
    # already misleading non-memory products by 4x before 1994.
    assert diverge is not None and diverge <= 1994.0
