"""Extension bench — transistor cost over calendar time.

Temporal restatement of Figs. 6/7: the Scenario-#1 trajectory keeps
falling through the 1990s while the Scenario-#2 trajectory reverses
right around the paper's publication ("Recently the situation has
changed ... the cost per transistor may no longer decrease" — Sec. III,
written 1994).

This file also hosts the *performance* trajectory: an aggregation over
the committed ``BENCH_*.json`` records that stacks every tier of the
stack — batch engine, micro-batch serving, shm sweep pool, Monte-Carlo
sharding, replay parity, obs overhead, and the HTTP network tier — into
one ``perf_trajectory`` record, so the per-tier speedups and the
end-to-end network latency live side by side in ``BENCH_repro.json``.
"""

import json
from pathlib import Path

import numpy as np

from conftest import emit, emit_json
from repro.analysis import ascii_chart, ascii_table
from repro.core import divergence_year, optimistic_trajectory, realistic_trajectory


def _compute():
    opt = optimistic_trajectory(1.2)
    real = realistic_trajectory(1.8)
    years = np.linspace(1985.0, 2004.0, 39)
    return (
        years,
        np.array([opt.cost_at_year(y) * 1e6 for y in years]),
        np.array([real.cost_at_year(y) * 1e6 for y in years]),
        real.reversal_year(1985.0, 2005.0),
        divergence_year(ratio=4.0),
    )


def test_cost_per_transistor_over_time(benchmark):
    years, opt_costs, real_costs, reversal, diverge = benchmark(_compute)
    emit("Extension — C_tr vs year (Scenario #1 X=1.2 vs Scenario #2 X=1.8)",
         ascii_chart(years, {"optimistic": opt_costs,
                             "realistic": real_costs},
                     log_y=True, x_label="year", y_label="C_tr [$1e-6]")
         + f"\n\nrealistic-trajectory cost reversal year: {reversal}"
         + f"\noptimistic/realistic 4x divergence year: {diverge}")

    # Optimistic: monotone decline through the whole span.
    assert np.all(np.diff(opt_costs) < 0)
    # Realistic: reverses in the paper's era.
    assert reversal is not None and 1988.0 <= reversal <= 1996.0
    assert real_costs[-1] > real_costs[0]  # net rise over the span
    # Divergence precedes the paper: planning on memory economics was
    # already misleading non-memory products by 4x before 1994.
    assert diverge is not None and diverge <= 1994.0


# --------------------------------------------------------------------
# Performance trajectory — aggregate the committed BENCH_*.json files.
# --------------------------------------------------------------------

_BENCH_DIR = Path(__file__).resolve().parent


def _load_bench(name: str):
    path = _BENCH_DIR / name
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _tier_engine(d):
    return {"speedup_vs_scalar": d["speedup"],
            "warm_speedup": d["warm_speedup"]}


def _tier_serve(d):
    t = d["throughput"]
    return {"speedup_steady": t["speedup_steady"],
            "bitwise_mismatches": t["bitwise_mismatches"]}


def _tier_sweep(d):
    m = d["mega_sweep"]
    return {"points": m["points"],
            "speedup_pool_over_single": m["speedup_pool_over_single"],
            "bitwise_mismatches": m["bitwise_mismatches"]}


def _tier_mc(d):
    return {"speedup": d["speedup"],
            "bitwise_identical": d["bitwise_identical"]}


def _tier_replay(d):
    r = d["replay_parity"]
    return {"queries": r["queries"], "mismatches": r["mismatches"]}


def _tier_obs(d):
    return {"serve_overhead_ratio": d["serve"]["ratio"],
            "max_allowed_overhead": d["max_allowed_overhead"]}


def _tier_chiplet(d):
    b = d["chiplet_batch"]
    return {"points": b["points"],
            "speedup_batch_over_scalar": b["speedup_batch_over_scalar"],
            "bitwise_mismatches": b["bitwise_mismatches"]}


def _tier_http(d):
    o = d["open_loop"]
    return {"requests": o["requests"],
            "achieved_rps": o["achieved_rps"],
            "p50_ms": o["latency_ms"]["p50"],
            "p95_ms": o["latency_ms"]["p95"],
            "p99_ms": o["latency_ms"]["p99"],
            "error_budget": o["error_budget"],
            "bitwise_mismatches": o["bitwise_mismatches"],
            "replay_exit_code": o["replay_exit_code"]}


# Bottom of the stack to the network edge, in order.
_TIERS = [
    ("engine", "BENCH_engine.json", _tier_engine),
    ("serve", "BENCH_serve.json", _tier_serve),
    ("sweep", "BENCH_sweep.json", _tier_sweep),
    ("chiplet", "BENCH_chiplet.json", _tier_chiplet),
    ("mc", "BENCH_mc.json", _tier_mc),
    ("replay", "BENCH_replay.json", _tier_replay),
    ("obs", "BENCH_obs.json", _tier_obs),
    ("http", "BENCH_http.json", _tier_http),
]


def collect_perf_trajectory() -> dict:
    """One record per tier of the stack, from whatever BENCH files exist.

    Tiers whose JSON is missing or malformed are simply absent — the
    committed files always yield at least engine/serve/http.
    """
    tiers = {}
    for name, filename, extract in _TIERS:
        data = _load_bench(filename)
        if data is None:
            continue
        try:
            tiers[name] = extract(data)
        except (KeyError, TypeError):
            continue
    return {"kind": "perf_trajectory", "tiers": tiers}


def test_perf_trajectory_includes_network_tier():
    record = collect_perf_trajectory()
    tiers = record["tiers"]

    # The committed BENCH files cover the whole ladder; the network
    # tier (BENCH_http.json, written by bench_http.py and committed
    # alongside it) must be part of the trajectory.
    for required in ("engine", "serve", "http"):
        assert required in tiers, f"missing {required} tier"

    http = tiers["http"]
    assert http["requests"] >= 1000
    assert http["bitwise_mismatches"] == 0
    assert http["replay_exit_code"] == 0
    assert http["p50_ms"] <= http["p95_ms"] <= http["p99_ms"]

    rows = [(name, json.dumps(stats, sort_keys=True))
            for name, stats in tiers.items()]
    emit("Performance trajectory — per-tier BENCH aggregation",
         ascii_table(("tier", "summary"), rows))
    emit_json(record)
