"""Fig. 2 — fabline and wafer cost vs. year.

Paper claims: fab cost grows exponentially toward $1B per fabline; the
X read off the wafer-cost curve is 1.2–1.4 per generation.
"""

from conftest import emit_figure
from repro.analysis import fig2_fab_cost
from repro.technology import FABLINE_COST_HISTORY, extract_cost_growth_rate
from repro.technology.fabline import WAFER_COST_HISTORY


def test_fig2_fab_and_wafer_cost(benchmark):
    data = benchmark(fig2_fab_cost)
    emit_figure(data)

    fab = data.series["fab cost [$M]"]
    assert fab[-1] >= 1000.0  # the $1B fabline
    x_wafer = extract_cost_growth_rate(WAFER_COST_HISTORY)
    x_fab = extract_cost_growth_rate(FABLINE_COST_HISTORY)
    assert 1.2 <= x_wafer <= 1.4  # the paper's Fig.-2 band
    assert x_fab > x_wafer        # capital outruns wafer cost
