"""Ablation benches for the design choices DESIGN.md calls out.

1. Generation-law choice (deviation 1): Table-3 agreement under each
   candidate exponent law — the reason SHRINK_LOG is the default.
2. Yield-model choice: how much the classical models disagree at
   Table-3 operating points (why the paper's simple Poisson-family
   treatment suffices for cost *trends*).
3. Redundancy on/off: the Scenario-#1 vs Scenario-#2 hinge (S1.2) in
   numbers.
4. Test-cost inclusion: how much the Sec.-III.A.e term shifts C_tr.
"""

import math

from conftest import emit
from repro.analysis import ascii_table
from repro.core import GenerationModel, TransistorCostModel, WaferCostModel, \
    evaluate_catalog
from repro.core.diversity import agreement_statistics
from repro.geometry import Die, Wafer, dies_per_wafer_maly
from repro.manufacturing import TestCostModel
from repro.yieldsim import (
    BoseEinsteinYield,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    RedundantMemoryYield,
    SeedsYield,
)


def _generation_law_ablation():
    rows = []
    for law in GenerationModel:
        stats = agreement_statistics(evaluate_catalog(generation_model=law))
        rows.append((law.value, stats["mean_abs_log_error"],
                     stats["max_abs_log_error"], stats["modeled_spread"]))
    return rows


def test_ablation_generation_law(benchmark):
    rows = benchmark(_generation_law_ablation)
    emit("Ablation 1 — eq.-(3) exponent law vs Table-3 agreement",
         ascii_table(("law", "mean |log err|", "max |log err|", "spread"),
                     rows))
    by_law = {name: mean for name, mean, _, _ in rows}
    # The default must win, and the printed exponent must be clearly worse.
    assert by_law["shrink-log"] == min(by_law.values())
    assert by_law["printed"] > 2.0 * by_law["shrink-log"]


def test_ablation_yield_model_family(benchmark):
    """Classical yield models at a Table-3 operating point (m ~ 1)."""
    models = {
        "poisson (eq. 6)": PoissonYield(),
        "murphy": MurphyYield(),
        "seeds": SeedsYield(),
        "bose-einstein n=3": BoseEinsteinYield(n_layers=3),
        "neg-binomial a=2": NegativeBinomialYield(alpha=2.0),
    }
    area, d0 = 1.0, 1.0  # the Scenario-#2 reference die at D0 ~ 1/cm^2

    def compute():
        return {name: m.yield_for_area(area, d0)
                for name, m in models.items()}

    yields = benchmark(compute)
    emit("Ablation 2 — yield model family at A=1 cm^2, D0=1 /cm^2",
         ascii_table(("model", "yield"), list(yields.items())))
    # Ordering and spread: Poisson most pessimistic; the family spans
    # less than 2x at m=1, so cost *trends* are model-robust.
    assert yields["poisson (eq. 6)"] == min(yields.values())
    assert max(yields.values()) / min(yields.values()) < 2.0


def test_ablation_redundancy(benchmark):
    """S1.2: 'only memories enjoy the benefits of redundancy'."""
    die_area = 0.5
    density = 2.5  # defects/cm^2 — an immature process

    def compute():
        mem = RedundantMemoryYield(array_area_cm2=0.95 * die_area,
                                   periphery_area_cm2=0.05 * die_area,
                                   n_blocks=32, spares_per_block=4)
        return mem.unrepaired_yield(density), mem.yield_for_density(density)

    unrepaired, repaired = benchmark(compute)
    emit("Ablation 3 — redundancy on/off at D0=2.5 /cm^2, 0.5 cm^2 die",
         ascii_table(("configuration", "yield"),
                     [("logic (no repair possible)", unrepaired),
                      ("memory with spares", repaired)]))
    assert unrepaired < 0.35
    assert repaired > 0.9
    # This is why Scenario #1 (memories) could assume ~100% mature yield
    # while Scenario #2 (logic) could not.


def test_ablation_test_cost_inclusion(benchmark):
    """Sec. III.A.e: folding probe cost into the wafer cost."""
    model = TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                  cost_growth_rate=1.8),
        wafer=Wafer(radius_cm=7.5))
    tester = TestCostModel()
    n_tr, lam, d_d = 3.1e6, 0.8, 150.0

    def compute():
        b = model.evaluate(n_transistors=n_tr, feature_size_um=lam,
                           design_density=d_d, yield_value=0.7)
        die = Die.from_transistor_count(n_tr, d_d, lam)
        n_ch = dies_per_wafer_maly(model.wafer, die)
        probe_per_wafer = tester.wafer_test_cost(n_tr, n_ch)
        ctr_with_test = (b.wafer_cost_dollars + probe_per_wafer) \
            / (n_ch * n_tr * 0.7)
        return b.cost_per_transistor_dollars, ctr_with_test, \
            probe_per_wafer, b.wafer_cost_dollars

    ctr, ctr_t, probe, wafer_cost = benchmark(compute)
    emit("Ablation 4 — test cost folded into eq. (1) (BiCMOS uP row)",
         ascii_table(("quantity", "value"), [
             ("wafer manufacturing cost [$]", wafer_cost),
             ("wafer probe cost [$]", probe),
             ("C_tr without test [$1e-6]", ctr * 1e6),
             ("C_tr with test [$1e-6]", ctr_t * 1e6),
             ("test share of total", 1.0 - ctr / ctr_t),
         ]))
    assert ctr_t > ctr
    assert 0.0 < 1.0 - ctr / ctr_t < 0.5  # material but not dominant here
