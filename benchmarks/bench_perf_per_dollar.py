"""Extension bench — performance per dollar under the two scenarios.

The paper's core sentence: "the transistor size decrease may not
provide simultaneous performance and cost gains."  Joining Dennard
frequency scaling to the cost scenarios quantifies it: under Scenario
#1, shrink multiplies performance-per-dollar; under Scenario #2 at high
X, the cost increase overwhelms even the speed gain and the ratio drops
below 1 — shrink becomes irrational for *any* objective.
"""

import numpy as np

from conftest import emit
from repro.analysis import ascii_table
from repro.core import SCENARIO_1, SCENARIO_2
from repro.technology import DENNARD, performance_per_dollar, \
    tolerable_cost_increase

NODES = (1.0, 0.8, 0.65, 0.5, 0.35)


def _compute():
    rows = []
    for lam in NODES[1:]:
        c1_old = SCENARIO_1.cost_dollars(1.0, 1.2)
        c1_new = SCENARIO_1.cost_dollars(lam, 1.2)
        c2_old = SCENARIO_2.cost_dollars(1.0, 2.4)
        c2_new = SCENARIO_2.cost_dollars(lam, 2.4)
        rows.append((
            lam,
            tolerable_cost_increase(1.0, lam),
            c1_new / c1_old,
            performance_per_dollar(c1_old, c1_new, 1.0, lam),
            c2_new / c2_old,
            performance_per_dollar(c2_old, c2_new, 1.0, lam),
        ))
    return rows


def test_performance_per_dollar(benchmark):
    rows = benchmark(_compute)
    emit("Extension — shrink from 1.0 um: cost growth vs the frequency "
         "gain it must beat (Dennard scaling)",
         ascii_table(("to lambda [um]", "tolerable cost growth",
                      "scen1 cost growth", "scen1 perf/$ gain",
                      "scen2 cost growth", "scen2 perf/$ gain"), rows))

    final = rows[-1]  # shrink to 0.35 um
    _, tolerable, s1_cost, s1_ppd, s2_cost, s2_ppd = final
    # Scenario 1: cost falls outright, so perf/$ gain is large.
    assert s1_cost < 1.0
    assert s1_ppd > tolerable
    # Scenario 2 at X=2.4: cost growth exceeds what frequency can absorb
    # — shrink loses performance-per-dollar.
    assert s2_cost > tolerable
    assert s2_ppd < 1.0
    # There is a crossover along the shrink path: a mild shrink still
    # pays in perf/$, a deep one loses — exactly the interior-optimum
    # structure of Fig. 8, restated in performance terms.
    s2_series = [r[5] for r in rows]
    assert s2_series[0] > 1.0
    assert s2_series[-1] < 1.0
