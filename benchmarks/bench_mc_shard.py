"""Monte Carlo lot sharding — process-parallel vs sequential schedule.

The claim under test: sharding an 8-wafer spot-defect lot over 4
worker processes (``simulate_lot(..., seed=s, workers=4)``) is at
least **2× faster** than the in-process sequential schedule, while
producing a *bitwise identical* lot — same per-wafer killer counts,
same defects-thrown bookkeeping, same die centers — because every
wafer draws from its own ``SeedSequence.spawn`` child stream no matter
which process simulates it.

The speedup floor is asserted only when the host exposes at least 4
CPUs (a single-core runner cannot exhibit process parallelism); the
parity assertions always run.  Results land in
``benchmarks/BENCH_mc.json`` and, via the shared ``emit_json`` hook,
in ``benchmarks/BENCH_repro.json``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from conftest import emit, emit_json
from repro.geometry import Die, Wafer
from repro.yieldsim import DefectSizeDistribution, SpotDefectSimulator

N_WAFERS = 8
WORKERS = 4
SEED = 2024
MIN_SPEEDUP = 2.0
_BENCH_MC_JSON = Path(__file__).resolve().parent / "BENCH_mc.json"


def _simulator() -> SpotDefectSimulator:
    # Heavy enough that one wafer costs ~10^2 ms: a dense Fig.-5 defect
    # population over a fine die grid, so the per-shard work dominates
    # pool startup by two orders of magnitude.
    return SpotDefectSimulator(
        Wafer(radius_cm=7.5), Die.square(0.35),
        defect_density_per_cm2=200.0,
        size_distribution=DefectSizeDistribution(r0_um=0.3, p=4.07),
        kill_radius_um=0.5)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _time_best_of(fn, reps: int) -> float:
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_mc_shard_speedup_and_parity(benchmark):
    sim = _simulator()
    lot_seq = sim.simulate_lot(N_WAFERS, seed=SEED, workers=1)
    lot_par = benchmark(lambda: sim.simulate_lot(N_WAFERS, seed=SEED,
                                                 workers=WORKERS))

    # --- bitwise parity: sharding must not change a single count -----
    assert len(lot_par) == len(lot_seq) == N_WAFERS
    for mp, ms in zip(lot_par, lot_seq):
        assert np.array_equal(mp.die_centers_cm, ms.die_centers_cm)
        assert np.array_equal(mp.defect_counts, ms.defect_counts)
        assert mp.n_defects_total == ms.n_defects_total
    assert lot_par.yield_fraction == lot_seq.yield_fraction

    # --- speedup ------------------------------------------------------
    t_seq = _time_best_of(
        lambda: sim.simulate_lot(N_WAFERS, seed=SEED, workers=1), 2)
    t_par = _time_best_of(
        lambda: sim.simulate_lot(N_WAFERS, seed=SEED, workers=WORKERS), 2)
    speedup = t_seq / t_par
    cpus = _available_cpus()
    speedup_asserted = cpus >= WORKERS
    if speedup_asserted:
        assert speedup >= MIN_SPEEDUP, \
            f"shard speedup {speedup:.2f}x < required {MIN_SPEEDUP}x " \
            f"at {WORKERS} workers on {cpus} CPUs"

    record = {
        "kind": "mc_shard",
        "n_wafers": N_WAFERS,
        "workers": WORKERS,
        "dies_per_wafer": int(lot_seq[0].n_dies),
        "defects_thrown": int(lot_seq.n_defects_total),
        "lot_yield": lot_seq.yield_fraction,
        "sequential_s": t_seq,
        "sharded_s": t_par,
        "speedup": speedup,
        "min_required_speedup": MIN_SPEEDUP,
        "available_cpus": cpus,
        "speedup_asserted": speedup_asserted,
        "bitwise_identical": True,
    }
    _BENCH_MC_JSON.write_text(json.dumps(record, indent=2) + "\n")
    emit_json(record)
    emit("Monte Carlo lot sharding — spawned seed streams over processes",
         f"lot                : {N_WAFERS} wafers x {lot_seq[0].n_dies} dies "
         f"({lot_seq.n_defects_total} defects thrown)\n"
         f"sequential         : {t_seq * 1e3:9.1f} ms\n"
         f"sharded ({WORKERS} workers): {t_par * 1e3:9.1f} ms   "
         f"({speedup:5.2f}x)\n"
         f"parity             : bitwise identical lot\n"
         f"speedup floor      : {MIN_SPEEDUP}x "
         f"({'asserted' if speedup_asserted else 'recorded only: '}"
         f"{'' if speedup_asserted else f'{cpus} CPU(s) available'})")
