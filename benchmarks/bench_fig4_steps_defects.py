"""Fig. 4 — manufacturing steps and required defect density per generation.

Paper claims: step count rises with each generation while the defect
density required for acceptable yield falls by orders of magnitude —
the twin drivers of the eq.-(3) cost growth.
"""

import numpy as np

from conftest import emit_figure
from repro.analysis import fig4_steps_and_defects


def test_fig4_steps_and_required_density(benchmark):
    data = benchmark(fig4_steps_and_defects)
    emit_figure(data)

    lam = data.x
    order = np.argsort(lam)  # coarse -> fine is descending lam
    steps = data.series["process steps"][order]
    density = data.series["required defect density [1/cm^2]"][order]

    # Steps grow monotonically toward finer nodes.
    assert np.all(np.diff(steps) < 0) or np.all(np.diff(steps[::-1]) < 0)
    fine_to_coarse_steps = steps[0] / steps[-1]
    assert fine_to_coarse_steps > 1.3  # tens of percent more steps

    # Required density falls by orders of magnitude over the sweep.
    assert density[0] < density[-1]
    assert density[-1] / density[0] > 50.0
