"""Table 1 — design densities of µP functional blocks [22].

Paper data: I-cache 43.2, D-cache 50.7, FPU 222.3, integer 257.9,
MMU 270.5, bus unit 399.0 λ²/transistor.  The bench recomputes the
density column from the published areas/counts via eq. (5).
"""

import pytest

from conftest import emit_table
from repro.analysis import table1
from repro.technology import FUNCTIONAL_BLOCK_DENSITIES


def test_table1_block_densities(benchmark):
    data = benchmark(table1)
    emit_table(data)

    published = data.column("d_d published")
    recomputed = data.column("d_d recomputed")
    for pub, rec in zip(published, recomputed):
        assert rec == pytest.approx(pub, rel=0.01)

    # Shape claim: memory-like blocks (caches) pack 4-9x denser than
    # control-dominated blocks (bus unit).
    by_name = {b.name: b.d_d for b in FUNCTIONAL_BLOCK_DENSITIES}
    assert by_name["Bus unit"] / by_name["I-cache"] > 4.0
