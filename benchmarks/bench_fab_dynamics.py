"""Extension bench — cycle time vs. loading (the CIM/flexible-fab thread).

The queueing reality behind Sec. III.A.d and Phase 2's "flexible
fabline control": pushing starts toward capacity explodes cycle time
and WIP nonlinearly, so a fab cannot simply 'run everything at 100%'.
The bench sweeps the start rate and prints the hockey stick.
"""

from conftest import emit
from repro.analysis import ascii_table
from repro.manufacturing import CycleTimeCost, FabDynamics
from repro.manufacturing.equipment import ProcessFlow
from repro.manufacturing.product_mix import size_equipment_for_flow

FLOW = ProcessFlow.generic_cmos(n_metal_layers=2)
EQUIPMENT = size_equipment_for_flow(FLOW, 3000.0)
RATES_PER_HOUR = (4.0, 8.0, 12.0, 16.0, 19.0, 20.8)


def _compute():
    pricing = CycleTimeCost(revenue_per_wafer_dollars=3000.0,
                            revenue_decay_per_month=0.03)
    rows = []
    for rate in RATES_PER_HOUR:
        dyn = FabDynamics(equipment=EQUIPMENT, flow=FLOW,
                          wafer_starts_per_hour=rate)
        bott = dyn.bottleneck()
        rows.append((rate, bott.utilization, dyn.x_factor(),
                     dyn.wip_wafers(),
                     pricing.cost_per_wafer(dyn.cycle_time_hours())))
    return rows


def test_cycle_time_hockey_stick(benchmark):
    rows = benchmark(_compute)
    emit("Extension — cycle time vs fab loading (M/M/c network)",
         ascii_table(("starts/hour", "bottleneck util", "x-factor",
                      "WIP [wafers]", "time cost per wafer [$]"), rows))

    x_factors = [x for _, _, x, _, _ in rows]
    wip = [w for _, _, _, w, _ in rows]
    # Monotone and convex: the last loading step costs more x-factor
    # than all the earlier steps combined.
    assert x_factors == sorted(x_factors)
    assert (x_factors[-1] - x_factors[-2]) > (x_factors[-2] - x_factors[0])
    assert wip == sorted(wip)
    # Near saturation, the x-factor exceeds the well-run-fab band floor.
    assert x_factors[-1] > 2.0
