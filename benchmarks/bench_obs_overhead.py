"""Observability overhead — the disabled hooks must be (near) free.

The ``repro.obs`` contract: with tracing and metrics **off** (the
default), the span/metric hooks threaded through the batch engine,
the Monte Carlo lot runner, and the ``repro.serve`` micro-batch
scheduler cost less than **3%** of wall time against an
uninstrumented baseline.  The baseline is produced by monkeypatching
the modules' hook bindings (``_span``, ``_metrics``, the state probes,
the capture protocol) with the cheapest possible no-ops — the same code
paths minus any observability logic.

Timings are interleaved best-of-N so both variants see the same host
noise; the minimum is the standard robust estimator for "how fast can
this code go".  Results land in ``benchmarks/BENCH_obs.json`` and, via
the shared ``emit_json`` hook, in ``benchmarks/BENCH_repro.json``.
"""

from __future__ import annotations

import contextlib
import json
import math
import time
from pathlib import Path

import numpy as np

from conftest import emit, emit_json
from repro import obs
from repro.batch import engine as engine_mod
from repro.batch import evaluate_batch
from repro.batch.cache import BatchCache
from repro.core import TransistorCostModel, WaferCostModel
from repro.geometry import Die, Wafer
from repro.serve import CostService, FabCostQuery
from repro.serve import scheduler as serve_scheduler_mod
from repro.yieldsim import PoissonYield, SpotDefectSimulator
from repro.yieldsim import parallel as parallel_mod

MAX_DISABLED_OVERHEAD = 0.03
REPS = 7
_BENCH_OBS_JSON = Path(__file__).resolve().parent / "BENCH_obs.json"

class _NullSpan:
    """Yielded span surface with every call a no-op.

    Must yield an object (not None): the scheduler's flush loop calls
    ``sp.annotate(...)`` on whatever the span context yields, and a
    crashed flusher thread leaves every waiter hanging forever.
    """

    @staticmethod
    def annotate(**attrs):
        return None


_NULL_CTX = contextlib.nullcontext(_NullSpan())


def _null_span(name, **attrs):
    return _NULL_CTX


class _NullMetrics:
    """Writer surface of MetricsRegistry with every call a no-op."""

    @staticmethod
    def inc(name, amount=1):
        return None

    @staticmethod
    def set_gauge(name, value):
        return None

    @staticmethod
    def observe(name, value):
        return None


def _batch_workload():
    model = TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                  cost_growth_rate=1.4),
        wafer=Wafer(radius_cm=7.5))
    counts = np.geomspace(1e5, 1e8, 320)
    lams = np.linspace(0.35, 1.2, 320)

    def run():
        evaluate_batch(model, n_transistors=counts[:, None],
                       feature_sizes_um=lams[None, :],
                       design_density=150.0, yield_model=PoissonYield(),
                       defect_density_per_cm2=0.5, cache=None)

    return run


def _mc_workload():
    sim = SpotDefectSimulator(Wafer(radius_cm=7.5), Die.square(0.7),
                              defect_density_per_cm2=25.0)

    def run():
        sim.simulate_lot(4, seed=404, workers=1)

    return run


def _serve_workload():
    queries = [FabCostQuery(10 ** (5 + 2.0 * (i % 40) / 39),
                            0.4 + 1.0 * (i // 40) / 14)
               for i in range(600)]
    svc = CostService(max_batch_size=256, max_wait_s=0.002,
                      cache=BatchCache()).start()

    def run():
        # One pass is ~1 ms — too short to time reliably, so each
        # sample replays the bulk workload a few times.
        for _ in range(4):
            svc.costs(queries)

    return run, svc


def _patch_out_hooks(monkeypatch):
    false = lambda: False  # noqa: E731 - tiniest possible state probe
    monkeypatch.setattr(engine_mod, "_span", _null_span)
    monkeypatch.setattr(engine_mod, "_metrics", _NullMetrics)
    monkeypatch.setattr(engine_mod, "_obs_enabled", false)
    monkeypatch.setattr(engine_mod, "_tracing_enabled", false)
    monkeypatch.setattr(parallel_mod, "_span", _null_span)
    monkeypatch.setattr(parallel_mod, "_metrics", _NullMetrics)
    monkeypatch.setattr(parallel_mod, "capture_flags", lambda: None)
    monkeypatch.setattr(parallel_mod, "absorb", lambda payload: None)
    monkeypatch.setattr(serve_scheduler_mod, "_span", _null_span)
    monkeypatch.setattr(serve_scheduler_mod, "_metrics", _NullMetrics)
    monkeypatch.setattr(serve_scheduler_mod, "_obs_enabled", false)


def _interleaved_best_of(instrumented, baseline, reps):
    t_inst = t_base = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        instrumented()
        t_inst = min(t_inst, time.perf_counter() - t0)
        t0 = time.perf_counter()
        baseline()
        t_base = min(t_base, time.perf_counter() - t0)
    return t_inst, t_base


def test_disabled_observability_overhead(monkeypatch):
    obs.disable()
    batch = _batch_workload()
    mc = _mc_workload()
    batch()  # warm up numpy/scipy dispatch before timing
    mc()

    class _Patch:
        """Scoped monkeypatch so hooks come back between timing legs."""

        def __enter__(self):
            from _pytest.monkeypatch import MonkeyPatch
            self._mp = MonkeyPatch()
            _patch_out_hooks(self._mp)

        def __exit__(self, *exc):
            self._mp.undo()

    def timed(workload):
        def baseline():
            with _Patch():
                workload()
        return _interleaved_best_of(workload, baseline, REPS)

    batch_inst, batch_base = timed(batch)
    mc_inst, mc_base = timed(mc)

    # The service is created only for its own leg so its flusher and
    # worker threads cannot perturb the other timings.
    serve, svc = _serve_workload()
    try:
        serve()  # warm the shared BatchCache so both legs replay hits
        serve_inst, serve_base = timed(serve)
    finally:
        svc.close()
    batch_ratio = batch_inst / batch_base
    mc_ratio = mc_inst / mc_base
    serve_ratio = serve_inst / serve_base

    record = {
        "kind": "obs_overhead",
        "max_allowed_overhead": MAX_DISABLED_OVERHEAD,
        "reps": REPS,
        "batch": {"instrumented_s": batch_inst, "baseline_s": batch_base,
                  "ratio": batch_ratio},
        "monte_carlo": {"instrumented_s": mc_inst, "baseline_s": mc_base,
                        "ratio": mc_ratio},
        "serve": {"instrumented_s": serve_inst, "baseline_s": serve_base,
                  "ratio": serve_ratio},
    }
    _BENCH_OBS_JSON.write_text(json.dumps(record, indent=2) + "\n")
    emit_json(record)
    emit("Observability overhead — disabled hooks vs uninstrumented",
         f"batch engine : {batch_inst * 1e3:8.2f} ms instrumented vs "
         f"{batch_base * 1e3:8.2f} ms baseline  "
         f"(ratio {batch_ratio:6.4f})\n"
         f"monte carlo  : {mc_inst * 1e3:8.2f} ms instrumented vs "
         f"{mc_base * 1e3:8.2f} ms baseline  "
         f"(ratio {mc_ratio:6.4f})\n"
         f"serve        : {serve_inst * 1e3:8.2f} ms instrumented vs "
         f"{serve_base * 1e3:8.2f} ms baseline  "
         f"(ratio {serve_ratio:6.4f})\n"
         f"contract     : ratio < {1.0 + MAX_DISABLED_OVERHEAD}")

    limit = 1.0 + MAX_DISABLED_OVERHEAD
    assert batch_ratio < limit, \
        f"disabled obs costs {(batch_ratio - 1) * 100:.1f}% on the " \
        f"batch engine (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    assert mc_ratio < limit, \
        f"disabled obs costs {(mc_ratio - 1) * 100:.1f}% on the " \
        f"Monte Carlo path (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    assert serve_ratio < limit, \
        f"disabled obs costs {(serve_ratio - 1) * 100:.1f}% on the " \
        f"serving path (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
