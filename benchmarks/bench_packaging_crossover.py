"""Extension bench — packaging-strategy crossovers (Sec. VI).

"Typical MCMs are seen as more expensive way to package small and
medium size systems" — because they ARE, for small systems: the bench
sweeps the system transistor budget and shows the winner sequence
single chip → MCM → board, with the single-chip option collapsing
exponentially once the die outgrows the yieldable size.

A chiplet column (4-way split through
:class:`repro.system.chiplet.ChipletCostModel`, organic substrate)
rides along: per-system dollars from the same budgets, showing the
same shape — overpriced for small systems, the only finite silicon
option once the monolithic die stops yielding.
"""

import math

from conftest import emit
from repro.analysis import ascii_table
from repro.system import PackagingCostModel, PackagingStrategy, crossover_points
from repro.system.chiplet import ChipletCostModel

MODEL = PackagingCostModel()
CHIPLET_MODEL = ChipletCostModel()
CHIPLET_K = 4
CHIPLET_LAMBDA_UM = 0.8
BUDGETS = (1e5, 3e5, 1e6, 3e6, 8e6)


def _compute():
    rows = []
    for budget, winner, best_cost in crossover_points(MODEL, BUDGETS):
        costs = {s: MODEL.packaging_cost(s, budget)
                 for s in PackagingStrategy}
        chiplet = CHIPLET_MODEL.system_cost(CHIPLET_K, budget,
                                            CHIPLET_LAMBDA_UM)
        rows.append((budget,
                     costs[PackagingStrategy.SINGLE_CHIP],
                     costs[PackagingStrategy.MCM],
                     costs[PackagingStrategy.BOARD],
                     chiplet.system_cost_dollars,
                     winner.value))
    return rows


def test_packaging_crossover(benchmark):
    rows = benchmark(_compute)
    printable = [(b,
                  s if math.isfinite(s) and s < 1e6 else float("inf"),
                  m, brd,
                  chip if math.isfinite(chip) and chip < 1e9
                  else float("inf"),
                  w)
                 for b, s, m, brd, chip, w in rows]
    emit("Extension — packaging strategy vs system size",
         ascii_table(("transistors", "single chip [$]", "MCM [$]",
                      "board [$]", f"chiplet x{CHIPLET_K} [$]", "winner"),
                     printable))

    winners = [w for *_, w in rows]
    assert winners[0] == PackagingStrategy.SINGLE_CHIP.value
    assert PackagingStrategy.MCM.value in winners
    # Single chip never wins again after losing once.
    first_loss = next(i for i, w in enumerate(winners)
                      if w != PackagingStrategy.SINGLE_CHIP.value)
    assert all(w != PackagingStrategy.SINGLE_CHIP.value
               for w in winners[first_loss:])
    # The single-chip option collapses by orders of magnitude at 8M.
    last = rows[-1]
    assert last[1] > 100.0 * last[2]
    # Chiplet column: finite everywhere — splitting keeps the dies
    # yieldable even at the budget where the monolithic option is
    # inf — and monotone in the budget.
    chiplet_costs = [row[4] for row in rows]
    assert all(math.isfinite(c) for c in chiplet_costs)
    assert chiplet_costs == sorted(chiplet_costs)
    assert chiplet_costs[-1] < last[1]
