"""Extension bench — the Fig.-10 integrated optimization, measured.

The paper: system-level cost minimization needs ONE model integrating
component yield (in terms of λ, N_tr), test cost as a function of fault
escapes, and packaging.  The bench compares the disconnected-flows
baseline (silicon-optimal λ, habitual test coverage) against the joint
optimizer and reports the gap — the dollars the paper says the missing
methodology leaves on the table.
"""

from conftest import emit
from repro.analysis import ascii_table
from repro.system import (
    McmSubstrate,
    SystemCostModel,
    optimize_system,
    silicon_only_baseline,
)
from repro.system.partitioning import Partition

PARTITIONS = (
    Partition(name="cache", n_transistors=1.2e6, design_density=45.0),
    Partition(name="logic", n_transistors=3.0e5, design_density=250.0),
    Partition(name="io", n_transistors=5.0e4, design_density=400.0),
)
SUBSTRATE = McmSubstrate(name="smart silicon", cost_dollars=150.0,
                         self_test=True, diagnosis_cost_dollars=5.0,
                         rework_success=0.9)
MODEL = SystemCostModel(partitions=PARTITIONS, substrate=SUBSTRATE)


def _compute():
    baseline = silicon_only_baseline(MODEL)
    optimized = optimize_system(MODEL)
    return baseline, optimized


def test_integrated_system_optimization(benchmark):
    baseline, optimized = benchmark(_compute)

    rows = []
    for label, report in (("silicon-only baseline", baseline),
                          ("joint (Fig.-10) optimum", optimized)):
        rows.append((label, report.silicon_dollars, report.test_dollars,
                     report.module_yield, report.cost_per_good_system))
    choice_rows = [(d.partition.name, d.feature_size_um, d.test_coverage)
                   for d in optimized.designs]
    emit("Extension — integrated system cost optimization",
         ascii_table(("flow", "silicon [$]", "test [$]", "module yield",
                      "$/good system"), rows)
         + "\n\njoint optimum choices:\n"
         + ascii_table(("partition", "lambda [um]", "test coverage"),
                       choice_rows))

    # The joint optimum never loses to the disconnected baseline, and
    # every reported quantity is sane.
    assert optimized.cost_per_good_system <= \
        baseline.cost_per_good_system + 1e-9
    assert 0.0 < optimized.module_yield <= 1.0
    assert optimized.silicon_dollars > 0.0
    # Partition diversity: the dense cache and sparse I/O need not share
    # a feature size (assert the mechanism exists, not a specific split).
    lams = {d.partition.name: d.feature_size_um for d in optimized.designs}
    assert len(lams) == 3
