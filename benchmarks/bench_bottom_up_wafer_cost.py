"""Extension bench — deriving eq. (3)'s X from the bottom up.

The paper quotes X estimates (Intel 1.6, Mitsubishi 1.6-2.4, Hitachi
1.5-2.0, [12] 1.79, Fig. 2 extraction 1.2-1.4) but treats the constant
as empirical.  Building the wafer cost step-by-step — more steps per
generation (Fig. 4), costlier tools (lithography race), tighter
cleanrooms — must *imply* an X inside the same band, or the whole
composition is suspect.
"""

from conftest import emit
from repro.analysis import ascii_table
from repro.manufacturing import BottomUpWaferCost

NODES = (1.0, 0.8, 0.65, 0.5, 0.35)


def _compute():
    model = BottomUpWaferCost()
    rows = []
    for lam in NODES:
        b = model.breakdown(lam)
        rows.append((lam, b.n_steps, b.total_dollars,
                     b.share("equipment"), b.share("facility")))
    return rows, model.effective_growth_rate(), \
        model.with_contamination_crisis().effective_growth_rate()


def test_bottom_up_wafer_cost(benchmark):
    rows, x_nominal, x_crisis = benchmark(_compute)
    emit("Extension — bottom-up wafer cost per node",
         ascii_table(("lambda [um]", "steps", "C_w' [$]",
                      "equipment share", "facility share"), rows)
         + f"\n\nimplied X (nominal)            : {x_nominal:.3f}"
         + f"\nimplied X (contamination crisis): {x_crisis:.3f}"
         + "\npublished band: 1.2 (Fig. 2) ... 2.4 (Mitsubishi)")

    # Reference wafer in the paper's $500-800 band.
    ref_cost = dict((lam, cost) for lam, _, cost, _, _ in rows)[1.0]
    assert 400.0 < ref_cost < 1000.0
    # Implied X inside the published range; crisis pushes it up.
    assert 1.2 <= x_nominal <= 2.4
    assert x_crisis > x_nominal
    # Capital intensification: equipment share grows monotonically.
    shares = [eq for _, _, _, eq, _ in rows]
    assert shares == sorted(shares)
