"""Fig. 1 — minimum feature size vs. year.

Paper claim: exponential shrink; ~1 µm at the turn of the 1990s,
heading to 0.25 µm by the mid/late 1990s.
"""

import numpy as np

from conftest import emit_figure
from repro.analysis import fig1_feature_size


def test_fig1_feature_size_trend(benchmark):
    data = benchmark(fig1_feature_size)
    emit_figure(data)

    lam = data.series["feature size"]
    # Shape claims: strictly shrinking, exponential (straight in log),
    # with the 1 um crossing near 1989.
    assert np.all(np.diff(lam) < 0)
    log_lam = np.log(lam)
    slope, _ = np.polyfit(data.x, log_lam, 1)
    residual = log_lam - (slope * data.x + (log_lam - slope * data.x).mean())
    assert np.abs(residual).max() < 0.05  # clean exponential
    year_at_1um = float(np.interp(0.0, -log_lam, data.x))
    assert 1988.0 < year_at_1um < 1990.0
