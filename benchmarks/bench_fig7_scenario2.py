"""Fig. 7 — cost per transistor under Scenario #2 (X = 1.8/2.1/2.4).

Paper claim: with the growing-die trend and 70%-per-cm² yield, "a
decrease in the feature size causes an increase in the transistor
cost!" — the paper's central warning.
"""

import numpy as np

from conftest import emit_figure
from repro.analysis import fig6_scenario1, fig7_scenario2


def test_fig7_scenario2_curves(benchmark):
    data = benchmark(fig7_scenario2)
    emit_figure(data)

    for name, ys in data.series.items():
        # Cost at the fine end exceeds the coarse end for every X.
        assert ys[0] > ys[-1], name

    # The increase is dramatic at high X (>5x over the sweep).
    x24 = data.series["X=2.4"]
    assert x24[0] / x24[-1] > 5.0

    # Crossover behavior vs Scenario #1: same lambda, the realistic
    # scenario is costlier everywhere (higher density design + yield loss).
    s1 = fig6_scenario1()
    assert data.series["X=1.8"].min() > s1.series["X=1.3"].max()
