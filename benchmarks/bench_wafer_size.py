"""Extension bench — the wafer-size lever and its uniformity tax.

Two of the paper's claims meet here:

* Table 3 rows 13 vs 14: moving the 256 Mb DRAM from 6-inch to 8-inch
  wafers (at the same yield assumption) changes C_tr — the bench
  reproduces the direction at fixed yield.
* S.1.1's caveat: "X may grow due to the wafer size increase" because
  "larger wafers are more difficult to process (process uniformity and
  stability issues)" — quantified by the radial-gradient penalty on the
  ideal site gain.
"""

from conftest import emit
from repro.analysis import ascii_table
from repro.core import TransistorCostModel, WaferCostModel
from repro.geometry import Die, Wafer
from repro.yieldsim import RadialDefectProfile, wafer_size_penalty


def _compute():
    # Part 1: pure geometry gain at fixed yield (rows 13 vs 14 logic).
    model_small = TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=600.0,
                                  cost_growth_rate=1.8),
        wafer=Wafer(radius_cm=7.5))
    model_large = TransistorCostModel(
        wafer_cost=model_small.wafer_cost, wafer=Wafer(radius_cm=10.0))
    kwargs = dict(n_transistors=264e6, feature_size_um=0.25,
                  design_density=29.0, yield_value=0.9)
    c_small = model_small.evaluate(**kwargs)
    c_large = model_large.evaluate(**kwargs)

    # Part 2: the uniformity tax on the ideal gain.
    die = Die.square(1.2)
    penalties = [(g, wafer_size_penalty(
        RadialDefectProfile(center_density_per_cm2=0.6, edge_gradient=g),
        die)) for g in (0.0, 0.5, 1.0, 2.0)]
    return c_small, c_large, penalties


def test_wafer_size_lever(benchmark):
    c_small, c_large, penalties = benchmark(_compute)

    emit("Extension — wafer size: geometry gain and uniformity tax",
         ascii_table(("quantity", "6-inch", "8-inch"), [
             ("dies per wafer", float(c_small.dies_per_wafer),
              float(c_large.dies_per_wafer)),
             ("C_tr [$1e-6]", c_small.cost_per_transistor_microdollars,
              c_large.cost_per_transistor_microdollars),
         ])
         + "\n\nuniformity tax (share of ideal good-die gain lost):\n"
         + ascii_table(("edge gradient g", "penalty"), penalties))

    # Fixed yield: the bigger wafer wins on geometry.
    assert c_large.cost_per_transistor_microdollars < \
        c_small.cost_per_transistor_microdollars
    # Sites grow superlinearly vs the area ratio's edge effects.
    assert c_large.dies_per_wafer > 1.6 * c_small.dies_per_wafer
    # The uniformity tax is zero without a gradient and grows with it.
    taxes = [p for _, p in penalties]
    assert abs(taxes[0]) < 1e-9
    assert taxes == sorted(taxes)
    assert taxes[-1] > 0.01
