"""Fig. 3 — die size vs. feature size.

Paper claim (used verbatim in eq. 9): A_ch(λ) = 16.5·exp(−5.3 λ) cm² —
leading-edge die area *grows* as the feature size shrinks.
"""

import math

import numpy as np

from conftest import emit_figure
from repro.analysis import fig3_die_size
from repro.technology import die_area_trend_cm2


def test_fig3_die_size_trend(benchmark):
    data = benchmark(fig3_die_size)
    emit_figure(data)

    area = data.series["die area"]
    assert np.all(np.diff(area) < 0)  # larger dies at smaller lambda
    # Exact fit check at the generations the paper discusses.
    for lam in (0.25, 0.5, 0.8, 1.0):
        assert die_area_trend_cm2(lam) == 16.5 * math.exp(-5.3 * lam)
    # A 1 cm^2 die — the eq.-(9) yield reference — is crossed near 0.53 um.
    lam_at_1cm2 = math.log(16.5) / 5.3
    assert 0.5 < lam_at_1cm2 < 0.56
