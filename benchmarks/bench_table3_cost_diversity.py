"""Table 3 — cost per transistor across 17 product-manufacturing scenarios.

The paper's quantitative centerpiece: the same eq.-(1)+(3)+(4) model fed
per-product parameters spans 0.93 to 240 micro-dollars per transistor.
The bench regenerates every row, prints model-vs-paper side by side, and
asserts the agreement band recorded in EXPERIMENTS.md.
"""

import math

from conftest import emit, emit_table
from repro.analysis import table3
from repro.core import evaluate_catalog
from repro.core.diversity import agreement_statistics


def test_table3_cost_per_transistor(benchmark):
    data = benchmark(table3)
    emit_table(data)

    results = evaluate_catalog()
    stats = agreement_statistics(results)
    emit("Table 3 agreement statistics",
         "\n".join(f"  {k} = {v:.4g}" for k, v in stats.items()))

    # Agreement band (non-reconstructed rows): mean |log err| < 0.30,
    # every row within 2x.
    assert stats["mean_abs_log_error"] < 0.30
    assert stats["max_abs_log_error"] < math.log(2.0)

    # Diversity: modeled spread within 2x of the published 258x spread.
    assert stats["modeled_spread"] > 100.0

    # Winner structure: memories cheapest, PLD dearest.
    ordered = sorted(results, key=lambda r: r.ctr_microdollars)
    assert ordered[0].spec.product_class.has_redundancy
    assert ordered[-1].spec.product_class.name == "PLD"
