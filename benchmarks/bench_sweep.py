"""Mega-sweep throughput — the tiled shm pool vs one in-process pass.

The acceptance claim of the tiled sweep engine
(:mod:`repro.batch.sweep`): a **≥ 10⁶-point** (λ, N_tr) Fig.-8
landscape evaluated through :class:`TiledSweepRunner` on the
shared-memory process pool is

1. **bitwise identical** to the single-process full-grid
   :func:`~repro.batch.engine.transistor_cost_batch` reference
   (asserted always, any CPU count), and
2. at least **2x** faster at 4 workers (asserted only at ≥ 4 CPUs and
   outside ``REPRO_BENCH_PARITY_ONLY=1``, which also shrinks the grid
   to a smoke size — the PR-5 self-skip convention; the record then
   carries ``speedup_asserted: false``).

A second leg drives the checkpoint path: a sweep interrupted halfway
and resumed must also land bitwise on the reference, with the
expected split of computed vs resumed tiles.

Records land in ``benchmarks/BENCH_sweep.json`` (one JSON object, one
key per claim) and the shared ``BENCH_repro.json``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from conftest import emit, emit_json
from repro.batch.engine import transistor_cost_batch
from repro.batch.sweep import FabCostSweep, SweepPlan, TiledSweepRunner

PARITY_ONLY = bool(os.environ.get("REPRO_BENCH_PARITY_ONLY"))

# 1000 x 1000 = 10^6 grid cells in the full run; the parity-only leg
# keeps the tiling non-trivial (many tiles) at smoke cost.
N_COUNTS = 120 if PARITY_ONLY else 1000
N_LAMS = 100 if PARITY_ONLY else 1000
TILE_SIZE = 4_000 if PARITY_ONLY else 50_000
POOL_WORKERS = 4
MIN_SPEEDUP = 2.0
REPS = 2

_BENCH_SWEEP_JSON = Path(__file__).resolve().parent / "BENCH_sweep.json"


def _axes():
    counts = np.geomspace(1e5, 1e7, N_COUNTS)
    lams = np.linspace(0.3, 2.0, N_LAMS)
    return counts, lams


def _single_process_pass(counts, lams):
    # The baseline the pool must beat: one uncached full-grid batch
    # call (caching would turn the timed reps into memcpy).
    best = math.inf
    result = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = transistor_cost_batch(counts[:, None], lams[None, :],
                                       cache=None)
        best = min(best, time.perf_counter() - t0)
    return best, result.cost_per_transistor_dollars


def _update_bench_json(key, record):
    """Read-modify-write one claim's record into BENCH_sweep.json."""
    data = {}
    if _BENCH_SWEEP_JSON.exists():
        try:
            data = json.loads(_BENCH_SWEEP_JSON.read_text())
        except (OSError, ValueError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[key] = record
    _BENCH_SWEEP_JSON.write_text(json.dumps(data, indent=2) + "\n")


def test_mega_sweep_shm_pool_vs_single_process():
    counts, lams = _axes()
    plan = SweepPlan.for_grid(counts.size, lams.size, TILE_SIZE)

    t_single, want = _single_process_pass(counts, lams)

    t_pool = math.inf
    stats = None
    with TiledSweepRunner(backend="process", workers=POOL_WORKERS,
                          tile_size=TILE_SIZE, cache=None) as runner:
        spec = FabCostSweep()
        runner.run(spec, counts, lams)  # warm-up (pool fork, imports)
        for _ in range(REPS):
            t0 = time.perf_counter()
            result = runner.run(spec, counts, lams)
            t_pool = min(t_pool, time.perf_counter() - t0)
        stats = result.stats

    mismatches = int(np.count_nonzero(result.values != want))
    speedup = t_single / t_pool
    cpus = os.cpu_count() or 1
    assert_speedup = cpus >= POOL_WORKERS and not PARITY_ONLY

    record = {
        "kind": "mega_sweep",
        "points": int(counts.size * lams.size),
        "shape": [int(counts.size), int(lams.size)],
        "tile_size": TILE_SIZE,
        "tile_shape": [plan.tile_rows, plan.tile_cols],
        "n_tiles": plan.n_tiles,
        "workers": POOL_WORKERS,
        "cpus": cpus,
        "reps": REPS,
        "parity_only": PARITY_ONLY,
        "single_process_s": t_single,
        "shm_pool_s": t_pool,
        "speedup_pool_over_single": speedup,
        "min_speedup_required": MIN_SPEEDUP,
        "speedup_asserted": assert_speedup,
        "bitwise_mismatches": mismatches,
        "tile_stats": stats,
    }
    _update_bench_json("mega_sweep", record)
    emit_json(record)
    if assert_speedup:
        gate = "asserted"
    elif PARITY_ONLY:
        gate = "recorded only: parity-only leg"
    else:
        gate = f"recorded only: {cpus} CPU(s)"
    emit("Mega-sweep — shared-memory tiled pool vs single process",
         f"landscape     : {counts.size} x {lams.size} = "
         f"{counts.size * lams.size:,} (N_tr, lambda) cells, "
         f"{plan.n_tiles} tiles of {plan.tile_rows}x{plan.tile_cols}\n"
         f"single process: {t_single * 1e3:8.1f} ms (best of {REPS})\n"
         f"shm pool      : {t_pool * 1e3:8.1f} ms  "
         f"-> {speedup:5.2f}x at {POOL_WORKERS} workers\n"
         f"contract      : >= {MIN_SPEEDUP}x at >= {POOL_WORKERS} CPUs "
         f"({gate})\n"
         f"mismatches    : {mismatches}")

    assert mismatches == 0, \
        f"{mismatches} pool-swept cells differ from the single-process " \
        f"reference"
    if assert_speedup:
        assert speedup >= MIN_SPEEDUP, \
            f"shm pool is only {speedup:.2f}x over single-process " \
            f"(single {t_single * 1e3:.1f} ms, pool " \
            f"{t_pool * 1e3:.1f} ms); the mega-sweep contract requires " \
            f"{MIN_SPEEDUP}x at {POOL_WORKERS} workers"


def test_mega_sweep_checkpoint_resume_is_bitwise(tmp_path):
    counts, lams = _axes()
    _, want = _single_process_pass(counts, lams)
    plan = SweepPlan.for_grid(counts.size, lams.size, TILE_SIZE)
    stop_after = max(1, plan.n_tiles // 2)

    class _Interrupted(Exception):
        pass

    def interrupt(tile, done, total):
        if done >= stop_after:
            raise _Interrupted

    spec = FabCostSweep()
    ckpt = tmp_path / "sweep-run"
    try:
        TiledSweepRunner(tile_size=TILE_SIZE, cache=None,
                         checkpoint_dir=ckpt).run(
            spec, counts, lams, on_tile=interrupt)
        raise AssertionError("sweep was not interrupted")
    except _Interrupted:
        pass

    result = TiledSweepRunner(tile_size=TILE_SIZE, cache=None,
                              checkpoint_dir=ckpt, resume=True).run(
        spec, counts, lams)
    mismatches = int(np.count_nonzero(result.values != want))

    record = {
        "kind": "mega_sweep_resume",
        "points": int(counts.size * lams.size),
        "n_tiles": plan.n_tiles,
        "interrupted_after": stop_after,
        "tiles_resumed": result.stats["tiles_resumed"],
        "tiles_computed": result.stats["tiles_computed"],
        "bitwise_mismatches": mismatches,
    }
    _update_bench_json("resume", record)
    emit_json(record)
    emit("Mega-sweep — kill-and-resume bitwise parity",
         f"tiles         : {plan.n_tiles} total, interrupted after "
         f"{stop_after}\n"
         f"resumed run   : {result.stats['tiles_resumed']} loaded from "
         f"checkpoint, {result.stats['tiles_computed']} computed\n"
         f"mismatches    : {mismatches}")

    assert result.stats["tiles_resumed"] == stop_after
    assert result.stats["tiles_computed"] == plan.n_tiles - stop_after
    assert mismatches == 0, \
        f"{mismatches} resumed cells differ from the uninterrupted " \
        f"reference"
