"""The network tier — open-loop HTTP load with bitwise parity.

The acceptance claim: **>= 1,000 concurrent open-loop requests**
(mixed single-``/v1/cost`` and ``/v1/cost/bulk`` bodies, plus a slice
of ``/v1/optimize``) driven by :mod:`repro.loadgen` against a live
``repro.serve.http`` server produce **zero bitwise mismatches** versus
the scalar reference, and their p50/p95/p99 end-to-end latency plus
error budget (429s, timeouts, connection errors) land in
``benchmarks/BENCH_http.json``.  The traffic is recorded over HTTP and
then replayed through ``python -m repro replay`` — parity exit 0 —
closing the live-traffic → replay → tuning loop across the network
boundary.

Parity always asserts.  The throughput/latency SLO assert (achieved
rate keeps up with the offered rate and the error budget stays empty)
self-skips below 4 CPUs, like the other benches, and
``REPRO_BENCH_PARITY_ONLY=1`` lowers the offered rate to a smoke pace
for CI — the request *count* stays >= 1,000 either way so the parity
surface never shrinks.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import emit, emit_json
from repro.loadgen import build_workload, run_load
from repro.serve.http import ServerThread

PARITY_ONLY = bool(os.environ.get("REPRO_BENCH_PARITY_ONLY"))

N_REQUESTS = 1_000
BULK_SIZE = 16
CONNECTIONS = 16
OFFERED_RPS = 400.0 if PARITY_ONLY else 2_000.0
MIN_THROUGHPUT_FRACTION = 0.5
SLO_CPUS = 4

_BENCH_HTTP_JSON = Path(__file__).resolve().parent / "BENCH_http.json"


def _update_bench_json(key, record):
    """Read-modify-write one claim's record into BENCH_http.json."""
    data = {}
    if _BENCH_HTTP_JSON.exists():
        try:
            data = json.loads(_BENCH_HTTP_JSON.read_text())
        except (OSError, ValueError):
            data = {}
    if not isinstance(data, dict) or "kind" in data:
        data = {}
    data[key] = record
    _BENCH_HTTP_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _flush_stats(flushes) -> dict:
    if not flushes:
        return {"flushes": 0}
    sizes = sorted(f.requests for f in flushes)
    return {
        "flushes": len(sizes),
        "total_queries": sum(sizes),
        "mean_queries_per_flush": sum(sizes) / len(sizes),
        "max_queries_per_flush": sizes[-1],
    }


def _replay_recorded_log(log: Path, run_dir: Path) -> int:
    import repro
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "replay", "--log", str(log),
         "--run-dir", str(run_dir), "--configs", "thread",
         "--workers", "1"],
        env=env, capture_output=True, text=True, timeout=600)
    if result.returncode != 0:
        emit("HTTP replay FAILED", result.stdout + "\n" + result.stderr)
    return result.returncode


def test_http_open_loop_parity_latency_and_replay(tmp_path):
    log = tmp_path / "http-traffic.jsonl"
    specs = build_workload(N_REQUESTS, bulk_size=BULK_SIZE, seed=9)
    with ServerThread(record=log, flush_history=65536, cache=None) as srv:
        result = run_load("127.0.0.1", srv.port, specs,
                          rps=OFFERED_RPS, connections=CONNECTIONS,
                          timeout_s=120.0, seed=9)
        srv.drain()  # flush + close the recorder before replaying
        flush_stats = _flush_stats(srv.server.service
                                   .scheduler.recent_flushes)

    # Parity: always asserted, every served cost, bitwise.
    assert result.mismatches == 0, (
        f"{result.mismatches} of {result.verified_costs} HTTP-served "
        f"costs were not bitwise equal to the scalar reference")
    assert result.verified_costs >= N_REQUESTS  # bulks verify many each

    # The recorded-over-HTTP log replays cleanly: parity exit 0.
    replay_rc = _replay_recorded_log(log, tmp_path / "replay-run")
    assert replay_rc == 0, "python -m repro replay exited non-zero"

    cpus = os.cpu_count() or 1
    slo_asserted = cpus >= SLO_CPUS and not PARITY_ONLY
    budget = result.error_budget
    record = {
        "kind": "http_open_loop",
        "requests": N_REQUESTS,
        "bulk_size": BULK_SIZE,
        "connections": CONNECTIONS,
        "offered_rps": result.offered_rps,
        "achieved_rps": result.achieved_rps,
        "duration_s": result.duration_s,
        "latency_ms": result.latency_ms,
        "status_counts": result.status_counts,
        "error_budget": budget,
        "verified_costs": result.verified_costs,
        "bitwise_mismatches": result.mismatches,
        "flush_coalescing": flush_stats,
        "replay_exit_code": replay_rc,
        "cpus": cpus,
        "parity_only": PARITY_ONLY,
        "slo_asserted": slo_asserted,
        "min_throughput_fraction": MIN_THROUGHPUT_FRACTION,
    }
    _update_bench_json("open_loop", record)
    emit_json(record)

    lat = result.latency_ms
    gate = "asserted" if slo_asserted else (
        "parity-only run" if PARITY_ONLY else f"skipped (< {SLO_CPUS} CPUs)")
    emit("HTTP open-loop load — repro.loadgen vs live repro.serve.http",
         f"workload      : {N_REQUESTS} requests "
         f"(mixed cost/bulk/optimize, bulk={BULK_SIZE}, "
         f"{CONNECTIONS} connections)\n"
         f"offered       : {result.offered_rps:8.1f} rps (Poisson, "
         f"open-loop)\n"
         f"achieved      : {result.achieved_rps:8.1f} rps over "
         f"{result.duration_s:.2f} s\n"
         f"latency       : p50 {lat['p50']:7.2f} ms  "
         f"p95 {lat['p95']:7.2f} ms  p99 {lat['p99']:7.2f} ms  "
         f"max {lat['max']:7.2f} ms\n"
         f"error budget  : {budget}\n"
         f"coalescing    : {flush_stats}\n"
         f"parity        : {result.verified_costs} costs verified, "
         f"{result.mismatches} bitwise mismatches; "
         f"recorded log replayed with exit {replay_rc}\n"
         f"SLO gate      : {gate}")

    if slo_asserted:
        assert result.achieved_rps \
            >= MIN_THROUGHPUT_FRACTION * result.offered_rps, (
                f"achieved {result.achieved_rps:.0f} rps fell below "
                f"{MIN_THROUGHPUT_FRACTION:.0%} of the offered "
                f"{result.offered_rps:.0f} rps")
        assert budget["timeouts"] == 0 and budget["connection_errors"] == 0
