"""Fig. 5 — defect size distribution.

Paper claims: density peaks at R₀ and decays as 1/R^p (p ≈ 4–5);
consequence: "the decrease in the minimum feature size rapidly
increases the number of defects which may cause faults."
"""

import numpy as np

from conftest import emit_figure
from repro.analysis import fig5_defect_distribution
from repro.yieldsim import DefectSizeDistribution


def test_fig5_distribution_and_critical_fraction(benchmark):
    data = benchmark(fig5_defect_distribution)
    emit_figure(data)

    pdf = data.series["pdf f(R)"]
    surv = data.series["P(R > r) (critical fraction)"]
    peak_idx = int(np.argmax(pdf))
    # Peak at R0 = 0.2 um, interior to the sweep.
    assert 0 < peak_idx < len(pdf) - 1
    assert data.x[peak_idx] == np.float64(data.x[peak_idx])
    assert abs(data.x[peak_idx] - 0.2) < 0.05

    # Power-law tail: pdf(2r)/pdf(r) = 2^-p deep in the tail.
    dist = DefectSizeDistribution(r0_um=0.2, p=4.07)
    ratio = float(dist.pdf(1.6)) / float(dist.pdf(0.8))
    assert abs(ratio - 2.0 ** -4.07) < 1e-9

    # The paper's punchline: halving the kill radius multiplies the
    # killer population severalfold.
    scale = dist.fault_density_scale(0.25, 0.5)
    assert scale > 3.0
    assert np.all(np.diff(surv) <= 1e-12)
