"""Compound yield models — model selection, cross-validation, kernels.

Three acceptance claims live here:

1. **Generator recovery** — all eight closed-form yield laws are fitted
   by maximum likelihood to lots sampled from a two-level clustered
   defect process, and the AIC/BIC ranking puts the generating
   compound (hierarchical) model first, with fitted parameters near
   the truth.
2. **Cross-validation** — every closed-form law in the suite agrees
   with its generating Monte Carlo configuration within the stated
   tolerance (pooled binomial + between-lot error bars).
3. **Batched kernels** — the vectorized compound-family kernels are
   bitwise identical to the scalar reference and faster than a scalar
   loop; ``REPRO_BENCH_PARITY_ONLY=1`` shrinks the arrays and skips
   the speedup assert (the parity asserts always run).

Records land in ``benchmarks/BENCH_yield.json`` (one JSON object, one
key per claim) and the shared ``BENCH_repro.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import emit, emit_json
from repro.batch import cross_validate_model_suite
from repro.batch.engine import yield_from_expectation_batch
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    SpotDefectSimulator,
    fit_yield_models,
)

PARITY_ONLY = bool(os.environ.get("REPRO_BENCH_PARITY_ONLY"))

WAFER = Wafer(radius_cm=5.0)
DIE = Die(1.0, 1.0)

# The generating process for the selection claim: density and shapes
# chosen away from the Seeds/NB degeneracy (alpha = 1) so the ranking
# is a real discrimination task, and with enough lots that the
# three-parameter law earns its two extra parameters.
TRUE_DENSITY = 0.9
TRUE_WAFER_ALPHA = 1.2
TRUE_LOT_ALPHA = 1.5
N_LOTS, N_WAFERS, FIT_SEED = 12, 6, 2024

SUITE_LOTS, SUITE_WAFERS, SUITE_TOL = 60, 8, 0.03
KERNEL_POINTS = 20_000 if PARITY_ONLY else 100_000
MIN_KERNEL_SPEEDUP = 1.3
KERNEL_REPS = 3

_BENCH_YIELD_JSON = Path(__file__).resolve().parent / "BENCH_yield.json"


def _update_bench_json(key, record):
    """Read-modify-write one claim's record into BENCH_yield.json."""
    data = {}
    if _BENCH_YIELD_JSON.exists():
        try:
            data = json.loads(_BENCH_YIELD_JSON.read_text())
        except (OSError, ValueError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[key] = record
    _BENCH_YIELD_JSON.write_text(json.dumps(data, indent=2) + "\n")


def test_model_selection_recovers_generating_model():
    sim = SpotDefectSimulator(WAFER, DIE, TRUE_DENSITY,
                              clustering_alpha=TRUE_WAFER_ALPHA,
                              lot_alpha=TRUE_LOT_ALPHA)
    lots = sim.simulate_lots(N_LOTS, N_WAFERS, seed=FIT_SEED)
    t0 = time.perf_counter()
    report = fit_yield_models(lots, DIE.area_cm2)
    fit_seconds = time.perf_counter() - t0

    assert len(report.laws) >= 5
    aics = [fit.aic for fit in report.laws]
    assert aics == sorted(aics)
    # The generating compound model must win the information
    # criterion, and its fitted parameters must be near the truth.
    assert report.best.name == "hierarchical"
    params = report.best.params
    assert abs(params["defect_density_per_cm2"] - TRUE_DENSITY) < 0.3
    assert abs(params["wafer_alpha"] - TRUE_WAFER_ALPHA) < 0.5
    assert abs(params["lot_alpha"] - TRUE_LOT_ALPHA) < 0.7
    # NB == CPG algebraically: exact likelihood tie.
    nb = report.law("negative_binomial")
    cpg = report.law("compound_poisson_gamma")
    assert nb.log_likelihood == cpg.log_likelihood

    lines = [f"{rank:>2}  {name:<24} k={k}  AIC={aic:10.2f}  "
             f"dAIC={daic:8.2f}"
             for rank, name, k, _ll, aic, _bic, daic
             in report.table_rows()]
    emit("yield-model selection — hierarchical generator recovered",
         f"truth: D={TRUE_DENSITY}/cm^2, wafer_alpha={TRUE_WAFER_ALPHA},"
         f" lot_alpha={TRUE_LOT_ALPHA}; {N_LOTS} lots x {N_WAFERS} wafers"
         f" ({report.n_dies} dies, {report.n_defects} defects);"
         f" fit in {fit_seconds:.2f}s\n" + "\n".join(lines))
    record = {
        "kind": "model_selection",
        "truth": {"defect_density_per_cm2": TRUE_DENSITY,
                  "wafer_alpha": TRUE_WAFER_ALPHA,
                  "lot_alpha": TRUE_LOT_ALPHA,
                  "n_lots": N_LOTS, "n_wafers": N_WAFERS,
                  "seed": FIT_SEED},
        "fit_seconds": fit_seconds,
        "report": report.to_dict(),
    }
    emit_json(record)
    _update_bench_json("model_selection", record)


def test_crossval_suite_within_tolerance():
    rows = cross_validate_model_suite(
        WAFER, DIE, 0.8, wafer_alpha=1.5, lot_alpha=2.0,
        n_wafers=SUITE_WAFERS, n_lots=SUITE_LOTS, seed=5)
    assert len(rows) == 5
    for row in rows:
        assert row.abs_error < SUITE_TOL, \
            f"{row.name}: |MC - closed| = {row.abs_error:.4f}"

    lines = [f"{row.name:<24} closed={row.closed_form_yield:.4f}  "
             f"mc={row.mc_yield:.4f}  err={row.abs_error:.4f}  "
             f"n={row.n_dies}"
             for row in rows]
    emit("yield-model cross-validation — every law vs its generating MC",
         f"tolerance {SUITE_TOL} absolute; {SUITE_LOTS} lots x "
         f"{SUITE_WAFERS} wafers per sampling leg\n" + "\n".join(lines))
    record = {
        "kind": "crossval_suite",
        "tolerance": SUITE_TOL,
        "n_lots": SUITE_LOTS,
        "n_wafers": SUITE_WAFERS,
        "rows": [{"name": row.name,
                  "closed_form_yield": row.closed_form_yield,
                  "mc_yield": row.mc_yield,
                  "abs_error": row.abs_error,
                  "n_dies": row.n_dies} for row in rows],
    }
    emit_json(record)
    _update_bench_json("crossval_suite", record)


def test_batched_kernels_bitwise_and_fast():
    m = np.linspace(0.0, 8.0, KERNEL_POINTS)
    kernels = {}
    for model in (CompoundPoissonGamma(alpha=1.5),
                  HierarchicalYieldModel(lot_alpha=2.0, wafer_alpha=1.5)):
        name = type(model).__name__
        t_batch = min(_timed(yield_from_expectation_batch, model, m)
                      for _ in range(KERNEL_REPS))
        got = yield_from_expectation_batch(model, m)
        t0 = time.perf_counter()
        want = np.array([model.yield_from_expectation(float(v))
                         for v in m], dtype=np.float64)
        t_scalar = time.perf_counter() - t0
        # The headline contract: bitwise, not approximately equal.
        assert (got == want).all(), f"{name} batched != scalar"
        speedup = t_scalar / t_batch
        if not PARITY_ONLY:
            assert speedup >= MIN_KERNEL_SPEEDUP, \
                f"{name}: {speedup:.2f}x < {MIN_KERNEL_SPEEDUP}x"
        kernels[name] = {
            "points": KERNEL_POINTS,
            "batch_best_s": t_batch,
            "scalar_s": t_scalar,
            "speedup": speedup,
            "bitwise_equal": True,
        }

    lines = [f"{name:<24} batch={rec['batch_best_s']:.4f}s  "
             f"scalar={rec['scalar_s']:.4f}s  "
             f"speedup={rec['speedup']:.1f}x  bitwise=yes"
             for name, rec in kernels.items()]
    emit("compound-family batched kernels — bitwise parity + throughput",
         f"{KERNEL_POINTS} expectation points"
         + (" (parity-only smoke)" if PARITY_ONLY else "")
         + "\n" + "\n".join(lines))
    record = {"kind": "kernel_parity", "parity_only": PARITY_ONLY,
              "kernels": kernels}
    emit_json(record)
    _update_bench_json("kernel_parity", record)


def _timed(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
