"""Chiplet crossover grid — batched kernel vs. the scalar loop.

The acceptance claim of the chiplet hot path
(:func:`repro.batch.engine.chiplet_cost_batch`): a **≥ 10⁵-point**
(k, N_tr) monolithic-vs-chiplet crossover grid evaluated in one
batched call is

1. **bitwise identical** to the scalar
   :meth:`repro.system.chiplet.ChipletCostModel.system_cost` loop —
   every field, every cell, zero mismatches (asserted always, any CPU
   count), and
2. at least **10x** faster than that loop on a single CPU (asserted
   outside ``REPRO_BENCH_PARITY_ONLY=1``, which shrinks the grid to a
   smoke size; the record then carries ``speedup_asserted: false``).

A second leg drives the same grid through
:class:`~repro.batch.sweep.ChipletCrossoverSweep` on the
shared-memory process pool: bitwise parity with the direct kernel is
asserted always, the pool speedup only at ≥ 4 CPUs (the PR-5
self-skip convention).

Records land in ``benchmarks/BENCH_chiplet.json`` (one JSON object,
one key per claim) and the shared ``BENCH_repro.json``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from conftest import emit, emit_json
from repro.batch.engine import chiplet_cost_batch
from repro.batch.sweep import ChipletCrossoverSweep, TiledSweepRunner
from repro.system.chiplet import ChipletCostModel

PARITY_ONLY = bool(os.environ.get("REPRO_BENCH_PARITY_ONLY"))

# 8 x 15,000 = 120,000 grid cells in the full run — past the 10^5
# floor of the claim; the parity-only leg stays a smoke size.
K_MAX = 6 if PARITY_ONLY else 8
N_BUDGETS = 600 if PARITY_ONLY else 15_000
FEATURE_SIZE_UM = 0.8
MIN_SPEEDUP = 10.0
POOL_WORKERS = 4
POOL_MIN_SPEEDUP = 1.3
TILE_SIZE = 1_000 if PARITY_ONLY else 20_000
REPS = 2

_BENCH_CHIPLET_JSON = Path(__file__).resolve().parent / \
    "BENCH_chiplet.json"

#: Batch-result array field for each scalar-breakdown attribute.
_PARITY_FIELDS = (
    "transistors_per_chiplet", "chiplet_area_cm2", "wafer_cost_dollars",
    "dies_per_wafer", "die_yield", "assembly_yield", "effective_yield",
    "packaging_cost_dollars", "silicon_cost_per_transistor_dollars",
    "overhead_cost_per_transistor_dollars", "cost_per_transistor_dollars",
)


def _axes():
    ks = np.arange(1, K_MAX + 1, dtype=float)
    counts = np.geomspace(1e5, 1e9, N_BUDGETS)
    return ks, counts


def _update_bench_json(key, record):
    """Read-modify-write one claim's record into BENCH_chiplet.json."""
    data = {}
    if _BENCH_CHIPLET_JSON.exists():
        try:
            data = json.loads(_BENCH_CHIPLET_JSON.read_text())
        except (OSError, ValueError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[key] = record
    _BENCH_CHIPLET_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _scalar_grid(model, ks, counts):
    """The cell-by-cell reference loop: every breakdown field."""
    grids = {name: np.empty((ks.size, counts.size))
             for name in _PARITY_FIELDS}
    feasible = np.empty((ks.size, counts.size), dtype=bool)
    for i, k in enumerate(ks):
        for j, n in enumerate(counts):
            b = model.system_cost(int(k), float(n), FEATURE_SIZE_UM)
            for name in _PARITY_FIELDS:
                grids[name][i, j] = float(getattr(b, name))
            feasible[i, j] = b.feasible
    return grids, feasible


def _count_mismatches(result, grids, feasible):
    mismatches = 0
    for name in _PARITY_FIELDS:
        got = np.asarray(getattr(result, name), dtype=float)
        mismatches += int(np.count_nonzero(got != grids[name]))
    mismatches += int(np.count_nonzero(
        np.asarray(result.feasible) != feasible))
    return mismatches


def test_chiplet_batch_vs_scalar_loop():
    model = ChipletCostModel()
    ks, counts = _axes()
    points = int(ks.size * counts.size)

    t0 = time.perf_counter()
    grids, feasible = _scalar_grid(model, ks, counts)
    t_scalar = time.perf_counter() - t0

    chiplet_cost_batch(counts[None, :1], FEATURE_SIZE_UM, ks[:1, None],
                       model, cache=None)  # warm-up (imports, caches)
    t_batch = math.inf
    result = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = chiplet_cost_batch(counts[None, :], FEATURE_SIZE_UM,
                                    ks[:, None], model, cache=None)
        t_batch = min(t_batch, time.perf_counter() - t0)

    mismatches = _count_mismatches(result, grids, feasible)
    speedup = t_scalar / t_batch
    assert_speedup = not PARITY_ONLY

    record = {
        "kind": "chiplet_batch",
        "points": points,
        "shape": [int(ks.size), int(counts.size)],
        "feature_size_um": FEATURE_SIZE_UM,
        "reps": REPS,
        "parity_only": PARITY_ONLY,
        "scalar_loop_s": t_scalar,
        "batch_s": t_batch,
        "speedup_batch_over_scalar": speedup,
        "min_speedup_required": MIN_SPEEDUP,
        "speedup_asserted": assert_speedup,
        "bitwise_mismatches": mismatches,
        "fields_compared": len(_PARITY_FIELDS) + 1,
    }
    _update_bench_json("chiplet_batch", record)
    emit_json(record)
    gate = "asserted" if assert_speedup \
        else "recorded only: parity-only leg"
    emit("Chiplet crossover — batched kernel vs scalar loop",
         f"grid          : {ks.size} k-values x {counts.size:,} budgets "
         f"= {points:,} cells at lambda = {FEATURE_SIZE_UM} um\n"
         f"scalar loop   : {t_scalar * 1e3:9.1f} ms "
         f"({len(_PARITY_FIELDS) + 1} fields per cell)\n"
         f"batched       : {t_batch * 1e3:9.1f} ms (best of {REPS}) "
         f"-> {speedup:5.1f}x\n"
         f"contract      : >= {MIN_SPEEDUP}x on 1 CPU ({gate})\n"
         f"mismatches    : {mismatches}")

    assert mismatches == 0, \
        f"{mismatches} batched cells differ bitwise from the scalar loop"
    if assert_speedup:
        assert speedup >= MIN_SPEEDUP, \
            f"batched kernel is only {speedup:.1f}x over the scalar " \
            f"loop (scalar {t_scalar * 1e3:.1f} ms, batch " \
            f"{t_batch * 1e3:.1f} ms); the chiplet contract requires " \
            f"{MIN_SPEEDUP}x on >= 1e5 points"


def test_chiplet_crossover_sweep_on_the_pool():
    model = ChipletCostModel()
    ks, counts = _axes()
    spec = ChipletCrossoverSweep(feature_size_um=FEATURE_SIZE_UM,
                                 model=model)

    want = np.empty((ks.size, counts.size))
    spec.evaluate_tile(ks, counts, want, cache=None)

    t_single = math.inf
    for _ in range(REPS):
        out = np.empty_like(want)
        t0 = time.perf_counter()
        spec.evaluate_tile(ks, counts, out, cache=None)
        t_single = min(t_single, time.perf_counter() - t0)

    t_pool = math.inf
    with TiledSweepRunner(backend="process", workers=POOL_WORKERS,
                          tile_size=TILE_SIZE, cache=None) as runner:
        runner.run(spec, ks, counts)  # warm-up (pool fork, imports)
        for _ in range(REPS):
            t0 = time.perf_counter()
            result = runner.run(spec, ks, counts)
            t_pool = min(t_pool, time.perf_counter() - t0)

    mismatches = int(np.count_nonzero(result.values != want))
    speedup = t_single / t_pool
    cpus = os.cpu_count() or 1
    assert_speedup = cpus >= POOL_WORKERS and not PARITY_ONLY

    # The crossover budgets the swept grid implies, for the record.
    finite = np.isfinite(result.values)
    crossovers = {}
    mono = result.values[0]
    for i in range(1, result.values.shape[0]):
        wins = finite[i] & (result.values[i] < mono)
        crossovers[f"k={int(ks[i])}"] = \
            float(counts[int(np.argmax(wins))]) if wins.any() else None

    record = {
        "kind": "chiplet_sweep_pool",
        "points": int(ks.size * counts.size),
        "tile_size": TILE_SIZE,
        "workers": POOL_WORKERS,
        "cpus": cpus,
        "reps": REPS,
        "parity_only": PARITY_ONLY,
        "single_process_s": t_single,
        "shm_pool_s": t_pool,
        "speedup_pool_over_single": speedup,
        "min_speedup_required": POOL_MIN_SPEEDUP,
        "speedup_asserted": assert_speedup,
        "bitwise_mismatches": mismatches,
        "crossover_budgets": crossovers,
        "tile_stats": result.stats,
    }
    _update_bench_json("chiplet_sweep_pool", record)
    emit_json(record)
    if assert_speedup:
        gate = "asserted"
    elif PARITY_ONLY:
        gate = "recorded only: parity-only leg"
    else:
        gate = f"recorded only: {cpus} CPU(s)"
    emit("Chiplet crossover — shm pool sweep vs single process",
         f"grid          : {ks.size} x {counts.size:,} cells, tile size "
         f"{TILE_SIZE:,}\n"
         f"single process: {t_single * 1e3:9.1f} ms (best of {REPS})\n"
         f"shm pool      : {t_pool * 1e3:9.1f} ms  "
         f"-> {speedup:5.2f}x at {POOL_WORKERS} workers\n"
         f"contract      : >= {POOL_MIN_SPEEDUP}x at >= {POOL_WORKERS} "
         f"CPUs ({gate})\n"
         f"crossovers    : {crossovers}\n"
         f"mismatches    : {mismatches}")

    assert mismatches == 0, \
        f"{mismatches} pool-swept cells differ from the direct kernel"
    if assert_speedup:
        assert speedup >= POOL_MIN_SPEEDUP, \
            f"shm pool is only {speedup:.2f}x over single-process; the " \
            f"chiplet sweep contract requires {POOL_MIN_SPEEDUP}x at " \
            f"{POOL_WORKERS} workers"
