"""Extension bench — recovering the [26]-style fitted constants.

The paper's Fig.-8 fab is characterized by constants "extracted from a
real manufacturing operation" [26].  This bench performs the same
extraction on our own simulator: generate wafer-map lots with known
(D, α), estimate back, and report the recovery error — the estimator
validation a fab methodology paper would publish.
"""

import math

import numpy as np

from conftest import emit
from repro.analysis import ascii_table
from repro.geometry import Die, Wafer
from repro.yieldsim import SpotDefectSimulator, clustering_detected, fit_lot

WAFER = Wafer(radius_cm=7.5)
DIE = Die.square(1.0)

CASES = (
    ("clean Poisson", 0.4, None),
    ("dirty Poisson", 2.0, None),
    ("clustered a=1", 1.0, 1.0),
    ("clustered a=3", 1.0, 3.0),
)


def _compute():
    rng = np.random.default_rng(31)
    rows = []
    for name, density, alpha in CASES:
        sim = SpotDefectSimulator(WAFER, DIE,
                                  defect_density_per_cm2=density,
                                  clustering_alpha=alpha)
        lot = sim.simulate_lot(60, rng)
        report = fit_lot(lot, DIE.area_cm2)
        rows.append((name, density,
                     report.density_mle_per_cm2,
                     "inf" if alpha is None else alpha,
                     "inf" if math.isinf(report.clustering_alpha)
                     else round(report.clustering_alpha, 2),
                     clustering_detected(lot)))
    return rows


def test_parameter_recovery(benchmark):
    rows = benchmark(_compute)
    emit("Extension — (D, alpha) recovery from simulated wafer maps",
         ascii_table(("case", "true D", "est D", "true alpha",
                      "est alpha", "clustering detected"), rows))

    by_name = {r[0]: r for r in rows}
    # Density recovered within 25% in every case.
    for name, true_d, est_d, *_ in rows:
        assert abs(est_d - true_d) / true_d < 0.25, name
    # Clustering verdicts correct on all four cases.
    assert not by_name["clean Poisson"][5]
    assert not by_name["dirty Poisson"][5]
    assert by_name["clustered a=1"][5]
    assert by_name["clustered a=3"][5]
    # Fitted alpha for the a=1 case lands in a sane band.
    assert 0.4 < float(by_name["clustered a=1"][4]) < 2.5
