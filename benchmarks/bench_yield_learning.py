"""Extension bench — yield learning economics (Sec. VI's "rapid yield
learning" priced out).

A DRAM-like ramp: defect density decays 5 -> 0.5 /cm^2 with tau = 6
months.  The bench prints the yield ramp, program profit, and the
dollar value of learning twice as fast — the number that justifies the
paper's call for "computer aids in rapid yield learning".
"""

import numpy as np

from conftest import emit
from repro.analysis import ascii_chart, ascii_table
from repro.yieldsim import RampEconomics, YieldLearningCurve

CURVE = YieldLearningCurve(initial_density_per_cm2=5.0,
                           mature_density_per_cm2=0.5,
                           time_constant_months=6.0)
RAMP = RampEconomics(curve=CURVE, die_area_cm2=1.0, dies_per_wafer=120,
                     wafers_per_month=2000.0, wafer_cost_dollars=800.0,
                     die_price_dollars=40.0, window_months=24.0)


def _compute():
    months = np.linspace(0.0, 24.0, 25)
    yields = np.array([CURVE.yield_at(t, 1.0) for t in months])
    return (months, yields, RAMP.program_profit(),
            RAMP.value_of_faster_learning(2.0), RAMP.breakeven_month())


def test_yield_learning_economics(benchmark):
    months, yields, profit, value_2x, breakeven = benchmark(_compute)
    emit("Extension — yield ramp and the value of faster learning",
         ascii_chart(months, {"die yield": yields},
                     x_label="months", y_label="yield")
         + "\n\n" + ascii_table(("quantity", "value"), [
             ("program profit over 24 months [$M]", profit / 1e6),
             ("value of 2x faster learning [$M]", value_2x / 1e6),
             ("breakeven month", float(breakeven)),
         ]))

    # Yield ramps from near zero to near the mature ceiling.
    assert yields[0] < 0.05
    assert yields[-1] > 0.5
    assert np.all(np.diff(yields) > 0)
    # Faster learning is worth real money and the ramp breaks even.
    assert value_2x > 0.0
    assert breakeven is not None and 0.0 < breakeven < 24.0
    assert profit > 0.0
