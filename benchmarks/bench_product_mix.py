"""Sec. III.A.d — product-mix wafer-cost penalty.

Paper claim (citing [12]): "the ratio of the cost of the wafer
fabricated with low volume multi-product fabline and high volume
mono-product environment may reach as high value as 7."  The bench
sweeps per-product volume and prints the penalty curve.
"""

from conftest import emit
from repro.analysis import ascii_table
from repro.manufacturing import mix_cost_ratio
from repro.manufacturing.equipment import ProcessFlow

FLOWS = tuple(ProcessFlow.generic_cmos(n_metal_layers=m, name=f"cmos-{m}M")
              for m in (1, 2, 3, 4))
VOLUMES = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0)


def _sweep():
    return [(v, mix_cost_ratio(FLOWS, wafers_per_week_each=v,
                               reference_volume_per_week=5000.0))
            for v in VOLUMES]


def test_product_mix_penalty(benchmark):
    rows = benchmark(_sweep)
    emit("Product-mix penalty: ownership cost per wafer, multi-product "
         "low-volume fab vs mono-product 5000 wafers/week fab",
         ascii_table(("wafers/week per product", "cost ratio"),
                     [(v, r) for v, r in rows]))

    ratios = dict(rows)
    # The paper's regime: at tens of wafers/week the penalty reaches ~7.
    assert ratios[20.0] >= 5.0
    # Monotone decay toward parity at volume.
    values = [r for _, r in rows]
    assert values == sorted(values, reverse=True)
    assert ratios[2000.0] < 2.0
    # The paper's exact "as high as 7" figure is crossed inside the sweep.
    assert max(values) >= 7.0
