"""Perf engine — batched Fig.-8 evaluation vs. the scalar reference.

The claim under test: evaluating the full cost model — eqs. (1), (3),
(4) and (7) — over a 36×36 (λ, N_tr) grid with
:func:`repro.batch.transistor_cost_batch` is at least **20× faster**
than the cell-by-cell scalar loop, while producing the *same* grid:
identical infeasibility masks, identical eq.-(4) die counts, and
finite cells matching to 1e-12 relative (the scalar path feeds libm
transcendentals where NumPy's SIMD kernels may differ by 1 ulp).

Results land in ``benchmarks/BENCH_engine.json``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from conftest import emit, emit_json
from repro.batch import BatchCache, transistor_cost_batch
from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.core.wafer_cost import WaferCostModel
from repro.geometry import Die, Wafer, dies_per_wafer_maly
from repro.yieldsim.models import scaled_poisson_yield

LAM = np.linspace(0.3, 2.0, 36)
NTR = np.geomspace(1e5, 1e7, 36)

MIN_SPEEDUP = 20.0
_BENCH_ENGINE_JSON = Path(__file__).resolve().parent / "BENCH_engine.json"


def _scalar_grid() -> tuple[np.ndarray, np.ndarray]:
    """The reference loop: cost grid plus eq.-(4) die counts."""
    costs = np.empty((NTR.size, LAM.size))
    dies = np.empty((NTR.size, LAM.size), dtype=np.int64)
    wafer = Wafer(radius_cm=FIG8_FAB.wafer_radius_cm)
    for i, n_tr in enumerate(NTR):
        for j, lam in enumerate(LAM):
            costs[i, j] = transistor_cost_full(float(n_tr), float(lam))
            die = Die.from_transistor_count(float(n_tr),
                                            FIG8_FAB.design_density,
                                            float(lam))
            dies[i, j] = dies_per_wafer_maly(wafer, die)
    return costs, dies


def _batch_grid():
    return transistor_cost_batch(NTR[:, None], LAM[None, :], cache=None)


def _time_best_of(fn, reps: int) -> float:
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_perf_engine_equivalence_and_speedup(benchmark):
    scalar_costs, scalar_dies = _scalar_grid()
    result = benchmark(_batch_grid)

    # --- equal output -------------------------------------------------
    batch_costs = result.cost_per_transistor_dollars
    scalar_mask = np.isinf(scalar_costs)
    batch_mask = np.isinf(batch_costs)
    assert np.array_equal(scalar_mask, batch_mask), \
        "infeasible cells differ between scalar and batch"
    assert np.array_equal(scalar_dies, result.dies_per_wafer), \
        "eq.-(4) die counts differ between scalar and batch"

    feasible = ~scalar_mask
    rel = np.abs(batch_costs[feasible] - scalar_costs[feasible]) \
        / scalar_costs[feasible]
    max_rel = float(rel.max()) if rel.size else 0.0
    assert max_rel < 1e-12, f"finite cells diverge: max rel {max_rel:.3e}"

    # Spot-check full bitwise parity where no transcendental intervenes:
    # dies-per-wafer already matched exactly above; yields must match
    # the scalar function to the same 1e-12 contract.
    i, j = np.argwhere(feasible)[0]
    y_scalar = scaled_poisson_yield(float(NTR[i]), FIG8_FAB.design_density,
                                    FIG8_FAB.defect_coefficient,
                                    float(LAM[j]), FIG8_FAB.size_exponent_p)
    assert math.isclose(y_scalar, float(result.yield_value[i, j]),
                        rel_tol=1e-12)
    c_w = WaferCostModel(
        reference_cost_dollars=FIG8_FAB.reference_cost_dollars,
        cost_growth_rate=FIG8_FAB.cost_growth_rate).pure_cost(float(LAM[j]))
    assert math.isclose(c_w, float(result.wafer_cost_dollars[i, j]),
                        rel_tol=1e-12)

    # --- speedup ------------------------------------------------------
    t_scalar = _time_best_of(lambda: transistor_cost_full(1e6, 1.0), 3)  # warm
    t_scalar = _time_best_of(_scalar_grid, 3)
    t_batch = _time_best_of(_batch_grid, 10)
    speedup = t_scalar / t_batch
    assert speedup >= MIN_SPEEDUP, \
        f"batch speedup {speedup:.1f}x < required {MIN_SPEEDUP}x"

    # Warm-cache replay: dies-per-wafer and wafer-cost sub-results are
    # memoized, so a repeated sweep over the same grid is cheaper still.
    cache = BatchCache()
    transistor_cost_batch(NTR[:, None], LAM[None, :], cache=cache)
    t_warm = _time_best_of(
        lambda: transistor_cost_batch(NTR[:, None], LAM[None, :],
                                      cache=cache), 10)

    record = {
        "kind": "perf_engine",
        "grid": [int(NTR.size), int(LAM.size)],
        "n_feasible": int(result.n_feasible),
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "batch_warm_cache_s": t_warm,
        "speedup": speedup,
        "warm_speedup": t_scalar / t_warm,
        "max_rel_diff_feasible": max_rel,
        "min_required_speedup": MIN_SPEEDUP,
        "cache_stats": {"hits": cache.stats.hits,
                        "misses": cache.stats.misses,
                        "entries": cache.stats.entries},
    }
    _BENCH_ENGINE_JSON.write_text(json.dumps(record, indent=2) + "\n")
    emit_json(record)
    emit("Perf engine — batched eq.-(1)/(3)/(4)/(7) grid vs scalar loop",
         f"grid               : {NTR.size} x {LAM.size} "
         f"({result.n_feasible} feasible cells)\n"
         f"scalar loop        : {t_scalar * 1e3:9.2f} ms\n"
         f"batch (cold cache) : {t_batch * 1e3:9.2f} ms   "
         f"({speedup:7.1f}x)\n"
         f"batch (warm cache) : {t_warm * 1e3:9.2f} ms   "
         f"({t_scalar / t_warm:7.1f}x)\n"
         f"max rel diff       : {max_rel:.2e} (finite cells; "
         f"masks and die counts identical)")
