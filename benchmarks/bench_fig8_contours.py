"""Fig. 8 — constant-cost contours in the (λ, N_tr) plane.

Paper claims (X = 1.4, C₀ = $500, R_w = 7.5 cm, d_d = 152, D = 1.72,
p = 4.07, fitted from a real fab [26]): the landscape has multiple
local optima; cost changes considerably with either axis; "for each die
size there is different λ_opt"; and the optimum may not be the smallest
feature size.
"""

import numpy as np

from conftest import emit, emit_figure
from repro.analysis import fig8_contours
from repro.analysis.report import render_contour_grid
from repro.core import optimal_feature_size_for_die_area


def _compute():
    return fig8_contours(n_lam=36, n_counts=36)


def test_fig8_cost_landscape(benchmark):
    data, landscape = benchmark(_compute)
    emit_figure(data)

    levels = landscape.contour_levels(8, max_decades=2.5)
    contours = render_contour_grid(
        landscape.grid(), list(levels),
        x_values=list(landscape.feature_sizes_um),
        y_values=list(landscape.transistor_counts))
    emit("Fig. 8 — constant-C_tr contours (digits = levels, . = infeasible)",
         contours)

    # Optimal lambda differs across transistor counts and is interior.
    lam_opt = data.series["lambda_opt [um]"]
    assert len(set(np.round(lam_opt, 2))) >= 3
    assert lam_opt.min() > float(landscape.feature_sizes_um.min())

    # 'The optimum solution may not call for the smallest possible
    # (and expensive) feature size': for a 1 cm^2 die the optimum is
    # far from the aggressive end of the sweep.
    lam_1cm2, _ = optimal_feature_size_for_die_area(1.0)
    assert lam_1cm2 > 0.5

    # Multiple-local-optima structure on the discretized landscape.
    assert len(landscape.local_minima()) >= 1

    # The tiled shm-pool sweep path must land bitwise on the same
    # landscape — the repro.batch.sweep parity contract, exercised on
    # the exact grid this figure ships.
    tiled = landscape.grid(workers=2, backend="process", tile_size=600)
    mismatches = int(np.count_nonzero(tiled != landscape.grid()))
    emit("Fig. 8 — tiled process-pool sweep parity",
         f"grid        : {tiled.shape[0]} x {tiled.shape[1]} cells\n"
         f"mismatches  : {mismatches} (tile_size=600, workers=2)")
    assert mismatches == 0, \
        f"{mismatches} tiled-sweep cells differ from the sequential grid"
