"""Shared helpers for the reproduction benches.

Every bench (a) times the figure/table computation via pytest-benchmark,
(b) prints the reproduced series/rows so ``bench_output.txt`` doubles
as the reproduction record, and (c) asserts the *shape* claims the
paper makes (who wins, direction of trends, rough factors).

Besides the human-readable ASCII record, every emit also appends a
machine-readable entry to ``benchmarks/BENCH_repro.json`` (a JSON list,
reset at the start of each bench session), and the pytest-benchmark
timings are appended there at session end — so CI and regression
tooling can diff numbers instead of parsing banners.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.analysis import ascii_chart, ascii_table

_BENCH_JSON = Path(__file__).resolve().parent / "BENCH_repro.json"
_session_started = False


def _load_records() -> list:
    if not _session_started or not _BENCH_JSON.exists():
        return []
    try:
        records = json.loads(_BENCH_JSON.read_text())
    except (OSError, ValueError):
        return []
    return records if isinstance(records, list) else []


def emit_json(record: dict) -> None:
    """Append one record to ``benchmarks/BENCH_repro.json``.

    The file holds a JSON list; it is truncated at the start of each
    bench session so it always reflects exactly one run.  Records are
    free-form dicts — figures emit their series, tables their rows,
    and the session-finish hook the pytest-benchmark timings.
    """
    global _session_started
    records = _load_records()
    _session_started = True
    records.append(record)
    _BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def emit(title: str, body: str) -> None:
    """Print a reproduction block with a recognizable banner."""
    bar = "=" * 74
    print(f"\n{bar}\n{title}\n{bar}\n{body}", file=sys.stderr)


def emit_figure(data) -> None:
    """Render a FigureData as an ASCII chart plus its numeric series."""
    chart = ascii_chart(data.x, data.series, log_y=data.log_y,
                        x_label=data.x_label, y_label=data.y_label)
    rows = []
    for i, x in enumerate(data.x):
        rows.append((float(x),) + tuple(float(ys[i])
                                        for ys in data.series.values()))
    table = ascii_table((data.x_label,) + tuple(data.series),
                        rows[:: max(len(rows) // 12, 1)])
    emit(f"{data.name} — {data.notes}", chart + "\n\n" + table)
    emit_json({
        "kind": "figure",
        "name": data.name,
        "notes": data.notes,
        "x_label": data.x_label,
        "y_label": data.y_label,
        "x": [float(x) for x in data.x],
        "series": {label: [float(v) for v in ys]
                   for label, ys in data.series.items()},
    })


def emit_table(data) -> None:
    """Render a TableData with its notes."""
    emit(f"{data.name} — {data.notes}",
         ascii_table(data.headers, list(data.rows)))
    emit_json({
        "kind": "table",
        "name": data.name,
        "notes": data.notes,
        "headers": list(data.headers),
        "rows": [[cell if isinstance(cell, (int, float, str, bool))
                  or cell is None else str(cell) for cell in row]
                 for row in data.rows],
    })


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Append pytest-benchmark timings to the JSON record.

    Silently a no-op under ``--benchmark-disable`` or when the
    benchmark plugin is absent — the figure/table records still land.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    timings = []
    for bench in getattr(bench_session, "benchmarks", []):
        if getattr(bench, "stats", None) is None:
            continue
        try:
            timings.append({
                "name": bench.name,
                "mean_s": bench["mean"],
                "min_s": bench["min"],
                "stddev_s": bench["stddev"],
                "rounds": bench["rounds"],
            })
        except (AttributeError, KeyError, TypeError):
            continue
    if timings:
        emit_json({"kind": "timings", "benchmarks": timings})
