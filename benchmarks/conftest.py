"""Shared helpers for the reproduction benches.

Every bench (a) times the figure/table computation via pytest-benchmark,
(b) prints the reproduced series/rows so ``bench_output.txt`` doubles
as the reproduction record, and (c) asserts the *shape* claims the
paper makes (who wins, direction of trends, rough factors).
"""

from __future__ import annotations

import sys

import pytest

from repro.analysis import ascii_chart, ascii_table


def emit(title: str, body: str) -> None:
    """Print a reproduction block with a recognizable banner."""
    bar = "=" * 74
    print(f"\n{bar}\n{title}\n{bar}\n{body}", file=sys.stderr)


def emit_figure(data) -> None:
    """Render a FigureData as an ASCII chart plus its numeric series."""
    chart = ascii_chart(data.x, data.series, log_y=data.log_y,
                        x_label=data.x_label, y_label=data.y_label)
    rows = []
    for i, x in enumerate(data.x):
        rows.append((float(x),) + tuple(float(ys[i])
                                        for ys in data.series.values()))
    table = ascii_table((data.x_label,) + tuple(data.series),
                        rows[:: max(len(rows) // 12, 1)])
    emit(f"{data.name} — {data.notes}", chart + "\n\n" + table)


def emit_table(data) -> None:
    """Render a TableData with its notes."""
    emit(f"{data.name} — {data.notes}",
         ascii_table(data.headers, list(data.rows)))
