"""Coverage for small public helpers not exercised elsewhere."""

import pytest

from repro.core.transistor_cost import silicon_utilization
from repro.core import TransistorCostModel, WaferCostModel
from repro.geometry import Wafer
from repro.manufacturing import FabDynamics
from repro.manufacturing.equipment import ProcessFlow
from repro.manufacturing.product_mix import size_equipment_for_flow
from repro.manufacturing.test_cost import TestEconomics
from repro.technology.sia_roadmap import node_for_feature_size


class TestSiliconUtilization:
    def test_fraction_of_wafer_area(self):
        wafer = Wafer(radius_cm=7.5)
        model = TransistorCostModel(wafer_cost=WaferCostModel(), wafer=wafer)
        b = model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                           design_density=150.0, yield_value=0.9)
        util = silicon_utilization(b, wafer)
        assert 0.5 < util < 1.0
        assert util == pytest.approx(
            b.dies_per_wafer * b.die_area_cm2 / wafer.area_cm2)

    def test_small_die_utilizes_more(self):
        wafer = Wafer(radius_cm=7.5)
        model = TransistorCostModel(wafer_cost=WaferCostModel(), wafer=wafer)
        small = model.evaluate(n_transistors=2e5, feature_size_um=0.8,
                               design_density=150.0, yield_value=0.9)
        big = model.evaluate(n_transistors=4e6, feature_size_um=0.8,
                             design_density=150.0, yield_value=0.9)
        assert silicon_utilization(small, wafer) > \
            silicon_utilization(big, wafer)


class TestQueueingMultiplier:
    def test_multiplier_grows_with_load(self):
        flow = ProcessFlow.generic_cmos(n_metal_layers=2)
        equipment = size_equipment_for_flow(flow, 3000.0)
        light = FabDynamics(equipment=equipment, flow=flow,
                            wafer_starts_per_hour=5.0)
        heavy = FabDynamics(equipment=equipment, flow=flow,
                            wafer_starts_per_hour=19.0)
        m_light = max(s.queueing_multiplier for s in light.stations())
        m_heavy = max(s.queueing_multiplier for s in heavy.stations())
        assert m_heavy > m_light >= 1.0

    def test_cycle_hours_composition(self):
        flow = ProcessFlow.generic_cmos(n_metal_layers=2)
        equipment = size_equipment_for_flow(flow, 3000.0)
        dyn = FabDynamics(equipment=equipment, flow=flow,
                          wafer_starts_per_hour=10.0)
        for station in dyn.stations():
            assert station.cycle_hours_per_visit == pytest.approx(
                station.wait_hours_per_visit
                + station.service_hours_per_visit)


class TestDftOutcomeDetails:
    def test_outcome_carries_both_sides(self):
        econ = TestEconomics(yield_value=0.7, fault_coverage=0.9,
                             escape_cost_dollars=300.0)
        outcome = econ.with_dft(coverage_gain=0.05,
                                area_overhead_fraction=0.04)
        assert outcome.baseline is econ
        assert outcome.improved.fault_coverage == pytest.approx(0.95)
        assert outcome.area_overhead_fraction == 0.04

    def test_net_benefit_sign_flips_with_escape_cost(self):
        cheap_escapes = TestEconomics(yield_value=0.8, fault_coverage=0.9,
                                      escape_cost_dollars=0.5)
        dear_escapes = TestEconomics(yield_value=0.8, fault_coverage=0.9,
                                     escape_cost_dollars=5000.0)
        kwargs = dict(coverage_gain=0.09, area_overhead_fraction=0.06)
        assert cheap_escapes.with_dft(**kwargs) \
            .net_benefit_per_shipped_die(2e6, 30.0) < 0.0
        assert dear_escapes.with_dft(**kwargs) \
            .net_benefit_per_shipped_die(2e6, 30.0) > 0.0


class TestSiaLookup:
    def test_exact_match(self):
        assert node_for_feature_size(0.25).first_production_year == 1998

    def test_log_scale_nearest(self):
        # 0.29 um is log-nearer to 0.25 than to 0.35.
        assert node_for_feature_size(0.29).feature_size_um == 0.25
