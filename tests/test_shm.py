"""repro.shm promotion: import surface + the vanished-name unlink contract.

The creation/visibility/lifecycle basics live in
``tests/serve/test_shm.py`` (written against the original serve-local
home and kept there to pin the ``repro.serve`` re-export).  This module
covers what the promotion added:

* ``repro.shm`` is the canonical home; ``repro.serve.shm`` and
  ``repro.serve`` re-export the *same* class object;
* an owner whose segment name vanished out from under it (external
  ``/dev/shm`` sweep, racing second release) swallows the missing name
  exactly once **and** drops the stale resource-tracker registration,
  so interpreter shutdown stays silent — no KeyError traceback from
  the tracker process, no "leaked shared_memory objects" warning.
"""

import subprocess
import sys

import numpy as np

from repro.shm import ShmBlock


class TestPromotion:
    def test_canonical_and_compat_homes_are_the_same_class(self):
        from repro.serve import ShmBlock as serve_block
        from repro.serve.shm import ShmBlock as serve_shm_block
        assert serve_block is ShmBlock
        assert serve_shm_block is ShmBlock

    def test_canonical_home_round_trip(self):
        block = ShmBlock.create(2, 3)
        try:
            block.array[:] = np.arange(6.0).reshape(2, 3)
            other = ShmBlock.attach(block.name, 2, 3)
            assert other.array[1, 2] == 5.0
            other.close()
        finally:
            block.release()


class TestVanishedName:
    def test_unlink_survives_externally_removed_segment(self):
        # Simulate an external cleanup (cron sweep of /dev/shm, a
        # foreign process calling shm_unlink): the name is gone before
        # the owner unlinks, and nothing told the owner's resource
        # tracker.  The owner must swallow it — once.
        from multiprocessing.shared_memory import _posixshmem
        block = ShmBlock.create(2, 2)
        _posixshmem.shm_unlink(block.shm._name)  # the "external" removal
        block.release()  # FileNotFoundError swallowed here
        block.unlink()  # latch: second call is a pure no-op
        assert block._unlinked

    def test_shutdown_is_silent_after_vanished_name(self):
        # The regression proper: without the tracker unregister in
        # ShmBlock.unlink, the resource tracker still holds the stale
        # name and errors at interpreter shutdown trying to clean it.
        # Run the whole lifecycle in a fresh interpreter and require a
        # clean exit with empty stderr.
        code = "\n".join([
            "from multiprocessing.shared_memory import _posixshmem",
            "from repro.shm import ShmBlock",
            "block = ShmBlock.create(4, 4)",
            "_posixshmem.shm_unlink(block.shm._name)",
            "block.release()",
            "block.unlink()",
        ])
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.strip() == "", proc.stderr

    def test_owner_shutdown_silent_with_worker_attachments(self):
        # Attach-and-close from a second mapping must not strip the
        # owner's tracker registration (the set-semantics trap): the
        # owner's later unlink still finds its registration and the
        # tracker never warns.
        code = "\n".join([
            "from repro.shm import ShmBlock",
            "block = ShmBlock.create(4, 4)",
            "for _ in range(3):",
            "    m = ShmBlock.attach(block.name, 4, 4)",
            "    m.close()",
            "block.release()",
        ])
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.strip() == "", proc.stderr
