"""Residual coverage: dispatch paths and small branches not hit elsewhere."""

import numpy as np
import pytest

from repro.core import CostLandscape
from repro.core.optimization import FabCharacterization
from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.manufacturing.equipment import ProcessFlow


class TestWaferDispatch:
    def test_ferris_prabhu_dispatch(self):
        wafer = Wafer(radius_cm=7.5)
        die = Die.square(1.0)
        count = wafer.dies(die, method="ferris-prabhu")
        assert isinstance(count, int)
        assert 0 < count < wafer.area_cm2 / die.area_cm2

    def test_unknown_method_raises(self):
        wafer = Wafer(radius_cm=7.5)
        with pytest.raises(ParameterError):
            wafer.dies(Die.square(1.0), method="astrology")


class TestLandscapeEdges:
    def test_all_infeasible_rows_skipped(self):
        """Rows whose every cell is infeasible must not appear in the
        optima list (huge transistor counts at a dirty fab)."""
        landscape = CostLandscape(
            fab=FabCharacterization(defect_coefficient=50.0),
            feature_sizes_um=np.linspace(0.3, 0.6, 5),
            transistor_counts=np.geomspace(1e8, 1e9, 4))
        assert landscape.optimal_lambda_per_count() == []

    def test_contour_levels_raise_on_empty_landscape(self):
        landscape = CostLandscape(
            fab=FabCharacterization(defect_coefficient=50.0),
            feature_sizes_um=np.linspace(0.3, 0.6, 4),
            transistor_counts=np.geomspace(1e8, 1e9, 4))
        with pytest.raises(ParameterError):
            landscape.contour_levels()


class TestFlowNaming:
    def test_generic_cmos_custom_name(self):
        flow = ProcessFlow.generic_cmos(n_metal_layers=2, name="proc-X")
        assert flow.name == "proc-X"

    def test_step_names_unique(self):
        flow = ProcessFlow.generic_cmos(n_metal_layers=3)
        names = [s.name for s in flow.steps]
        assert len(names) == len(set(names))


class TestChartTicks:
    def test_y_ticks_present_and_ordered(self):
        from repro.analysis import ascii_chart
        x = np.linspace(0, 10, 20)
        out = ascii_chart(x, {"s": x * 3.0 + 1.0}, height=15)
        ticks = []
        for line in out.splitlines():
            head = line.split("|")[0].strip()
            if head:
                try:
                    ticks.append(float(head))
                except ValueError:
                    pass
        assert len(ticks) >= 3
        assert ticks == sorted(ticks, reverse=True)

    def test_x_axis_endpoints_labeled(self):
        from repro.analysis import ascii_chart
        x = np.linspace(2.5, 7.5, 10)
        out = ascii_chart(x, {"s": x})
        assert "2.5" in out and "7.5" in out
