"""Unit conversions and validators."""

import math

import pytest

from repro.errors import ParameterError
from repro import units


class TestLengthConversions:
    def test_um_to_cm_roundtrip(self):
        assert units.cm_to_um(units.um_to_cm(1234.5)) == pytest.approx(1234.5)

    def test_one_cm_is_ten_thousand_um(self):
        assert units.cm_to_um(1.0) == 1.0e4

    def test_inch_to_cm_exact(self):
        assert units.inch_to_cm(1.0) == 2.54

    def test_six_inch_wafer_radius(self):
        assert units.wafer_diameter_inch_to_radius_cm(6.0) == pytest.approx(7.62)

    def test_eight_inch_wafer_radius(self):
        assert units.wafer_diameter_inch_to_radius_cm(8.0) == pytest.approx(10.16)


class TestAreaConversions:
    def test_um2_to_cm2_roundtrip(self):
        assert units.cm2_to_um2(units.um2_to_cm2(7.0e7)) == pytest.approx(7.0e7)

    def test_one_cm2_is_1e8_um2(self):
        assert units.cm2_to_um2(1.0) == 1.0e8

    def test_mm2_cm2(self):
        assert units.mm2_to_cm2(100.0) == pytest.approx(1.0)
        assert units.cm2_to_mm2(1.0) == pytest.approx(100.0)

    def test_wafer_area_six_inch(self):
        # pi * 7.5^2 = 176.71 cm^2, the area used throughout the paper.
        assert units.wafer_area_cm2(7.5) == pytest.approx(176.714, abs=1e-2)

    def test_wafer_area_rejects_zero_radius(self):
        with pytest.raises(ParameterError):
            units.wafer_area_cm2(0.0)


class TestDollarConversions:
    def test_microdollars_roundtrip(self):
        assert units.microdollars_to_dollars(
            units.dollars_to_microdollars(0.0255)) == pytest.approx(0.0255)

    def test_table3_unit(self):
        # 25.5e-6 dollars is the paper's "25.50" in $1e-6 units.
        assert units.dollars_to_microdollars(25.5e-6) == pytest.approx(25.5)


class TestValidators:
    def test_require_positive_accepts(self):
        assert units.require_positive("x", 0.1) == 0.1

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_require_positive_rejects(self, bad):
        with pytest.raises(ParameterError):
            units.require_positive("x", bad)

    def test_require_positive_rejects_non_numeric(self):
        with pytest.raises(ParameterError):
            units.require_positive("x", "abc")

    def test_require_nonnegative_accepts_zero(self):
        assert units.require_nonnegative("x", 0.0) == 0.0

    def test_require_nonnegative_rejects_negative(self):
        with pytest.raises(ParameterError):
            units.require_nonnegative("x", -1e-9)

    def test_require_fraction_inclusive_bounds(self):
        assert units.require_fraction("y", 0.0) == 0.0
        assert units.require_fraction("y", 1.0) == 1.0

    def test_require_fraction_exclusive_low(self):
        with pytest.raises(ParameterError):
            units.require_fraction("y", 0.0, inclusive_low=False)

    def test_require_fraction_exclusive_high(self):
        with pytest.raises(ParameterError):
            units.require_fraction("y", 1.0, inclusive_high=False)

    def test_require_fraction_rejects_above_one(self):
        with pytest.raises(ParameterError):
            units.require_fraction("y", 1.0001)

    def test_require_fraction_rejects_nan(self):
        with pytest.raises(ParameterError):
            units.require_fraction("y", float("nan"))

    def test_require_at_least(self):
        assert units.require_at_least("x", 1.8, 1.0) == 1.8
        with pytest.raises(ParameterError):
            units.require_at_least("x", 0.99, 1.0)

    def test_error_message_names_parameter(self):
        with pytest.raises(ParameterError, match="my_param"):
            units.require_positive("my_param", -5)
