"""Fabline cost trend (Fig. 2) and capital cost allocation."""

import pytest

from repro.errors import ParameterError
from repro.technology import FABLINE_COST_HISTORY, FabLine, extract_cost_growth_rate
from repro.technology.fabline import WAFER_COST_HISTORY


class TestHistory:
    def test_history_is_chronological_and_growing(self):
        for history in (FABLINE_COST_HISTORY, WAFER_COST_HISTORY):
            years = [y for y, _ in history]
            costs = [c for _, c in history]
            assert years == sorted(years)
            assert costs == sorted(costs)

    def test_billion_dollar_endpoint(self):
        # The paper: fab cost "estimated soon to reach 1 billion dollars".
        assert FABLINE_COST_HISTORY[-1][1] == pytest.approx(1000.0)

    def test_wafer_cost_anchor_1990(self):
        # The paper quotes $500-800 for a 6-inch 1 um wafer [12, 13].
        anchors = dict(WAFER_COST_HISTORY)
        assert 500.0 <= anchors[1989.0] <= 800.0


class TestExtraction:
    def test_wafer_x_lands_in_papers_band(self):
        """The paper reads X = 1.2-1.4 off Fig. 2's wafer-cost curve."""
        x = extract_cost_growth_rate(WAFER_COST_HISTORY)
        assert 1.2 <= x <= 1.4

    def test_fabline_capital_grows_faster_than_wafer_cost(self):
        x_fab = extract_cost_growth_rate(FABLINE_COST_HISTORY)
        x_wafer = extract_cost_growth_rate(WAFER_COST_HISTORY)
        assert x_fab > x_wafer
        assert x_fab > 1.5

    def test_x_scales_with_generation_cadence(self):
        x3 = extract_cost_growth_rate(years_per_generation=3.0)
        x6 = extract_cost_growth_rate(years_per_generation=6.0)
        assert x6 == pytest.approx(x3 ** 2, rel=1e-9)

    def test_perfect_exponential_recovered_exactly(self):
        history = tuple((1970.0 + 3 * k, 10.0 * 1.5 ** k) for k in range(8))
        assert extract_cost_growth_rate(history) == pytest.approx(1.5)

    def test_needs_two_points(self):
        with pytest.raises(ParameterError):
            extract_cost_growth_rate(((1990.0, 100.0),))

    def test_rejects_nonpositive_costs(self):
        with pytest.raises(ParameterError):
            extract_cost_growth_rate(((1990.0, 100.0), (1993.0, -5.0)))


class TestFabLine:
    def test_annualized_cost(self):
        fab = FabLine(construction_cost_dollars=1.0e9,
                      wafer_starts_per_month=10_000,
                      depreciation_years=5.0,
                      operating_cost_per_year=50.0e6)
        assert fab.annualized_cost_dollars == pytest.approx(250.0e6)

    def test_capital_cost_per_wafer_at_full_utilization(self):
        fab = FabLine(construction_cost_dollars=600.0e6,
                      wafer_starts_per_month=10_000,
                      depreciation_years=5.0)
        # 120e6/yr over 120k wafers/yr = $1000/wafer.
        assert fab.capital_cost_per_wafer(1.0) == pytest.approx(1000.0)

    def test_idle_capacity_still_costs(self):
        """The paper's ownership-cost point: cost/wafer ~ 1/utilization."""
        fab = FabLine(construction_cost_dollars=600.0e6,
                      wafer_starts_per_month=10_000)
        full = fab.capital_cost_per_wafer(1.0)
        half = fab.capital_cost_per_wafer(0.5)
        assert half == pytest.approx(2.0 * full)

    def test_rejects_bad_utilization(self):
        fab = FabLine(construction_cost_dollars=1e8,
                      wafer_starts_per_month=1000)
        with pytest.raises(ParameterError):
            fab.capital_cost_per_wafer(0.0)
        with pytest.raises(ParameterError):
            fab.capital_cost_per_wafer(1.1)

    def test_rejects_negative_operating_cost(self):
        with pytest.raises(ParameterError):
            FabLine(construction_cost_dollars=1e8,
                    wafer_starts_per_month=1000,
                    operating_cost_per_year=-1.0)
