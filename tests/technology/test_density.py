"""Design densities — Tables 1 and 2."""

import pytest

from repro.errors import ParameterError
from repro.technology import (
    FUNCTIONAL_BLOCK_DENSITIES,
    PRODUCT_DENSITIES,
    density_from_area_and_count,
)
from repro.technology.density import (
    DesignDensity,
    TABLE1_FEATURE_SIZE_UM,
    density_class,
    table1_recomputed,
)


class TestEstimator:
    def test_hand_calculation(self):
        # 33.2 mm^2, 1.2M transistors at 0.8 um:
        # d_d = 33.2e6 um^2 / (1.2e6 * 0.64) = 43.2
        d = density_from_area_and_count(33.2, 1.2e6, 0.8)
        assert d == pytest.approx(43.2, abs=0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            density_from_area_and_count(0.0, 1e6, 0.8)


class TestTable1:
    def test_six_blocks(self):
        assert len(FUNCTIONAL_BLOCK_DENSITIES) == 6

    def test_recomputed_matches_published(self):
        """Eq. (5) applied to the tabulated areas/counts reproduces the
        published d_d column — validating the 0.8 um attribution."""
        for row in table1_recomputed():
            assert row["d_d_recomputed"] == pytest.approx(
                row["d_d_published"], rel=0.01), row["name"]

    def test_caches_densest(self):
        """The paper's narrative: caches pack far denser than logic."""
        by_name = {b.name: b.d_d for b in FUNCTIONAL_BLOCK_DENSITIES}
        assert by_name["I-cache"] < by_name["Integer unit"]
        assert by_name["D-cache"] < by_name["Bus unit"]

    def test_table1_feature_size_is_08(self):
        assert TABLE1_FEATURE_SIZE_UM == 0.8


class TestTable2:
    def test_seventeen_products(self):
        assert len(PRODUCT_DENSITIES) == 17

    def test_verbatim_extremes(self):
        dds = [p.d_d for p in PRODUCT_DENSITIES]
        assert min(dds) == pytest.approx(17.80)   # 16Mb SRAM
        assert max(dds) == pytest.approx(2631.04)  # PLD

    def test_memories_denser_than_processors(self):
        memories = [p.d_d for p in PRODUCT_DENSITIES
                    if "RAM" in p.name]
        processors = [p.d_d for p in PRODUCT_DENSITIES
                      if p.name.startswith("uP")]
        assert max(memories) < min(processors)

    def test_all_records_validate(self):
        for rec in PRODUCT_DENSITIES:
            assert rec.d_d > 0
            assert rec.feature_size_um > 0


class TestClassification:
    @pytest.mark.parametrize("d_d,expected", [
        (22.3, "memory"),
        (36.0, "memory"),
        (150.0, "logic"),
        (400.0, "logic"),
        (507.7, "semi-custom"),
        (2631.0, "programmable"),
    ])
    def test_classes(self, d_d, expected):
        assert density_class(d_d) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            density_class(0.0)


class TestRecordValidation:
    def test_rejects_bad_density(self):
        with pytest.raises(ParameterError):
            DesignDensity(name="x", d_d=-1.0)

    def test_optional_fields_validated_when_present(self):
        with pytest.raises(ParameterError):
            DesignDensity(name="x", d_d=10.0, area_mm2=-3.0)
