"""Device scaling rules and performance-per-dollar."""

import pytest

from repro.errors import ParameterError
from repro.technology import (
    CONSTANT_VOLTAGE,
    DENNARD,
    ScalingRules,
    performance_per_dollar,
    tolerable_cost_increase,
)


class TestDennard:
    def test_identity_at_same_node(self):
        assert DENNARD.delay_factor(0.8, 0.8) == pytest.approx(1.0)
        assert DENNARD.power_density_factor(0.8, 0.8) == pytest.approx(1.0)

    def test_classic_factors_for_07_shrink(self):
        s = 0.7
        assert DENNARD.delay_factor(0.7, 1.0) == pytest.approx(s)
        assert DENNARD.frequency_factor(0.7, 1.0) == pytest.approx(1.0 / s)
        assert DENNARD.transistor_power_factor(0.7, 1.0) == \
            pytest.approx(s * s)

    def test_power_density_constant(self):
        """The defining Dennard property."""
        for lam in (0.8, 0.5, 0.35, 0.25):
            assert DENNARD.power_density_factor(lam, 1.0) == \
                pytest.approx(1.0)

    def test_throughput_gain(self):
        # density 1/s^2 times frequency 1/s = 1/s^3.
        assert DENNARD.throughput_factor(0.5, 1.0) == pytest.approx(8.0)


class TestConstantVoltage:
    def test_power_density_explodes(self):
        """The 5 V era's thermal wall: shrink at constant voltage raises
        power density."""
        assert CONSTANT_VOLTAGE.power_density_factor(0.5, 1.0) > 1.5

    def test_per_transistor_power_static(self):
        # P ~ s * 1 * 1/s = 1: per transistor power flat.
        assert CONSTANT_VOLTAGE.transistor_power_factor(0.5, 1.0) == \
            pytest.approx(1.0)

    def test_generalized_between_regimes(self):
        mid = ScalingRules(voltage_exponent=0.5)
        pd = mid.power_density_factor(0.5, 1.0)
        assert 1.0 < pd < CONSTANT_VOLTAGE.power_density_factor(0.5, 1.0)


class TestPerformancePerDollar:
    def test_flat_cost_shrink_always_pays(self):
        ratio = performance_per_dollar(1.0, 1.0, 1.0, 0.7)
        assert ratio == pytest.approx(1.0 / 0.7)

    def test_cost_increase_can_erase_performance_gain(self):
        """The paper's two-sided warning in one number: with Scenario-#2
        style cost growth (3x over a 0.7 shrink... here stylized), the
        shrink loses performance-per-dollar."""
        ratio = performance_per_dollar(1.0, 3.0, 1.0, 0.7)
        assert ratio < 1.0

    def test_tolerable_increase_is_frequency_gain(self):
        assert tolerable_cost_increase(1.0, 0.7) == pytest.approx(1.0 / 0.7)
        # Breakeven check: cost growing exactly that much gives parity.
        parity = performance_per_dollar(1.0, tolerable_cost_increase(1.0, 0.7),
                                        1.0, 0.7)
        assert parity == pytest.approx(1.0)

    def test_scenario2_cost_growth_vs_tolerance(self):
        """Join to the cost model: Scenario-#2 C_tr growth from 1.0 to
        0.5 um exceeds what performance can absorb at X = 2.4."""
        from repro.core import SCENARIO_2
        c_old = SCENARIO_2.cost_dollars(1.0, 2.4)
        c_new = SCENARIO_2.cost_dollars(0.5, 2.4)
        tolerance = tolerable_cost_increase(1.0, 0.5)
        assert c_new / c_old > tolerance  # shrink irrational even for speed

    def test_validation(self):
        with pytest.raises(ParameterError):
            ScalingRules(voltage_exponent=-0.1)
        with pytest.raises(ParameterError):
            performance_per_dollar(0.0, 1.0, 1.0, 0.7)
