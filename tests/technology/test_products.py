"""The Table-3 product catalog."""

import pytest

from repro.errors import ParameterError
from repro.technology import PRODUCT_CATALOG, ProductClass, ProductSpec
from repro.technology.products import catalog_by_class, memory_vs_logic_cost_gap


class TestCatalogIntegrity:
    def test_seventeen_rows(self):
        assert len(PRODUCT_CATALOG) == 17

    def test_published_values_span_paper_range(self):
        published = [p.published_ctr_microdollars for p in PRODUCT_CATALOG]
        assert min(published) == pytest.approx(0.93)   # 1Mb SRAM
        assert max(published) == pytest.approx(240.0)  # PLD

    def test_exactly_two_reconstructed_rows(self):
        reconstructed = [p for p in PRODUCT_CATALOG if p.reconstructed]
        assert len(reconstructed) == 2

    def test_row_2_and_6_identical_inputs(self):
        """The paper repeats the nominal BiCMOS uP row."""
        r2, r6 = PRODUCT_CATALOG[1], PRODUCT_CATALOG[5]
        assert (r2.n_transistors, r2.feature_size_um, r2.design_density,
                r2.reference_yield, r2.cost_growth_rate) == \
               (r6.n_transistors, r6.feature_size_um, r6.design_density,
                r6.reference_yield, r6.cost_growth_rate)
        assert r2.published_ctr_microdollars == r6.published_ctr_microdollars

    def test_only_8inch_row_is_dram(self):
        big_wafer = [p for p in PRODUCT_CATALOG if p.wafer_radius_cm > 7.5]
        assert len(big_wafer) == 1
        assert big_wafer[0].product_class is ProductClass.DRAM

    def test_die_area_property(self):
        row1 = PRODUCT_CATALOG[0]
        expected = 3.1e6 * 150.0 * 0.64 / 1e8
        assert row1.die_area_cm2 == pytest.approx(expected)


class TestProductClass:
    def test_memories_have_redundancy(self):
        assert ProductClass.DRAM.has_redundancy
        assert ProductClass.SRAM.has_redundancy

    @pytest.mark.parametrize("cls", [
        ProductClass.MICROPROCESSOR, ProductClass.GATE_ARRAY,
        ProductClass.SEA_OF_GATES, ProductClass.PLD,
        ProductClass.SIGNAL_PROCESSOR,
    ])
    def test_non_memories_do_not(self, cls):
        assert not cls.has_redundancy

    def test_catalog_by_class(self):
        drams = catalog_by_class(ProductClass.DRAM)
        assert len(drams) == 3
        assert all(p.product_class is ProductClass.DRAM for p in drams)


class TestMemoryLogicGap:
    def test_gap_is_large(self):
        """Paper conclusion 1 of Sec. IV.C: memory C_tr is 'much lower
        than for all other IC types' — even the cheapest logic row is
        several times the cheapest memory row."""
        assert memory_vs_logic_cost_gap() > 5.0


class TestSpecValidation:
    def test_rejects_x_below_one(self):
        with pytest.raises(ParameterError):
            ProductSpec(name="bad", product_class=ProductClass.DRAM,
                        n_transistors=1e6, feature_size_um=0.5,
                        design_density=30.0, wafer_radius_cm=7.5,
                        reference_yield=0.9,
                        reference_wafer_cost_dollars=500.0,
                        cost_growth_rate=0.9)

    def test_rejects_zero_yield(self):
        with pytest.raises(ParameterError):
            ProductSpec(name="bad", product_class=ProductClass.DRAM,
                        n_transistors=1e6, feature_size_um=0.5,
                        design_density=30.0, wafer_radius_cm=7.5,
                        reference_yield=0.0,
                        reference_wafer_cost_dollars=500.0,
                        cost_growth_rate=1.8)
