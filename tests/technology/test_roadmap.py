"""Technology roadmap trends (Figs. 1, 3, 4)."""

import math

import pytest

from repro.errors import ParameterError
from repro.technology import GENERATIONS_UM, TechnologyRoadmap, die_area_trend_cm2


@pytest.fixture
def roadmap():
    return TechnologyRoadmap()


class TestDieAreaTrend:
    def test_published_fit_values(self):
        # A_ch(lambda) = 16.5 exp(-5.3 lambda): spot values.
        assert die_area_trend_cm2(1.0) == pytest.approx(16.5 * math.exp(-5.3))
        assert die_area_trend_cm2(0.8) == pytest.approx(16.5 * math.exp(-4.24))

    def test_die_grows_as_feature_shrinks(self):
        areas = [die_area_trend_cm2(l) for l in (1.0, 0.8, 0.5, 0.25)]
        assert areas == sorted(areas)

    def test_scenario2_anchor_point(self):
        # At 0.5 um the trend predicts a ~1.17 cm^2 die — the scale at
        # which the 70%-per-cm^2 yield assumption starts to bite.
        assert die_area_trend_cm2(0.5) == pytest.approx(1.166, abs=0.01)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            die_area_trend_cm2(0.0)


class TestFeatureSizeTrend:
    def test_reference_anchor(self, roadmap):
        assert roadmap.feature_size_um(1989.0) == pytest.approx(1.0)

    def test_one_generation_is_07x(self, roadmap):
        assert roadmap.feature_size_um(1992.0) == pytest.approx(0.7)

    def test_monotone_decreasing(self, roadmap):
        sizes = [roadmap.feature_size_um(y) for y in range(1970, 2001, 5)]
        assert sizes == sorted(sizes, reverse=True)

    def test_inverse_roundtrip(self, roadmap):
        for lam in (0.25, 0.5, 0.8, 1.5, 3.0):
            year = roadmap.year_of_feature_size(lam)
            assert roadmap.feature_size_um(year) == pytest.approx(lam)

    def test_generation_index_signs(self, roadmap):
        assert roadmap.generation_index(1.0) == pytest.approx(0.0)
        assert roadmap.generation_index(0.7) == pytest.approx(1.0)
        assert roadmap.generation_index(2.0) < 0.0

    def test_generation_index_additivity(self, roadmap):
        g_direct = roadmap.generation_index(0.49)
        assert g_direct == pytest.approx(2.0)  # 0.7 * 0.7


class TestProcessSteps:
    def test_steps_increase_with_shrink(self, roadmap):
        steps = [roadmap.process_steps(l) for l in (1.0, 0.8, 0.5, 0.35)]
        assert steps == sorted(steps)

    def test_reference_value(self, roadmap):
        assert roadmap.process_steps(1.0) == pytest.approx(250.0)

    def test_degenerate_coarse_node_raises(self):
        # Far enough back, the linear model would go negative.
        roadmap = TechnologyRoadmap(steps_at_reference=100.0,
                                    steps_per_generation=60.0)
        with pytest.raises(ParameterError):
            roadmap.process_steps(20.0)


class TestRequiredDefectDensity:
    def test_falls_steeply_with_shrink(self, roadmap):
        ds = [roadmap.required_defect_density(l) for l in (1.0, 0.8, 0.5, 0.35)]
        assert ds == sorted(ds, reverse=True)
        # Fig. 4's message: orders of magnitude, not percent.
        assert ds[0] / ds[-1] > 10.0

    def test_higher_target_yield_needs_cleaner_fab(self, roadmap):
        strict = roadmap.required_defect_density(0.5, target_yield=0.9)
        loose = roadmap.required_defect_density(0.5, target_yield=0.5)
        assert strict < loose

    def test_explicit_transistor_count_respected(self, roadmap):
        small = roadmap.required_defect_density(0.5, n_transistors=1e5)
        big = roadmap.required_defect_density(0.5, n_transistors=1e7)
        assert big < small  # bigger die tolerates fewer defects/cm^2


class TestSeries:
    def test_series_covers_generations(self, roadmap):
        rows = roadmap.series()
        assert len(rows) == len(GENERATIONS_UM)
        assert all({"feature_size_um", "year", "process_steps",
                    "required_defect_density_per_cm2"} <= set(r) for r in rows)

    def test_validation(self):
        with pytest.raises(ParameterError):
            TechnologyRoadmap(shrink_per_generation=1.2)
        with pytest.raises(ParameterError):
            TechnologyRoadmap(years_per_generation=0.0)
