"""The SIA 1993 roadmap table (ref [17])."""

import pytest

from repro.errors import ParameterError
from repro.technology import SIA_1993_NODES, SiaNode, TechnologyRoadmap
from repro.technology.sia_roadmap import (
    dram_bits_growth_per_node,
    dram_generation_cadence_years,
    fab_cost_growth_per_node,
    node_for_feature_size,
    roadmap_agreement_with,
)


class TestTable:
    def test_five_nodes_in_order(self):
        assert len(SIA_1993_NODES) == 5
        sizes = [n.feature_size_um for n in SIA_1993_NODES]
        years = [n.first_production_year for n in SIA_1993_NODES]
        assert sizes == sorted(sizes, reverse=True)
        assert years == sorted(years)

    def test_035_node(self):
        node = SIA_1993_NODES[0]
        assert node.feature_size_um == 0.35
        assert node.first_production_year == 1995
        assert node.dram_bits_per_chip == 64e6

    def test_wafer_radius_property(self):
        assert SIA_1993_NODES[0].wafer_radius_cm == pytest.approx(10.0)
        assert SIA_1993_NODES[2].wafer_radius_cm == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            SiaNode(0.35, 1995, 64e6, 175, 1500.0)  # non-standard wafer


class TestDerivedTrends:
    def test_three_year_cadence(self):
        assert dram_generation_cadence_years() == pytest.approx(3.0)

    def test_4x_bits_per_node(self):
        assert dram_bits_growth_per_node() == pytest.approx(4.0, rel=0.05)

    def test_fab_cost_growth_matches_fig2_scale(self):
        """The roadmap's own fab-cost escalation sits in the band the
        paper extracts from Fig. 2 history (fabline curve ~1.5-1.9)."""
        growth = fab_cost_growth_per_node()
        assert 1.3 <= growth <= 2.0

    def test_nearest_node_lookup(self):
        assert node_for_feature_size(0.3).feature_size_um == 0.35
        assert node_for_feature_size(0.2).feature_size_um in (0.18, 0.25)
        assert node_for_feature_size(0.1).feature_size_um == 0.10


class TestAgreement:
    def test_anchored_roadmap_tracks_sia_years(self):
        """Our parametric trend, anchored at 1 um in production 1987,
        hits every SIA first-production year within 2.5 years."""
        roadmap = TechnologyRoadmap(reference_year=1987.0)
        assert roadmap_agreement_with(roadmap)

    def test_badly_anchored_roadmap_fails(self):
        roadmap = TechnologyRoadmap(reference_year=1979.0)
        assert not roadmap_agreement_with(roadmap)

    def test_tolerance_validation(self):
        with pytest.raises(ParameterError):
            roadmap_agreement_with(TechnologyRoadmap(), tolerance_years=0.0)
