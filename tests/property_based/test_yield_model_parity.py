"""Property-based parity for the compound yield-model family.

The batched kernels for :class:`CompoundPoissonGamma`,
:class:`HierarchicalYieldModel` and :class:`MixtureYieldModel` promise
the strongest form of the parity contract: **bitwise** equality with a
scalar ``yield_from_expectation`` loop — the vectorized path replays
the scalar operation order exactly, including the per-element pow.
Hypothesis drives the quantifiers:

* model parameters (shapes, mixture weights) and the fault-expectation
  arrays, including zeros and non-contiguous slices;
* the ``out=`` write path, which must land the same bits in a caller
  buffer;
* the serve execution matrix (backend, workers, chunking, batch
  slicing), mirroring ``test_serve_parity.py`` — a hierarchical model
  priced through the service must be bitwise equal to the scalar
  ``evaluate()``.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.cache import BatchCache
from repro.batch.engine import (
    yield_for_area_batch,
    yield_from_expectation_batch,
)
from repro.core.transistor_cost import TransistorCostModel
from repro.core.wafer_cost import WaferCostModel
from repro.errors import ParameterError
from repro.geometry import Wafer
from repro.serve import CostService, ModelCostQuery
from repro.yieldsim import (
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    MixtureYieldModel,
    PoissonYield,
    SeedsYield,
)

m_strategy = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=40.0),
)
alpha_strategy = st.floats(min_value=0.1, max_value=50.0)


def _models(wafer_alpha, lot_alpha, weight):
    return [
        CompoundPoissonGamma(alpha=wafer_alpha),
        HierarchicalYieldModel(lot_alpha=lot_alpha,
                               wafer_alpha=wafer_alpha),
        MixtureYieldModel(((weight, PoissonYield()),
                           (1.0 - weight,
                            CompoundPoissonGamma(alpha=wafer_alpha)))),
    ]


def _assert_bitwise_vs_scalar(model, ms):
    got = yield_from_expectation_batch(model, ms)
    want = np.array([model.yield_from_expectation(float(m)) for m in ms],
                    dtype=np.float64)
    # Bitwise: array equality without any tolerance.
    assert got.shape == want.shape
    assert (got == want).all()


class TestBatchedVsScalar:
    @settings(max_examples=60, deadline=None)
    @given(ms=st.lists(m_strategy, min_size=1, max_size=32),
           wafer_alpha=alpha_strategy,
           lot_alpha=alpha_strategy,
           weight=st.floats(min_value=0.05, max_value=0.95))
    def test_bitwise_for_any_expectation_array(self, ms, wafer_alpha,
                                               lot_alpha, weight):
        arr = np.array(ms, dtype=np.float64)
        for model in _models(wafer_alpha, lot_alpha, weight):
            _assert_bitwise_vs_scalar(model, arr)

    @settings(max_examples=30, deadline=None)
    @given(ms=st.lists(m_strategy, min_size=4, max_size=40),
           step=st.integers(min_value=2, max_value=5),
           wafer_alpha=alpha_strategy,
           lot_alpha=alpha_strategy)
    def test_noncontiguous_slices_are_bitwise(self, ms, step,
                                              wafer_alpha, lot_alpha):
        # Strided views and reversed slices must not change a single
        # bit relative to evaluating the same elements scalar-wise.
        base = np.array(ms, dtype=np.float64)
        for model in _models(wafer_alpha, lot_alpha, 0.5):
            for view in (base[::step], base[::-1], base[1::step]):
                if view.size:
                    _assert_bitwise_vs_scalar(model, view)

    @settings(max_examples=30, deadline=None)
    @given(ms=st.lists(m_strategy, min_size=1, max_size=24),
           wafer_alpha=alpha_strategy,
           lot_alpha=alpha_strategy)
    def test_out_buffer_lands_identical_bits(self, ms, wafer_alpha,
                                             lot_alpha):
        arr = np.array(ms, dtype=np.float64)
        for model in _models(wafer_alpha, lot_alpha, 0.3):
            plain = yield_from_expectation_batch(model, arr)
            out = np.full(arr.shape, np.nan, dtype=np.float64)
            returned = yield_from_expectation_batch(model, arr, out=out)
            assert returned is out
            assert (out == plain).all()

    @settings(max_examples=20, deadline=None)
    @given(densities=st.lists(st.floats(min_value=0.0, max_value=5.0),
                              min_size=1, max_size=16),
           area=st.floats(min_value=0.05, max_value=4.0),
           wafer_alpha=alpha_strategy,
           lot_alpha=alpha_strategy)
    def test_yield_for_area_path_is_bitwise(self, densities, area,
                                            wafer_alpha, lot_alpha):
        d = np.array(densities, dtype=np.float64)
        for model in _models(wafer_alpha, lot_alpha, 0.7):
            got = yield_for_area_batch(model, area, d)
            want = np.array([model.yield_for_area(area, float(x))
                             for x in d], dtype=np.float64)
            assert (got == want).all()

    def test_out_shape_and_dtype_are_enforced(self):
        model = CompoundPoissonGamma(alpha=2.0)
        ms = np.array([0.5, 1.0], dtype=np.float64)
        with pytest.raises(ParameterError):
            yield_from_expectation_batch(model, ms,
                                         out=np.empty(3, dtype=np.float64))
        with pytest.raises(ParameterError):
            yield_from_expectation_batch(model, ms,
                                         out=np.empty(2, dtype=np.float32))

    def test_negative_expectation_rejected(self):
        with pytest.raises(ParameterError):
            yield_from_expectation_batch(CompoundPoissonGamma(alpha=2.0),
                                         [0.1, -0.2])

    def test_unknown_subclass_falls_back_to_scalar_replay(self):
        class Shifted(SeedsYield):
            """Seeds with a documented extra halving — not dispatched."""

            def yield_from_expectation(self, m):
                return 0.5 * super().yield_from_expectation(m)

        model = Shifted()
        arr = np.array([0.0, 0.3, 2.0], dtype=np.float64)
        _assert_bitwise_vs_scalar(model, arr)


def _serve(queries, **service_kwargs):
    service_kwargs.setdefault("max_wait_s", 0.001)
    service_kwargs.setdefault("cache", BatchCache())
    with CostService(**service_kwargs) as svc:
        return svc.map(queries)


def _cost_model():
    return TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=640.0,
                                  cost_growth_rate=1.7),
        wafer=Wafer(radius_cm=7.5))


class TestServeExecutionMatrix:
    """The new laws priced through :mod:`repro.serve` must be bitwise
    equal to the scalar ``evaluate()`` under any scheduler slicing,
    worker count, chunk size and backend — the same matrix
    ``test_serve_parity.py`` pins for the classical laws."""

    @settings(max_examples=10, deadline=None)
    @given(points=st.lists(
               st.tuples(st.floats(min_value=1e4, max_value=1e8),
                         st.floats(min_value=0.3, max_value=2.0)),
               min_size=1, max_size=12),
           max_batch_size=st.integers(min_value=1, max_value=8),
           workers=st.integers(min_value=1, max_value=3),
           chunk_size=st.integers(min_value=1, max_value=5),
           wafer_alpha=st.floats(min_value=0.5, max_value=5.0),
           lot_alpha=st.floats(min_value=0.5, max_value=5.0),
           defect_density=st.floats(min_value=0.01, max_value=2.0))
    def test_hierarchical_query_bitwise_under_any_slicing(
            self, points, max_batch_size, workers, chunk_size,
            wafer_alpha, lot_alpha, defect_density):
        model = _cost_model()
        law = HierarchicalYieldModel(lot_alpha=lot_alpha,
                                     wafer_alpha=wafer_alpha)
        queries = [ModelCostQuery(n, lam, model=model,
                                  design_density=120.0, yield_model=law,
                                  defect_density_per_cm2=defect_density)
                   for n, lam in points]
        served = _serve(queries, max_batch_size=max_batch_size,
                        workers=workers, chunk_size=chunk_size)
        for (n, lam), result in zip(points, served):
            try:
                want = model.evaluate(
                    n_transistors=n, feature_size_um=lam,
                    design_density=120.0, yield_model=law,
                    defect_density_per_cm2=defect_density)
            except ParameterError:
                assert not result.feasible
                assert math.isinf(result.cost_per_transistor_dollars)
                continue
            assert result.cost_per_transistor_dollars \
                == want.cost_per_transistor_dollars
            assert result.yield_value == want.yield_value

    def test_compound_family_crosses_process_boundary_bitwise(self):
        # CPG and mixture exemplars are pickled to the process pool;
        # answers must match the in-process scalar path bitwise.
        model = _cost_model()
        laws = [
            CompoundPoissonGamma(alpha=1.5),
            MixtureYieldModel(((0.3, PoissonYield()),
                               (0.7, CompoundPoissonGamma(alpha=1.5)))),
        ]
        points = [(2e5 * (i + 1), 0.4 + 0.05 * i) for i in range(10)]
        for law in laws:
            queries = [ModelCostQuery(n, lam, model=model,
                                      design_density=150.0,
                                      yield_model=law,
                                      defect_density_per_cm2=0.8)
                       for n, lam in points]
            served = _serve(queries, backend="process", workers=2,
                            chunk_size=3, max_batch_size=16)
            for (n, lam), result in zip(points, served):
                want = model.evaluate(n_transistors=n,
                                      feature_size_um=lam,
                                      design_density=150.0,
                                      yield_model=law,
                                      defect_density_per_cm2=0.8)
                assert result.cost_per_transistor_dollars \
                    == want.cost_per_transistor_dollars
                assert result.yield_value == want.yield_value
