"""Property-based parity: sharded Monte Carlo lots vs the sequential path.

Hypothesis sweeps die geometry, defect density, clustering, lot size
and worker count; for every draw the sharded merge must preserve wafer
order, drop or duplicate nothing, stay bitwise identical to the
sequential per-wafer reference (``simulate_wafer`` on each spawned
child stream), and aggregate so that the lot-level ``yield_fraction``
equals the mean of the per-wafer yields.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Die, Wafer
from repro.yieldsim import (
    LotResult,
    SpotDefectSimulator,
    spawn_wafer_seeds,
)

# Process pools are slow relative to these tiny lots, so the example
# budget is modest; the golden suite in tests/yieldsim/test_parallel.py
# covers the fixed worker-count matrix exhaustively.
side_strategy = st.floats(min_value=0.6, max_value=2.0)
density_strategy = st.floats(min_value=0.0, max_value=2.5)
alpha_strategy = st.none() | st.floats(min_value=0.5, max_value=4.0)
lot_strategy = st.integers(min_value=0, max_value=5)
workers_strategy = st.integers(min_value=1, max_value=3)
seed_strategy = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=20, deadline=None)
@given(width=side_strategy, height=side_strategy,
       density=density_strategy, alpha=alpha_strategy,
       n_wafers=lot_strategy, workers=workers_strategy,
       seed=seed_strategy)
def test_sharded_lot_matches_sequential_reference(width, height, density,
                                                  alpha, n_wafers, workers,
                                                  seed):
    sim = SpotDefectSimulator(Wafer(radius_cm=7.5),
                              Die(width_cm=width, height_cm=height),
                              defect_density_per_cm2=density,
                              clustering_alpha=alpha)
    lot = sim.simulate_lot(n_wafers, seed=seed, workers=workers)

    # No wafer dropped or duplicated, order preserved: wafer i of the
    # merged lot is bitwise wafer i of the sequential reference.
    assert isinstance(lot, LotResult)
    assert len(lot) == n_wafers
    reference = [sim.simulate_wafer(np.random.default_rng(ss))
                 for ss in spawn_wafer_seeds(seed, n_wafers)]
    for merged, ref in zip(lot, reference):
        assert np.array_equal(merged.die_centers_cm, ref.die_centers_cm)
        assert np.array_equal(merged.defect_counts, ref.defect_counts)
        assert merged.n_defects_total == ref.n_defects_total

    # Lot-level aggregation: pooled yield == mean of per-wafer yields
    # (each wafer carries the same die grid), and the stacked counts
    # matrix is consistent with the per-wafer maps.
    if n_wafers:
        assert lot.yield_fraction == pytest.approx(
            float(lot.per_wafer_yields.mean()), abs=1e-12)
        assert lot.defect_counts.shape == (n_wafers, lot[0].n_dies)
    else:
        assert lot.yield_fraction == 0.0


@settings(max_examples=15, deadline=None)
@given(density=density_strategy, alpha=alpha_strategy,
       n_wafers=st.integers(min_value=1, max_value=6),
       workers_a=workers_strategy, workers_b=workers_strategy,
       seed=seed_strategy)
def test_worker_count_never_changes_results(density, alpha, n_wafers,
                                            workers_a, workers_b, seed):
    sim = SpotDefectSimulator(Wafer(radius_cm=7.5), Die.square(1.0),
                              defect_density_per_cm2=density,
                              clustering_alpha=alpha)
    lot_a = sim.simulate_lot(n_wafers, seed=seed, workers=workers_a)
    lot_b = sim.simulate_lot(n_wafers, seed=seed, workers=workers_b)
    assert len(lot_a) == len(lot_b) == n_wafers
    for ma, mb in zip(lot_a, lot_b):
        assert np.array_equal(ma.defect_counts, mb.defect_counts)
        assert ma.n_defects_total == mb.n_defects_total
    assert lot_a.yield_fraction == lot_b.yield_fraction
