"""Property-based parity for :mod:`repro.serve`: bitwise, and
batch-boundary invariant.

The service's headline contract is stricter than the batch engine's:
every served number must be **bitwise equal** to the direct scalar
evaluation of its query — not 1e-12-close — no matter how the
scheduler sliced the traffic.  Hypothesis drives the two degrees of
freedom the contract quantifies over:

* *batch slicing* — ``max_batch_size``, chunked execution across a
  worker pool, and duplicated points exercising dedup fan-out;
* *arrival order* — a permutation of the same multiset of queries
  must produce the same result for each query.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.cache import BatchCache
from repro.core.optimization import (
    FabCharacterization,
    transistor_cost_full,
)
from repro.core.transistor_cost import TransistorCostModel
from repro.core.wafer_cost import WaferCostModel
from repro.errors import ParameterError
from repro.geometry import Wafer
from repro.serve import CostService, FabCostQuery, ModelCostQuery
from repro.yieldsim import PoissonYield, ReferenceAreaYield

lam_strategy = st.floats(min_value=0.25, max_value=3.0)
ntr_strategy = st.floats(min_value=1e4, max_value=1e9)
point_strategy = st.tuples(ntr_strategy, lam_strategy)


def _serve(queries, **service_kwargs):
    service_kwargs.setdefault("max_wait_s", 0.001)
    service_kwargs.setdefault("cache", BatchCache())
    with CostService(**service_kwargs) as svc:
        return svc.map(queries)


def _assert_bitwise(served, want_cost):
    got = served.cost_per_transistor_dollars
    if math.isinf(want_cost):
        assert math.isinf(got)
        assert not served.feasible
    else:
        # Bitwise: exact float equality, not isclose.
        assert got == want_cost


class TestFabParity:
    @settings(max_examples=40, deadline=None)
    @given(points=st.lists(point_strategy, min_size=1, max_size=24),
           max_batch_size=st.integers(min_value=1, max_value=8),
           growth=st.floats(min_value=1.05, max_value=2.5),
           density=st.floats(min_value=10.0, max_value=400.0),
           defect=st.floats(min_value=0.1, max_value=5.0))
    def test_bitwise_for_any_batch_size(self, points, max_batch_size,
                                        growth, density, defect):
        fab = FabCharacterization(
            cost_growth_rate=growth, wafer_radius_cm=7.5,
            design_density=density, defect_coefficient=defect,
            size_exponent_p=3.0)
        queries = [FabCostQuery(n, lam, fab=fab) for n, lam in points]
        served = _serve(queries, max_batch_size=max_batch_size)
        for (n, lam), result in zip(points, served):
            _assert_bitwise(result, transistor_cost_full(n, lam, fab))

    @settings(max_examples=20, deadline=None)
    @given(points=st.lists(point_strategy, min_size=2, max_size=30),
           duplicates=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_batch_boundary_and_order_invariance(self, points,
                                                 duplicates, seed):
        # Same multiset of queries, three traffic shapes: one big
        # flush, many tiny flushes, and a shuffled arrival order with
        # duplicated points.  Each query's answer must be identical
        # (and equal to the scalar reference) in all three.
        import random
        rng = random.Random(seed)
        dup_points = points + [rng.choice(points)
                               for _ in range(duplicates)]
        shuffled = dup_points[:]
        rng.shuffle(shuffled)

        def costs(pts, **kwargs):
            served = _serve([FabCostQuery(n, lam) for n, lam in pts],
                            **kwargs)
            return {pt: s.cost_per_transistor_dollars
                    for pt, s in zip(pts, served)}

        one_flush = costs(dup_points, max_batch_size=1024)
        tiny_flushes = costs(dup_points, max_batch_size=2)
        reordered = costs(shuffled, max_batch_size=7)
        assert one_flush == tiny_flushes == reordered
        for (n, lam), got in one_flush.items():
            want = transistor_cost_full(n, lam)
            assert got == want or (math.isinf(got) and math.isinf(want))

    @settings(max_examples=10, deadline=None)
    @given(points=st.lists(point_strategy, min_size=8, max_size=40),
           chunk_size=st.integers(min_value=1, max_value=5))
    def test_chunked_worker_pool_is_bitwise_invisible(self, points,
                                                      chunk_size):
        queries = [FabCostQuery(n, lam) for n, lam in points]
        inline = _serve(queries, workers=1)
        chunked = _serve(queries, workers=3, chunk_size=chunk_size,
                         max_batch_size=len(points))
        for a, b in zip(inline, chunked):
            assert a == b
        for (n, lam), result in zip(points, inline):
            _assert_bitwise(result, transistor_cost_full(n, lam))


class TestModelParity:
    @settings(max_examples=30, deadline=None)
    @given(points=st.lists(point_strategy, min_size=1, max_size=12),
           max_batch_size=st.integers(min_value=1, max_value=8),
           density=st.floats(min_value=10.0, max_value=400.0),
           y0=st.floats(min_value=0.05, max_value=0.99),
           use_poisson=st.booleans(),
           defect_density=st.floats(min_value=0.01, max_value=2.0))
    def test_bitwise_against_evaluate(self, points, max_batch_size,
                                      density, y0, use_poisson,
                                      defect_density):
        model = TransistorCostModel(
            wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                      cost_growth_rate=1.8),
            wafer=Wafer(radius_cm=7.5))
        if use_poisson:
            yield_kwargs = dict(yield_model=PoissonYield(),
                                defect_density_per_cm2=defect_density)
        else:
            yield_kwargs = dict(yield_model=ReferenceAreaYield(
                reference_yield=y0, reference_area_cm2=1.0))
        queries = [ModelCostQuery(n, lam, model=model,
                                  design_density=density, **yield_kwargs)
                   for n, lam in points]
        served = _serve(queries, max_batch_size=max_batch_size)
        for (n, lam), result in zip(points, served):
            try:
                want = model.evaluate(
                    n_transistors=n, feature_size_um=lam,
                    design_density=density, **yield_kwargs)
            except ParameterError:
                # Scalar path raises when the die does not fit; the
                # service masks to an infeasible cell instead.
                assert not result.feasible
                assert math.isinf(result.cost_per_transistor_dollars)
                continue
            assert result.feasible
            assert result.cost_per_transistor_dollars \
                == want.cost_per_transistor_dollars
            assert result.yield_value == want.yield_value
            assert result.wafer_cost_dollars == want.wafer_cost_dollars
            assert result.die_area_cm2 == want.die_area_cm2
            assert result.dies_per_wafer == want.dies_per_wafer


class TestAsyncParity:
    def test_async_path_bitwise_equals_sync_path(self):
        import asyncio

        from repro.serve import AsyncCostService
        points = [(1e5 * (i + 1), 0.3 + 0.05 * i) for i in range(20)]
        queries = [FabCostQuery(n, lam) for n, lam in points]
        sync_served = _serve(queries, max_batch_size=6)

        async def run():
            async with AsyncCostService(max_batch_size=6,
                                        max_wait_s=0.001,
                                        cache=BatchCache()) as svc:
                return await svc.map(queries)

        async_served = asyncio.run(run())
        assert sync_served == async_served
        for (n, lam), result in zip(points, sync_served):
            _assert_bitwise(result, transistor_cost_full(n, lam))


class TestExecutionMatrixParity:
    """PR-5 quantifiers: backend choice, worker count, shm chunk size,
    and the adaptive tick must all be bitwise invisible."""

    @settings(max_examples=8, deadline=None)
    @given(points=st.lists(point_strategy, min_size=4, max_size=24),
           workers=st.integers(min_value=1, max_value=3),
           chunk_size=st.integers(min_value=1, max_value=7),
           max_batch_size=st.integers(min_value=2, max_value=16))
    def test_process_backend_matches_thread_backend(
            self, points, workers, chunk_size, max_batch_size):
        queries = [FabCostQuery(n, lam) for n, lam in points]
        reference = _serve(queries, backend="thread", workers=1)
        process = _serve(queries, backend="process", workers=workers,
                         chunk_size=chunk_size,
                         max_batch_size=max_batch_size)
        assert process == reference
        for (n, lam), result in zip(points, reference):
            _assert_bitwise(result, transistor_cost_full(n, lam))

    @settings(max_examples=8, deadline=None)
    @given(points=st.lists(point_strategy, min_size=2, max_size=20),
           lo=st.floats(min_value=1e-5, max_value=1e-3),
           span=st.floats(min_value=1.0, max_value=50.0))
    def test_adaptive_tick_matches_fixed_tick(self, points, lo, span):
        queries = [FabCostQuery(n, lam) for n, lam in points]
        fixed = _serve(queries, max_batch_size=4)
        adaptive = _serve(queries, max_batch_size=4, adaptive=True,
                          wait_bounds=(lo, lo * span))
        assert adaptive == fixed

    def test_model_queries_cross_the_process_boundary_bitwise(self):
        # ModelCostQuery exemplars (model + yield law) are pickled to
        # the pool; the answers must still match the scalar evaluate().
        model = TransistorCostModel(
            wafer_cost=WaferCostModel(reference_cost_dollars=640.0,
                                      cost_growth_rate=1.7),
            wafer=Wafer(radius_cm=7.5))
        law = ReferenceAreaYield(reference_yield=0.8,
                                 reference_area_cm2=1.0)
        points = [(1e5 * (i + 1), 0.35 + 0.04 * i) for i in range(25)]
        queries = [ModelCostQuery(n, lam, model=model,
                                  design_density=120.0, yield_model=law)
                   for n, lam in points]
        served = _serve(queries, backend="process", workers=2,
                        chunk_size=4, max_batch_size=32)
        for (n, lam), result in zip(points, served):
            want = model.evaluate(n_transistors=n, feature_size_um=lam,
                                  design_density=120.0, yield_model=law)
            assert result.cost_per_transistor_dollars \
                == want.cost_per_transistor_dollars
            assert result.yield_value == want.yield_value
            assert result.dies_per_wafer == want.dies_per_wafer
