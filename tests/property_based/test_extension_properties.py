"""Property-based tests for the extension modules."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import LearningCurvePrice, MarginModel, ShrinkAnalysis
from repro.geometry import Die, Wafer, best_aspect_ratio, dies_per_wafer_maly
from repro.manufacturing import BottomUpWaferCost, erlang_c
from repro.manufacturing.test_cost import TestEconomics
from repro.yieldsim import YieldLearningCurve


class TestLearningCurveProperties:
    @given(d0=st.floats(min_value=0.5, max_value=50.0),
           floor_frac=st.floats(min_value=0.01, max_value=0.99),
           tau=st.floats(min_value=0.5, max_value=36.0),
           t1=st.floats(min_value=0.0, max_value=100.0),
           t2=st.floats(min_value=0.0, max_value=100.0))
    def test_density_monotone_and_bounded(self, d0, floor_frac, tau, t1, t2):
        assume(t1 < t2)
        curve = YieldLearningCurve(d0, d0 * floor_frac, tau)
        da, db = curve.density(t1), curve.density(t2)
        assert da >= db
        assert d0 * floor_frac <= db <= d0

    @given(d0=st.floats(min_value=0.5, max_value=20.0),
           tau=st.floats(min_value=1.0, max_value=24.0),
           factor=st.floats(min_value=1.0, max_value=10.0),
           t=st.floats(min_value=0.1, max_value=60.0))
    def test_faster_learning_never_dirtier(self, d0, tau, factor, t):
        curve = YieldLearningCurve(d0, 0.1, tau)
        fast = curve.accelerated(factor)
        assert fast.density(t) <= curve.density(t) + 1e-12


class TestPricingProperties:
    @given(p1=st.floats(min_value=0.01, max_value=1e6),
           rate=st.floats(min_value=0.05, max_value=0.95),
           q1=st.floats(min_value=1.0, max_value=1e12),
           q2=st.floats(min_value=1.0, max_value=1e12))
    def test_price_monotone_decreasing_in_volume(self, p1, rate, q1, q2):
        assume(q1 < q2)
        price = LearningCurvePrice(p1, rate)
        assert price.price(q1) >= price.price(q2)

    @given(p1=st.floats(min_value=0.01, max_value=1e6),
           rate=st.floats(min_value=0.05, max_value=0.95),
           q=st.floats(min_value=1.0, max_value=1e9))
    def test_doubling_law_exact(self, p1, rate, q):
        price = LearningCurvePrice(p1, rate)
        assert price.price(2.0 * q) == price.price(q) * rate \
            or abs(price.price(2.0 * q) - price.price(q) * rate) \
            < 1e-9 * price.price(q)

    @given(price=st.floats(min_value=0.1, max_value=1e5),
           cost=st.floats(min_value=0.1, max_value=1e5))
    def test_margin_and_markup_consistent(self, price, cost):
        m = MarginModel(price, cost)
        assert abs(m.gross_margin - (1.0 - 1.0 / m.markup)) < 1e-9


class TestTestEconomicsProperties:
    @given(y=st.floats(min_value=0.05, max_value=0.99),
           c1=st.floats(min_value=0.0, max_value=1.0),
           c2=st.floats(min_value=0.0, max_value=1.0))
    def test_defect_level_monotone_in_coverage(self, y, c1, c2):
        assume(c1 < c2)
        low = TestEconomics(yield_value=y, fault_coverage=c1)
        high = TestEconomics(yield_value=y, fault_coverage=c2)
        assert high.defect_level <= low.defect_level + 1e-12

    @given(y=st.floats(min_value=0.05, max_value=0.99),
           c=st.floats(min_value=0.0, max_value=1.0))
    def test_defect_level_in_unit_interval(self, y, c):
        econ = TestEconomics(yield_value=y, fault_coverage=c)
        assert 0.0 <= econ.defect_level < 1.0
        assert y <= econ.shipped_fraction() <= 1.0


class TestQueueProperties:
    @given(servers=st.integers(min_value=1, max_value=24),
           rho=st.floats(min_value=0.01, max_value=0.98))
    def test_erlang_c_is_probability(self, servers, rho):
        p = erlang_c(servers, rho * servers)
        assert 0.0 <= p <= 1.0

    @given(servers=st.integers(min_value=1, max_value=12),
           rho1=st.floats(min_value=0.05, max_value=0.95),
           rho2=st.floats(min_value=0.05, max_value=0.95))
    def test_erlang_c_monotone_in_load(self, servers, rho1, rho2):
        assume(rho1 < rho2)
        assert erlang_c(servers, rho1 * servers) <= \
            erlang_c(servers, rho2 * servers) + 1e-12


class TestBottomUpProperties:
    @settings(max_examples=25)
    @given(lam1=st.floats(min_value=0.3, max_value=1.5),
           lam2=st.floats(min_value=0.3, max_value=1.5))
    def test_wafer_cost_monotone_in_shrink(self, lam1, lam2):
        assume(lam1 < lam2)
        model = BottomUpWaferCost()
        assert model.cost(lam1) >= model.cost(lam2)

    @settings(max_examples=25)
    @given(growth=st.floats(min_value=1.0, max_value=2.5))
    def test_facility_growth_raises_implied_x(self, growth):
        base = BottomUpWaferCost()
        import dataclasses
        tweaked = dataclasses.replace(
            base, facility_growth_per_generation=growth)
        if growth >= base.facility_growth_per_generation:
            assert tweaked.effective_growth_rate() >= \
                base.effective_growth_rate() - 1e-9


class TestAspectRatioProperties:
    @settings(max_examples=25)
    @given(area=st.floats(min_value=0.3, max_value=6.0))
    def test_best_ratio_at_least_square_packing(self, area):
        wafer = Wafer(radius_cm=7.5)
        _, best = best_aspect_ratio(wafer, area)
        square = dies_per_wafer_maly(wafer, Die.from_area(area))
        assert best >= square


class TestShrinkProperties:
    @settings(max_examples=20)
    @given(n_tr=st.floats(min_value=1e5, max_value=3e6),
           dd=st.floats(min_value=30.0, max_value=400.0),
           lam=st.floats(min_value=0.4, max_value=1.2))
    def test_cost_positive_when_feasible(self, n_tr, dd, lam):
        analysis = ShrinkAnalysis(n_transistors=n_tr, design_density=dd,
                                  mature_density_per_cm2=0.5)
        try:
            cost = analysis.cost_per_transistor(lam)
        except Exception:
            return  # infeasible combinations are allowed to raise
        assert cost > 0.0 and math.isfinite(cost)

    @settings(max_examples=20)
    @given(d_dirty=st.floats(min_value=1.0, max_value=10.0))
    def test_dirtier_process_never_cheaper(self, d_dirty):
        analysis = ShrinkAnalysis(n_transistors=1e6, design_density=150.0,
                                  mature_density_per_cm2=0.5)
        clean = analysis.cost_per_transistor(0.8, 0.5)
        dirty = analysis.cost_per_transistor(0.8, 0.5 + d_dirty)
        assert dirty >= clean
