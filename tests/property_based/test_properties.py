"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import GenerationModel, WaferCostModel
from repro.core.optimization import FabCharacterization, transistor_cost_full
from repro.geometry import (
    Die,
    Wafer,
    dies_per_wafer_area_approx,
    dies_per_wafer_maly,
)
from repro.manufacturing import VolumeCostCurve
from repro.yieldsim import (
    BoseEinsteinYield,
    DefectSizeDistribution,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    RedundantMemoryYield,
    SeedsYield,
)

lam_st = st.floats(min_value=0.2, max_value=3.0)
area_st = st.floats(min_value=1e-3, max_value=10.0)
density_st = st.floats(min_value=0.0, max_value=20.0)
m_st = st.floats(min_value=0.0, max_value=100.0)


class TestYieldModelProperties:
    @given(m=m_st)
    def test_classical_ordering_everywhere(self, m):
        p = PoissonYield().yield_from_expectation(m)
        mu = MurphyYield().yield_from_expectation(m)
        s = SeedsYield().yield_from_expectation(m)
        assert p <= mu + 1e-12
        assert mu <= s + 1e-12

    @given(m=m_st, alpha=st.floats(min_value=0.1, max_value=50.0))
    def test_negative_binomial_between_poisson_and_unity(self, m, alpha):
        y = NegativeBinomialYield(alpha=alpha).yield_from_expectation(m)
        p = PoissonYield().yield_from_expectation(m)
        assert p - 1e-12 <= y <= 1.0

    @given(m1=m_st, m2=m_st)
    def test_monotone_in_expectation(self, m1, m2):
        assume(m1 < m2)
        for model in (PoissonYield(), MurphyYield(), SeedsYield(),
                      BoseEinsteinYield(n_layers=4),
                      NegativeBinomialYield(alpha=1.5)):
            assert model.yield_from_expectation(m1) >= \
                model.yield_from_expectation(m2)

    @given(area=area_st, d=density_st,
           target=st.floats(min_value=0.01, max_value=0.99))
    def test_density_inversion_roundtrip(self, area, d, target):
        model = MurphyYield()
        density = model.defect_density_for_yield(area, target)
        assert model.yield_for_area(area, density) == \
            math.inf if False else True
        assert abs(model.yield_for_area(area, density) - target) < 1e-6


class TestDefectDistributionProperties:
    @given(r0=st.floats(min_value=0.01, max_value=5.0),
           p=st.floats(min_value=1.5, max_value=8.0),
           r=st.floats(min_value=0.0, max_value=100.0))
    def test_cdf_in_unit_interval(self, r0, p, r):
        dist = DefectSizeDistribution(r0_um=r0, p=p)
        c = float(dist.cdf(r))
        assert -1e-12 <= c <= 1.0 + 1e-12

    @given(r0=st.floats(min_value=0.01, max_value=5.0),
           p=st.floats(min_value=1.5, max_value=8.0),
           r1=st.floats(min_value=0.0, max_value=50.0),
           r2=st.floats(min_value=0.0, max_value=50.0))
    def test_cdf_monotone(self, r0, p, r1, r2):
        assume(r1 < r2)
        dist = DefectSizeDistribution(r0_um=r0, p=p)
        assert float(dist.cdf(r1)) <= float(dist.cdf(r2)) + 1e-12

    @given(r0=st.floats(min_value=0.05, max_value=2.0),
           p=st.floats(min_value=2.2, max_value=6.0))
    def test_mean_positive_and_above_mode_fraction(self, r0, p):
        dist = DefectSizeDistribution(r0_um=r0, p=p)
        mean = dist.mean_um()
        assert mean > 0.0
        # Mean exceeds a third of the mode radius (mass below R0 alone
        # contributes c*R0/3 and c <= 2).
        assert mean > r0 / 6.0


class TestGeometryProperties:
    @given(side=st.floats(min_value=0.2, max_value=4.0),
           radius=st.floats(min_value=3.0, max_value=15.0))
    def test_count_bounded_by_area(self, side, radius):
        wafer = Wafer(radius_cm=radius)
        die = Die.square(side)
        count = dies_per_wafer_maly(wafer, die)
        assert 0 <= count <= wafer.area_cm2 / die.area_cm2

    @given(side=st.floats(min_value=0.2, max_value=2.0),
           radius=st.floats(min_value=4.0, max_value=12.0))
    def test_gross_approx_upper_bounds_maly(self, side, radius):
        wafer = Wafer(radius_cm=radius)
        die = Die.square(side)
        assert dies_per_wafer_maly(wafer, die) <= \
            dies_per_wafer_area_approx(wafer, die, kind="gross")

    @given(side=st.floats(min_value=0.2, max_value=2.0),
           radius=st.floats(min_value=4.0, max_value=12.0),
           scale=st.floats(min_value=0.5, max_value=2.0))
    def test_scale_invariance(self, side, radius, scale):
        """Scaling die and wafer together leaves the count unchanged up
        to floor-function jitter at cell boundaries (float rounding can
        tip a marginal die in or out of a row)."""
        base = dies_per_wafer_maly(Wafer(radius_cm=radius), Die.square(side))
        scaled = dies_per_wafer_maly(Wafer(radius_cm=radius * scale),
                                     Die.square(side * scale))
        assert abs(base - scaled) <= max(2, int(0.02 * max(base, scaled)))

    @given(side=st.floats(min_value=0.3, max_value=2.0),
           r1=st.floats(min_value=4.0, max_value=9.0),
           r2=st.floats(min_value=4.0, max_value=9.0))
    def test_monotone_in_radius(self, side, r1, r2):
        assume(r1 < r2)
        die = Die.square(side)
        assert dies_per_wafer_maly(Wafer(radius_cm=r1), die) <= \
            dies_per_wafer_maly(Wafer(radius_cm=r2), die)


class TestWaferCostProperties:
    @given(lam=lam_st, x=st.floats(min_value=1.0, max_value=3.0))
    def test_cost_positive(self, lam, x):
        model = WaferCostModel(cost_growth_rate=x)
        assert model.pure_cost(lam) > 0.0

    @given(lam1=lam_st, lam2=lam_st,
           x=st.floats(min_value=1.01, max_value=3.0))
    def test_monotone_decreasing_in_lambda(self, lam1, lam2, x):
        assume(lam1 < lam2)
        model = WaferCostModel(cost_growth_rate=x)
        assert model.pure_cost(lam1) >= model.pure_cost(lam2)

    @given(lam=st.floats(min_value=0.2, max_value=0.999),
           x1=st.floats(min_value=1.0, max_value=3.0),
           x2=st.floats(min_value=1.0, max_value=3.0))
    def test_monotone_in_x_below_reference(self, lam, x1, x2):
        assume(x1 < x2)
        m1 = WaferCostModel(cost_growth_rate=x1)
        m2 = WaferCostModel(cost_growth_rate=x2)
        # <= up to one ulp of rounding when x1 and x2 are adjacent floats.
        assert m1.pure_cost(lam) <= m2.pure_cost(lam) * (1.0 + 1e-12)

    @given(lam=lam_st)
    def test_generation_laws_agree_at_reference(self, lam):
        for law in GenerationModel:
            model = WaferCostModel(generation_model=law)
            assert model.pure_cost(1.0) == model.reference_cost_dollars


class TestVolumeCurveProperties:
    @given(pure=st.floats(min_value=1.0, max_value=1e4),
           over=st.floats(min_value=0.0, max_value=1e9),
           v1=st.floats(min_value=1.0, max_value=1e7),
           v2=st.floats(min_value=1.0, max_value=1e7))
    def test_monotone_decreasing_in_volume(self, pure, over, v1, v2):
        assume(v1 < v2)
        curve = VolumeCostCurve(pure, over)
        assert curve.cost(v1) >= curve.cost(v2)

    @given(pure=st.floats(min_value=1.0, max_value=1e4),
           over=st.floats(min_value=1.0, max_value=1e9),
           v=st.floats(min_value=1.0, max_value=1e7))
    def test_cost_above_pure_floor(self, pure, over, v):
        curve = VolumeCostCurve(pure, over)
        assert curve.cost(v) > pure


class TestRedundancyProperties:
    @given(area=st.floats(min_value=0.05, max_value=3.0),
           d=st.floats(min_value=0.0, max_value=10.0),
           spares=st.integers(min_value=0, max_value=20),
           blocks=st.integers(min_value=1, max_value=64))
    def test_repair_never_hurts(self, area, d, spares, blocks):
        mem = RedundantMemoryYield(array_area_cm2=area, n_blocks=blocks,
                                   spares_per_block=spares)
        assert mem.yield_for_density(d) >= mem.unrepaired_yield(d) - 1e-12

    @given(area=st.floats(min_value=0.05, max_value=3.0),
           d=st.floats(min_value=0.0, max_value=10.0),
           spares=st.integers(min_value=0, max_value=10))
    def test_yield_in_unit_interval(self, area, d, spares):
        mem = RedundantMemoryYield(array_area_cm2=area, n_blocks=4,
                                   spares_per_block=spares)
        y = mem.yield_for_density(d)
        assert 0.0 <= y <= 1.0


class TestFullCostProperties:
    @settings(max_examples=40)
    @given(n_tr=st.floats(min_value=1e5, max_value=2e6),
           lam=st.floats(min_value=0.4, max_value=1.5))
    def test_cost_positive_or_infeasible(self, n_tr, lam):
        c = transistor_cost_full(n_tr, lam)
        assert c > 0.0  # inf counts as positive

    @settings(max_examples=40)
    @given(n_tr=st.floats(min_value=1e5, max_value=1e6),
           lam=st.floats(min_value=0.5, max_value=1.5),
           scale=st.floats(min_value=1.1, max_value=2.0))
    def test_cheaper_fab_cheaper_transistors(self, n_tr, lam, scale):
        base = FabCharacterization()
        dearer = FabCharacterization(
            reference_cost_dollars=base.reference_cost_dollars * scale)
        c_base = transistor_cost_full(n_tr, lam, base)
        c_dear = transistor_cost_full(n_tr, lam, dearer)
        assume(math.isfinite(c_base))
        assert c_dear >= c_base
