"""Property-based parity: :mod:`repro.batch` vs the scalar reference.

The batch engine's contract (see its module docstring): integer and
mask outputs — dies per wafer, feasibility — match the scalar path
bit-for-bit; float outputs that pass through libm-vs-SIMD
transcendentals match to 1e-12 relative.  Hypothesis sweeps feature
size, transistor count, wafer radius, aspect ratio and all four
:class:`~repro.core.wafer_cost.GenerationModel` laws.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    dies_per_wafer_batch,
    evaluate_batch,
    transistor_cost_batch,
    wafer_cost_batch,
)
from repro.batch.engine import generations_batch
from repro.core import GenerationModel, TransistorCostModel, WaferCostModel
from repro.core.optimization import FabCharacterization, transistor_cost_full
from repro.errors import ParameterError
from repro.geometry import Die, Wafer, dies_per_wafer_maly

RTOL = 1e-12

lam_strategy = st.floats(min_value=0.25, max_value=3.0)
ntr_strategy = st.floats(min_value=1e4, max_value=1e9)
radius_strategy = st.floats(min_value=3.0, max_value=12.0)
aspect_strategy = st.floats(min_value=0.3, max_value=3.0)
laws = st.sampled_from(list(GenerationModel))


class TestFullModelParity:
    @settings(max_examples=60, deadline=None)
    @given(lams=st.lists(lam_strategy, min_size=1, max_size=4),
           ntrs=st.lists(ntr_strategy, min_size=1, max_size=4),
           radius=radius_strategy,
           growth=st.floats(min_value=1.05, max_value=2.5),
           density=st.floats(min_value=10.0, max_value=400.0),
           defect=st.floats(min_value=0.1, max_value=5.0),
           p=st.floats(min_value=1.0, max_value=5.0))
    def test_matches_transistor_cost_full(self, lams, ntrs, radius,
                                          growth, density, defect, p):
        fab = FabCharacterization(
            cost_growth_rate=growth, wafer_radius_cm=radius,
            design_density=density, defect_coefficient=defect,
            size_exponent_p=p)
        lam_arr = np.asarray(lams)
        ntr_arr = np.asarray(ntrs)
        result = transistor_cost_batch(ntr_arr[:, None], lam_arr[None, :],
                                       fab, cache=None)
        for i, n_tr in enumerate(ntrs):
            for j, lam in enumerate(lams):
                scalar = transistor_cost_full(n_tr, lam, fab)
                batch = float(result.cost_per_transistor_dollars[i, j])
                if math.isinf(scalar):
                    assert math.isinf(batch)
                    assert not result.feasible[i, j]
                else:
                    assert result.feasible[i, j]
                    assert math.isclose(scalar, batch, rel_tol=RTOL)

    @settings(max_examples=60, deadline=None)
    @given(lam=lam_strategy, ntr=ntr_strategy, radius=radius_strategy,
           aspect=aspect_strategy,
           density=st.floats(min_value=10.0, max_value=400.0),
           yield_value=st.floats(min_value=1e-6, max_value=1.0),
           growth=st.floats(min_value=1.05, max_value=2.5))
    def test_matches_model_evaluate(self, lam, ntr, radius, aspect,
                                    density, yield_value, growth):
        model = TransistorCostModel(
            wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                      cost_growth_rate=growth),
            wafer=Wafer(radius_cm=radius))
        result = evaluate_batch(
            model, n_transistors=np.array([ntr]),
            feature_sizes_um=np.array([lam]), design_density=density,
            yield_value=yield_value, aspect_ratio=aspect, cache=None)
        try:
            scalar = model.evaluate(
                n_transistors=ntr, feature_size_um=lam,
                design_density=density, yield_value=yield_value,
                aspect_ratio=aspect)
        except ParameterError:
            # Scalar path raises when the die does not fit; the batch
            # path masks the cell as infeasible instead.
            assert not result.feasible[0]
            assert math.isinf(result.cost_per_transistor_dollars[0])
            return
        assert result.feasible[0]
        assert int(result.dies_per_wafer[0]) == scalar.dies_per_wafer
        assert float(result.die_area_cm2[0]) == scalar.die_area_cm2
        assert math.isclose(float(result.wafer_cost_dollars[0]),
                            scalar.wafer_cost_dollars, rel_tol=RTOL)
        assert float(result.yield_value[0]) == scalar.yield_value
        assert math.isclose(float(result.cost_per_transistor_dollars[0]),
                            scalar.cost_per_transistor_dollars, rel_tol=RTOL)


class TestSubmodelParity:
    @settings(max_examples=80, deadline=None)
    @given(law=laws, lams=st.lists(lam_strategy, min_size=1, max_size=6),
           growth=st.floats(min_value=1.05, max_value=2.5),
           c0=st.floats(min_value=50.0, max_value=5000.0))
    def test_wafer_cost_all_generation_laws(self, law, lams, growth, c0):
        model = WaferCostModel(reference_cost_dollars=c0,
                               cost_growth_rate=growth,
                               generation_model=law)
        lam_arr = np.asarray(lams)
        g = generations_batch(lam_arr, model.reference_feature_um,
                              model=law)
        costs = wafer_cost_batch(model, lam_arr, cache=None)
        for k, lam in enumerate(lams):
            assert math.isclose(float(g[k]),
                                law.generations(
                                    lam, model.reference_feature_um),
                                rel_tol=RTOL, abs_tol=1e-15)
            assert math.isclose(float(costs[k]), model.pure_cost(lam),
                                rel_tol=RTOL)

    @settings(max_examples=80, deadline=None)
    @given(radius=radius_strategy,
           areas=st.lists(st.floats(min_value=0.005, max_value=400.0),
                          min_size=1, max_size=6),
           aspect=aspect_strategy)
    def test_dies_per_wafer_bitwise(self, radius, areas, aspect):
        wafer = Wafer(radius_cm=radius)
        dies = [Die.from_area(a, aspect_ratio=aspect) for a in areas]
        counts = dies_per_wafer_batch(
            wafer, [d.width_cm for d in dies], [d.height_cm for d in dies],
            cache=None)
        expected = [dies_per_wafer_maly(wafer, d) for d in dies]
        assert counts.tolist() == expected
