"""Property-based tests for the planning modules (budget, spatial,
investment)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.manufacturing import FabInvestment, npv
from repro.yieldsim import (
    LayerDefectivity,
    RadialDefectProfile,
    allocate_cleaning,
)
from repro.yieldsim.budget import total_density

layer_st = st.builds(
    LayerDefectivity,
    name=st.sampled_from(["a", "b", "c", "d", "e"]),
    density_per_cm2=st.floats(min_value=0.01, max_value=5.0),
    cost_per_decade_dollars=st.floats(min_value=1e5, max_value=1e8),
)


class TestBudgetProperties:
    @settings(max_examples=60)
    @given(layers=st.lists(layer_st, min_size=1, max_size=6, unique_by=lambda l: l.name),
           budget_frac=st.floats(min_value=0.05, max_value=0.95))
    def test_allocation_meets_budget_and_monotone(self, layers, budget_frac):
        layers = tuple(layers)
        budget = total_density(layers) * budget_frac
        allocations = allocate_cleaning(layers, budget)
        achieved = sum(a.target_density_per_cm2 for a in allocations)
        assert achieved <= budget * (1.0 + 1e-9)
        for a in allocations:
            # Never dirtier; never negative densities.
            assert 0.0 < a.target_density_per_cm2 \
                <= a.layer.density_per_cm2 + 1e-12
            assert a.cleaning_cost_dollars >= -1e-9

    @settings(max_examples=40)
    @given(layers=st.lists(layer_st, min_size=2, max_size=5, unique_by=lambda l: l.name),
           f1=st.floats(min_value=0.1, max_value=0.9),
           f2=st.floats(min_value=0.1, max_value=0.9))
    def test_tighter_budget_never_cheaper(self, layers, f1, f2):
        assume(abs(f1 - f2) > 0.02)
        layers = tuple(layers)
        total = total_density(layers)
        lo_frac, hi_frac = min(f1, f2), max(f1, f2)
        cost_tight = sum(a.cleaning_cost_dollars
                         for a in allocate_cleaning(layers, total * lo_frac))
        cost_loose = sum(a.cleaning_cost_dollars
                         for a in allocate_cleaning(layers, total * hi_frac))
        assert cost_tight >= cost_loose - 1e-6


class TestSpatialProperties:
    @given(d0=st.floats(min_value=0.05, max_value=5.0),
           g=st.floats(min_value=0.0, max_value=4.0),
           r_frac=st.floats(min_value=0.0, max_value=1.0))
    def test_density_between_center_and_edge(self, d0, g, r_frac):
        profile = RadialDefectProfile(d0, g)
        d = profile.density_at(r_frac * 7.5, 7.5)
        assert d0 - 1e-12 <= d <= d0 * (1.0 + g) + 1e-12

    @given(d0=st.floats(min_value=0.05, max_value=5.0),
           g=st.floats(min_value=0.0, max_value=4.0))
    def test_mean_density_between_extremes(self, d0, g):
        profile = RadialDefectProfile(d0, g)
        mean = profile.mean_density(7.5)
        assert d0 <= mean <= d0 * (1.0 + g) + 1e-12


class TestInvestmentProperties:
    @settings(max_examples=40)
    @given(capital=st.floats(min_value=1e8, max_value=5e9),
           volume=st.floats(min_value=1e4, max_value=5e5),
           margin=st.floats(min_value=100.0, max_value=5e3),
           rate=st.floats(min_value=0.0, max_value=0.5))
    def test_npv_decreasing_in_rate(self, capital, volume, margin, rate):
        fab = FabInvestment(construction_cost_dollars=capital,
                            wafers_per_year=volume,
                            margin_per_wafer_dollars=margin)
        assert fab.npv(rate) >= fab.npv(rate + 0.05) - 1e-6

    @settings(max_examples=40)
    @given(capital=st.floats(min_value=1e8, max_value=5e9),
           volume=st.floats(min_value=1e4, max_value=5e5),
           margin=st.floats(min_value=100.0, max_value=5e3))
    def test_irr_zeroes_npv(self, capital, volume, margin):
        fab = FabInvestment(construction_cost_dollars=capital,
                            wafers_per_year=volume,
                            margin_per_wafer_dollars=margin)
        try:
            rate = fab.irr()
        except Exception:
            return  # unbracketed IRR (hopeless or absurd projects)
        assert abs(fab.npv(rate)) < max(1e-4 * capital, 1.0)

    @settings(max_examples=30)
    @given(margin=st.floats(min_value=200.0, max_value=5e3),
           erosion=st.floats(min_value=0.0, max_value=0.5))
    def test_erosion_never_helps(self, margin, erosion):
        base = FabInvestment(construction_cost_dollars=1e9,
                             wafers_per_year=1.2e5,
                             margin_per_wafer_dollars=margin)
        eroding = FabInvestment(construction_cost_dollars=1e9,
                                wafers_per_year=1.2e5,
                                margin_per_wafer_dollars=margin,
                                margin_erosion_per_year=erosion)
        assert eroding.npv(0.1) <= base.npv(0.1) + 1e-6
