"""Property-based parity for :mod:`repro.batch.sweep`.

The sweep engine's headline contract: tiling is **invisible**.  For
any tile size, worker count, backend, and kill/resume split, the
result grid is bitwise identical to the sequential full-grid
evaluation (``CostLandscape.grid()`` for the Fig.-8 spec).  Hypothesis
drives all four degrees of freedom; the assertions are
``np.array_equal`` — exact float equality including the inf cells of
infeasible regions, never ``allclose``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.sweep import FabCostSweep, SweepPlan, TiledSweepRunner
from repro.core.optimization import FIG8_FAB, CostLandscape

COUNTS = np.geomspace(1e5, 1e7, 13)
LAMS = np.linspace(0.3, 2.0, 19)

#: The parity reference: the sequential full-grid evaluation every
#: tiled/pooled/resumed variant must reproduce bit-for-bit.
REFERENCE = CostLandscape(fab=FIG8_FAB, feature_sizes_um=LAMS,
                          transistor_counts=COUNTS).grid()


class TestTilingInvariance:
    @settings(max_examples=40, deadline=None)
    @given(tile_size=st.integers(min_value=1, max_value=300))
    def test_any_tile_size_is_bitwise(self, tile_size):
        result = TiledSweepRunner(tile_size=tile_size).run(
            FabCostSweep(), COUNTS, LAMS)
        assert np.array_equal(result.values, REFERENCE)

    @settings(max_examples=20, deadline=None)
    @given(tile_size=st.integers(min_value=5, max_value=120),
           workers=st.integers(min_value=2, max_value=4))
    def test_thread_pool_is_bitwise(self, tile_size, workers):
        with TiledSweepRunner(backend="thread", workers=workers,
                              tile_size=tile_size) as runner:
            result = runner.run(FabCostSweep(), COUNTS, LAMS)
        assert np.array_equal(result.values, REFERENCE)

    @settings(max_examples=6, deadline=None)
    @given(tile_size=st.integers(min_value=20, max_value=150),
           workers=st.integers(min_value=2, max_value=3))
    def test_process_pool_is_bitwise(self, tile_size, workers):
        with TiledSweepRunner(backend="process", workers=workers,
                              tile_size=tile_size) as runner:
            result = runner.run(FabCostSweep(), COUNTS, LAMS)
        assert np.array_equal(result.values, REFERENCE)

    @settings(max_examples=15, deadline=None)
    @given(tile_size=st.integers(min_value=1, max_value=200),
           data=st.data())
    def test_interrupt_anywhere_then_resume_is_bitwise(self, tmp_path_factory,
                                                       tile_size, data):
        plan = SweepPlan.for_grid(COUNTS.size, LAMS.size, tile_size)
        stop_after = data.draw(
            st.integers(min_value=1, max_value=plan.n_tiles),
            label="stop_after")
        ckpt = tmp_path_factory.mktemp("sweep")

        class Stop(Exception):
            pass

        def hook(tile, done, total):
            if done >= stop_after:
                raise Stop

        try:
            TiledSweepRunner(tile_size=tile_size,
                             checkpoint_dir=ckpt).run(
                FabCostSweep(), COUNTS, LAMS, on_tile=hook)
            interrupted = False
        except Stop:
            interrupted = True
        result = TiledSweepRunner(tile_size=tile_size, checkpoint_dir=ckpt,
                                  resume=True).run(
            FabCostSweep(), COUNTS, LAMS)
        assert np.array_equal(result.values, REFERENCE)
        if interrupted:
            assert result.stats["tiles_resumed"] == stop_after
            assert result.stats["tiles_computed"] == \
                plan.n_tiles - stop_after
        else:
            # stop_after == n_tiles: the first run finished.
            assert result.stats["tiles_resumed"] == plan.n_tiles

    @settings(max_examples=10, deadline=None)
    @given(tile_size=st.integers(min_value=1, max_value=300),
           workers=st.integers(min_value=1, max_value=3),
           backend=st.sampled_from(["auto", "thread", "process"]))
    def test_landscape_grid_knobs_are_bitwise(self, tile_size, workers,
                                              backend):
        landscape = CostLandscape(fab=FIG8_FAB, feature_sizes_um=LAMS,
                                  transistor_counts=COUNTS)
        tiled = landscape.grid(workers=workers, backend=backend,
                               tile_size=tile_size)
        assert np.array_equal(tiled, REFERENCE)
