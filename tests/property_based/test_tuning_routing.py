"""Property-based guarantees for the tuned backend and its artifacts.

Three quantified claims close the self-tuning loop:

* a ``backend="tuned"`` scheduler whose profile assigns every
  signature the same threshold routes *identically* to a hand-set
  ``backend="auto"`` scheduler with that ``process_threshold`` — and
  both serve bitwise-equal results;
* a :class:`~repro.serve.tuning.TuningProfile` survives its JSON
  persistence round-trip exactly, whatever the learner put in it;
* the recorded-query codec preserves the coalescing signature and the
  design point, so replayed traffic groups exactly like the original.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.cache import BatchCache
from repro.core.optimization import transistor_cost_full
from repro.obs.recording import query_to_record, record_to_query
from repro.serve import CostService, FabCostQuery, MicroBatchScheduler
from repro.serve.tuning import (
    NEVER_PROCESS,
    SignatureTuning,
    TuningProfile,
    signature_key,
)

lam_strategy = st.floats(min_value=0.25, max_value=3.0)
ntr_strategy = st.floats(min_value=1e4, max_value=1e9)
point_strategy = st.tuples(ntr_strategy, lam_strategy)

tuning_strategy = st.builds(
    SignatureTuning,
    process_threshold=st.one_of(
        st.integers(min_value=1, max_value=10**6),
        st.just(NEVER_PROCESS)),
    chunk_size=st.one_of(st.none(),
                         st.integers(min_value=1, max_value=10**5)),
    thread_s_per_point=st.one_of(
        st.none(), st.floats(min_value=1e-9, max_value=1.0)),
    process_s_per_point=st.one_of(
        st.none(), st.floats(min_value=1e-9, max_value=1.0)),
    process_overhead_s=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=10.0)),
    samples=st.integers(min_value=0, max_value=10**4),
    label=st.text(max_size=20))

profile_strategy = st.builds(
    TuningProfile,
    default_process_threshold=st.integers(min_value=1, max_value=10**6),
    default_chunk_size=st.one_of(st.none(),
                                 st.integers(min_value=1, max_value=10**5)),
    signatures=st.dictionaries(st.text(min_size=1, max_size=16),
                               tuning_strategy, max_size=5),
    meta=st.dictionaries(st.text(min_size=1, max_size=10),
                         st.one_of(st.integers(), st.text(max_size=10)),
                         max_size=3))


class TestTunedEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(points=st.lists(point_strategy, min_size=2, max_size=20),
           threshold=st.integers(min_value=1, max_value=16),
           max_batch_size=st.integers(min_value=2, max_value=16))
    def test_uniform_profile_matches_hand_set_auto(self, points,
                                                   threshold,
                                                   max_batch_size):
        queries = [FabCostQuery(n, lam) for n, lam in points]
        keys = {signature_key(q.signature()) for q in queries}
        profile = TuningProfile(
            default_process_threshold=threshold,
            signatures={key: SignatureTuning(process_threshold=threshold)
                        for key in keys})

        def serve(**kwargs):
            with CostService(max_batch_size=max_batch_size,
                             max_wait_s=0.001, workers=2,
                             cache=BatchCache(), **kwargs) as svc:
                return svc.map(queries)

        auto = serve(backend="auto", process_threshold=threshold)
        tuned = serve(backend="tuned", profile=profile)
        assert tuned == auto
        for (n, lam), result in zip(points, auto):
            want = transistor_cost_full(n, lam)
            got = result.cost_per_transistor_dollars
            assert got == want or (math.isinf(got) and math.isinf(want))

    @settings(max_examples=20, deadline=None)
    @given(n_points=st.integers(min_value=1, max_value=4096),
           threshold=st.integers(min_value=1, max_value=4096))
    def test_routing_decision_equals_auto_baseline(self, n_points,
                                                   threshold):
        key = signature_key(("probe",))
        profile = TuningProfile(
            default_process_threshold=10**9,
            signatures={key: SignatureTuning(process_threshold=threshold)})
        auto = MicroBatchScheduler(backend="auto", workers=2,
                                   process_threshold=threshold,
                                   cache=None)
        tuned = MicroBatchScheduler(backend="tuned", workers=2,
                                    profile=profile, cache=None)
        try:
            auto.start()
            tuned.start()
            assert tuned._backend_for(n_points, key).name \
                == auto._backend_for(n_points).name
        finally:
            auto.close()
            tuned.close()


class TestProfileRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(profile=profile_strategy)
    def test_json_persistence_is_exact(self, profile, tmp_path_factory):
        path = tmp_path_factory.mktemp("profiles") / "profile.json"
        profile.save(path)
        assert TuningProfile.load(path) == profile


class TestRecordedQueryRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(point=point_strategy)
    def test_fab_query_codec_preserves_identity(self, point):
        n, lam = point
        query = FabCostQuery(n, lam)
        rebuilt = record_to_query(query_to_record(query))
        assert rebuilt.signature() == query.signature()
        assert rebuilt.point() == query.point()
        assert signature_key(rebuilt.signature()) \
            == signature_key(query.signature())
