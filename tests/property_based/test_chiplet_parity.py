"""Property-based parity for the chiplet hot path: bitwise everywhere.

:func:`repro.batch.engine.chiplet_cost_batch` promises **bitwise**
equality with the scalar :meth:`~repro.system.chiplet.ChipletCostModel
.system_cost` — not 1e-12-close — and the promise must survive every
way the toolchain slices the work.  Hypothesis drives the quantifiers:

* *batch slicing* — any subset/ordering of points, and delivery into
  a caller-owned ``out=`` buffer, must reproduce the same bits;
* *the serve matrix* — backend (thread/process), worker count, shm
  chunk size, and scheduler batch size are bitwise invisible for
  :class:`~repro.serve.query.ChipletCostQuery` traffic;
* *the sweep* — :class:`~repro.batch.sweep.ChipletCrossoverSweep`
  through :class:`~repro.batch.sweep.TiledSweepRunner` is invariant
  to tile size, worker count, and checkpoint/resume.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.cache import BatchCache
from repro.batch.engine import chiplet_cost_batch
from repro.batch.sweep import ChipletCrossoverSweep, TiledSweepRunner
from repro.serve import ChipletCostQuery, CostService, scalar_reference_cost
from repro.system.chiplet import (
    ORGANIC_SUBSTRATE,
    SILICON_INTERPOSER,
    ChipletCostModel,
    PackagingTech,
)

lam_strategy = st.floats(min_value=0.25, max_value=3.0)
ntr_strategy = st.floats(min_value=1e4, max_value=1e9)
k_strategy = st.integers(min_value=1, max_value=8)
point_strategy = st.tuples(ntr_strategy, lam_strategy, k_strategy)
coverage_strategy = st.floats(min_value=0.5, max_value=1.0)
bond_strategy = st.floats(min_value=0.8, max_value=0.9999)

#: The scalar-breakdown attribute for each batch-result array field.
_FIELD_PAIRS = [
    ("transistors_per_chiplet", "transistors_per_chiplet"),
    ("chiplet_area_cm2", "chiplet_area_cm2"),
    ("wafer_cost_dollars", "wafer_cost_dollars"),
    ("dies_per_wafer", "dies_per_wafer"),
    ("die_yield", "die_yield"),
    ("assembly_yield", "assembly_yield"),
    ("effective_yield", "effective_yield"),
    ("packaging_cost_dollars", "packaging_cost_dollars"),
    ("silicon_cost_per_transistor_dollars",
     "silicon_cost_per_transistor_dollars"),
    ("overhead_cost_per_transistor_dollars",
     "overhead_cost_per_transistor_dollars"),
    ("cost_per_transistor_dollars", "cost_per_transistor_dollars"),
]


def _model(packaging, coverage):
    return ChipletCostModel(packaging=packaging, probe_coverage=coverage)


def _serve(queries, **service_kwargs):
    service_kwargs.setdefault("max_wait_s", 0.001)
    service_kwargs.setdefault("cache", BatchCache())
    with CostService(**service_kwargs) as svc:
        return svc.map(queries)


class TestKernelParity:
    @settings(max_examples=30, deadline=None)
    @given(points=st.lists(point_strategy, min_size=1, max_size=24),
           coverage=coverage_strategy,
           bond=bond_strategy,
           use_interposer=st.booleans())
    def test_batch_matches_scalar_bitwise(self, points, coverage, bond,
                                          use_interposer):
        base = SILICON_INTERPOSER if use_interposer else ORGANIC_SUBSTRATE
        model = _model(PackagingTech(
            name=base.name, base_cost_dollars=base.base_cost_dollars,
            cost_per_die_dollars=base.cost_per_die_dollars,
            cost_per_cm2_dollars=base.cost_per_cm2_dollars,
            bond_yield=bond), coverage)
        ns = np.array([n for n, _, _ in points])
        lams = np.array([lam for _, lam, _ in points])
        ks = np.array([float(k) for _, _, k in points])
        result = chiplet_cost_batch(ns, lams, ks, model, cache=None)
        for i, (n, lam, k) in enumerate(points):
            want = model.system_cost(k, n, lam)
            assert bool(result.feasible[i]) == want.feasible
            for batch_field, scalar_field in _FIELD_PAIRS:
                got = float(getattr(result, batch_field)[i])
                ref = float(getattr(want, scalar_field))
                # Bitwise: exact equality (inf == inf included).
                assert got == ref or (math.isnan(got) and math.isnan(ref))

    @settings(max_examples=20, deadline=None)
    @given(points=st.lists(point_strategy, min_size=2, max_size=32),
           split=st.integers(min_value=1, max_value=31),
           coverage=coverage_strategy)
    def test_slicing_and_out_buffer_invariance(self, points, split,
                                               coverage):
        # Pricing the whole array at once, pricing two slices into
        # views of one caller-owned out= buffer, and pricing each
        # point alone must all produce identical bits.
        model = _model(ORGANIC_SUBSTRATE, coverage)
        ns = np.array([n for n, _, _ in points])
        lams = np.array([lam for _, lam, _ in points])
        ks = np.array([float(k) for _, _, k in points])
        whole = chiplet_cost_batch(ns, lams, ks, model, cache=None)

        cut = min(split, len(points) - 1)
        out = np.empty(len(points))
        left = chiplet_cost_batch(ns[:cut], lams[:cut], ks[:cut], model,
                                  cache=None, out=out[:cut])
        right = chiplet_cost_batch(ns[cut:], lams[cut:], ks[cut:], model,
                                   cache=None, out=out[cut:])
        assert left.cost_per_transistor_dollars.base is out
        assert right.cost_per_transistor_dollars.base is out
        np.testing.assert_array_equal(
            out, whole.cost_per_transistor_dollars)

        singles = [float(chiplet_cost_batch(
            np.array([n]), np.array([lam]), float(k), model,
            cache=None).cost_per_transistor_dollars[0])
            for n, lam, k in points]
        np.testing.assert_array_equal(
            np.array(singles), whole.cost_per_transistor_dollars)

    @settings(max_examples=20, deadline=None)
    @given(points=st.lists(point_strategy, min_size=1, max_size=16),
           coverage=coverage_strategy)
    def test_cache_reuse_is_bitwise_invisible(self, points, coverage):
        model = _model(ORGANIC_SUBSTRATE, coverage)
        ns = np.array([n for n, _, _ in points])
        lams = np.array([lam for _, lam, _ in points])
        ks = np.array([float(k) for _, _, k in points])
        cache = BatchCache()
        cold = chiplet_cost_batch(ns, lams, ks, model, cache=cache)
        warm = chiplet_cost_batch(ns, lams, ks, model, cache=cache)
        uncached = chiplet_cost_batch(ns, lams, ks, model, cache=None)
        np.testing.assert_array_equal(cold.cost_per_transistor_dollars,
                                      warm.cost_per_transistor_dollars)
        np.testing.assert_array_equal(cold.cost_per_transistor_dollars,
                                      uncached.cost_per_transistor_dollars)


class TestServeMatrixParity:
    @settings(max_examples=15, deadline=None)
    @given(points=st.lists(point_strategy, min_size=1, max_size=16),
           max_batch_size=st.integers(min_value=1, max_value=8),
           coverage=coverage_strategy)
    def test_served_bitwise_for_any_batch_size(self, points,
                                               max_batch_size, coverage):
        model = _model(ORGANIC_SUBSTRATE, coverage)
        queries = [ChipletCostQuery(n, lam, chiplets=k, model=model)
                   for n, lam, k in points]
        served = _serve(queries, max_batch_size=max_batch_size)
        for query, result in zip(queries, served):
            want = scalar_reference_cost(query)
            got = result.cost_per_transistor_dollars
            assert got == want or (math.isinf(got) and math.isinf(want))
            assert result.feasible == math.isfinite(want)

    @settings(max_examples=6, deadline=None)
    @given(points=st.lists(point_strategy, min_size=4, max_size=20),
           workers=st.integers(min_value=1, max_value=3),
           chunk_size=st.integers(min_value=1, max_value=7),
           max_batch_size=st.integers(min_value=2, max_value=16))
    def test_process_backend_matches_thread_backend(
            self, points, workers, chunk_size, max_batch_size):
        queries = [ChipletCostQuery(n, lam, chiplets=k)
                   for n, lam, k in points]
        reference = _serve(queries, backend="thread", workers=1)
        process = _serve(queries, backend="process", workers=workers,
                         chunk_size=chunk_size,
                         max_batch_size=max_batch_size)
        assert process == reference
        for query, result in zip(queries, reference):
            want = scalar_reference_cost(query)
            got = result.cost_per_transistor_dollars
            assert got == want or (math.isinf(got) and math.isinf(want))

    @settings(max_examples=10, deadline=None)
    @given(points=st.lists(point_strategy, min_size=2, max_size=20),
           duplicates=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_order_and_dedup_invariance(self, points, duplicates, seed):
        import random
        rng = random.Random(seed)
        dup_points = points + [rng.choice(points)
                               for _ in range(duplicates)]
        shuffled = dup_points[:]
        rng.shuffle(shuffled)

        def costs(pts, **kwargs):
            served = _serve([ChipletCostQuery(n, lam, chiplets=k)
                             for n, lam, k in pts], **kwargs)
            return {pt: s.cost_per_transistor_dollars
                    for pt, s in zip(pts, served)}

        one_flush = costs(dup_points, max_batch_size=1024)
        tiny_flushes = costs(dup_points, max_batch_size=2)
        reordered = costs(shuffled, max_batch_size=7)
        assert one_flush == tiny_flushes == reordered


class TestSweepParity:
    @settings(max_examples=10, deadline=None)
    @given(k_max=st.integers(min_value=1, max_value=6),
           n_points=st.integers(min_value=2, max_value=40),
           tile_size=st.integers(min_value=1, max_value=512),
           workers=st.integers(min_value=1, max_value=3),
           lam=lam_strategy)
    def test_tiling_and_workers_are_bitwise_invisible(
            self, k_max, n_points, tile_size, workers, lam):
        spec = ChipletCrossoverSweep(feature_size_um=lam)
        ks = np.arange(1, k_max + 1, dtype=float)
        counts = np.geomspace(1e5, 1e9, n_points)
        direct = np.empty((k_max, n_points))
        spec.evaluate_tile(ks, counts, direct, cache=None)
        with TiledSweepRunner(backend="thread", workers=workers,
                              tile_size=tile_size) as runner:
            tiled = runner.run(spec, ks, counts)
        np.testing.assert_array_equal(tiled.values, direct)

    def test_checkpoint_resume_is_bitwise_invisible(self, tmp_path):
        spec = ChipletCrossoverSweep(feature_size_um=0.8)
        ks = np.arange(1, 7, dtype=float)
        counts = np.geomspace(1e5, 1e9, 64)
        ckpt = str(tmp_path / "chiplet-sweep")
        with TiledSweepRunner(tile_size=48,
                              checkpoint_dir=ckpt) as runner:
            first = runner.run(spec, ks, counts)
        assert first.stats["tiles_resumed"] == 0
        with TiledSweepRunner(tile_size=48, checkpoint_dir=ckpt,
                              resume=True) as runner:
            resumed = runner.run(spec, ks, counts)
        assert resumed.stats["tiles_resumed"] \
            == resumed.stats["tiles_total"] > 0
        np.testing.assert_array_equal(resumed.values, first.values)

        direct = np.empty(first.values.shape)
        spec.evaluate_tile(ks, counts, direct, cache=None)
        np.testing.assert_array_equal(first.values, direct)
