"""Parametric yield and the Y = Y_fnc * Y_par factorization."""

import math

import pytest

from repro.errors import ParameterError
from repro.yieldsim import CompositeYield, ParametricYield
from repro.yieldsim.parametric import PerformanceSpec


class TestPerformanceSpec:
    def test_centered_two_sided_spec_pass_rate(self):
        # Nominal at window center, window = +-2 sigma: P = Phi(2)-Phi(-2).
        spec = PerformanceSpec(name="delay", nominal=10.0, sigma=1.0,
                               lower=8.0, upper=12.0)
        expected = math.erf(2.0 / math.sqrt(2.0))
        assert spec.pass_probability == pytest.approx(expected)

    def test_one_sided_spec(self):
        spec = PerformanceSpec(name="power", nominal=0.0, sigma=1.0,
                               upper=1.0)
        # P(g <= 1 sigma) = Phi(1) ~ 0.8413
        assert spec.pass_probability == pytest.approx(0.8413, abs=1e-3)

    def test_off_center_nominal_loses_yield(self):
        centered = PerformanceSpec("d", nominal=10.0, sigma=1.0,
                                   lower=8.0, upper=12.0)
        skewed = PerformanceSpec("d", nominal=11.0, sigma=1.0,
                                 lower=8.0, upper=12.0)
        assert skewed.pass_probability < centered.pass_probability

    def test_centering_recovers_yield(self):
        skewed = PerformanceSpec("d", nominal=11.5, sigma=1.0,
                                 lower=8.0, upper=12.0)
        centered = skewed.centered()
        assert centered.nominal == pytest.approx(10.0)
        assert centered.pass_probability > skewed.pass_probability

    def test_centering_leaves_one_sided_alone(self):
        spec = PerformanceSpec("p", nominal=0.5, sigma=1.0, upper=2.0)
        assert spec.centered() is spec

    def test_rejects_inverted_window(self):
        with pytest.raises(ParameterError):
            PerformanceSpec("x", nominal=0.0, sigma=1.0, lower=2.0, upper=1.0)

    def test_rejects_zero_sigma(self):
        with pytest.raises(ParameterError):
            PerformanceSpec("x", nominal=0.0, sigma=0.0, upper=1.0)


class TestParametricYield:
    def test_empty_specs_yield_one(self):
        """The paper's working assumption: Y_par not of primary importance."""
        assert ParametricYield().value == 1.0

    def test_product_of_specs(self):
        s1 = PerformanceSpec("a", 0.0, 1.0, upper=1.0)
        s2 = PerformanceSpec("b", 0.0, 1.0, upper=2.0)
        py = ParametricYield.from_specs([s1, s2])
        assert py.value == pytest.approx(
            s1.pass_probability * s2.pass_probability)

    def test_dominant_loss(self):
        tight = PerformanceSpec("tight", 0.0, 1.0, lower=-0.5, upper=0.5)
        loose = PerformanceSpec("loose", 0.0, 1.0, lower=-3.0, upper=3.0)
        py = ParametricYield.from_specs([loose, tight])
        assert py.dominant_loss().name == "tight"

    def test_dominant_loss_empty(self):
        assert ParametricYield().dominant_loss() is None

    def test_centering_never_hurts(self):
        specs = [
            PerformanceSpec("a", 1.4, 1.0, lower=0.0, upper=2.0),
            PerformanceSpec("b", -0.2, 0.5, lower=-1.0, upper=1.0),
        ]
        py = ParametricYield.from_specs(specs)
        assert py.centered().value >= py.value


class TestCompositeYield:
    def test_factorization(self):
        spec = PerformanceSpec("d", 10.0, 1.0, lower=8.0, upper=12.0)
        comp = CompositeYield(functional=0.8,
                              parametric=ParametricYield.from_specs([spec]))
        assert comp.value == pytest.approx(0.8 * spec.pass_probability)

    def test_paper_default_parametric_is_transparent(self):
        comp = CompositeYield(functional=0.67)
        assert comp.value == pytest.approx(0.67)
        assert comp.parametric_share_of_loss == 0.0

    def test_parametric_share_of_loss(self):
        spec = PerformanceSpec("d", 0.0, 1.0, lower=-1.0, upper=1.0)
        comp = CompositeYield(functional=1.0,
                              parametric=ParametricYield.from_specs([spec]))
        # All loss is parametric when functional yield is perfect.
        assert comp.parametric_share_of_loss == pytest.approx(1.0)

    def test_rejects_bad_functional(self):
        with pytest.raises(ParameterError):
            CompositeYield(functional=1.2)
