"""Determinism, fallback, and convergence of the sharded Monte Carlo path.

Three layers pin ``repro.yieldsim.parallel``:

* **Golden determinism** — ``simulate_lot(seed=s, workers=k)`` is
  bitwise identical for k ∈ {1, 2, 4} (plus any count injected via the
  ``REPRO_TEST_WORKERS`` env var, which CI sets to 2), identical to the
  in-process ``workers=None`` schedule, and identical to the sequential
  per-wafer reference: ``simulate_wafer`` on each spawned child stream.
* **Graceful degradation** — a process pool that cannot start falls
  back to the sequential schedule with exactly one warning and
  unchanged results.
* **Statistical convergence** — the sharded path reproduces eq. (6)
  with ``D_eff = D · survival(kill_radius)`` and the negative-binomial
  model, at lot sizes the parallel runner makes affordable in CI (the
  same ``pytest.approx``-tolerance machinery as
  ``tests/yieldsim/test_monte_carlo.py``, tightened by the larger lots).
"""

import os
import warnings

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    DefectSizeDistribution,
    LotResult,
    NegativeBinomialYield,
    ParallelExecutionWarning,
    PoissonYield,
    SpotDefectSimulator,
    simulate_lot_sharded,
    spawn_wafer_seeds,
)
from repro.yieldsim import parallel as parallel_mod

# CI injects an explicit worker count (REPRO_TEST_WORKERS=2) so the
# golden suite provably exercises multi-process sharding there.
_ENV_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
WORKER_COUNTS = sorted({1, 2, 4} | ({_ENV_WORKERS} if _ENV_WORKERS else set()))


@pytest.fixture
def wafer():
    return Wafer(radius_cm=7.5)


@pytest.fixture
def die():
    return Die.square(1.0)


@pytest.fixture
def clustered_sim(wafer, die):
    return SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.9,
                               clustering_alpha=1.5)


def _assert_lots_bitwise_equal(a, b):
    assert len(a) == len(b)
    for ma, mb in zip(a, b):
        assert np.array_equal(ma.die_centers_cm, mb.die_centers_cm)
        assert np.array_equal(ma.defect_counts, mb.defect_counts)
        assert ma.n_defects_total == mb.n_defects_total


class TestGoldenDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bitwise_identical_across_worker_counts(self, clustered_sim,
                                                    workers):
        """simulate_lot(seed=s, workers=k) must not depend on k."""
        baseline = clustered_sim.simulate_lot(8, seed=1234, workers=1)
        lot = clustered_sim.simulate_lot(8, seed=1234, workers=workers)
        _assert_lots_bitwise_equal(baseline, lot)

    def test_workers_none_matches_sharded(self, clustered_sim):
        lot_default = clustered_sim.simulate_lot(6, seed=77)
        lot_sharded = clustered_sim.simulate_lot(6, seed=77, workers=2)
        _assert_lots_bitwise_equal(lot_default, lot_sharded)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_sequential_per_wafer_reference(self, clustered_sim,
                                                    workers):
        """The sharded lot equals simulate_wafer run on each spawned
        child stream in wafer order — the sequential reference path."""
        lot = clustered_sim.simulate_lot(8, seed=99, workers=workers)
        reference = [clustered_sim.simulate_wafer(np.random.default_rng(ss))
                     for ss in spawn_wafer_seeds(99, 8)]
        _assert_lots_bitwise_equal(lot, reference)

    def test_repeated_calls_reproduce(self, clustered_sim):
        a = clustered_sim.simulate_lot(5, seed=3, workers=2)
        b = clustered_sim.simulate_lot(5, seed=3, workers=2)
        _assert_lots_bitwise_equal(a, b)

    def test_different_seeds_differ(self, clustered_sim):
        a = clustered_sim.simulate_lot(5, seed=3, workers=2)
        b = clustered_sim.simulate_lot(5, seed=4, workers=2)
        assert a.n_defects_total != b.n_defects_total \
            or not np.array_equal(a.defect_counts, b.defect_counts)

    def test_seed_sequence_accepted(self, clustered_sim):
        root = np.random.SeedSequence(11)
        lot = clustered_sim.simulate_lot(3, seed=root)
        ref = clustered_sim.simulate_lot(3, seed=11)
        _assert_lots_bitwise_equal(lot, ref)

    def test_workers_above_lot_size_clamped(self, clustered_sim):
        lot = clustered_sim.simulate_lot(3, seed=8, workers=16)
        ref = clustered_sim.simulate_lot(3, seed=8, workers=1)
        _assert_lots_bitwise_equal(lot, ref)

    def test_legacy_single_stream_path_unchanged(self, clustered_sim):
        """The rng-based lot is still bitwise identical to sequential
        simulate_wafer calls on one shared stream (the pre-sharding
        contract)."""
        lot = clustered_sim.simulate_lot(5, np.random.default_rng(21))
        rng = np.random.default_rng(21)
        reference = [clustered_sim.simulate_wafer(rng) for _ in range(5)]
        _assert_lots_bitwise_equal(lot, reference)


class TestLotResult:
    def test_sequence_protocol(self, clustered_sim):
        lot = clustered_sim.simulate_lot(4, seed=0)
        assert isinstance(lot, LotResult)
        assert len(lot) == lot.n_wafers == 4
        assert list(lot)[2] is lot[2]
        sub = lot[1:3]
        assert isinstance(sub, LotResult) and len(sub) == 2
        assert sub[0] is lot[1]

    def test_aggregates_match_wafer_maps(self, clustered_sim):
        lot = clustered_sim.simulate_lot(4, seed=10, workers=2)
        assert lot.n_dies_total == sum(m.n_dies for m in lot)
        assert lot.n_good_total == sum(m.n_good for m in lot)
        assert lot.n_defects_total == sum(m.n_defects_total for m in lot)
        assert lot.defect_counts.shape == (4, lot[0].n_dies)
        assert np.array_equal(lot.defect_counts[1], lot[1].defect_counts)

    def test_pooled_yield_equals_mean_of_per_wafer_yields(self,
                                                          clustered_sim):
        lot = clustered_sim.simulate_lot(6, seed=2, workers=2)
        assert lot.yield_fraction == pytest.approx(
            float(lot.per_wafer_yields.mean()), abs=1e-12)

    def test_empty_lot(self, clustered_sim):
        lot = clustered_sim.simulate_lot(0, seed=1, workers=4)
        assert len(lot) == 0
        assert lot.yield_fraction == 0.0
        assert lot.n_defects_total == 0
        assert lot.defect_counts.shape == (0, 0)
        assert lot.per_wafer_yields.size == 0

    def test_estimate_yield_forwards_seed_and_workers(self, clustered_sim):
        y_seq = clustered_sim.estimate_yield(6, seed=13, workers=1)
        y_par = clustered_sim.estimate_yield(6, seed=13, workers=2)
        assert y_seq == y_par


class TestArgumentValidation:
    def test_rejects_both_rng_and_seed(self, clustered_sim):
        with pytest.raises(ParameterError):
            clustered_sim.simulate_lot(2, np.random.default_rng(0), seed=0)

    def test_rejects_neither_rng_nor_seed(self, clustered_sim):
        with pytest.raises(ParameterError):
            clustered_sim.simulate_lot(2)

    def test_rejects_workers_with_rng(self, clustered_sim):
        with pytest.raises(ParameterError):
            clustered_sim.simulate_lot(2, np.random.default_rng(0),
                                       workers=2)

    def test_rejects_nonpositive_workers(self, clustered_sim):
        with pytest.raises(ParameterError):
            clustered_sim.simulate_lot(2, seed=0, workers=0)

    def test_rejects_negative_lot(self, clustered_sim):
        with pytest.raises(ParameterError):
            clustered_sim.simulate_lot(-1, seed=0)
        with pytest.raises(ParameterError):
            spawn_wafer_seeds(0, -1)


class _ExplodingExecutor:
    """Stand-in for a fork-restricted host: pool creation is denied."""

    def __init__(self, *args, **kwargs):
        raise PermissionError("process spawning disabled in this sandbox")


class _BrokenSubmitExecutor:
    """Pool starts but dies on first use (e.g. worker killed)."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, *args, **kwargs):
        raise OSError("worker process died")


class TestExecutorFallback:
    @pytest.mark.parametrize("executor", [_ExplodingExecutor,
                                          _BrokenSubmitExecutor])
    def test_falls_back_sequential_with_single_warning(self, clustered_sim,
                                                       monkeypatch,
                                                       executor):
        expected = clustered_sim.simulate_lot(6, seed=55, workers=1)
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", executor)
        with pytest.warns(ParallelExecutionWarning) as record:
            lot = clustered_sim.simulate_lot(6, seed=55, workers=3)
        assert len(record) == 1, "fallback must warn exactly once per lot"
        _assert_lots_bitwise_equal(lot, expected)

    def test_no_warning_on_healthy_pool(self, clustered_sim):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ParallelExecutionWarning)
            clustered_sim.simulate_lot(4, seed=55, workers=2)

    def test_parameter_errors_are_not_swallowed(self, wafer, die,
                                                monkeypatch):
        """Only infrastructure failures trigger the fallback; model
        errors raised while sharding propagate unchanged."""
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.5)
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor",
                            _ExplodingExecutor)
        with pytest.raises(ParameterError):
            simulate_lot_sharded(sim, -2, seed=0, workers=2)


class TestShardedConvergence:
    """Eqs. (6)/NB convergence on the sharded path, at lot sizes the
    parallel runner makes affordable (larger than the single-stream
    suite, hence tighter tolerances)."""

    def test_poisson_lot_converges_to_equation_six(self, wafer, die):
        d0 = 0.8
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=d0)
        y_mc = sim.estimate_yield(200, seed=611, workers=2)
        y_cf = PoissonYield().yield_for_area(die.area_cm2, d0)
        assert y_mc == pytest.approx(y_cf, abs=0.01)

    def test_kill_radius_converges_to_effective_density(self, wafer, die):
        """Size-filtered defects: eq. (6) at D_eff = D·survival(r)."""
        dist = DefectSizeDistribution(r0_um=0.3, p=4.07)
        sim = SpotDefectSimulator(
            wafer, die, defect_density_per_cm2=3.0,
            size_distribution=dist, kill_radius_um=0.5)
        d_eff = sim.expected_killer_density()
        assert d_eff < 3.0
        y_mc = sim.estimate_yield(200, seed=612, workers=2)
        y_cf = PoissonYield().yield_for_area(die.area_cm2, d_eff)
        assert y_mc == pytest.approx(y_cf, abs=0.012)

    def test_clustered_lot_converges_to_negative_binomial(self, wafer, die):
        d0, alpha = 1.2, 1.0
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=d0,
                                  clustering_alpha=alpha)
        y_mc = sim.estimate_yield(800, seed=613, workers=2)
        y_nb = NegativeBinomialYield(alpha=alpha).yield_for_area(
            die.area_cm2, d0)
        assert y_mc == pytest.approx(y_nb, abs=0.02)
        y_poisson = PoissonYield().yield_for_area(die.area_cm2, d0)
        assert y_mc > y_poisson


class TestBatchCrossValidation:
    """The repro.batch consumer: closed forms vs sharded Monte Carlo."""

    def test_poisson_sweep_agrees(self, wafer, die):
        from repro.batch import cross_validate_yield_batch
        cv = cross_validate_yield_batch(
            wafer, die, [0.2, 0.6, 1.2], n_wafers=60, seed=5, workers=2)
        assert cv.within(0.03)
        assert cv.closed_form_yield == pytest.approx(
            [PoissonYield().yield_for_area(die.area_cm2, d)
             for d in (0.2, 0.6, 1.2)])

    def test_sweep_is_worker_invariant(self, wafer, die):
        from repro.batch import cross_validate_yield_batch
        kwargs = dict(n_wafers=20, seed=5)
        a = cross_validate_yield_batch(wafer, die, [0.3, 0.9], workers=2,
                                       **kwargs)
        b = cross_validate_yield_batch(wafer, die, [0.3, 0.9], workers=None,
                                       **kwargs)
        assert np.array_equal(a.mc_yield, b.mc_yield)

    def test_kill_radius_sweep_uses_effective_density(self, wafer, die):
        from repro.batch import cross_validate_yield_batch
        dist = DefectSizeDistribution(r0_um=0.3, p=4.07)
        cv = cross_validate_yield_batch(
            wafer, die, [3.0], n_wafers=60, seed=6, workers=2,
            size_distribution=dist, kill_radius_um=0.5)
        assert cv.effective_densities_per_cm2[0] < 3.0
        assert cv.within(0.03)

    def test_rejects_bad_inputs(self, wafer, die):
        from repro.batch import cross_validate_yield_batch
        with pytest.raises(ParameterError):
            cross_validate_yield_batch(wafer, die, [], n_wafers=10)
        with pytest.raises(ParameterError):
            cross_validate_yield_batch(wafer, die, [0.5], n_wafers=0)
        with pytest.raises(ParameterError):
            cross_validate_yield_batch(wafer, die, [-0.5], n_wafers=10)
