"""Clustered-defect sampling: lot-level gamma mixing, determinism.

Three deliverables are pinned here:

* **Worker invariance** — a lot simulated with ``lot_alpha`` set must
  be bitwise identical for ``workers`` in {None, 1, 2, 3}: the lot
  factor is drawn once from its own spawned child stream and shipped
  to every shard, never re-drawn per worker.
* **Golden determinism** — a checked-in digest of the per-die killer
  counts for one fixed seed.  Any change to the stream layout (spawn
  order, draw order, the ``density × scale`` arithmetic) shows up as
  a digest mismatch, which is a compatibility break to be made
  deliberately, not silently.
* **Convergence** — pooled clustered lots converge to the matching
  compound closed form (:class:`HierarchicalYieldModel`), wired
  through the :mod:`repro.batch.crossval` sweep and the per-law
  validation suite.
"""

import hashlib

import numpy as np
import pytest

from repro.batch import (
    cross_validate_model_suite,
    cross_validate_yield_batch,
)
from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    HierarchicalYieldModel,
    NegativeBinomialYield,
    SpotDefectSimulator,
)

WAFER = Wafer(radius_cm=5.0)
DIE = Die(1.0, 1.0)


def _clustered_sim(density=0.8, wafer_alpha=1.5, lot_alpha=2.0):
    return SpotDefectSimulator(WAFER, DIE, density,
                               clustering_alpha=wafer_alpha,
                               lot_alpha=lot_alpha)


def _counts(lot):
    return np.concatenate([w.defect_counts for w in lot])


class TestWorkerInvariance:
    def test_lot_factor_is_worker_invariant(self):
        # The hierarchical draw must not depend on how the lot is
        # sharded: one factor per lot, drawn from its own child
        # stream, identical counts for every worker count.
        sim = _clustered_sim()
        reference = _counts(sim.simulate_lot(4, seed=1234))
        for workers in (None, 1, 2, 3):
            got = _counts(sim.simulate_lot(4, seed=1234, workers=workers))
            assert (got == reference).all(), f"workers={workers}"

    def test_simulate_lots_is_worker_invariant(self):
        sim = _clustered_sim()
        serial = sim.simulate_lots(3, 2, seed=99)
        sharded = sim.simulate_lots(3, 2, seed=99, workers=2)
        assert len(serial) == len(sharded) == 3
        for a, b in zip(serial, sharded):
            assert (_counts(a) == _counts(b)).all()

    def test_lots_use_independent_child_streams(self):
        # Distinct lots must not replay each other's defects.
        sim = _clustered_sim()
        lots = sim.simulate_lots(2, 3, seed=5)
        a, b = (_counts(lot) for lot in lots)
        assert a.shape == b.shape
        assert (a != b).any()


class TestGoldenDeterminism:
    """Checked-in stream-compatibility anchors for seed 1234."""

    GOLDEN_DIGEST = ("77b45bab6886630d369410b7a589adea"
                     "5e2e591697959346e33d5c5f0708af4f")

    def test_golden_digest_for_fixed_seed(self):
        lot = _clustered_sim().simulate_lot(4, seed=1234)
        digest = hashlib.sha256(
            _counts(lot).astype(np.int64).tobytes()).hexdigest()
        assert digest == self.GOLDEN_DIGEST

    def test_golden_aggregates_for_fixed_seed(self):
        lot = _clustered_sim().simulate_lot(4, seed=1234)
        assert lot.n_good_total == 198
        assert lot.n_dies_total == 248
        assert [w.n_defects_total for w in lot] == [17, 20, 44, 0]

    def test_lot_alpha_none_stream_is_untouched(self):
        # Adding the lot_alpha field must not perturb the existing
        # wafer-level stream: a simulator without it reproduces the
        # same counts as before the hierarchical level existed.
        plain = SpotDefectSimulator(WAFER, DIE, 0.8,
                                    clustering_alpha=1.5)
        a = _counts(plain.simulate_lot(3, seed=77))
        b = _counts(plain.simulate_lot(3, seed=77, workers=2))
        assert (a == b).all()


class TestValidation:
    def test_rejects_nonpositive_lot_alpha(self):
        with pytest.raises(ParameterError):
            SpotDefectSimulator(WAFER, DIE, 0.8, lot_alpha=0.0)

    def test_simulate_lots_rejects_negative_count(self):
        sim = _clustered_sim()
        with pytest.raises(ParameterError):
            sim.simulate_lots(-1, 4, seed=1)

    def test_zero_lots_is_an_empty_sample(self):
        assert _clustered_sim().simulate_lots(0, 4, seed=1) == []


class TestConvergence:
    def test_pooled_lots_converge_to_hierarchical_closed_form(self):
        density = 0.8
        sim = _clustered_sim(density)
        hier = HierarchicalYieldModel(lot_alpha=2.0, wafer_alpha=1.5)
        closed = hier.yield_for_area(DIE.area_cm2, density)
        lots = sim.simulate_lots(60, 4, seed=7)
        good = sum(lot.n_good_total for lot in lots)
        total = sum(lot.n_dies_total for lot in lots)
        assert abs(good / total - closed) < 0.03

    def test_lot_mixing_spreads_per_lot_yield(self):
        # The hierarchical level adds between-lot spread on top of the
        # wafer-level NB: per-lot yields vary far more than the
        # binomial noise of a single lot.
        sim = _clustered_sim()
        lots = sim.simulate_lots(20, 4, seed=11)
        per_lot = np.array([lot.yield_fraction for lot in lots])
        assert per_lot.std() > 0.05


class TestCrossvalExtensions:
    def test_sweep_defaults_to_hierarchical_model(self):
        cv = cross_validate_yield_batch(
            WAFER, DIE, [0.3, 0.8], n_wafers=6, n_lots=40,
            clustering_alpha=1.5, lot_alpha=2.0, seed=3)
        assert cv.n_lots == 40
        # Between-lot variance dominates the hierarchical error bar;
        # this is the observed deterministic value with ~2x margin.
        assert cv.within(0.12)

    def test_sweep_is_worker_invariant_with_lots(self):
        kwargs = dict(n_wafers=4, n_lots=8, clustering_alpha=1.5,
                      lot_alpha=2.0, seed=3)
        serial = cross_validate_yield_batch(WAFER, DIE, [0.5], **kwargs)
        sharded = cross_validate_yield_batch(WAFER, DIE, [0.5],
                                             workers=2, **kwargs)
        assert (serial.mc_yield == sharded.mc_yield).all()

    def test_lot_only_mixing_defaults_to_lot_nb(self):
        # Poisson wafers under a lot-level gamma pool to the
        # single-level NB at the lot shape.
        cv = cross_validate_yield_batch(
            WAFER, DIE, [0.5], n_wafers=6, n_lots=60,
            lot_alpha=2.0, seed=3)
        nb = NegativeBinomialYield(alpha=2.0)
        want = nb.yield_for_area(DIE.area_cm2, 0.5)
        assert cv.closed_form_yield[0] == pytest.approx(want)

    def test_rejects_nonpositive_n_lots(self):
        with pytest.raises(ParameterError):
            cross_validate_yield_batch(WAFER, DIE, [0.5], n_lots=0)

    def test_model_suite_validates_every_law(self):
        rows = cross_validate_model_suite(WAFER, DIE, 0.8,
                                          n_wafers=8, n_lots=60, seed=5)
        names = [row.name for row in rows]
        assert names == ["poisson", "negative_binomial",
                         "compound_poisson_gamma", "hierarchical",
                         "mixture"]
        for row in rows:
            assert 0.0 < row.closed_form_yield < 1.0
            assert row.n_dies > 0
            assert row.abs_error < 0.025, row.name
        # The NB and CPG rows document the same algebraic law against
        # the same sampled lots.
        nb, cpg = rows[1], rows[2]
        assert nb.closed_form_yield == cpg.closed_form_yield
        assert nb.mc_yield == cpg.mc_yield

    def test_model_suite_rejects_degenerate_mixture_weight(self):
        with pytest.raises(ParameterError):
            cross_validate_model_suite(WAFER, DIE, 0.8, mixture_weight=1.0)
