"""Parameter estimation from wafer maps — closing the [26] loop."""

import math
import os

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    SpotDefectSimulator,
    clustering_detected,
    estimate_clustering_alpha,
    estimate_density_from_yield,
    estimate_density_poisson,
    fit_lot,
    pooled_window_method,
    window_method,
)


@pytest.fixture(scope="module")
def geometry():
    return Wafer(radius_cm=7.5), Die.square(1.0)


# The fixtures ride the sharded seed path so estimation results are
# worker-count independent; CI's REPRO_TEST_WORKERS=2 makes them
# exercise real multi-process lots without changing a single draw.
_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "0")) or None


@pytest.fixture(scope="module")
def poisson_lot(geometry):
    wafer, die = geometry
    sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=1.0)
    return sim.simulate_lot(40, seed=116, workers=_WORKERS)


@pytest.fixture(scope="module")
def clustered_lot(geometry):
    wafer, die = geometry
    sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=1.0,
                              clustering_alpha=1.0)
    return sim.simulate_lot(80, seed=202, workers=_WORKERS)


class TestDensityEstimation:
    def test_mle_recovers_true_density(self, poisson_lot, geometry):
        _, die = geometry
        d = estimate_density_poisson(poisson_lot, die.area_cm2)
        assert d == pytest.approx(1.0, abs=0.06)

    def test_yield_inversion_recovers_density(self, poisson_lot, geometry):
        _, die = geometry
        d = estimate_density_from_yield(poisson_lot, die.area_cm2)
        assert d == pytest.approx(1.0, abs=0.08)

    def test_two_estimators_agree_for_poisson(self, poisson_lot, geometry):
        _, die = geometry
        mle = estimate_density_poisson(poisson_lot, die.area_cm2)
        inv = estimate_density_from_yield(poisson_lot, die.area_cm2)
        assert inv == pytest.approx(mle, rel=0.1)

    def test_yield_inversion_underestimates_for_clustered(self, clustered_lot,
                                                          geometry):
        """Clustering concentrates defects, so the pass/fail inversion
        under-reads the true density — a classic pitfall."""
        _, die = geometry
        mle = estimate_density_poisson(clustered_lot, die.area_cm2)
        inv = estimate_density_from_yield(clustered_lot, die.area_cm2)
        assert inv < mle

    def test_zero_defect_lot(self, geometry):
        wafer, die = geometry
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.0)
        maps = sim.simulate_lot(3, np.random.default_rng(0))
        assert estimate_density_poisson(maps, die.area_cm2) == 0.0
        assert estimate_density_from_yield(maps, die.area_cm2) == 0.0

    def test_empty_maps_rejected(self, geometry):
        _, die = geometry
        with pytest.raises(ParameterError):
            estimate_density_poisson([], die.area_cm2)


class TestAlphaEstimation:
    def test_poisson_lot_reports_infinite_alpha(self, poisson_lot):
        assert math.isinf(estimate_clustering_alpha(poisson_lot))

    def test_clustered_lot_recovers_alpha(self, clustered_lot):
        alpha = estimate_clustering_alpha(clustered_lot)
        assert 0.5 < alpha < 2.0  # true value 1.0

    def test_no_defects_raises(self, geometry):
        wafer, die = geometry
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.0)
        maps = sim.simulate_lot(2, np.random.default_rng(0))
        with pytest.raises(ParameterError):
            estimate_clustering_alpha(maps)


class TestWindowMethod:
    def test_single_map_points_structure(self, poisson_lot):
        points = window_method(poisson_lot[0], window_sizes=(1, 2, 4))
        assert [p.window_dies for p in points] == [1, 2, 4]
        for p in points:
            assert 0.0 <= p.observed_yield <= 1.0
        # k=1 is its own prediction.
        assert points[0].observed_yield == pytest.approx(
            points[0].poisson_prediction)

    def test_pooled_poisson_signal_small(self, poisson_lot):
        points = pooled_window_method(poisson_lot)
        assert abs(points[-1].clustering_signal) < 0.05

    def test_pooled_clustered_signal_positive(self, clustered_lot):
        points = pooled_window_method(clustered_lot)
        assert points[-1].clustering_signal > 0.05

    def test_clustering_verdicts(self, poisson_lot, clustered_lot):
        assert not clustering_detected(poisson_lot)
        assert clustering_detected(clustered_lot)

    def test_bad_window_sizes(self, poisson_lot):
        with pytest.raises(ParameterError):
            window_method(poisson_lot[0], window_sizes=())
        with pytest.raises(ParameterError):
            window_method(poisson_lot[0], window_sizes=(0,))


class TestFitLot:
    def test_report_bundles_everything(self, clustered_lot, geometry):
        _, die = geometry
        report = fit_lot(clustered_lot, die.area_cm2)
        assert report.n_wafers == 80
        assert report.n_dies > 1000
        assert report.is_clustered
        # Gamma mixing with alpha=1 makes the lot-mean density noisy
        # (relative std ~ 1/sqrt(n_wafers)); allow a wide band.
        assert report.density_mle_per_cm2 == pytest.approx(1.0, abs=0.3)

    def test_poisson_report_not_clustered(self, poisson_lot, geometry):
        _, die = geometry
        report = fit_lot(poisson_lot, die.area_cm2)
        assert not report.is_clustered
