"""Defect-density budgeting (the Fig.-4 planning tool)."""

import math

import pytest

from repro.errors import ParameterError
from repro.yieldsim import (
    LayerDefectivity,
    allocate_cleaning,
    plan_for_yield,
    required_total_density,
)
from repro.yieldsim.budget import total_density


@pytest.fixture
def layers():
    """A 4-layer stack: metal is dirty and cheap to clean, gate dirty
    and expensive, the rest moderate."""
    return (
        LayerDefectivity(name="metal1", density_per_cm2=1.2,
                         cost_per_decade_dollars=2.0e6),
        LayerDefectivity(name="gate", density_per_cm2=0.8,
                         cost_per_decade_dollars=8.0e6),
        LayerDefectivity(name="contact", density_per_cm2=0.5,
                         cost_per_decade_dollars=3.0e6),
        LayerDefectivity(name="implant", density_per_cm2=0.1,
                         cost_per_decade_dollars=5.0e6),
    )


class TestRequiredDensity:
    def test_poisson_inversion(self):
        d = required_total_density(1.0, 0.7)
        assert math.exp(-d) == pytest.approx(0.7)

    def test_bigger_die_needs_cleaner_fab(self):
        assert required_total_density(2.0, 0.7) == pytest.approx(
            required_total_density(1.0, 0.7) / 2.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            required_total_density(1.0, 1.0)


class TestAllocation:
    def test_budget_met_exactly(self, layers):
        budget = 1.0
        allocations = allocate_cleaning(layers, budget)
        achieved = sum(a.target_density_per_cm2 for a in allocations)
        assert achieved == pytest.approx(budget)

    def test_no_layer_made_dirtier(self, layers):
        allocations = allocate_cleaning(layers, 1.0)
        for a in allocations:
            assert a.target_density_per_cm2 <= a.layer.density_per_cm2 + 1e-12
            assert a.decades_cleaned >= -1e-12

    def test_generous_budget_cleans_nothing(self, layers):
        budget = total_density(layers) * 1.5
        allocations = allocate_cleaning(layers, budget)
        for a in allocations:
            assert a.target_density_per_cm2 == a.layer.density_per_cm2
            assert a.cleaning_cost_dollars == pytest.approx(0.0)

    def test_cheap_layers_cleaned_harder(self, layers):
        """Water-filling: target density proportional to cost rate, so
        the cheap-to-clean metal ends *relatively* cleaner than gate."""
        allocations = {a.layer.name: a for a in allocate_cleaning(layers, 0.8)}
        metal = allocations["metal1"]
        gate = allocations["gate"]
        # Both active: targets proportional to cost rates.
        assert metal.target_density_per_cm2 / gate.target_density_per_cm2 \
            == pytest.approx(2.0e6 / 8.0e6, rel=1e-6)
        # And the cheap layer is cleaned by more decades.
        assert metal.decades_cleaned > gate.decades_cleaned

    def test_already_clean_layer_frozen(self, layers):
        """The implant layer (0.1/cm^2) is below its water level at a
        loose budget and must be left untouched."""
        allocations = {a.layer.name: a
                       for a in allocate_cleaning(layers, 1.5)}
        assert allocations["implant"].target_density_per_cm2 == \
            pytest.approx(0.1)
        assert allocations["implant"].cleaning_cost_dollars == \
            pytest.approx(0.0)

    def test_tighter_budget_costs_more(self, layers):
        def cost(budget):
            return sum(a.cleaning_cost_dollars
                       for a in allocate_cleaning(layers, budget))
        assert cost(0.5) > cost(1.0) > cost(2.0)

    def test_validation(self, layers):
        with pytest.raises(ParameterError):
            allocate_cleaning((), 1.0)
        with pytest.raises(ParameterError):
            allocate_cleaning(layers, 0.0)


class TestPlanForYield:
    def test_plan_achieves_yield(self, layers):
        allocations, cost = plan_for_yield(layers, die_area_cm2=1.0,
                                           target_yield=0.6)
        achieved_density = sum(a.target_density_per_cm2
                               for a in allocations)
        assert math.exp(-achieved_density) >= 0.6 - 1e-9
        assert cost > 0.0

    def test_higher_yield_target_costs_more(self, layers):
        _, cost_60 = plan_for_yield(layers, 1.0, 0.6)
        _, cost_80 = plan_for_yield(layers, 1.0, 0.8)
        assert cost_80 > cost_60

    def test_optimality_against_uniform_split(self, layers):
        """The water-filling plan beats splitting the budget equally."""
        budget = required_total_density(1.0, 0.7)
        optimal = sum(a.cleaning_cost_dollars
                      for a in allocate_cleaning(layers, budget))
        per_layer = budget / len(layers)
        uniform = 0.0
        for layer in layers:
            target = min(per_layer, layer.density_per_cm2)
            uniform += layer.cost_per_decade_dollars \
                * math.log10(layer.density_per_cm2 / target)
        assert optimal <= uniform + 1e-6
