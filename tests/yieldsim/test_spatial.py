"""Radial defect gradients (the S.1.1 wafer-size caveat)."""

import math
import os

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    ParallelExecutionWarning,
    RadialDefectProfile,
    simulate_radial_lot,
    wafer_size_penalty,
)
from repro.yieldsim import parallel as parallel_mod

_ENV_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
WORKER_COUNTS = sorted({1, 2, 4} | ({_ENV_WORKERS} if _ENV_WORKERS else set()))


@pytest.fixture
def profile():
    return RadialDefectProfile(center_density_per_cm2=0.6,
                               edge_gradient=1.0)


@pytest.fixture
def wafer():
    return Wafer(radius_cm=7.5)


@pytest.fixture
def die():
    return Die.square(1.0)


class TestProfile:
    def test_center_and_edge_values(self, profile):
        assert profile.density_at(0.0, 7.5) == pytest.approx(0.6)
        assert profile.density_at(7.5, 7.5) == pytest.approx(1.2)

    def test_quadratic_midpoint(self, profile):
        # At r = R/2: D = D0 * (1 + g/4).
        assert profile.density_at(3.75, 7.5) == pytest.approx(0.6 * 1.25)

    def test_mean_density_closed_form(self, profile):
        assert profile.mean_density(7.5) == pytest.approx(0.6 * 1.5)

    def test_zero_gradient_is_uniform(self):
        flat = RadialDefectProfile(center_density_per_cm2=0.6,
                                   edge_gradient=0.0)
        for r in (0.0, 3.0, 7.5):
            assert flat.density_at(r, 7.5) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            RadialDefectProfile(center_density_per_cm2=0.0)
        with pytest.raises(ParameterError):
            RadialDefectProfile(center_density_per_cm2=1.0,
                                edge_gradient=-0.1)


class TestWaferYield:
    def test_gradient_hurts_yield(self, wafer, die):
        flat = RadialDefectProfile(0.6, 0.0)
        steep = RadialDefectProfile(0.6, 2.0)
        assert steep.wafer_yield(wafer, die) < flat.wafer_yield(wafer, die)

    def test_flat_profile_matches_poisson(self, wafer, die):
        flat = RadialDefectProfile(0.6, 0.0)
        assert flat.wafer_yield(wafer, die) == pytest.approx(
            math.exp(-0.6 * die.area_cm2), rel=1e-6)

    def test_center_beats_edge(self, profile, wafer, die):
        center, edge = profile.center_edge_split(wafer, die)
        assert center > edge

    def test_split_validation(self, profile, wafer, die):
        with pytest.raises(ParameterError):
            profile.center_edge_split(wafer, die, inner_fraction=1.0)


class TestWaferSizePenalty:
    def test_penalty_positive_and_bounded(self, die):
        profile = RadialDefectProfile(0.6, 1.5)
        p = wafer_size_penalty(profile, die)
        assert 0.0 < p < 1.0

    def test_no_gradient_no_penalty(self, die):
        flat = RadialDefectProfile(0.6, 0.0)
        assert wafer_size_penalty(flat, die) == pytest.approx(0.0, abs=1e-9)

    def test_steeper_gradient_bigger_penalty(self, die):
        mild = wafer_size_penalty(RadialDefectProfile(0.6, 0.5), die)
        steep = wafer_size_penalty(RadialDefectProfile(0.6, 2.5), die)
        assert steep > mild


class TestRadialMonteCarlo:
    def test_simulated_yield_matches_analytic(self, profile, wafer, die):
        rng = np.random.default_rng(77)
        lot = simulate_radial_lot(profile, wafer, die, 25, rng)
        good = sum(m.n_good for m in lot)
        total = sum(m.n_dies for m in lot)
        y_mc = good / total
        y_analytic = profile.wafer_yield(wafer, die)
        assert y_mc == pytest.approx(y_analytic, abs=0.03)

    def test_edge_dies_fail_more_in_simulation(self, profile, wafer, die):
        rng = np.random.default_rng(78)
        lot = simulate_radial_lot(profile, wafer, die, 30, rng)
        inner_fail, inner_n, outer_fail, outer_n = 0, 0, 0, 0
        threshold = 0.5 * wafer.radius_cm
        for wmap in lot:
            radii = np.hypot(wmap.die_centers_cm[:, 0],
                             wmap.die_centers_cm[:, 1])
            failed = wmap.defect_counts > 0
            inner = radii <= threshold
            inner_fail += int(failed[inner].sum())
            inner_n += int(inner.sum())
            outer_fail += int(failed[~inner].sum())
            outer_n += int((~inner).sum())
        assert outer_fail / outer_n > inner_fail / inner_n

    def test_zero_wafer_lot(self, profile, wafer, die):
        assert simulate_radial_lot(profile, wafer, die, 0,
                                   np.random.default_rng(0)) == []


def _assert_radial_lots_equal(a, b):
    assert len(a) == len(b)
    for ma, mb in zip(a, b):
        assert ma.n_defects_total == mb.n_defects_total
        np.testing.assert_array_equal(ma.defect_counts, mb.defect_counts)
        np.testing.assert_array_equal(ma.die_centers_cm, mb.die_centers_cm)


class TestShardedRadialLot:
    def test_seed_path_reproducible(self, profile, wafer, die):
        a = simulate_radial_lot(profile, wafer, die, 6, seed=11)
        b = simulate_radial_lot(profile, wafer, die, 6, seed=11)
        _assert_radial_lots_equal(a, b)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_count_invariance(self, profile, wafer, die, workers):
        reference = simulate_radial_lot(profile, wafer, die, 6, seed=11)
        sharded = simulate_radial_lot(profile, wafer, die, 6, seed=11,
                                      workers=workers)
        _assert_radial_lots_equal(reference, sharded)

    def test_seed_path_matches_analytic_yield(self, profile, wafer, die):
        lot = simulate_radial_lot(profile, wafer, die, 25, seed=77,
                                  workers=2)
        good = sum(m.n_good for m in lot)
        total = sum(m.n_dies for m in lot)
        assert good / total == pytest.approx(
            profile.wafer_yield(wafer, die), abs=0.03)

    def test_fallback_preserves_results(self, profile, wafer, die,
                                        monkeypatch):
        reference = simulate_radial_lot(profile, wafer, die, 4, seed=5,
                                        workers=2)
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor",
                            _ExplodingExecutor)
        with pytest.warns(ParallelExecutionWarning):
            fallback = simulate_radial_lot(profile, wafer, die, 4, seed=5,
                                           workers=2)
        _assert_radial_lots_equal(reference, fallback)

    def test_zero_wafer_seed_lot(self, profile, wafer, die):
        assert simulate_radial_lot(profile, wafer, die, 0, seed=1) == []

    def test_rng_and_seed_both_rejected(self, profile, wafer, die):
        with pytest.raises(ParameterError):
            simulate_radial_lot(profile, wafer, die, 2,
                                np.random.default_rng(0), seed=1)

    def test_neither_rng_nor_seed_rejected(self, profile, wafer, die):
        with pytest.raises(ParameterError):
            simulate_radial_lot(profile, wafer, die, 2)

    def test_workers_require_seed(self, profile, wafer, die):
        with pytest.raises(ParameterError):
            simulate_radial_lot(profile, wafer, die, 2,
                                np.random.default_rng(0), workers=2)

    def test_workers_below_one_rejected(self, profile, wafer, die):
        with pytest.raises(ParameterError):
            simulate_radial_lot(profile, wafer, die, 2, seed=1, workers=0)

    def test_negative_wafers_rejected(self, profile, wafer, die):
        with pytest.raises(ParameterError):
            simulate_radial_lot(profile, wafer, die, -1, seed=1)


class _ExplodingExecutor:
    """Stand-in for a fork-restricted host: pool creation is denied."""

    def __init__(self, *args, **kwargs):
        raise PermissionError("process spawning disabled in this sandbox")
