"""Yield models: eqs. (6)-(7) and the classical baselines."""

import math

import pytest

from repro.errors import ParameterError
from repro.yieldsim import (
    BoseEinsteinYield,
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    MixtureYieldModel,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    ReferenceAreaYield,
    SeedsYield,
    poisson_yield,
    scaled_poisson_yield,
)

ALL_MODELS = [
    PoissonYield(),
    MurphyYield(),
    SeedsYield(),
    BoseEinsteinYield(n_layers=3),
    NegativeBinomialYield(alpha=2.0),
    CompoundPoissonGamma(alpha=2.0),
    HierarchicalYieldModel(lot_alpha=2.0, wafer_alpha=1.5),
    MixtureYieldModel(((0.4, PoissonYield()),
                       (0.6, NegativeBinomialYield(alpha=1.5)))),
]


class TestSharedContract:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_zero_faults_means_unity_yield(self, model):
        assert model.yield_from_expectation(0.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_yield_decreases_with_expectation(self, model):
        ys = [model.yield_from_expectation(m) for m in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert ys == sorted(ys, reverse=True)
        assert ys[-1] < ys[0]

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_yield_in_unit_interval(self, model):
        for m in (0.01, 0.7, 3.0, 50.0):
            assert 0.0 < model.yield_from_expectation(m) <= 1.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_negative_expectation_rejected(self, model):
        with pytest.raises(ParameterError):
            model.yield_from_expectation(-0.1)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_yield_for_area_composes(self, model):
        direct = model.yield_from_expectation(0.6)
        composed = model.yield_for_area(2.0, 0.3)
        assert composed == pytest.approx(direct)


class TestPoisson:
    def test_equation_six_value(self):
        # Y = exp(-A D0): A=1 cm^2, D0=0.7 -> exp(-0.7).
        assert poisson_yield(1.0, 0.7) == pytest.approx(math.exp(-0.7))

    def test_area_additivity(self):
        # Poisson factorizes over area: Y(A1+A2) = Y(A1)*Y(A2).
        y_sum = poisson_yield(3.0, 0.5)
        y_parts = poisson_yield(1.0, 0.5) * poisson_yield(2.0, 0.5)
        assert y_sum == pytest.approx(y_parts)


class TestClassicalOrdering:
    def test_poisson_most_pessimistic(self):
        """For the same m, Poisson <= Murphy <= Seeds (clustering helps)."""
        for m in (0.3, 1.0, 3.0, 10.0):
            p = PoissonYield().yield_from_expectation(m)
            mu = MurphyYield().yield_from_expectation(m)
            s = SeedsYield().yield_from_expectation(m)
            assert p <= mu <= s

    def test_negative_binomial_limits(self):
        m = 1.7
        nb_large = NegativeBinomialYield(alpha=1e6).yield_from_expectation(m)
        assert nb_large == pytest.approx(
            PoissonYield().yield_from_expectation(m), rel=1e-4)
        nb_one = NegativeBinomialYield(alpha=1.0).yield_from_expectation(m)
        assert nb_one == pytest.approx(SeedsYield().yield_from_expectation(m))

    def test_bose_einstein_one_layer_is_seeds(self):
        m = 2.3
        assert BoseEinsteinYield(n_layers=1).yield_from_expectation(m) == \
            pytest.approx(SeedsYield().yield_from_expectation(m))

    def test_murphy_small_m_expansion(self):
        # ((1-e^-m)/m)^2 -> 1 - m + ... for small m.
        m = 1e-4
        assert MurphyYield().yield_from_expectation(m) == pytest.approx(
            1.0 - m, rel=1e-3)


class TestParameterValidation:
    def test_bose_einstein_rejects_zero_layers(self):
        with pytest.raises(ParameterError):
            BoseEinsteinYield(n_layers=0)

    def test_negative_binomial_rejects_nonpositive_alpha(self):
        with pytest.raises(ParameterError):
            NegativeBinomialYield(alpha=0.0)

    def test_fault_expectation_rejects_negative(self):
        with pytest.raises(ParameterError):
            PoissonYield().yield_for_area(-1.0, 0.5)


class TestDensityInversion:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_roundtrip(self, model):
        area = 1.4
        d = model.defect_density_for_yield(area, 0.63)
        assert model.yield_for_area(area, d) == pytest.approx(0.63, rel=1e-6)

    def test_perfect_yield_needs_zero_density(self):
        assert PoissonYield().defect_density_for_yield(2.0, 1.0) == 0.0

    def test_smaller_target_allows_more_defects(self):
        d_high = PoissonYield().defect_density_for_yield(1.0, 0.9)
        d_low = PoissonYield().defect_density_for_yield(1.0, 0.5)
        assert d_low > d_high


class TestCompoundPoissonGamma:
    @pytest.mark.parametrize("alpha", [0.3, 1.0, 2.0, 7.5])
    def test_bitwise_equal_to_negative_binomial(self, alpha):
        # The compound Poisson-gamma closed form IS the NB law; the
        # two must agree bitwise, not just approximately.
        cpg = CompoundPoissonGamma(alpha=alpha)
        nb = cpg.negative_binomial_equivalent()
        assert isinstance(nb, NegativeBinomialYield)
        assert nb.alpha == alpha
        for m in (0.0, 0.1, 1.0, 4.0, 30.0):
            assert cpg.yield_from_expectation(m) \
                == nb.yield_from_expectation(m)

    @pytest.mark.parametrize("alpha", [0.05, 0.5, 2.0, 50.0, 5e3])
    def test_self_check_passes_across_alpha_range(self, alpha):
        # Quadrature of the gamma mixture reproduces the closed form
        # at the alpha-scaled probe points for tiny and huge shapes.
        CompoundPoissonGamma(alpha=alpha).self_check()

    def test_self_check_detects_undersampled_quadrature(self):
        # Starving the quadrature of nodes at a custom far probe
        # must trip the check rather than silently disagree.
        cpg = CompoundPoissonGamma(alpha=0.05)
        with pytest.raises(ParameterError):
            cpg.self_check(m_points=(400.0,), n_nodes=2, tol=1e-12)

    def test_mixture_yield_matches_closed_form(self):
        cpg = CompoundPoissonGamma(alpha=1.5)
        for m in (0.0, 0.4, 1.5, 6.0):
            assert cpg.mixture_yield(m) == pytest.approx(
                cpg.yield_from_expectation(m), abs=1e-9)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ParameterError):
            CompoundPoissonGamma(alpha=0.0)


class TestHierarchical:
    def test_large_lot_alpha_collapses_to_wafer_nb(self):
        # lot factor -> delta(1): two-level mixing degenerates to the
        # single-level NB at the wafer shape.
        m = 1.7
        hier = HierarchicalYieldModel(lot_alpha=1e6, wafer_alpha=1.5)
        nb = NegativeBinomialYield(alpha=1.5)
        assert hier.yield_from_expectation(m) == pytest.approx(
            nb.yield_from_expectation(m), abs=1e-5)

    def test_large_wafer_alpha_collapses_to_lot_nb(self):
        # Wafer level -> Poisson; only the lot gamma mixes, which is
        # again a single-level NB at the lot shape.
        m = 1.7
        hier = HierarchicalYieldModel(lot_alpha=2.0, wafer_alpha=1e7)
        nb = NegativeBinomialYield(alpha=2.0)
        assert hier.yield_from_expectation(m) == pytest.approx(
            nb.yield_from_expectation(m), abs=1e-5)

    def test_extra_mixing_raises_yield(self):
        # Jensen: Y_NB(m) is convex in the density scale, so adding
        # the lot-level mixer can only raise yield at the same mean m.
        for m in (0.5, 2.0, 8.0):
            hier = HierarchicalYieldModel(lot_alpha=1.2, wafer_alpha=1.5)
            nb = NegativeBinomialYield(alpha=1.5)
            assert hier.yield_from_expectation(m) \
                >= nb.yield_from_expectation(m)

    def test_quadrature_nodes_are_cached_and_normalized(self):
        hier = HierarchicalYieldModel(lot_alpha=2.0, wafer_alpha=1.5)
        nodes, weights = hier.mixing_nodes()
        assert hier.mixing_nodes() == (nodes, weights)
        assert len(nodes) == len(weights) == hier.n_nodes
        assert math.fsum(weights) == pytest.approx(1.0, abs=1e-12)
        # Mean-1 mixer: the quadrature reproduces the first moment.
        mean = math.fsum(w * t for t, w in zip(nodes, weights))
        assert mean == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("kwargs", [
        dict(lot_alpha=0.0, wafer_alpha=1.0),
        dict(lot_alpha=1.0, wafer_alpha=-2.0),
        dict(lot_alpha=1.0, wafer_alpha=1.0, n_nodes=1),
        dict(lot_alpha=1.0, wafer_alpha=1.0, n_nodes=1024),
        dict(lot_alpha=1.0, wafer_alpha=1.0, n_nodes=True),
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            HierarchicalYieldModel(**kwargs)


class TestMixture:
    def test_weighted_average_of_components(self):
        mix = MixtureYieldModel(((0.3, PoissonYield()),
                                 (0.7, SeedsYield())))
        for m in (0.0, 0.8, 3.0):
            want = 0.3 * PoissonYield().yield_from_expectation(m) \
                + 0.7 * SeedsYield().yield_from_expectation(m)
            assert mix.yield_from_expectation(m) == pytest.approx(want)

    def test_single_component_is_transparent(self):
        mix = MixtureYieldModel(((1.0, MurphyYield()),))
        for m in (0.0, 0.5, 2.0):
            assert mix.yield_from_expectation(m) \
                == MurphyYield().yield_from_expectation(m)

    def test_is_hashable_for_serve_coalescing(self):
        a = MixtureYieldModel(((0.4, PoissonYield()),
                               (0.6, SeedsYield())))
        b = MixtureYieldModel(((0.4, PoissonYield()),
                               (0.6, SeedsYield())))
        assert a == b and hash(a) == hash(b)

    @pytest.mark.parametrize("components", [
        (),
        ((0.5, PoissonYield()),),                      # weights miss 1
        ((1.5, PoissonYield()), (-0.5, SeedsYield())),  # negative weight
        ((1.0, "poisson"),),                           # not a model
        ((0.5, PoissonYield()), 0.5),                  # not a pair
    ])
    def test_rejects_bad_components(self, components):
        with pytest.raises(ParameterError):
            MixtureYieldModel(components)


class TestReferenceArea:
    def test_scenario2_anchor(self):
        # Y0 = 70% at A0 = 1 cm^2: a 1 cm^2 die yields exactly 0.7.
        law = ReferenceAreaYield(reference_yield=0.7, reference_area_cm2=1.0)
        assert law.yield_for_die_area(1.0) == pytest.approx(0.7)

    def test_exponential_in_area(self):
        law = ReferenceAreaYield(reference_yield=0.7)
        assert law.yield_for_die_area(2.0) == pytest.approx(0.49)
        assert law.yield_for_die_area(0.5) == pytest.approx(math.sqrt(0.7))

    def test_implied_density_consistency(self):
        law = ReferenceAreaYield(reference_yield=0.7, reference_area_cm2=1.0)
        d = law.implied_defect_density_per_cm2
        assert math.exp(-1.0 * d) == pytest.approx(0.7)

    def test_rejects_degenerate_reference(self):
        with pytest.raises(ParameterError):
            ReferenceAreaYield(reference_yield=0.0)


class TestScaledPoisson:
    """Eq. (7) with the Sec.-IV.B fitted fab constants."""

    FAB = dict(design_density=152.0, defect_coefficient=1.72, p=4.07)

    def test_yield_decreases_with_transistor_count(self):
        ys = [scaled_poisson_yield(n, self.FAB["design_density"],
                                   self.FAB["defect_coefficient"], 0.8,
                                   self.FAB["p"])
              for n in (1e5, 5e5, 1e6, 5e6)]
        assert ys == sorted(ys, reverse=True)

    def test_yield_decreases_with_shrink_at_fixed_count(self):
        # A D0 = N d_d D / lambda^(p-2): shrink raises the exponent.
        ys = [scaled_poisson_yield(1e6, 152.0, 1.72, lam, 4.07)
              for lam in (1.0, 0.8, 0.65, 0.5)]
        assert ys == sorted(ys, reverse=True)

    def test_consistent_with_plain_poisson(self):
        # At lambda = 1 um, D0 = D; eq. (7) must equal eq. (6) on the area.
        n_tr, d_d, d_coeff = 2.5e5, 152.0, 1.72
        area_cm2 = n_tr * d_d * 1.0 / 1e8
        expected = poisson_yield(area_cm2, d_coeff)
        got = scaled_poisson_yield(n_tr, d_d, d_coeff, 1.0, 4.07)
        assert got == pytest.approx(expected)

    def test_zero_defect_coefficient_gives_unity(self):
        assert scaled_poisson_yield(1e6, 152.0, 0.0, 0.5, 4.07) == 1.0

    def test_underflow_clamped_positive(self):
        y = scaled_poisson_yield(1e9, 152.0, 1.72, 0.3, 4.07)
        assert y > 0.0

    def test_p_exponent_controls_shrink_penalty(self):
        # Larger p punishes shrink harder (below the 1 um reference).
        y_p4 = scaled_poisson_yield(1e6, 152.0, 1.72, 0.5, 4.0)
        y_p5 = scaled_poisson_yield(1e6, 152.0, 1.72, 0.5, 5.0)
        assert y_p5 < y_p4
