"""Model selection: MLE fits and AIC/BIC ranking recover generators.

The headline property is *generator recovery*: lots sampled from a
known defect process must rank the matching closed-form law first —
Poisson data picks Poisson, two-level clustered data picks the
hierarchical law.  The NB/compound-Poisson-gamma equivalence shows up
as an exact likelihood tie broken deterministically toward the
canonical NB spelling... by name, so CPG sorts first.
"""

import math

import pytest

from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    PoissonYield,
    SpotDefectSimulator,
    fit_yield_models,
)
from repro.yieldsim.selection import DEFAULT_LAWS

WAFER = Wafer(radius_cm=5.0)
DIE = Die(1.0, 1.0)


def _lots(density, *, wafer_alpha=None, lot_alpha=None,
          n_lots=4, n_wafers=3, seed=21):
    sim = SpotDefectSimulator(WAFER, DIE, density,
                              clustering_alpha=wafer_alpha,
                              lot_alpha=lot_alpha)
    return sim.simulate_lots(n_lots, n_wafers, seed=seed)


class TestGeneratorRecovery:
    def test_poisson_data_ranks_poisson_first(self):
        report = fit_yield_models(_lots(0.6), DIE.area_cm2)
        assert report.best.name == "poisson"
        assert isinstance(report.best.model, PoissonYield)
        # mu-hat = K/N exactly; density = mu-hat / area.
        want = report.n_defects / report.n_dies / DIE.area_cm2
        assert report.best.params["defect_density_per_cm2"] \
            == pytest.approx(want)

    def test_clustered_data_prefers_gamma_family_over_poisson(self):
        # wafer_alpha far from 1 so Seeds (the alpha=1 special case)
        # cannot absorb the clustering with one fewer parameter.
        report = fit_yield_models(
            _lots(0.8, wafer_alpha=0.5, n_lots=6, n_wafers=4, seed=33),
            DIE.area_cm2)
        assert report.rank_of("negative_binomial") \
            < report.rank_of("seeds")
        assert report.rank_of("negative_binomial") \
            < report.rank_of("poisson")
        nb = report.law("negative_binomial")
        assert nb.params["alpha"] == pytest.approx(0.5, abs=0.3)

    def test_hierarchical_data_ranks_hierarchical_first(self):
        lots = _lots(0.9, wafer_alpha=1.2, lot_alpha=1.5,
                     n_lots=12, n_wafers=6, seed=2024)
        report = fit_yield_models(lots, DIE.area_cm2)
        assert report.best.name == "hierarchical"
        assert isinstance(report.best.model, HierarchicalYieldModel)
        params = report.best.params
        assert params["defect_density_per_cm2"] == pytest.approx(0.9,
                                                                 abs=0.3)
        assert params["wafer_alpha"] == pytest.approx(1.2, abs=0.5)
        assert params["lot_alpha"] == pytest.approx(1.5, abs=0.7)

    def test_nb_and_cpg_tie_exactly(self):
        # Algebraically the same law: identical likelihood, AIC, BIC,
        # and fitted parameters; the tie breaks by name.
        report = fit_yield_models(
            _lots(0.8, wafer_alpha=0.5, n_lots=6, n_wafers=4, seed=33),
            DIE.area_cm2)
        nb = report.law("negative_binomial")
        cpg = report.law("compound_poisson_gamma")
        assert isinstance(cpg.model, CompoundPoissonGamma)
        assert nb.log_likelihood == cpg.log_likelihood
        assert nb.aic == cpg.aic and nb.bic == cpg.bic
        assert nb.params == cpg.params
        assert report.rank_of("compound_poisson_gamma") \
            == report.rank_of("negative_binomial") - 1


class TestReportStructure:
    @pytest.fixture(scope="class")
    def report(self):
        return fit_yield_models(_lots(0.6), DIE.area_cm2)

    def test_all_default_laws_fitted_and_sorted(self, report):
        assert {f.name for f in report.laws} == set(DEFAULT_LAWS)
        aics = [f.aic for f in report.laws]
        assert aics == sorted(aics)

    def test_information_criteria_are_consistent(self, report):
        n = report.n_dies
        for fit in report.laws:
            assert fit.aic == pytest.approx(
                2 * fit.n_params - 2 * fit.log_likelihood)
            assert fit.bic == pytest.approx(
                fit.n_params * math.log(n) - 2 * fit.log_likelihood)
            assert fit.log_likelihood < 0.0

    def test_fitted_models_are_usable_yield_models(self, report):
        for fit in report.laws:
            y = fit.model.yield_from_expectation(0.7)
            assert 0.0 < y <= 1.0

    def test_to_dict_is_json_ready(self, report):
        import json
        blob = report.to_dict()
        assert blob["ranking"][0]["name"] == report.best.name
        assert blob["n_dies"] == report.n_dies
        json.dumps(blob)  # must not raise

    def test_table_rows_carry_delta_aic(self, report):
        rows = report.table_rows()
        assert rows[0][0] == 1 and rows[0][-1] == 0.0
        assert all(row[-1] >= 0.0 for row in rows)

    def test_lookup_errors(self, report):
        with pytest.raises(KeyError):
            report.law("weibull")
        with pytest.raises(KeyError):
            report.rank_of("weibull")

    def test_single_lot_result_accepted_directly(self):
        lot = _lots(0.6)[0]
        report = fit_yield_models(lot, DIE.area_cm2,
                                  laws=("poisson", "seeds"))
        assert report.n_lots == 1
        assert {f.name for f in report.laws} == {"poisson", "seeds"}


class TestValidation:
    def test_rejects_empty_and_non_lot_input(self):
        with pytest.raises(ParameterError):
            fit_yield_models([], DIE.area_cm2)
        with pytest.raises(ParameterError):
            fit_yield_models([object()], DIE.area_cm2)

    def test_rejects_unknown_law(self):
        with pytest.raises(ParameterError):
            fit_yield_models(_lots(0.6), DIE.area_cm2,
                             laws=("poisson", "weibull"))

    def test_rejects_nonpositive_area(self):
        with pytest.raises(ParameterError):
            fit_yield_models(_lots(0.6), 0.0)

    def test_rejects_defect_free_lots(self):
        clean = SpotDefectSimulator(WAFER, DIE, 0.0)
        with pytest.raises(ParameterError):
            fit_yield_models(clean.simulate_lots(2, 2, seed=1),
                             DIE.area_cm2)


class TestObservability:
    def test_fit_emits_spans_and_metrics(self):
        from repro import obs
        obs.enable(trace=True, metrics=True)
        try:
            fit_yield_models(_lots(0.6), DIE.area_cm2,
                             laws=("poisson", "murphy"))
            names = [span.name for span in obs.get_trace()]
            assert "yield.fit" in names
            assert "yield.fit.poisson" in names
            assert "yield.fit.murphy" in names
            rows = dict(obs.metrics.rows())
            assert rows["yield.fit.calls"] >= 1
            assert rows["yield.fit.laws"] >= 2
        finally:
            obs.disable()
