"""Yield learning curves and ramp economics."""

import math

import pytest

from repro.errors import ConvergenceError, ParameterError
from repro.yieldsim import RampEconomics, YieldLearningCurve
from repro.yieldsim.models import NegativeBinomialYield


@pytest.fixture
def curve():
    """A typical ramp: 5 /cm^2 at intro, 0.5 /cm^2 mature, tau = 6 months."""
    return YieldLearningCurve(initial_density_per_cm2=5.0,
                              mature_density_per_cm2=0.5,
                              time_constant_months=6.0)


class TestCurve:
    def test_boundary_values(self, curve):
        assert curve.density(0.0) == pytest.approx(5.0)
        assert curve.density(1000.0) == pytest.approx(0.5, abs=1e-9)

    def test_density_monotone_decreasing(self, curve):
        ds = [curve.density(t) for t in (0, 3, 6, 12, 24, 48)]
        assert ds == sorted(ds, reverse=True)

    def test_one_tau_covers_63_percent(self, curve):
        d = curve.density(6.0)
        assert d == pytest.approx(0.5 + 4.5 * math.exp(-1.0))

    def test_yield_improves_over_time(self, curve):
        ys = [curve.yield_at(t, 1.0) for t in (0, 6, 12, 24)]
        assert ys == sorted(ys)

    def test_months_to_density_roundtrip(self, curve):
        t = curve.months_to_density(1.0)
        assert curve.density(t) == pytest.approx(1.0)

    def test_months_to_density_at_or_below_floor(self, curve):
        with pytest.raises(ParameterError):
            curve.months_to_density(0.5)
        assert curve.months_to_density(6.0) == 0.0  # already there

    def test_months_to_yield_roundtrip(self, curve):
        t = curve.months_to_yield(0.5, 1.0)
        assert curve.yield_at(t, 1.0) == pytest.approx(0.5, rel=1e-6)

    def test_unreachable_yield_raises(self, curve):
        # Mature yield for a 1 cm^2 die: exp(-0.5) = 0.607.
        with pytest.raises(ConvergenceError):
            curve.months_to_yield(0.7, 1.0)

    def test_accelerated_learning(self, curve):
        fast = curve.accelerated(2.0)
        assert fast.time_constant_months == pytest.approx(3.0)
        assert fast.yield_at(6.0, 1.0) > curve.yield_at(6.0, 1.0)

    def test_non_poisson_model(self):
        c = YieldLearningCurve(5.0, 0.5, 6.0,
                               yield_model=NegativeBinomialYield(alpha=1.0))
        assert c.yield_at(0.0, 1.0) > \
            YieldLearningCurve(5.0, 0.5, 6.0).yield_at(0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            YieldLearningCurve(1.0, 2.0, 6.0)  # mature above initial
        with pytest.raises(ParameterError):
            YieldLearningCurve(5.0, 0.5, 0.0)


@pytest.fixture
def ramp(curve):
    """A profitable memory-like ramp."""
    return RampEconomics(curve=curve, die_area_cm2=1.0, dies_per_wafer=120,
                         wafers_per_month=2000.0,
                         wafer_cost_dollars=800.0,
                         die_price_dollars=40.0, window_months=24.0)


class TestRampEconomics:
    def test_cumulative_good_dies_monotone(self, ramp):
        g6 = ramp.good_dies_through(6.0)
        g12 = ramp.good_dies_through(12.0)
        g24 = ramp.good_dies_through(24.0)
        assert 0.0 < g6 < g12 < g24

    def test_second_year_outproduces_first(self, ramp):
        first = ramp.good_dies_through(12.0)
        both = ramp.good_dies_through(24.0)
        assert both - first > first  # yield is higher in year two

    def test_program_profit_positive_here(self, ramp):
        assert ramp.program_profit() > 0.0

    def test_faster_learning_always_worth_something(self, ramp):
        assert ramp.value_of_faster_learning(2.0) > 0.0
        assert ramp.value_of_faster_learning(1.0) == pytest.approx(0.0)

    def test_faster_learning_value_saturates(self, ramp):
        v2 = ramp.value_of_faster_learning(2.0)
        v8 = ramp.value_of_faster_learning(8.0)
        v64 = ramp.value_of_faster_learning(64.0)
        assert v2 < v8 < v64
        # Diminishing returns: 8 -> 64 adds less than 1 -> 8 did.
        assert (v64 - v8) < v8

    def test_breakeven_month_exists_and_is_consistent(self, ramp):
        t = ramp.breakeven_month()
        assert t is not None
        revenue = ramp.good_dies_through(t) * ramp.die_price_dollars
        cost = ramp.wafer_cost_dollars * ramp.wafers_per_month * t
        assert revenue >= cost

    def test_hopeless_ramp_never_breaks_even(self, curve):
        loser = RampEconomics(curve=curve, die_area_cm2=1.0,
                              dies_per_wafer=120, wafers_per_month=2000.0,
                              wafer_cost_dollars=800.0,
                              die_price_dollars=1.0, window_months=24.0)
        assert loser.breakeven_month() is None
        assert loser.program_profit() < 0.0

    def test_validation(self, curve):
        with pytest.raises(ParameterError):
            RampEconomics(curve=curve, die_area_cm2=1.0, dies_per_wafer=0,
                          wafers_per_month=100.0, wafer_cost_dollars=500.0,
                          die_price_dollars=10.0)
