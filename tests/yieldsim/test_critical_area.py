"""Critical-area model for shorts and opens."""

import math

import pytest

from repro.errors import ParameterError
from repro.yieldsim import (
    DefectSizeDistribution,
    WirePattern,
    average_critical_area,
    critical_area_open,
    critical_area_short,
)
from repro.yieldsim.critical_area import (
    effective_density_scaling_exponent,
    fault_expectation,
)


@pytest.fixture
def pattern():
    """1 um wires at 1 um spacing over 0.1 cm^2 (a minimum-pitch block)."""
    return WirePattern(wire_width_um=1.0, wire_spacing_um=1.0, area_cm2=0.1)


class TestSingleRadius:
    def test_no_short_below_spacing(self, pattern):
        # A disk with diameter <= spacing cannot bridge two wires.
        assert critical_area_short(pattern, 0.49) == 0.0
        assert critical_area_short(pattern, 0.5) == 0.0

    def test_short_grows_linearly_above_onset(self, pattern):
        a1 = critical_area_short(pattern, 0.6)
        a2 = critical_area_short(pattern, 0.7)
        a3 = critical_area_short(pattern, 0.8)
        assert a1 < a2 < a3
        assert (a3 - a2) == pytest.approx(a2 - a1, rel=1e-9)

    def test_short_saturates_at_pattern_area(self, pattern):
        assert critical_area_short(pattern, 50.0) == pytest.approx(
            pattern.area_cm2)

    def test_open_mirrors_short_for_symmetric_pattern(self, pattern):
        # width == spacing: opens and shorts have identical geometry.
        for r in (0.3, 0.6, 1.0, 2.0):
            assert critical_area_open(pattern, r) == pytest.approx(
                critical_area_short(pattern, r))

    def test_asymmetric_pattern_breaks_symmetry(self):
        pat = WirePattern(wire_width_um=2.0, wire_spacing_um=0.5, area_cm2=0.1)
        r = 0.5  # diameter 1.0: bridges the 0.5 gap, cannot sever 2.0 wire
        assert critical_area_short(pat, r) > 0.0
        assert critical_area_open(pat, r) == 0.0

    def test_negative_radius_rejected(self, pattern):
        with pytest.raises(ParameterError):
            critical_area_short(pattern, -0.1)


class TestPatternValidation:
    def test_at_feature_size(self):
        pat = WirePattern.at_feature_size(0.5, 0.2)
        assert pat.wire_width_um == pat.wire_spacing_um == 0.5
        assert pat.pitch_um == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            WirePattern(wire_width_um=0.0, wire_spacing_um=1.0, area_cm2=0.1)


class TestAverageCriticalArea:
    def test_bounded_by_pattern_area(self, pattern):
        dist = DefectSizeDistribution(r0_um=0.2, p=4.07)
        ac = average_critical_area(pattern, dist, mechanism="short")
        assert 0.0 < ac < pattern.area_cm2

    def test_larger_defects_mean_more_critical_area(self, pattern):
        small = DefectSizeDistribution(r0_um=0.1, p=4.07)
        large = DefectSizeDistribution(r0_um=0.8, p=4.07)
        ac_small = average_critical_area(pattern, small)
        ac_large = average_critical_area(pattern, large)
        assert ac_large > ac_small

    def test_denser_pattern_more_sensitive(self):
        dist = DefectSizeDistribution(r0_um=0.2, p=4.07)
        coarse = WirePattern.at_feature_size(1.0, 0.1)
        fine = WirePattern.at_feature_size(0.4, 0.1)
        assert average_critical_area(fine, dist) > \
            average_critical_area(coarse, dist)

    def test_unknown_mechanism_rejected(self, pattern):
        dist = DefectSizeDistribution(r0_um=0.2, p=4.07)
        with pytest.raises(ParameterError):
            average_critical_area(pattern, dist, mechanism="latchup")

    def test_fault_expectation_linear_in_density(self, pattern):
        dist = DefectSizeDistribution(r0_um=0.2, p=4.07)
        m1 = fault_expectation(pattern, dist, 1.0)
        m2 = fault_expectation(pattern, dist, 2.0)
        assert m2 == pytest.approx(2.0 * m1)


class TestBridgeToEquationSeven:
    def test_scaling_exponent_is_p_minus_one(self):
        """The layout-level model derives a power-of-lambda yield penalty.

        For minimum-pitch wires (both dimensions proportional to lambda)
        deep in the 1/R^p tail, substituting R = lambda*u into the
        critical-area integral gives A_c ~ lambda^(1-p): the fault
        density at fixed area scales as lambda^-(p-1).  (The paper's
        D/lambda^p substitution is one power steeper; see the function
        docstring for why.)
        """
        dist = DefectSizeDistribution(r0_um=0.05, p=4.07)
        q = effective_density_scaling_exponent(dist, lam_low_um=0.4,
                                               lam_high_um=1.0)
        assert q == pytest.approx(4.07 - 1.0, abs=0.15)

    def test_exponent_grows_with_p(self):
        qs = []
        for p in (3.0, 4.0, 5.0):
            dist = DefectSizeDistribution(r0_um=0.05, p=p)
            qs.append(effective_density_scaling_exponent(
                dist, lam_low_um=0.4, lam_high_um=1.0))
        assert qs == sorted(qs)

    def test_exponent_validation(self):
        dist = DefectSizeDistribution(r0_um=0.1, p=4.0)
        with pytest.raises(ParameterError):
            effective_density_scaling_exponent(dist, lam_low_um=1.0,
                                               lam_high_um=0.5)
