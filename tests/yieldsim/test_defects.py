"""Defect size distribution (Fig. 5)."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.errors import ParameterError
from repro.yieldsim import DefectSizeDistribution


@pytest.fixture
def dist():
    """The paper's fitted parameters: p = 4.07, peak at 0.2 um."""
    return DefectSizeDistribution(r0_um=0.2, p=4.07)


class TestNormalization:
    def test_pdf_integrates_to_one(self, dist):
        total, _ = integrate.quad(lambda r: float(dist.pdf(r)), 0.0, 200.0,
                                  limit=300)
        assert total == pytest.approx(1.0, abs=1e-5)

    @pytest.mark.parametrize("p", [2.5, 3.0, 4.07, 5.0])
    def test_normalization_across_p(self, p):
        d = DefectSizeDistribution(r0_um=0.5, p=p)
        total, _ = integrate.quad(lambda r: float(d.pdf(r)), 0.0, 5000.0,
                                  limit=400)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_cdf_limits(self, dist):
        assert float(dist.cdf(0.0)) == pytest.approx(0.0)
        assert float(dist.cdf(1e4)) == pytest.approx(1.0, abs=1e-9)

    def test_cdf_monotone(self, dist):
        r = np.linspace(0.0, 3.0, 200)
        c = np.asarray(dist.cdf(r))
        assert np.all(np.diff(c) >= -1e-12)

    def test_cdf_matches_pdf_integral(self, dist):
        for r_hi in (0.1, 0.2, 0.5, 1.0):
            num, _ = integrate.quad(lambda r: float(dist.pdf(r)), 0.0, r_hi)
            assert float(dist.cdf(r_hi)) == pytest.approx(num, abs=1e-8)


class TestShape:
    def test_peak_at_r0(self, dist):
        # The density rises linearly to R0 then falls; R0 is the mode.
        below = float(dist.pdf(0.19))
        at = float(dist.pdf(0.2))
        above = float(dist.pdf(0.21))
        assert at > below and at > above

    def test_pdf_continuous_at_r0(self, dist):
        eps = 1e-9
        assert float(dist.pdf(0.2 - eps)) == pytest.approx(
            float(dist.pdf(0.2 + eps)), rel=1e-5)

    def test_tail_power_law(self, dist):
        # f(2r)/f(r) = 2^-p deep in the tail.
        r = 5.0
        ratio = float(dist.pdf(2 * r)) / float(dist.pdf(r))
        assert ratio == pytest.approx(2.0 ** (-4.07), rel=1e-9)

    def test_rejects_negative_radius(self, dist):
        with pytest.raises(ParameterError):
            dist.pdf(-0.1)
        with pytest.raises(ParameterError):
            dist.cdf(-0.1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            DefectSizeDistribution(r0_um=0.0, p=4.0)
        with pytest.raises(ParameterError):
            DefectSizeDistribution(r0_um=0.2, p=1.0)


class TestMoments:
    def test_mean_matches_numeric(self, dist):
        num, _ = integrate.quad(lambda r: r * float(dist.pdf(r)), 0.0, 1000.0,
                                limit=400)
        assert dist.mean_um() == pytest.approx(num, rel=1e-5)

    def test_first_moment_equals_mean(self, dist):
        assert dist.moment_um(1) == pytest.approx(dist.mean_um())

    def test_second_moment_matches_numeric(self, dist):
        num, _ = integrate.quad(lambda r: r * r * float(dist.pdf(r)),
                                0.0, 2000.0, limit=400)
        assert dist.moment_um(2) == pytest.approx(num, rel=1e-4)

    def test_mean_requires_p_above_two(self):
        d = DefectSizeDistribution(r0_um=0.2, p=1.9)
        with pytest.raises(ParameterError):
            d.mean_um()

    def test_high_moment_requires_heavy_p(self, dist):
        with pytest.raises(ParameterError):
            dist.moment_um(4)  # needs p > 5, we have 4.07


class TestSampling:
    def test_sample_matches_cdf(self, dist):
        rng = np.random.default_rng(42)
        samples = dist.sample(200_000, rng)
        for q in (0.05, 0.2, 0.5, 1.0):
            empirical = float(np.mean(samples <= q))
            assert empirical == pytest.approx(float(dist.cdf(q)), abs=0.01)

    def test_sample_mean_converges(self, dist):
        rng = np.random.default_rng(7)
        samples = dist.sample(400_000, rng)
        assert float(samples.mean()) == pytest.approx(dist.mean_um(), rel=0.05)

    def test_sample_size_zero(self, dist):
        rng = np.random.default_rng(0)
        assert dist.sample(0, rng).shape == (0,)

    def test_sample_rejects_negative_n(self, dist):
        rng = np.random.default_rng(0)
        with pytest.raises(ParameterError):
            dist.sample(-1, rng)

    def test_samples_nonnegative(self, dist):
        rng = np.random.default_rng(3)
        assert np.all(dist.sample(10_000, rng) >= 0.0)


class TestCriticalFraction:
    def test_survival_complements_cdf(self, dist):
        for r in (0.1, 0.3, 1.0):
            assert float(dist.survival(r)) == pytest.approx(
                1.0 - float(dist.cdf(r)))

    def test_shrink_multiplies_fault_density(self, dist):
        """The Fig.-5 observation: smaller features, many more killers."""
        scale = dist.fault_density_scale(kill_radius_um=0.25,
                                         reference_kill_radius_um=0.5)
        assert scale > 2.0  # halving the kill radius more than doubles killers

    def test_tail_scale_approaches_power_law(self, dist):
        # Deep in the tail: survival(r) ~ r^-(p-1).
        scale = dist.fault_density_scale(2.0, 4.0)
        assert scale == pytest.approx(2.0 ** (4.07 - 1.0), rel=0.02)

    def test_scale_identity(self, dist):
        assert dist.fault_density_scale(0.4, 0.4) == pytest.approx(1.0)
