"""Monte Carlo wafer-map simulator vs. the closed-form models."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    DefectSizeDistribution,
    NegativeBinomialYield,
    PoissonYield,
    SpotDefectSimulator,
)


@pytest.fixture
def wafer():
    return Wafer(radius_cm=7.5)


@pytest.fixture
def die():
    return Die.square(1.0)


class TestConstruction:
    def test_rejects_oversized_die(self, wafer):
        with pytest.raises(ParameterError):
            SpotDefectSimulator(wafer, Die.square(20.0),
                                defect_density_per_cm2=1.0)

    def test_rejects_negative_density(self, wafer, die):
        with pytest.raises(ParameterError):
            SpotDefectSimulator(wafer, die, defect_density_per_cm2=-1.0)


class TestWaferMap:
    def test_zero_density_all_good(self, wafer, die):
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.0)
        wmap = sim.simulate_wafer(np.random.default_rng(0))
        assert wmap.n_good == wmap.n_dies > 100
        assert wmap.yield_fraction == 1.0
        assert wmap.n_defects_total == 0

    def test_die_centers_inside_wafer(self, wafer, die):
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.1)
        wmap = sim.simulate_wafer(np.random.default_rng(1))
        radii = np.hypot(wmap.die_centers_cm[:, 0], wmap.die_centers_cm[:, 1])
        # Centers must be within the wafer minus half the die diagonal.
        assert np.all(radii <= wafer.radius_cm)

    def test_counts_shape_matches_centers(self, wafer, die):
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.5)
        wmap = sim.simulate_wafer(np.random.default_rng(2))
        assert wmap.defect_counts.shape[0] == wmap.die_centers_cm.shape[0]

    def test_lot_size(self, wafer, die):
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.1)
        lot = sim.simulate_lot(5, np.random.default_rng(3))
        assert len(lot) == 5

    def test_lot_rejects_negative(self, wafer, die):
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=0.1)
        with pytest.raises(ParameterError):
            sim.simulate_lot(-1, np.random.default_rng(0))


class TestConvergenceToPoisson:
    def test_yield_matches_equation_six(self, wafer, die):
        """Homogeneous defects with no size filter -> eq. (6) exactly."""
        d0 = 0.8
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=d0)
        y_mc = sim.estimate_yield(60, np.random.default_rng(11))
        y_poisson = PoissonYield().yield_for_area(die.area_cm2, d0)
        assert y_mc == pytest.approx(y_poisson, abs=0.02)

    def test_size_filter_reduces_to_effective_density(self, wafer, die):
        """With a kill radius, only tail defects kill: D_eff = D*P(R>r)."""
        dist = DefectSizeDistribution(r0_um=0.3, p=4.07)
        sim = SpotDefectSimulator(
            wafer, die, defect_density_per_cm2=3.0,
            size_distribution=dist, kill_radius_um=0.5)
        d_eff = sim.expected_killer_density()
        assert d_eff < 3.0
        y_mc = sim.estimate_yield(60, np.random.default_rng(12))
        y_expected = PoissonYield().yield_for_area(die.area_cm2, d_eff)
        assert y_mc == pytest.approx(y_expected, abs=0.025)

    def test_larger_kill_radius_improves_yield(self, wafer, die):
        dist = DefectSizeDistribution(r0_um=0.3, p=4.07)
        rng = np.random.default_rng(5)
        ys = []
        for kill in (0.2, 0.5, 1.0):
            sim = SpotDefectSimulator(
                wafer, die, defect_density_per_cm2=3.0,
                size_distribution=dist, kill_radius_um=kill)
            ys.append(sim.estimate_yield(40, rng))
        assert ys[0] < ys[1] < ys[2]


class TestClustering:
    def test_clustered_yield_above_poisson(self, wafer, die):
        """Gamma-mixed density -> negative-binomial; beats Poisson at same mean."""
        d0 = 1.2
        alpha = 1.0
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=d0,
                                  clustering_alpha=alpha)
        y_mc = sim.estimate_yield(250, np.random.default_rng(21))
        y_poisson = PoissonYield().yield_for_area(die.area_cm2, d0)
        assert y_mc > y_poisson

    def test_clustered_yield_matches_negative_binomial(self, wafer, die):
        d0, alpha = 1.2, 1.0
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=d0,
                                  clustering_alpha=alpha)
        y_mc = sim.estimate_yield(400, np.random.default_rng(22))
        y_nb = NegativeBinomialYield(alpha=alpha).yield_for_area(
            die.area_cm2, d0)
        assert y_mc == pytest.approx(y_nb, abs=0.03)

    def test_rejects_nonpositive_alpha(self, wafer, die):
        with pytest.raises(ParameterError):
            SpotDefectSimulator(wafer, die, defect_density_per_cm2=1.0,
                                clustering_alpha=0.0)


class TestConservation:
    def test_killer_hits_bounded_by_defects_thrown(self, wafer):
        # Dies are disjoint, so total die-hits <= defects thrown.
        sim = SpotDefectSimulator(wafer, Die.square(2.0),
                                  defect_density_per_cm2=1.0)
        for seed in range(5):
            wmap = sim.simulate_wafer(np.random.default_rng(seed))
            assert wmap.defect_counts.sum() <= wmap.n_defects_total
