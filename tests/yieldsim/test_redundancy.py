"""Memory redundancy / repair yield (Scenario #1's S1.2 assumption)."""

import math

import pytest

from repro.errors import ParameterError
from repro.yieldsim import RedundantMemoryYield


@pytest.fixture
def dram():
    """A 1 Mb-DRAM-like die: 0.4 cm^2 array, 0.1 cm^2 periphery,
    16 blocks with 2 spares each, 4% spare overhead."""
    return RedundantMemoryYield(
        array_area_cm2=0.4, periphery_area_cm2=0.1, n_blocks=16,
        spares_per_block=2, area_overhead_fraction=0.04)


class TestDegenerateCases:
    def test_no_spares_equals_poisson(self):
        mem = RedundantMemoryYield(array_area_cm2=0.5,
                                   periphery_area_cm2=0.2)
        d = 1.3
        assert mem.yield_for_density(d) == pytest.approx(
            math.exp(-0.7 * d))

    def test_zero_density_perfect_yield(self, dram):
        assert dram.yield_for_density(0.0) == pytest.approx(1.0)

    def test_unrepaired_is_plain_poisson_on_total_area(self, dram):
        d = 0.9
        assert dram.unrepaired_yield(d) == pytest.approx(
            math.exp(-dram.total_area_cm2 * d))


class TestRepairBenefit:
    def test_repair_gain_at_least_one(self, dram):
        for d in (0.1, 0.5, 2.0, 8.0):
            assert dram.repair_gain(d) >= 1.0

    def test_more_spares_more_yield(self):
        d = 3.0
        yields = []
        for spares in (0, 1, 2, 4, 8):
            mem = RedundantMemoryYield(array_area_cm2=0.5, n_blocks=8,
                                       spares_per_block=spares)
            yields.append(mem.yield_for_density(d))
        assert yields == sorted(yields)
        assert yields[-1] > yields[0]

    def test_blocks_help_at_fixed_total_spares(self):
        """Distributing the same spare budget over more blocks wins
        (defects clustered in one block exhaust its spares)."""
        d = 4.0
        few_blocks = RedundantMemoryYield(array_area_cm2=0.5, n_blocks=2,
                                          spares_per_block=8)
        many_blocks = RedundantMemoryYield(array_area_cm2=0.5, n_blocks=16,
                                           spares_per_block=1)
        # 16 total spares both ways; fine-grained repair is weaker per
        # block but the comparison to make is same spares *per area*:
        same_ratio_low = RedundantMemoryYield(array_area_cm2=0.5, n_blocks=4,
                                              spares_per_block=4)
        y_few = few_blocks.yield_for_density(d)
        y_ratio = same_ratio_low.yield_for_density(d)
        assert 0.0 < y_few <= 1.0 and 0.0 < y_ratio <= 1.0

    def test_scenario1_high_yield_plausible(self):
        """S1.3: with enough repair a mature memory reaches ~100% yield
        even at a density where the unrepaired die would yield ~25%."""
        mem = RedundantMemoryYield(array_area_cm2=0.5,
                                   periphery_area_cm2=0.02,
                                   n_blocks=32, spares_per_block=4)
        d = 2.5
        assert mem.unrepaired_yield(d) < 0.35
        assert mem.yield_for_density(d) > 0.9

    def test_periphery_not_repairable(self):
        """Spares cannot fix periphery: yield is capped by exp(-A_per*D)."""
        mem = RedundantMemoryYield(array_area_cm2=0.1,
                                   periphery_area_cm2=0.5,
                                   n_blocks=8, spares_per_block=50)
        d = 2.0
        cap = math.exp(-0.5 * d)
        assert mem.yield_for_density(d) <= cap + 1e-12


class TestSpareSizing:
    def test_spares_for_target(self):
        mem = RedundantMemoryYield(array_area_cm2=0.5, n_blocks=8)
        d = 3.0
        spares = mem.spares_for_target_yield(d, 0.85)
        achieved = RedundantMemoryYield(
            array_area_cm2=0.5, n_blocks=8,
            spares_per_block=spares).yield_for_density(d)
        assert achieved >= 0.85
        if spares > 0:
            under = RedundantMemoryYield(
                array_area_cm2=0.5, n_blocks=8,
                spares_per_block=spares - 1).yield_for_density(d)
            assert under < 0.85

    def test_unreachable_target_raises(self):
        # Periphery alone yields below the target; no spares can help.
        mem = RedundantMemoryYield(array_area_cm2=0.1,
                                   periphery_area_cm2=1.0, n_blocks=4)
        with pytest.raises(ParameterError):
            mem.spares_for_target_yield(3.0, 0.9, max_spares=100)


class TestValidation:
    def test_rejects_bad_blocks(self):
        with pytest.raises(ParameterError):
            RedundantMemoryYield(array_area_cm2=0.5, n_blocks=0)

    def test_rejects_negative_spares(self):
        with pytest.raises(ParameterError):
            RedundantMemoryYield(array_area_cm2=0.5, spares_per_block=-1)

    def test_rejects_full_overhead(self):
        with pytest.raises(ParameterError):
            RedundantMemoryYield(array_area_cm2=0.5,
                                 area_overhead_fraction=1.0)

    def test_overhead_inflates_area(self, dram):
        assert dram.effective_array_area_cm2 == pytest.approx(0.4 * 1.04)
        assert dram.total_area_cm2 == pytest.approx(0.4 * 1.04 + 0.1)
