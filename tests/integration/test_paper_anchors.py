"""End-to-end anchors: the claims a reader would check against the paper.

Each test here corresponds to a quantitative statement in the paper and
exercises the full model stack (no mocks, no shortcuts).
"""

import math

import numpy as np
import pytest

from repro import (
    SCENARIO_1,
    SCENARIO_2,
    TransistorCostModel,
    WaferCostModel,
    Wafer,
    evaluate_catalog,
)
from repro.core.diversity import agreement_statistics
from repro.core.optimization import optimal_feature_size_for_die_area
from repro.manufacturing import TestCostModel, mix_cost_ratio
from repro.manufacturing.equipment import ProcessFlow
from repro.technology.fabline import WAFER_COST_HISTORY
from repro.technology import extract_cost_growth_rate


class TestHeadlineClaims:
    def test_scenario1_transistor_cost_falls_with_shrink(self):
        """Fig. 6: under optimistic assumptions shrink keeps paying."""
        lams = np.linspace(0.25, 1.0, 16)
        for x in (1.1, 1.2, 1.3):
            costs = [SCENARIO_1.cost_dollars(l, x) for l in lams]
            assert costs[0] < costs[-1]

    def test_scenario2_transistor_cost_rises_with_shrink(self):
        """Fig. 7: 'A decrease in the feature size causes an increase in
        the transistor cost!'"""
        for x in (1.8, 2.1, 2.4):
            assert SCENARIO_2.cost_dollars(0.25, x) > \
                SCENARIO_2.cost_dollars(1.0, x)

    def test_scenario2_increase_is_dramatic_at_high_x(self):
        ratio = SCENARIO_2.cost_dollars(0.25, 2.4) / \
            SCENARIO_2.cost_dollars(1.0, 2.4)
        assert ratio > 5.0

    def test_table3_reproduced_within_band(self):
        stats = agreement_statistics(evaluate_catalog())
        assert stats["mean_abs_log_error"] < 0.30
        assert stats["max_abs_log_error"] < math.log(1.7)

    def test_cost_diversity_span(self):
        """Table 3's 9th column spans 0.93 to 240 — two and a half
        orders of magnitude of C_tr across products."""
        results = evaluate_catalog()
        values = [r.ctr_microdollars for r in results]
        assert max(values) / min(values) > 100.0

    def test_optimal_feature_size_is_die_size_dependent(self):
        """Sec. IV.B: 'for each die size there is different lambda_opt
        which minimizes the cost per transistor' and it is not the
        smallest lambda."""
        lam_small, _ = optimal_feature_size_for_die_area(0.25)
        lam_large, _ = optimal_feature_size_for_die_area(2.5)
        assert lam_small != lam_large
        assert lam_large > 0.3  # not pinned to the aggressive end

    def test_product_mix_penalty_reaches_paper_scale(self):
        """Sec. III.A.d: low-volume multi-product wafer cost 'may reach
        as high value as 7' times the mono-product reference."""
        flows = tuple(ProcessFlow.generic_cmos(n_metal_layers=m,
                                               name=f"p{m}")
                      for m in (1, 2, 3, 4))
        ratio = mix_cost_ratio(flows, wafers_per_week_each=20.0,
                               reference_volume_per_week=5000.0)
        assert ratio >= 5.0

    def test_fig2_x_extraction_band(self):
        """Sec. III.A.b: X extracted from Fig. 2 is between 1.2-1.4."""
        assert 1.2 <= extract_cost_growth_rate(WAFER_COST_HISTORY) <= 1.4

    def test_wafer_test_cost_can_rival_manufacturing(self):
        """Sec. III.A.e: 'the cost of testing a wafer may be comparable
        with the cost of manufacturing' for large dense dies on a
        cheap process."""
        model = TestCostModel(tester_rate_dollars_per_hour=500.0,
                              probe_seconds_per_kilotransistor=0.01)
        wafer_cost = WaferCostModel(reference_cost_dollars=500.0,
                                    cost_growth_rate=1.2).pure_cost(0.8)
        test_cost = model.wafer_test_cost(5.0e6, dies_per_wafer=60)
        assert test_cost > 0.5 * wafer_cost


class TestMemoryVsLogic:
    def test_memory_rows_below_2_microdollars(self):
        results = evaluate_catalog()
        memory = [r for r in results if r.spec.product_class.has_redundancy]
        assert all(r.ctr_microdollars < 3.0 for r in memory)

    def test_logic_rows_above_5_microdollars(self):
        results = evaluate_catalog()
        logic = [r for r in results
                 if not r.spec.product_class.has_redundancy]
        assert all(r.ctr_microdollars > 5.0 for r in logic)

    def test_do_not_extrapolate_memory_economics(self):
        """Sec. IV.C conclusion: decisions based on memory cost data
        'should not be extrapolated onto other types of ICs' — the
        cheapest logic is still ~6x the dearest memory in the model."""
        results = evaluate_catalog()
        memory_max = max(r.ctr_microdollars for r in results
                         if r.spec.product_class.has_redundancy)
        logic_min = min(r.ctr_microdollars for r in results
                        if not r.spec.product_class.has_redundancy)
        assert logic_min / memory_max > 2.0


class TestFullStackConsistency:
    def test_table3_row_recomposes_through_public_api(self):
        """Row 2 of Table 3 built by hand through the public API matches
        the diversity engine's result."""
        model = TransistorCostModel(
            wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                      cost_growth_rate=1.8),
            wafer=Wafer(radius_cm=7.5))
        from repro.yieldsim import ReferenceAreaYield
        b = model.evaluate(n_transistors=3.1e6, feature_size_um=0.8,
                           design_density=150.0,
                           yield_model=ReferenceAreaYield(0.7, 1.0))
        results = evaluate_catalog()
        assert b.cost_per_transistor_microdollars == pytest.approx(
            results[1].ctr_microdollars)

    def test_wafer_size_lever(self):
        """Rows 13 vs 14 logic: larger wafers cut cost per transistor at
        fixed yield, one of the paper's 'levers'."""
        def cost(radius_cm):
            model = TransistorCostModel(
                wafer_cost=WaferCostModel(reference_cost_dollars=600.0,
                                          cost_growth_rate=1.8),
                wafer=Wafer(radius_cm=radius_cm))
            return model.evaluate(
                n_transistors=264e6, feature_size_um=0.25,
                design_density=29.0, yield_value=0.9
            ).cost_per_transistor_dollars

        assert cost(10.0) < cost(7.5)
