"""Kill-and-resume: a sweep process dying mid-run loses nothing.

The checkpoint contract end to end, with a *real* interpreter death
(``os._exit`` — no exception handlers, no atexit, no flushing beyond
what :class:`~repro.batch.sweep.SweepCheckpoint` already did): a
mega-sweep killed after K tiles, resumed in a fresh process, produces
a grid bitwise identical to an uninterrupted sequential run.
"""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.batch.sweep import FabCostSweep, SweepPlan, TiledSweepRunner
from repro.core.optimization import FIG8_FAB, CostLandscape

N_COUNTS, N_LAMS, TILE_SIZE = 24, 30, 90
KILL_AFTER = 3

_SWEEP_PROGRAM = """
import os
import sys

import numpy as np

from repro.batch.sweep import FabCostSweep, TiledSweepRunner

counts = np.geomspace(1e5, 1e7, {n_counts})
lams = np.linspace(0.3, 2.0, {n_lams})
runner = TiledSweepRunner({backend_args}tile_size={tile_size},
                          checkpoint_dir=sys.argv[1])


def kill(tile, done, total):
    if done >= {kill_after}:
        # Hard death of the whole tree (kill -9 style): no unwinding,
        # no cleanup.  Pool workers go first — orphans would otherwise
        # pin the test harness's output pipes open.
        pool = getattr(runner, "_pool", None)
        if pool is not None:
            for p in pool._processes.values():
                p.kill()
        os._exit(3)


runner.run(FabCostSweep(), counts, lams, on_tile=kill)
os._exit(0)  # not reached when the kill fires
"""


@pytest.fixture(scope="module")
def reference():
    counts = np.geomspace(1e5, 1e7, N_COUNTS)
    lams = np.linspace(0.3, 2.0, N_LAMS)
    return CostLandscape(fab=FIG8_FAB, feature_sizes_um=lams,
                         transistor_counts=counts).grid()


def test_killed_sweep_resumes_bitwise(tmp_path, reference):
    counts = np.geomspace(1e5, 1e7, N_COUNTS)
    lams = np.linspace(0.3, 2.0, N_LAMS)
    plan = SweepPlan.for_grid(N_COUNTS, N_LAMS, TILE_SIZE)
    assert plan.n_tiles > KILL_AFTER  # the kill must interrupt, not finish

    ckpt = tmp_path / "run"
    program = _SWEEP_PROGRAM.format(
        n_counts=N_COUNTS, n_lams=N_LAMS, tile_size=TILE_SIZE,
        kill_after=KILL_AFTER, backend_args="")
    proc = subprocess.run(
        [sys.executable, "-c", program, str(ckpt)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 3, (proc.stdout, proc.stderr)

    # The dead run left exactly the tiles it had finished — whole
    # files only (store() is atomic), plus a valid manifest.
    stored = sorted(p.name for p in (ckpt / "tiles").glob("*.npy"))
    assert stored == [f"tile_{i:06d}.npy" for i in range(KILL_AFTER)]
    manifest = json.loads((ckpt / "plan.json").read_text())
    assert manifest["n_tiles"] == plan.n_tiles

    result = TiledSweepRunner(tile_size=TILE_SIZE, checkpoint_dir=ckpt,
                              resume=True).run(FabCostSweep(), counts, lams)
    assert result.stats["tiles_resumed"] == KILL_AFTER
    assert result.stats["tiles_computed"] == plan.n_tiles - KILL_AFTER
    assert np.array_equal(result.values, reference)


def test_killed_process_backend_sweep_resumes_bitwise(tmp_path, reference):
    # Same death, but the victim was driving the shm process pool —
    # resume must also work when the checkpoint came from pooled waves.
    counts = np.geomspace(1e5, 1e7, N_COUNTS)
    lams = np.linspace(0.3, 2.0, N_LAMS)
    plan = SweepPlan.for_grid(N_COUNTS, N_LAMS, TILE_SIZE)

    program = _SWEEP_PROGRAM.format(
        n_counts=N_COUNTS, n_lams=N_LAMS, tile_size=TILE_SIZE,
        kill_after=KILL_AFTER,
        backend_args="backend='process', workers=2, ")
    ckpt = tmp_path / "run"
    proc = subprocess.run(
        [sys.executable, "-c", program, str(ckpt)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 3, (proc.stdout, proc.stderr)

    done = {int(p.stem.split("_")[1])
            for p in (ckpt / "tiles").glob("tile_*.npy")}
    assert len(done) >= KILL_AFTER  # in-flight wave may have added more

    result = TiledSweepRunner(tile_size=TILE_SIZE, checkpoint_dir=ckpt,
                              resume=True).run(FabCostSweep(), counts, lams)
    assert result.stats["tiles_resumed"] == len(done)
    assert np.array_equal(result.values, reference)
