"""Cross-validation between independent implementations of the same physics.

The repository deliberately contains redundant paths — closed forms,
geometric counters, and Monte Carlo — precisely so they can check each
other here.
"""

import math

import numpy as np
import pytest

from repro.geometry import (
    Die,
    Wafer,
    dies_per_wafer_area_approx,
    dies_per_wafer_exact,
    dies_per_wafer_maly,
)
from repro.yieldsim import (
    DefectSizeDistribution,
    PoissonYield,
    RedundantMemoryYield,
    ReferenceAreaYield,
    SpotDefectSimulator,
    scaled_poisson_yield,
)
from repro.yieldsim.critical_area import WirePattern, average_critical_area


class TestGeometryCrossValidation:
    @pytest.mark.parametrize("side", [0.4, 0.7, 1.0, 1.5, 2.2])
    def test_three_counters_agree(self, side):
        """Eq. (4) and the rigid-grid count differ only by packing slack.

        Eq. (4) lets each row center its dies on the wafer chord
        independently, so it can slightly BEAT a rigid rectangular grid
        (by a few percent); conversely the phase-optimized grid can beat
        eq. (4)'s bottom-anchored rows.  They must agree within 5%, and
        the industry area approximation within 20% (it degrades for dies
        approaching the wafer scale).
        """
        wafer = Wafer(radius_cm=7.5)
        die = Die.square(side)
        maly = dies_per_wafer_maly(wafer, die)
        exact = dies_per_wafer_exact(wafer, die, optimize_offset=True)
        approx = dies_per_wafer_area_approx(wafer, die, kind="industry")
        assert abs(exact - maly) / maly < 0.05
        assert abs(approx - maly) / maly < 0.20

    def test_rectangular_die_consistency(self):
        wafer = Wafer(radius_cm=7.5)
        die = Die(width_cm=0.8, height_cm=1.4)
        maly = dies_per_wafer_maly(wafer, die)
        exact = dies_per_wafer_exact(wafer, die, optimize_offset=True)
        assert abs(exact - maly) / maly < 0.05


class TestYieldCrossValidation:
    def test_eq7_equals_eq6_with_explicit_area_and_density(self):
        """Eq. (7) is eq. (6) plus substitutions; verify the algebra for
        several (N_tr, lambda) points."""
        d_coeff, p, d_d = 1.72, 4.07, 152.0
        for n_tr, lam in [(2e5, 1.0), (5e5, 0.7), (1e6, 0.5)]:
            area_cm2 = n_tr * d_d * lam * lam / 1e8
            d0 = d_coeff / lam ** p
            direct = PoissonYield().yield_for_area(area_cm2, d0)
            via_eq7 = scaled_poisson_yield(n_tr, d_d, d_coeff, lam, p)
            assert via_eq7 == pytest.approx(direct, rel=1e-12)

    def test_reference_area_law_is_poisson_in_disguise(self):
        law = ReferenceAreaYield(reference_yield=0.7, reference_area_cm2=1.0)
        d_implied = law.implied_defect_density_per_cm2
        for area in (0.3, 1.0, 2.7):
            assert law.yield_for_die_area(area) == pytest.approx(
                PoissonYield().yield_for_area(area, d_implied))

    def test_monte_carlo_validates_eq6_at_multiple_densities(self):
        wafer, die = Wafer(radius_cm=7.5), Die.square(1.2)
        rng = np.random.default_rng(17)
        for d0 in (0.2, 0.6, 1.2):
            sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=d0)
            y_mc = sim.estimate_yield(50, rng)
            y_cf = PoissonYield().yield_for_area(die.area_cm2, d0)
            assert y_mc == pytest.approx(y_cf, abs=0.035)

    def test_monte_carlo_wafer_maps_feed_redundancy_model(self):
        """Per-die killer counts from the simulator reproduce the repair
        model's block-level yield when blocks = 1."""
        wafer, die = Wafer(radius_cm=7.5), Die.square(1.0)
        d0 = 1.0
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=d0)
        rng = np.random.default_rng(23)
        counts = np.concatenate(
            [m.defect_counts for m in sim.simulate_lot(60, rng)])
        spares = 2
        mc_repairable = float(np.mean(counts <= spares))
        model = RedundantMemoryYield(array_area_cm2=die.area_cm2,
                                     n_blocks=1, spares_per_block=spares)
        assert mc_repairable == pytest.approx(
            model.yield_for_density(d0), abs=0.02)


class TestCriticalAreaVsKillRadius:
    def test_lumped_kill_radius_brackets_critical_area_model(self):
        """The simulator's single kill radius is a step-function
        approximation of the critical-area ramp; choosing the ramp's
        midpoint radius should land the two fault expectations close."""
        area_cm2 = 1.0
        pattern = WirePattern(wire_width_um=1.0, wire_spacing_um=1.0,
                              area_cm2=area_cm2)
        dist = DefectSizeDistribution(r0_um=0.4, p=4.07)
        d0 = 2.0
        ca = sum(average_critical_area(pattern, dist, mechanism=m)
                 for m in ("short", "open")) * d0
        # Step approximation at the ramp onset and at saturation bracket it:
        m_onset = d0 * area_cm2 * 2.0 * float(dist.survival(0.5))
        m_sat = d0 * area_cm2 * 2.0 * float(dist.survival(1.5))
        assert m_sat < ca < m_onset
