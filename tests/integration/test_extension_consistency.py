"""Consistency between the extension modules and the core reproduction.

The extensions must not drift from the paper machinery they build on:
trajectories must agree with scenario evaluations, shrink analysis with
the Table-3 engine, the co-synthesis optimizer with the partitioning
optimizer, and the bottom-up wafer cost with eq. (3).
"""

import math

import pytest

from repro.core import (
    GenerationModel,
    ShrinkAnalysis,
    WaferCostModel,
    evaluate_product,
    optimistic_trajectory,
)
from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.core.scenarios import SCENARIO_1
from repro.manufacturing import BottomUpWaferCost
from repro.system import (
    McmSubstrate,
    SystemCostModel,
    optimize_system,
)
from repro.system.partitioning import (
    Partition,
    PartitionedSystem,
    optimize_partition_feature_sizes,
)
from repro.technology import PRODUCT_CATALOG, TechnologyRoadmap


class TestTrajectoryVsScenario:
    def test_trajectory_point_equals_scenario_point(self):
        traj = optimistic_trajectory(1.2)
        roadmap = TechnologyRoadmap()
        for year in (1986.0, 1992.0, 1998.0):
            lam = roadmap.feature_size_um(year)
            assert traj.cost_at_year(year) == pytest.approx(
                SCENARIO_1.cost_dollars(lam, 1.2))


class TestShrinkVsDiversityEngine:
    def test_shrink_analysis_matches_table3_row_at_own_node(self):
        """Evaluating a Table-3 product at its published node through
        ShrinkAnalysis (with the Y0^(A) density equivalence) reproduces
        the diversity engine's cost."""
        spec = PRODUCT_CATALOG[1]  # BiCMOS uP nominal
        # The diversity engine uses Y = Y0^(A/A0); its Poisson-equivalent
        # density is -ln(Y0)/A0, constant in lambda.
        density = -math.log(spec.reference_yield)
        analysis = ShrinkAnalysis.for_product(spec)
        ctr = analysis.cost_per_transistor(spec.feature_size_um,
                                           defect_density_per_cm2=density)
        expected = evaluate_product(spec).breakdown \
            .cost_per_transistor_dollars
        assert ctr == pytest.approx(expected, rel=1e-9)

    def test_best_node_consistent_with_full_cost_function(self):
        """ShrinkAnalysis with the Fig.-8 fab's parameters ranks nodes
        the same way transistor_cost_full does."""
        analysis = ShrinkAnalysis(
            n_transistors=5e5, design_density=FIG8_FAB.design_density,
            wafer_cost=WaferCostModel(
                reference_cost_dollars=FIG8_FAB.reference_cost_dollars,
                cost_growth_rate=FIG8_FAB.cost_growth_rate),
            mature_density_per_cm2=FIG8_FAB.defect_coefficient,
            size_exponent_p=FIG8_FAB.size_exponent_p)
        candidates = (0.5, 0.65, 0.8, 1.0, 1.2)
        lam_shrink, _ = analysis.best_node(candidates)
        full = {lam: transistor_cost_full(5e5, lam) for lam in candidates}
        lam_full = min(full, key=full.get)
        assert lam_shrink == lam_full

    def test_shrink_costs_proportional_to_full_model(self):
        """At equal parameters the two paths agree exactly, node by node."""
        analysis = ShrinkAnalysis(
            n_transistors=5e5, design_density=FIG8_FAB.design_density,
            wafer_cost=WaferCostModel(
                reference_cost_dollars=FIG8_FAB.reference_cost_dollars,
                cost_growth_rate=FIG8_FAB.cost_growth_rate),
            mature_density_per_cm2=FIG8_FAB.defect_coefficient,
            size_exponent_p=FIG8_FAB.size_exponent_p)
        for lam in (0.65, 0.8, 1.0):
            # Both paths scale the killer density by lambda^-p (eq. 7)
            # and the die area by lambda^2, so costs must match exactly.
            assert analysis.cost_per_transistor(lam) == pytest.approx(
                transistor_cost_full(5e5, lam), rel=1e-9)


class TestCosynthesisVsPartitioning:
    def test_cosynthesis_silicon_matches_partitioning_costs(self):
        """With test and assembly terms made negligible, the joint
        optimizer's silicon choices coincide with the pure partition
        optimizer on the same lambda grid."""
        partitions = (
            Partition(name="a", n_transistors=4e5, design_density=100.0),
            Partition(name="b", n_transistors=2e5, design_density=300.0),
        )
        substrate = McmSubstrate(name="free", cost_dollars=1e-6,
                                 diagnosis_cost_dollars=0.0,
                                 rework_success=0.99)
        from repro.manufacturing.test_cost import TestCostModel
        free_test = TestCostModel(tester_rate_dollars_per_hour=1e-6)
        model = SystemCostModel(partitions=partitions, substrate=substrate,
                                test_model=free_test,
                                assembly_cost_dollars=0.0)
        grid = (0.65, 0.8, 1.0, 1.2)
        report = optimize_system(model, lambda_grid=grid,
                                 coverage_grid=(0.99,))
        system = PartitionedSystem(partitions=partitions)
        choices = optimize_partition_feature_sizes(
            system, lam_lo_um=min(grid), lam_hi_um=max(grid),
            n_grid=len(grid))
        # Both should pick from the cheap end; compare total silicon.
        silicon_joint = report.silicon_dollars
        silicon_split = sum(c.die_cost_dollars for c in choices)
        assert silicon_joint == pytest.approx(silicon_split, rel=0.25)


class TestBottomUpVsEquationThree:
    def test_bottom_up_curve_fits_an_equation_three_model(self):
        """Fitting eq. (3) to the bottom-up curve recovers the bottom-up
        model's own effective X — the two parameterizations are mutually
        consistent over the paper's lambda range."""
        bottom_up = BottomUpWaferCost()
        x = bottom_up.effective_growth_rate(0.35, 1.0)
        fitted = WaferCostModel(
            reference_cost_dollars=bottom_up.cost(1.0),
            cost_growth_rate=x,
            generation_model=GenerationModel.SHRINK_LOG)
        for lam in (0.8, 0.65, 0.5, 0.35):
            assert fitted.pure_cost(lam) == pytest.approx(
                bottom_up.cost(lam), rel=0.12)
