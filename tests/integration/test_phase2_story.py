"""The Sec.-V Phase-2 story, assembled quantitatively from the pieces.

"Increased competition has led to a decrease in previously lucrative
profit margins" [5] meets "the cost per transistor may no longer
decrease" [10]: a product whose price rides a learning curve downward
while its cost rides the Scenario-#2 trajectory upward gets squeezed
on both blades.  These tests compose pricing × trajectory × margins and
assert the scissors close — and that the Scenario-#1 world escapes.
"""

import pytest

from repro.core import (
    LearningCurvePrice,
    optimistic_trajectory,
    realistic_trajectory,
)
from repro.core.pricing import margin_squeeze_year


def price_per_transistor(year: float, *, first_price: float = 100e-6,
                         learning_rate: float = 0.75,
                         doublings_per_year: float = 1.5,
                         base_year: float = 1985.0) -> float:
    """A Bi-rule-style market price per transistor over time."""
    curve = LearningCurvePrice(first_unit_price_dollars=first_price,
                               learning_rate=learning_rate)
    volume = 2.0 ** (doublings_per_year * (year - base_year))
    return curve.price(max(volume, 1.0))


class TestScissors:
    def test_realistic_producer_gets_squeezed(self):
        """Cost on the Scenario-#2 trajectory vs the falling market
        price: gross margin crosses below 20% inside the paper's
        horizon."""
        cost = realistic_trajectory(1.8)
        year = margin_squeeze_year(
            lambda y: cost.cost_at_year(y),
            lambda y: price_per_transistor(y),
            floor_margin=0.2)
        assert year is not None
        assert 1985.0 <= year <= 2005.0

    def test_squeeze_hits_realistic_before_optimistic(self):
        opt = optimistic_trajectory(1.2)
        real = realistic_trajectory(1.8)
        price = lambda y: price_per_transistor(y)  # noqa: E731
        y_real = margin_squeeze_year(
            lambda y: real.cost_at_year(y), price, floor_margin=0.2)
        y_opt = margin_squeeze_year(
            lambda y: opt.cost_at_year(y), price, floor_margin=0.2)
        assert y_real is not None
        # The memory-economics producer is squeezed later or never.
        assert y_opt is None or y_opt > y_real

    def test_gentler_price_learning_delays_the_squeeze(self):
        real = realistic_trajectory(1.8)
        aggressive = margin_squeeze_year(
            lambda y: real.cost_at_year(y),
            lambda y: price_per_transistor(y, learning_rate=0.7),
            floor_margin=0.2)
        gentle = margin_squeeze_year(
            lambda y: real.cost_at_year(y),
            lambda y: price_per_transistor(y, learning_rate=0.9),
            floor_margin=0.2)
        assert aggressive is not None
        assert gentle is None or gentle >= aggressive

    def test_margin_positive_before_squeeze(self):
        """Sanity: the squeeze year marks a transition, not a constant
        state — a decade earlier the margin is healthy."""
        real = realistic_trajectory(1.8)
        price = lambda y: price_per_transistor(y)  # noqa: E731
        year = margin_squeeze_year(
            lambda y: real.cost_at_year(y), price, floor_margin=0.2)
        early = year - 8.0
        margin_early = 1.0 - real.cost_at_year(early) / price(early)
        assert margin_early > 0.2
