"""Hooks in the batch engine, cache, core optimizers, and the CLI."""

import json

import numpy as np
import pytest

from repro import obs
from repro.batch import BatchCache, evaluate_batch, transistor_cost_batch
from repro.core import CostLandscape, TransistorCostModel, WaferCostModel
from repro.core.optimization import optimal_feature_size
from repro.geometry import Wafer
from repro.yieldsim import PoissonYield


def _names():
    return [r.name for r in obs.get_trace()]


def _counters():
    return obs.metrics.snapshot()["counters"]


@pytest.fixture
def model():
    return TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                  cost_growth_rate=1.4),
        wafer=Wafer(radius_cm=7.5))


class TestBatchEngineHooks:
    def test_transistor_cost_batch_span_and_metrics(self, obs_on):
        transistor_cost_batch([1e6, 2e6], [0.8, 0.8], cache=BatchCache())
        names = _names()
        assert "batch.transistor_cost" in names
        assert "batch.compute.dies_per_wafer" in names
        assert "batch.compute.wafer_cost" in names
        counters = _counters()
        assert counters["batch.evaluate.calls"] == 1
        assert counters["batch.evaluate.cells"] == 2
        hist = obs.metrics.snapshot()["histograms"]
        assert hist["batch.evaluate.seconds"]["count"] == 1

    def test_compute_spans_nest_under_evaluation(self, obs_on):
        transistor_cost_batch(1e6, 0.8, cache=BatchCache())
        recs = {r.name: r for r in obs.get_trace()}
        outer = recs["batch.transistor_cost"]
        assert recs["batch.compute.dies_per_wafer"].parent_id \
            == outer.span_id
        assert recs["batch.compute.wafer_cost"].parent_id == outer.span_id

    def test_cache_hits_skip_compute_spans(self, obs_on):
        cache = BatchCache()
        transistor_cost_batch(1e6, 0.8, cache=cache)
        obs.clear_trace()
        transistor_cost_batch(1e6, 0.8, cache=cache)
        names = _names()
        assert "batch.transistor_cost" in names
        assert not any(n.startswith("batch.compute.") for n in names)

    def test_evaluate_batch_metrics(self, obs_on, model):
        evaluate_batch(model, n_transistors=[1e6, 2e6, 3e6],
                       feature_sizes_um=0.8, design_density=150.0,
                       yield_model=PoissonYield(),
                       defect_density_per_cm2=0.5, cache=BatchCache())
        assert "batch.evaluate" in _names()
        counters = _counters()
        assert counters["batch.evaluate.calls"] == 1
        assert counters["batch.evaluate.cells"] == 3

    def test_cache_counters_promoted_to_registry(self, obs_on):
        cache = BatchCache(max_entries=1)
        cache.get_or_compute("a", lambda: np.ones(2))
        cache.get_or_compute("a", lambda: np.ones(2))
        cache.get_or_compute("b", lambda: np.ones(2))  # evicts "a"
        counters = _counters()
        assert counters["batch.cache.hits"] == 1
        assert counters["batch.cache.misses"] == 2
        assert counters["batch.cache.evictions"] == 1

    def test_disabled_leaves_no_record(self, model):
        evaluate_batch(model, n_transistors=1e6, feature_sizes_um=0.8,
                       design_density=150.0, yield_value=0.7,
                       cache=BatchCache())
        assert obs.get_trace() == []
        assert _counters() == {}


class TestCoreHooks:
    def test_landscape_grid_span_and_counter(self, obs_on):
        landscape = CostLandscape(
            feature_sizes_um=np.linspace(0.5, 1.0, 4),
            transistor_counts=np.geomspace(1e5, 1e6, 3))
        landscape.grid()
        landscape.grid()  # cached: no second evaluation
        assert _names().count("core.landscape.grid") == 1
        assert _counters()["core.landscape.grids"] == 1
        grid_rec = next(r for r in obs.get_trace()
                        if r.name == "core.landscape.grid")
        assert tuple(grid_rec.attrs["shape"]) == (3, 4)

    def test_optimal_feature_size_span_and_counter(self, obs_on):
        optimal_feature_size(1e6)
        assert "core.optimal_feature_size" in _names()
        assert _counters()["core.optimize.calls"] == 1


class TestCliObservability:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = tmp_path / "trace.jsonl"
        code = main(["simulate", "--lot-size", "2", "--seed", "3",
                     "--trace", str(trace_path), "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mc.wafers_simulated" in out
        assert "batch.cache" in out
        records = [json.loads(line)
                   for line in trace_path.read_text().splitlines()]
        names = [r["name"] for r in records]
        assert "cli.simulate" in names
        assert names.count("mc.wafer") == 2
        roots = [r for r in records if r["parent_id"] is None]
        assert [r["name"] for r in roots] == ["cli.simulate"]

    def test_flags_accepted_by_every_command(self, capsys):
        from repro.cli import main
        assert main(["optimize", "--die-area", "1.0", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "batch.evaluate.calls" in out

    def test_metrics_flag_on_uninstrumented_command(self, capsys):
        from repro.cli import main
        assert main(["table", "table1", "--metrics"]) == 0
        assert "(no metrics recorded)" in capsys.readouterr().out

    def test_no_flags_means_no_observability_output(self, capsys):
        from repro.cli import main
        assert main(["table", "table1"]) == 0
        out = capsys.readouterr().out
        assert "metric" not in out
        assert not obs.enabled()
