"""Cross-process trace/metric capture on the sharded Monte Carlo path.

The ISSUE-3 contract: spans recorded inside pool workers are shipped
back and merged into the parent trace as children of the launching
span, metric deltas add into the parent registry, and the sequential
fallback (pool unavailable) produces an *equivalent* span tree and
identical metric totals — so a trace reads the same no matter how the
lot was actually scheduled.
"""

import os

import pytest

from repro import obs
from repro.geometry import Die, Wafer
from repro.obs.capture import absorb, begin_capture, capture_flags, \
    end_capture
from repro.yieldsim import ParallelExecutionWarning, SpotDefectSimulator
from repro.yieldsim import parallel as parallel_mod


@pytest.fixture
def sim():
    return SpotDefectSimulator(Wafer(radius_cm=7.5), Die.square(1.0),
                               defect_density_per_cm2=0.6)


def _tree_shape(records):
    """The trace as a nested (name, attrs, children) structure, ignoring
    ids, timings, pids — everything that legitimately varies between a
    pooled and a sequential run."""
    known = {r.span_id for r in records}

    def node(rec):
        kids = sorted((node(k) for k in records
                       if k.parent_id == rec.span_id), key=str)
        return (rec.name, tuple(sorted(rec.attrs.items())), tuple(kids))

    return tuple(sorted((node(r) for r in records
                         if r.parent_id not in known), key=str))


def _mc_counters():
    counters = obs.metrics.snapshot()["counters"]
    return {k: v for k, v in counters.items() if k.startswith("mc.")}


class TestCaptureBracket:
    def test_capture_flags_none_when_off(self):
        assert capture_flags() is None

    def test_capture_flags_mirror_state(self, obs_on):
        assert capture_flags() == (True, True)

    def test_bracket_isolates_and_absorb_reparents(self, obs_on):
        with obs.span("launcher"):
            frame = begin_capture((True, True))
            with obs.span("inside"):
                pass
            obs.metrics.inc("inside.count", 2)
            payload = end_capture(frame)
            # Nothing leaked into the parent trace/registry yet.
            assert all(r.name != "inside" for r in obs.get_trace())
            assert "inside.count" not in obs.metrics.snapshot()["counters"]
            absorb(payload)
        recs = {r.name: r for r in obs.get_trace()}
        assert recs["inside"].parent_id == recs["launcher"].span_id
        assert obs.metrics.snapshot()["counters"]["inside.count"] == 2

    def test_bracket_forces_flags_in_cold_process(self):
        # Models a spawn-child that never saw the parent's enable().
        assert not obs.enabled()
        frame = begin_capture((True, True))
        with obs.span("child.work"):
            pass
        payload = end_capture(frame)
        assert not obs.enabled()  # restored
        assert [s["name"] for s in payload["spans"]] == ["child.work"]

    def test_absorb_none_is_noop(self, obs_on):
        absorb(None)
        assert obs.get_trace() == []


class TestPooledMerge:
    def test_worker_spans_merge_into_parent_trace(self, sim, obs_on):
        sim.simulate_lot(6, seed=42, workers=2)
        recs = obs.get_trace()
        by_name = {}
        for r in recs:
            by_name.setdefault(r.name, []).append(r)
        (lot,) = by_name["mc.simulate_lot"]
        shards = by_name["mc.shard"]
        wafers = by_name["mc.wafer"]
        assert lot.parent_id is None
        assert len(shards) == 2
        assert all(s.parent_id == lot.span_id for s in shards)
        assert len(wafers) == 6
        shard_ids = {s.span_id for s in shards}
        assert all(w.parent_id in shard_ids for w in wafers)
        assert sorted(w.attrs["wafer"] for w in wafers) == list(range(6))

    def test_worker_spans_carry_worker_pids(self, sim, obs_on):
        import warnings
        with warnings.catch_warnings():
            # A fallback run would execute everything in this process;
            # fail loudly instead so the assertion below means something.
            warnings.simplefilter("error", ParallelExecutionWarning)
            sim.simulate_lot(4, seed=7, workers=2)
        wafer_pids = {r.pid for r in obs.get_trace()
                      if r.name == "mc.wafer"}
        assert wafer_pids and os.getpid() not in wafer_pids

    def test_worker_metrics_merge(self, sim, obs_on):
        sim.simulate_lot(6, seed=42, workers=2)
        counters = _mc_counters()
        assert counters["mc.wafers_simulated"] == 6
        assert counters["mc.lots_simulated"] == 1
        wall = obs.metrics.snapshot()["histograms"][
            "mc.worker.wall_seconds"]
        assert wall["count"] == 2  # one observation per shard


class TestFallbackEquivalence:
    def test_sequential_fallback_produces_equivalent_tree(
            self, sim, obs_on, monkeypatch):
        sim.simulate_lot(6, seed=42, workers=2)
        pooled_tree = _tree_shape(obs.get_trace())
        pooled_counters = _mc_counters()

        obs.clear_trace()
        obs.metrics.reset()
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor",
            _ExplodingExecutor)
        with pytest.warns(ParallelExecutionWarning):
            sim.simulate_lot(6, seed=42, workers=2)
        assert _tree_shape(obs.get_trace()) == pooled_tree
        assert _mc_counters() == pooled_counters

    def test_workers_one_produces_single_shard_tree(self, sim, obs_on):
        sim.simulate_lot(4, seed=9, workers=1)
        recs = obs.get_trace()
        assert len([r for r in recs if r.name == "mc.shard"]) == 1
        assert len([r for r in recs if r.name == "mc.wafer"]) == 4
        # The in-process bracket restored the parent's storage cleanly.
        assert obs.enabled()

    def test_disabled_run_records_nothing(self, sim):
        sim.simulate_lot(4, seed=9, workers=2)
        assert obs.get_trace() == []
        assert obs.metrics.snapshot()["counters"] == {}


class _ExplodingExecutor:
    """Stand-in for a fork-restricted host: pool creation is denied."""

    def __init__(self, *args, **kwargs):
        raise PermissionError("process spawning disabled in this sandbox")
