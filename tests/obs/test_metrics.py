"""MetricsRegistry semantics: kinds, gating, snapshots, merging."""

import math

import pytest

from repro import obs
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, metrics


class TestMetricKinds:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge()
        g.set(2.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_histogram_empty(self):
        h = Histogram()
        assert h.mean == 0.0
        d = h.to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None


class TestUngatedRegistry:
    def test_writers_always_record(self):
        reg = MetricsRegistry()
        reg.inc("calls")
        reg.inc("calls", 2)
        reg.set_gauge("depth", 3.0)
        reg.observe("wall", 0.5)
        snap = reg.snapshot()
        assert snap["counters"]["calls"] == 3
        assert snap["gauges"]["depth"] == 3.0
        assert snap["histograms"]["wall"]["count"] == 1

    def test_accessors_create_on_first_use(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert sorted(reg) == ["a", "b", "c"]

    def test_rows_expand_histograms(self):
        reg = MetricsRegistry()
        reg.inc("n", 2)
        reg.observe("t", 1.0)
        reg.observe("t", 3.0)
        rows = dict(reg.rows())
        assert rows["n"] == 2
        assert rows["t.count"] == 2
        assert rows["t.mean"] == 2.0
        assert rows["t.min"] == 1.0
        assert rows["t.max"] == 3.0
        assert rows["t.sum"] == 4.0

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}


class TestGatedRegistry:
    def test_global_registry_is_gated_off_by_default(self):
        metrics.inc("ignored")
        metrics.set_gauge("ignored.g", 1.0)
        metrics.observe("ignored.h", 1.0)
        snap = metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_global_registry_records_when_enabled(self, obs_on):
        metrics.inc("batch.cache.hits", 3)
        assert metrics.snapshot()["counters"]["batch.cache.hits"] == 3

    def test_metrics_only_mode(self):
        obs.enable(trace=False, metrics=True)
        metrics.inc("m")
        assert metrics.snapshot()["counters"]["m"] == 1
        assert not obs.tracing_enabled() and obs.metrics_enabled()


class TestMerge:
    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("calls", 2)
        b.inc("calls", 3)
        a.observe("wall", 1.0)
        b.observe("wall", 3.0)
        b.set_gauge("depth", 9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["calls"] == 5
        assert snap["histograms"]["wall"] == {
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0}
        assert snap["gauges"]["depth"] == 9.0

    def test_merge_empty_snapshot_is_noop(self):
        a = MetricsRegistry()
        a.inc("x")
        before = a.snapshot()
        a.merge({})
        assert a.snapshot() == before

    def test_merge_empty_histogram_keeps_extremes_empty(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.histogram("h")  # registered but never observed
        a.merge(b.snapshot())
        assert a.histogram("h").count == 0
        assert math.isinf(a.histogram("h").min)


class TestIsolation:
    def test_push_pop_isolated_captures_delta_only(self, obs_on):
        metrics.inc("before")
        frame = metrics.push_isolated()
        metrics.inc("during", 7)
        captured = metrics.pop_isolated(frame)
        assert captured["counters"] == {"during": 7}
        snap = metrics.snapshot()
        assert snap["counters"] == {"before": 1}


class TestStateHelpers:
    def test_enable_disable_roundtrip(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled() and obs.tracing_enabled() \
            and obs.metrics_enabled()
        obs.disable()
        assert not obs.enabled()

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("ON", True),
        ("", False), ("0", False), ("false", False), ("off", False),
    ])
    def test_env_flag_parsing(self, value, expected, monkeypatch):
        from repro.obs.state import _env_flag
        monkeypatch.setenv("REPRO_OBS_TEST_FLAG", value)
        assert _env_flag("REPRO_OBS_TEST_FLAG") is expected
