"""Shared fixtures for the observability suite.

Every test in this directory starts from a known-clean observability
state (instrumentation off, empty trace, empty registry) regardless of
``REPRO_TRACE``/``REPRO_METRICS`` in the surrounding environment, and
restores the pre-test flags afterwards so the rest of the suite is
unaffected.
"""

import pytest

from repro import obs
from repro.obs import state as obs_state


@pytest.fixture(autouse=True)
def _obs_clean_state():
    prev = (obs_state.STATE.tracing, obs_state.STATE.metrics)
    obs.disable()
    obs.clear_trace()
    obs.metrics.reset()
    yield
    obs_state.STATE.tracing, obs_state.STATE.metrics = prev
    obs.clear_trace()
    obs.metrics.reset()


@pytest.fixture
def obs_on():
    """Tracing + metrics enabled on clean storage for one test."""
    obs.enable()
    yield
    obs.disable()
