"""Span tracer semantics: nesting, no-op-when-off, export, adoption."""

import json
import os
import threading

import pytest

from repro import obs
from repro.obs import (
    SpanRecord,
    adopt_spans,
    clear_trace,
    current_span_id,
    format_trace_tree,
    get_trace,
    span,
    write_trace_jsonl,
)


def _by_name(records):
    return {r.name: r for r in records}


class TestSpanBasics:
    def test_disabled_span_records_nothing(self):
        with span("quiet", x=1):
            assert current_span_id() is None
        assert get_trace() == []

    def test_single_span_recorded(self, obs_on):
        with span("work", kind="unit"):
            pass
        (rec,) = get_trace()
        assert rec.name == "work"
        assert rec.attrs == {"kind": "unit"}
        assert rec.parent_id is None
        assert rec.duration_s >= 0.0
        assert rec.pid == os.getpid()
        assert rec.error is None

    def test_nested_spans_link_parents(self, obs_on):
        with span("outer"):
            with span("middle"):
                with span("inner"):
                    pass
        recs = _by_name(get_trace())
        assert recs["inner"].parent_id == recs["middle"].span_id
        assert recs["middle"].parent_id == recs["outer"].span_id
        assert recs["outer"].parent_id is None

    def test_siblings_share_parent(self, obs_on):
        with span("lot"):
            with span("wafer", i=0):
                pass
            with span("wafer", i=1):
                pass
        recs = get_trace()
        lot = _by_name(recs)["lot"]
        wafers = [r for r in recs if r.name == "wafer"]
        assert len(wafers) == 2
        assert all(w.parent_id == lot.span_id for w in wafers)

    def test_current_span_id_tracks_nesting(self, obs_on):
        assert current_span_id() is None
        with span("a") as a:
            assert current_span_id() == a._span_id
            with span("b") as b:
                assert current_span_id() == b._span_id
            assert current_span_id() == a._span_id
        assert current_span_id() is None

    def test_exception_recorded_and_propagated(self, obs_on):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        (rec,) = get_trace()
        assert rec.error == "ValueError"

    def test_decorator_traces_each_call(self, obs_on):
        @span("fn.traced", flavor="decorated")
        def fn(x):
            """Doc."""
            return x + 1

        assert fn(1) == 2
        assert fn(2) == 3
        recs = get_trace()
        assert [r.name for r in recs] == ["fn.traced", "fn.traced"]
        assert recs[0].attrs == {"flavor": "decorated"}

    def test_decorator_respects_runtime_disable(self):
        @span("fn.sometimes")
        def fn():
            """Doc."""
            return 7

        assert fn() == 7
        assert get_trace() == []
        obs.enable()
        try:
            fn()
        finally:
            obs.disable()
        assert len(get_trace()) == 1

    def test_clear_trace(self, obs_on):
        with span("x"):
            pass
        assert get_trace()
        clear_trace()
        assert get_trace() == []

    def test_threads_keep_independent_ancestry(self, obs_on):
        seen = {}

        def worker(tag):
            with span(f"thread.{tag}") as s:
                seen[tag] = (s._parent_id, current_span_id())

        with span("main"):
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Spans opened in fresh threads are roots, not children of the
        # span open in the main thread.
        assert seen[0][0] is None
        assert seen[1][0] is None


class TestExport:
    def test_write_trace_jsonl_roundtrip(self, obs_on, tmp_path):
        with span("outer", n=2):
            with span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        n = write_trace_jsonl(path)
        assert n == 2
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert {rec["name"] for rec in lines} == {"outer", "inner"}
        inner = next(r for r in lines if r["name"] == "inner")
        outer = next(r for r in lines if r["name"] == "outer")
        assert inner["parent_id"] == outer["span_id"]

    def test_unserializable_attrs_are_stringified(self, obs_on, tmp_path):
        with span("odd", obj=object()):
            pass
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(path) == 1
        (rec,) = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert isinstance(rec["attrs"]["obj"], str)

    def test_format_trace_tree_structure(self, obs_on):
        with span("root", run=1):
            with span("child.a"):
                pass
            with span("child.b"):
                pass
        tree = format_trace_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert "run=1" in lines[0]
        assert any(line.startswith("├─ child.a") for line in lines)
        assert any(line.startswith("└─ child.b") for line in lines)

    def test_format_trace_tree_empty(self):
        assert format_trace_tree() == "(no spans recorded)"

    def test_format_trace_tree_marks_errors(self, obs_on):
        with pytest.raises(RuntimeError):
            with span("bad"):
                raise RuntimeError
        assert "!RuntimeError" in format_trace_tree()


class TestAdoption:
    def test_adopt_reparents_child_roots_under_current_span(self, obs_on):
        wire = [
            SpanRecord(span_id=1, parent_id=None, name="shard",
                       start_s=0.0, duration_s=1.0, pid=999).to_dict(),
            SpanRecord(span_id=2, parent_id=1, name="wafer",
                       start_s=0.1, duration_s=0.2, pid=999).to_dict(),
        ]
        with span("lot"):
            adopt_spans(wire)
        recs = _by_name(get_trace())
        assert recs["shard"].parent_id == recs["lot"].span_id
        assert recs["wafer"].parent_id == recs["shard"].span_id
        assert recs["wafer"].pid == 999  # executing process preserved

    def test_adopt_remaps_colliding_ids(self, obs_on):
        with span("own"):
            pass
        own = get_trace()[0]
        # The child numbered its span with an id the parent already used.
        wire = [SpanRecord(span_id=own.span_id, parent_id=None,
                           name="foreign", start_s=0.0,
                           duration_s=0.1).to_dict()]
        adopt_spans(wire, parent_id=None)
        recs = _by_name(get_trace())
        assert recs["foreign"].span_id != own.span_id
