"""Monte Carlo uncertainty propagation."""

import math

import numpy as np
import pytest

from repro.core import InputDistribution, propagate
from repro.core.scenarios import Scenario
from repro.errors import ParameterError


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestInputDistribution:
    def test_uniform_bounds(self, rng):
        dist = InputDistribution(2.0, 5.0)
        samples = dist.sample(5000, rng)
        assert samples.min() >= 2.0
        assert samples.max() <= 5.0
        assert samples.mean() == pytest.approx(3.5, abs=0.1)

    def test_triangular_mode_pulls_mean(self, rng):
        left = InputDistribution(0.0, 10.0, mode=1.0).sample(8000, rng)
        right = InputDistribution(0.0, 10.0, mode=9.0).sample(8000, rng)
        assert left.mean() < right.mean()

    def test_log_domain_bounds(self, rng):
        dist = InputDistribution(1.2, 2.4, log_domain=True)
        samples = dist.sample(5000, rng)
        assert samples.min() >= 1.2
        assert samples.max() <= 2.4

    def test_validation(self):
        with pytest.raises(ParameterError):
            InputDistribution(2.0, 1.0)
        with pytest.raises(ParameterError):
            InputDistribution(1.0, 2.0, mode=3.0)
        with pytest.raises(ParameterError):
            InputDistribution(-1.0, 2.0, log_domain=True)


class TestPropagation:
    @staticmethod
    def linear_cost(a=1.0, b=1.0):
        return 2.0 * a + b

    def test_mean_of_linear_function(self, rng):
        result = propagate(self.linear_cost, {"b": 1.0},
                           {"a": InputDistribution(0.0, 2.0)},
                           n_samples=4000, rng=rng)
        # E[2a + 1] = 2*1 + 1 = 3.
        assert result.mean == pytest.approx(3.0, abs=0.1)

    def test_percentiles_ordered(self, rng):
        result = propagate(self.linear_cost, {"b": 0.0},
                           {"a": InputDistribution(1.0, 3.0)},
                           n_samples=2000, rng=rng)
        assert result.percentile(10.0) < result.percentile(50.0) \
            < result.percentile(90.0)
        assert result.p10_p90_ratio > 1.0

    def test_probability_above(self, rng):
        result = propagate(self.linear_cost, {"b": 0.0},
                           {"a": InputDistribution(0.0, 1.0)},
                           n_samples=4000, rng=rng)
        # 2a uniform on [0, 2]: P(>1) = 0.5.
        assert result.probability_above(1.0) == pytest.approx(0.5, abs=0.05)

    def test_scenario_cost_risk(self, rng):
        """End-to-end: the X and Y0 uncertainty bands the paper quotes
        produce a wide C_tr distribution (p90/p10 around 2x)."""
        def cost(x=1.8, y0=0.7, lam=0.5):
            scenario = Scenario(name="u", growth_rates=(x,),
                                design_density=200.0, reference_yield=y0)
            return scenario.cost_dollars(lam, x) * 1e6

        result = propagate(cost, {"lam": 0.5}, {
            "x": InputDistribution(1.2, 2.4, mode=1.8, log_domain=True),
            "y0": InputDistribution(0.5, 0.9, mode=0.7),
        }, n_samples=1200, rng=rng)
        assert 1.5 < result.p10_p90_ratio < 4.0
        assert result.std > 0.0

    def test_mostly_infeasible_inputs_rejected(self, rng):
        def fragile(a=1.0):
            if a > 1.1:
                raise ParameterError("infeasible")
            return a

        with pytest.raises(ParameterError):
            propagate(fragile, {}, {"a": InputDistribution(1.0, 3.0)},
                      n_samples=400, rng=rng)

    def test_needs_uncertain_inputs(self, rng):
        with pytest.raises(ParameterError):
            propagate(self.linear_cost, {"a": 1.0, "b": 1.0}, {},
                      n_samples=100, rng=rng)
