"""Elasticities and tornado analysis."""

import math

import pytest

from repro.core.sensitivity import elasticity, elasticity_profile, tornado
from repro.errors import ParameterError


def power_law_cost(a=1.0, b=1.0, c=1.0):
    """A cost with known elasticities: C = a^2 * b^-1 * c^0.5."""
    return a ** 2 * b ** -1 * c ** 0.5


class TestElasticity:
    def test_recovers_power_law_exponents(self):
        params = {"a": 3.0, "b": 2.0, "c": 5.0}
        assert elasticity(power_law_cost, params, "a") == pytest.approx(2.0, abs=1e-6)
        assert elasticity(power_law_cost, params, "b") == pytest.approx(-1.0, abs=1e-6)
        assert elasticity(power_law_cost, params, "c") == pytest.approx(0.5, abs=1e-6)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ParameterError):
            elasticity(power_law_cost, {"a": 1.0}, "z")

    def test_nonpositive_parameter_rejected(self):
        with pytest.raises(ParameterError):
            elasticity(power_law_cost, {"a": -1.0, "b": 1.0, "c": 1.0}, "a")

    def test_profile_covers_all_positive_params(self):
        profile = elasticity_profile(power_law_cost,
                                     {"a": 1.5, "b": 2.0, "c": 4.0})
        assert set(profile) == {"a", "b", "c"}

    def test_profile_subset(self):
        profile = elasticity_profile(power_law_cost,
                                     {"a": 1.5, "b": 2.0, "c": 4.0},
                                     parameters=["a"])
        assert set(profile) == {"a"}


class TestElasticityOnCostModel:
    def test_transistor_cost_elasticities(self):
        """On eq. (8): C_tr = C0 X^g(lam) d_d lam^2 / A_w — elasticity
        w.r.t. d_d is exactly +1, w.r.t. C0 exactly +1."""
        from repro.core import TransistorCostModel, WaferCostModel
        from repro.geometry import Wafer

        def cost(reference_cost=500.0, design_density=30.0,
                 feature_size=0.5):
            model = TransistorCostModel(
                wafer_cost=WaferCostModel(
                    reference_cost_dollars=reference_cost,
                    cost_growth_rate=1.8),
                wafer=Wafer(radius_cm=7.5))
            return model.scenario1_cost(feature_size, design_density)

        params = {"reference_cost": 500.0, "design_density": 30.0,
                  "feature_size": 0.5}
        assert elasticity(cost, params, "design_density") == pytest.approx(1.0, abs=1e-5)
        assert elasticity(cost, params, "reference_cost") == pytest.approx(1.0, abs=1e-5)
        # d ln C / d ln lam = 2 - g'(lam)*lam*ln X ... at least it is
        # sign-definite: shrink reduces eq.-(8) cost (X=1.8 modest).
        assert elasticity(cost, params, "feature_size") > 0.0


class TestTornado:
    def test_ranked_by_swing(self):
        baseline = {"a": 2.0, "b": 2.0, "c": 2.0}
        bars = tornado(power_law_cost, baseline,
                       {"a": (1.0, 4.0), "c": (1.0, 4.0)})
        assert [b.parameter for b in bars] == ["a", "c"]  # a^2 swings more
        assert bars[0].swing > bars[1].swing

    def test_swing_and_relative_swing(self):
        baseline = {"a": 1.0, "b": 1.0, "c": 1.0}
        bars = tornado(power_law_cost, baseline, {"b": (0.5, 2.0)})
        bar = bars[0]
        assert bar.cost_at_low == pytest.approx(2.0)
        assert bar.cost_at_high == pytest.approx(0.5)
        assert bar.swing == pytest.approx(1.5)
        assert bar.relative_swing == pytest.approx(1.5)

    def test_range_validation(self):
        with pytest.raises(ParameterError):
            tornado(power_law_cost, {"a": 1.0, "b": 1.0, "c": 1.0},
                    {"a": (2.0, 1.0)})
        with pytest.raises(ParameterError):
            tornado(power_law_cost, {"a": 1.0, "b": 1.0, "c": 1.0},
                    {"z": (1.0, 2.0)})
