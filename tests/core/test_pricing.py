"""Learning-curve prices and margins."""

import math

import pytest

from repro.core import LearningCurvePrice, MarginModel
from repro.core.pricing import margin_squeeze_year
from repro.errors import ParameterError


class TestLearningCurvePrice:
    def test_first_unit(self):
        p = LearningCurvePrice(100.0, 0.7)
        assert p.price(1.0) == pytest.approx(100.0)

    def test_each_doubling_multiplies_by_learning_rate(self):
        p = LearningCurvePrice(100.0, 0.7)
        assert p.price(2.0) == pytest.approx(70.0)
        assert p.price(4.0) == pytest.approx(49.0)
        assert p.price(1024.0) == pytest.approx(100.0 * 0.7 ** 10)

    def test_volume_for_price_roundtrip(self):
        p = LearningCurvePrice(100.0, 0.72)
        q = p.volume_for_price(10.0)
        assert p.price(q) == pytest.approx(10.0)

    def test_doublings_to_price(self):
        p = LearningCurvePrice(100.0, 0.5)  # halves every doubling
        assert p.doublings_to_price(12.5) == pytest.approx(3.0)

    def test_price_monotone_decreasing(self):
        p = LearningCurvePrice(100.0, 0.8)
        prices = [p.price(q) for q in (1, 10, 100, 1000)]
        assert prices == sorted(prices, reverse=True)

    def test_validation(self):
        with pytest.raises(ParameterError):
            LearningCurvePrice(100.0, 1.0)
        with pytest.raises(ParameterError):
            LearningCurvePrice(100.0, 0.7).price(0.5)
        with pytest.raises(ParameterError):
            LearningCurvePrice(100.0, 0.7).volume_for_price(200.0)


class TestMarginModel:
    def test_gross_margin(self):
        m = MarginModel(unit_price_dollars=10.0, unit_cost_dollars=6.0)
        assert m.gross_margin == pytest.approx(0.4)
        assert m.markup == pytest.approx(10.0 / 6.0)

    def test_under_water(self):
        m = MarginModel(unit_price_dollars=5.0, unit_cost_dollars=6.0)
        assert m.gross_margin < 0.0

    def test_price_for_margin_roundtrip(self):
        m = MarginModel(unit_price_dollars=10.0, unit_cost_dollars=6.0)
        price = m.price_for_margin(0.5)
        assert MarginModel(price, 6.0).gross_margin == pytest.approx(0.5)

    def test_cost_ceiling(self):
        m = MarginModel(unit_price_dollars=10.0, unit_cost_dollars=6.0)
        assert m.cost_ceiling_for_margin(0.4) == pytest.approx(6.0)
        assert m.cost_ceiling_for_margin(0.6) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            MarginModel(0.0, 1.0)
        with pytest.raises(ParameterError):
            MarginModel(10.0, 6.0).price_for_margin(1.0)


class TestMarginSqueeze:
    def test_squeeze_year_detected(self):
        """Cost flat, price on a learning curve falling 10%/year: the
        margin floor is crossed at a predictable year."""
        def cost(year):
            return 5.0

        def price(year):
            return 20.0 * 0.9 ** (year - 1985.0)

        year = margin_squeeze_year(cost, price, floor_margin=0.2)
        assert year is not None
        # price(y)*0.8 < 5  =>  0.9^(y-1985) < 0.3125  =>  y ~ 1996
        expected = 1985.0 + math.ceil(math.log(5.0 / (20.0 * 0.8))
                                      / math.log(0.9))
        assert abs(year - expected) <= 1.0

    def test_healthy_margin_never_squeezed(self):
        year = margin_squeeze_year(lambda y: 1.0, lambda y: 100.0,
                                   floor_margin=0.2)
        assert year is None

    def test_bad_price_model_raises(self):
        with pytest.raises(ParameterError):
            margin_squeeze_year(lambda y: 1.0, lambda y: 0.0)
