"""The Table-3 cost diversity engine."""

import math

import pytest

from repro.core import GenerationModel, evaluate_catalog, evaluate_product
from repro.core.diversity import (
    agreement_statistics,
    cheapest_and_dearest,
)
from repro.errors import ParameterError
from repro.technology import PRODUCT_CATALOG, ProductClass


@pytest.fixture(scope="module")
def results():
    return evaluate_catalog()


class TestAgreement:
    def test_mean_log_error_within_band(self, results):
        """DESIGN.md's validation target: mean |log error| < 0.30 over
        the non-reconstructed rows with the default generation law."""
        stats = agreement_statistics(results)
        assert stats["mean_abs_log_error"] < 0.30

    def test_every_compared_row_within_2x(self, results):
        for r in results:
            if r.spec.reconstructed or r.ratio is None:
                continue
            assert 0.5 < r.ratio < 2.0, r.spec.name

    def test_modeled_spread_matches_published_scale(self, results):
        """The diversity headline: ~250x spread across products."""
        stats = agreement_statistics(results)
        assert stats["modeled_spread"] > 100.0
        assert stats["modeled_spread"] == pytest.approx(
            stats["published_spread"], rel=0.5)

    def test_default_law_beats_printed_exponent(self):
        """Deviation-1 calibration: the shrink-log law fits Table 3 far
        better than the literal printed exponent."""
        default = agreement_statistics(evaluate_catalog())
        printed = agreement_statistics(
            evaluate_catalog(generation_model=GenerationModel.PRINTED))
        assert default["mean_abs_log_error"] < printed["mean_abs_log_error"]
        assert printed["mean_abs_log_error"] > 0.5

    def test_stats_require_compared_rows(self):
        with pytest.raises(ParameterError):
            agreement_statistics([])


class TestStructure:
    def test_one_result_per_catalog_row(self, results):
        assert len(results) == len(PRODUCT_CATALOG)

    def test_repeat_rows_get_identical_costs(self, results):
        assert results[1].ctr_microdollars == pytest.approx(
            results[5].ctr_microdollars)

    def test_memories_cheapest(self, results):
        """Sec. IV.C conclusion 1: memory C_tr is much lower."""
        memory = [r.ctr_microdollars for r in results
                  if r.spec.product_class.has_redundancy]
        non_memory = [r.ctr_microdollars for r in results
                      if not r.spec.product_class.has_redundancy]
        assert max(memory) < min(non_memory)

    def test_pld_dearest(self, results):
        cheapest, dearest = cheapest_and_dearest(results)
        assert dearest.spec.product_class is ProductClass.PLD
        assert cheapest.spec.product_class.has_redundancy

    def test_rows_4_7_10_17_comparison(self, results):
        """The paper: 'possible gains are larger than one could
        anticipate (Compare for instance rows 4, 7, 10 and 17)' — the
        spread across those rows alone is an order of magnitude+."""
        picked = [results[3], results[6], results[9], results[16]]
        vals = [r.ctr_microdollars for r in picked]
        assert max(vals) / min(vals) > 10.0

    def test_cheapest_and_dearest_requires_rows(self):
        with pytest.raises(ParameterError):
            cheapest_and_dearest([])


class TestSingleEvaluation:
    def test_log_error_and_ratio_consistent(self, results):
        r = results[0]
        assert r.log_error == pytest.approx(math.log(r.ratio))

    def test_bigger_wafer_cheaper_at_same_yield(self):
        """Row 13 vs 14 isolates wafer size and yield: on the same spec,
        growing the wafer alone must cut C_tr."""
        row13 = PRODUCT_CATALOG[12]
        from dataclasses import replace
        bigger = replace(row13, wafer_radius_cm=10.0,
                         published_ctr_microdollars=None)
        c_small = evaluate_product(row13).ctr_microdollars
        c_big = evaluate_product(bigger).ctr_microdollars
        assert c_big < c_small

    def test_x_sensitivity_rows_1_2_3(self, results):
        """Rows 1-3 sweep (Y0, X) on the same design: cost must rise."""
        c1, c2, c3 = (results[i].ctr_microdollars for i in range(3))
        assert c1 < c2 < c3
