"""The headline eq.-(1) composition and the eq.-(8)/(9) approximations."""

import math

import pytest

from repro.core import TransistorCostModel, WaferCostModel
from repro.errors import ParameterError
from repro.geometry import Wafer
from repro.units import wafer_area_cm2
from repro.yieldsim import PoissonYield, ReferenceAreaYield


@pytest.fixture
def model():
    return TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                  cost_growth_rate=1.8),
        wafer=Wafer(radius_cm=7.5))


class TestEvaluate:
    def test_equation_one_composition(self, model):
        """C_tr must equal C_w / (N_ch * N_tr * Y) from the breakdown's
        own reported factors."""
        b = model.evaluate(n_transistors=3.1e6, feature_size_um=0.8,
                           design_density=150.0, yield_value=0.7)
        recomposed = b.wafer_cost_dollars / (
            b.dies_per_wafer * b.transistors_per_die * b.yield_value)
        assert b.cost_per_transistor_dollars == pytest.approx(recomposed)

    def test_fixed_yield_value_used_verbatim(self, model):
        b = model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                           design_density=150.0, yield_value=0.42)
        assert b.yield_value == 0.42

    def test_reference_area_yield_path(self, model):
        b = model.evaluate(n_transistors=3.1e6, feature_size_um=0.8,
                           design_density=150.0,
                           yield_model=ReferenceAreaYield(0.7, 1.0))
        assert b.yield_value == pytest.approx(0.7 ** b.die_area_cm2)

    def test_generic_yield_model_needs_density(self, model):
        with pytest.raises(ParameterError):
            model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                           design_density=150.0, yield_model=PoissonYield())

    def test_generic_yield_model_with_density(self, model):
        b = model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                           design_density=150.0, yield_model=PoissonYield(),
                           defect_density_per_cm2=0.5)
        assert b.yield_value == pytest.approx(math.exp(-0.5 * b.die_area_cm2))

    def test_exactly_one_yield_specification(self, model):
        with pytest.raises(ParameterError):
            model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                           design_density=150.0)
        with pytest.raises(ParameterError):
            model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                           design_density=150.0, yield_value=0.5,
                           yield_model=PoissonYield())

    def test_die_too_big_raises(self, model):
        with pytest.raises(ParameterError):
            model.evaluate(n_transistors=5e9, feature_size_um=0.8,
                           design_density=150.0, yield_value=0.9)

    def test_cost_decreasing_in_yield(self, model):
        costs = [model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                                design_density=150.0, yield_value=y)
                 .cost_per_transistor_dollars for y in (0.4, 0.6, 0.9)]
        assert costs == sorted(costs, reverse=True)

    def test_overhead_amortization(self):
        base = TransistorCostModel(
            wafer_cost=WaferCostModel(overhead_dollars=1.0e6),
            wafer=Wafer(radius_cm=7.5))
        amortized = TransistorCostModel(
            wafer_cost=WaferCostModel(overhead_dollars=1.0e6),
            wafer=Wafer(radius_cm=7.5), volume_wafers=10_000)
        pure = base.wafer_cost_dollars(1.0)
        with_ov = amortized.wafer_cost_dollars(1.0)
        assert with_ov == pytest.approx(pure + 100.0)


class TestBreakdownProperties:
    def test_microdollars(self, model):
        b = model.evaluate(n_transistors=3.1e6, feature_size_um=0.8,
                           design_density=150.0, yield_value=0.7)
        assert b.cost_per_transistor_microdollars == pytest.approx(
            b.cost_per_transistor_dollars * 1e6)

    def test_good_dies_and_cost_per_good_die(self, model):
        b = model.evaluate(n_transistors=3.1e6, feature_size_um=0.8,
                           design_density=150.0, yield_value=0.5)
        assert b.good_dies_per_wafer == pytest.approx(b.dies_per_wafer * 0.5)
        assert b.cost_per_good_die_dollars == pytest.approx(
            b.wafer_cost_dollars / b.good_dies_per_wafer)


class TestScenarioApproximations:
    def test_equation_eight_hand_value(self, model):
        """Eq. (8) at the reference node: C_tr = C0 * d_d * lam^2 / A_w."""
        ctr = model.scenario1_cost(1.0, design_density=30.0)
        expected = 700.0 * 30.0 * 1.0 / (wafer_area_cm2(7.5) * 1e8)
        assert ctr == pytest.approx(expected)

    def test_equation_nine_divides_by_yield(self, model):
        s1 = model.scenario1_cost(0.5, design_density=200.0)
        s2 = model.scenario2_cost(0.5, design_density=200.0,
                                  reference_yield=0.7)
        from repro.technology.roadmap import die_area_trend_cm2
        y = 0.7 ** die_area_trend_cm2(0.5)
        assert s2 == pytest.approx(s1 / y)

    def test_equation_nine_custom_die_area(self, model):
        s2 = model.scenario2_cost(0.5, design_density=200.0,
                                  reference_yield=0.7, die_area_cm2=2.0)
        s1 = model.scenario1_cost(0.5, design_density=200.0)
        assert s2 == pytest.approx(s1 / 0.49)

    def test_eq8_ignores_edge_loss(self, model):
        """Eq. (8) uses gross wafer area: it must under-estimate the full
        eq.-(1) cost, which pays for incomplete edge dies."""
        full = model.evaluate(n_transistors=1e6, feature_size_um=0.8,
                              design_density=30.0, yield_value=1.0)
        approx = model.scenario1_cost(0.8, design_density=30.0)
        assert approx < full.cost_per_transistor_dollars
        # ... but for a small die, not by much.
        assert approx > 0.7 * full.cost_per_transistor_dollars
