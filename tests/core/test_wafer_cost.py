"""Wafer cost model: eqs. (2) and (3) with the generation laws."""

import math

import pytest

from repro.core import GenerationModel, WaferCostModel
from repro.core.wafer_cost import PUBLISHED_X_ESTIMATES
from repro.errors import ParameterError


class TestGenerationModels:
    def test_all_zero_at_reference(self):
        for model in GenerationModel:
            assert model.generations(1.0, 1.0) == pytest.approx(0.0)

    def test_shrink_log_canonical_values(self):
        g = GenerationModel.SHRINK_LOG
        assert g.generations(0.7) == pytest.approx(1.0)
        assert g.generations(0.49) == pytest.approx(2.0)
        assert g.generations(0.25) == pytest.approx(
            math.log(4.0) / math.log(1.0 / 0.7))

    def test_linear_values(self):
        g = GenerationModel.LINEAR
        assert g.generations(0.85) == pytest.approx(1.0)
        assert g.generations(0.25) == pytest.approx(5.0)

    def test_inverse_values(self):
        g = GenerationModel.INVERSE
        assert g.generations(0.5) == pytest.approx(2.0)

    def test_printed_is_weak(self):
        """The literal printed exponent never exceeds 0.5 — the reason it
        cannot reproduce Fig. 7 (documented deviation 1)."""
        g = GenerationModel.PRINTED
        for lam in (0.8, 0.5, 0.25, 0.1):
            assert g.generations(lam) < 0.5

    def test_all_monotone_decreasing_in_lambda(self):
        for model in GenerationModel:
            gens = [model.generations(l) for l in (1.0, 0.8, 0.5, 0.3)]
            assert gens == sorted(gens)

    def test_coarser_than_reference_negative(self):
        assert GenerationModel.SHRINK_LOG.generations(2.0) < 0.0

    def test_custom_reference(self):
        g = GenerationModel.SHRINK_LOG
        assert g.generations(0.35, reference_um=0.5) == pytest.approx(1.0)

    def test_shrink_validation(self):
        with pytest.raises(ParameterError):
            GenerationModel.SHRINK_LOG.generations(0.5, shrink=1.0)


class TestPureCost:
    def test_reference_cost_at_reference_lambda(self):
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8)
        assert model.pure_cost(1.0) == pytest.approx(500.0)

    def test_one_generation_multiplies_by_x(self):
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8)
        assert model.pure_cost(0.7) == pytest.approx(900.0)

    def test_cost_monotone_in_shrink(self):
        model = WaferCostModel(cost_growth_rate=1.4)
        costs = [model.pure_cost(l) for l in (1.0, 0.8, 0.5, 0.35, 0.25)]
        assert costs == sorted(costs)

    def test_higher_x_higher_cost_below_reference(self):
        mild = WaferCostModel(cost_growth_rate=1.2)
        harsh = WaferCostModel(cost_growth_rate=2.4)
        assert harsh.pure_cost(0.35) > mild.pure_cost(0.35)
        # At the reference node, X is irrelevant.
        assert harsh.pure_cost(1.0) == pytest.approx(mild.pure_cost(1.0))

    def test_x_equal_one_flat(self):
        model = WaferCostModel(cost_growth_rate=1.0)
        assert model.pure_cost(0.25) == pytest.approx(model.pure_cost(1.0))

    def test_paper_anchor_08um(self):
        """A 0.8 um wafer at X=1.8 costs ~1.44x the 1 um wafer — within
        the paper's $1300-for-premium-0.8 um vs $500-800-for-1 um quotes
        once the premium metal stack is accounted for."""
        model = WaferCostModel(reference_cost_dollars=650.0,
                               cost_growth_rate=1.8)
        assert 800.0 < model.pure_cost(0.8) < 1100.0

    def test_with_growth_rate_copy(self):
        model = WaferCostModel(cost_growth_rate=1.2,
                               overhead_dollars=1e6)
        copy = model.with_growth_rate(2.0)
        assert copy.cost_growth_rate == 2.0
        assert copy.overhead_dollars == 1e6
        assert model.cost_growth_rate == 1.2  # original untouched

    def test_rejects_x_below_one(self):
        with pytest.raises(ParameterError):
            WaferCostModel(cost_growth_rate=0.99)


class TestVolumeCost:
    def test_equation_two_composition(self):
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8,
                               overhead_dollars=2.0e6)
        assert model.cost_at_volume(1.0, 10_000) == pytest.approx(700.0)

    def test_breakeven_volume(self):
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8,
                               overhead_dollars=1.0e6)
        v = model.breakeven_volume(1.0, overhead_share=0.5)
        cost = model.cost_at_volume(1.0, v)
        assert (1.0e6 / v) / cost == pytest.approx(0.5)

    def test_breakeven_zero_overhead(self):
        model = WaferCostModel(overhead_dollars=0.0)
        assert model.breakeven_volume(1.0) == 0.0

    def test_breakeven_validation(self):
        model = WaferCostModel(overhead_dollars=1e6)
        with pytest.raises(ParameterError):
            model.breakeven_volume(1.0, overhead_share=1.0)


class TestPublishedEstimates:
    def test_bands_well_formed(self):
        for name, (lo, hi) in PUBLISHED_X_ESTIMATES.items():
            assert 1.0 < lo <= hi < 3.0, name

    def test_scenario_assumptions_inside_published_range(self):
        """S1.1 (1.1-1.3) brackets the Fig.-2 wafer extraction; S2.1
        (1.8-2.4) sits inside the Mitsubishi/Hitachi/[12] range."""
        all_lo = min(lo for lo, _ in PUBLISHED_X_ESTIMATES.values())
        all_hi = max(hi for _, hi in PUBLISHED_X_ESTIMATES.values())
        assert all_lo <= 1.3
        assert all_hi >= 2.4
