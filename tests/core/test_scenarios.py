"""Scenario #1 vs Scenario #2 — the paper's central contrast."""

import numpy as np
import pytest

from repro.core import SCENARIO_1, SCENARIO_2, Scenario
from repro.core.scenarios import scenario1_cost_curve, scenario2_cost_curve
from repro.errors import ParameterError

LAMBDAS = np.linspace(0.3, 1.0, 15)


class TestScenario1:
    def test_paper_parameters(self):
        assert SCENARIO_1.growth_rates == (1.1, 1.2, 1.3)
        assert SCENARIO_1.design_density == 30.0
        assert SCENARIO_1.reference_yield == 1.0

    def test_cost_decreases_with_shrink(self):
        """Fig. 6's message: for modest X, shrink keeps paying."""
        for x in SCENARIO_1.growth_rates:
            costs = [SCENARIO_1.cost_dollars(l, x) for l in LAMBDAS]
            assert costs == sorted(costs)  # increasing in lambda

    def test_higher_x_higher_cost_at_small_lambda(self):
        c_low = SCENARIO_1.cost_dollars(0.35, 1.1)
        c_high = SCENARIO_1.cost_dollars(0.35, 1.3)
        assert c_high > c_low

    def test_fig6_magnitude(self):
        """At 1 um the eq.-(8) cost is C0*d_d/A_w ~ 0.85e-6 dollars."""
        c = SCENARIO_1.cost_dollars(1.0, 1.2)
        assert c == pytest.approx(0.85e-6, rel=0.02)

    def test_no_interior_minimum(self):
        assert SCENARIO_1.crossover_feature_size(1.2) is None


class TestScenario2:
    def test_paper_parameters(self):
        assert SCENARIO_2.growth_rates == (1.8, 2.1, 2.4)
        assert SCENARIO_2.design_density == 200.0
        assert SCENARIO_2.reference_yield == 0.7

    def test_cost_increases_with_shrink(self):
        """Fig. 7's message: under realistic assumptions, a decrease in
        the feature size causes an INCREASE in the transistor cost."""
        for x in SCENARIO_2.growth_rates:
            fine = SCENARIO_2.cost_dollars(0.3, x)
            coarse = SCENARIO_2.cost_dollars(0.8, x)
            assert fine > coarse

    def test_steeper_x_steeper_increase(self):
        ratio_18 = SCENARIO_2.cost_dollars(0.3, 1.8) / \
            SCENARIO_2.cost_dollars(0.8, 1.8)
        ratio_24 = SCENARIO_2.cost_dollars(0.3, 2.4) / \
            SCENARIO_2.cost_dollars(0.8, 2.4)
        assert ratio_24 > ratio_18 > 1.0

    def test_scenario2_above_scenario1(self):
        """Same lambda and X-range comparison: the realistic scenario is
        always costlier (higher d_d, imperfect yield)."""
        for lam in (0.4, 0.6, 0.8):
            assert SCENARIO_2.cost_dollars(lam, 1.8) > \
                SCENARIO_1.cost_dollars(lam, 1.3)

    def test_interior_optimum_exists_at_moderate_x(self):
        """At X = 1.8 the cost-minimizing lambda is interior (~0.8 um):
        shrinking past it hurts.  (At X = 2.4 shrink is bad everywhere
        in range and the optimum pins to the coarse edge.)"""
        lam_opt = SCENARIO_2.crossover_feature_size(1.8, lam_lo_um=0.25,
                                                    lam_hi_um=1.5)
        assert lam_opt is not None
        assert 0.5 < lam_opt < 1.2

    def test_extreme_x_pins_optimum_to_coarse_edge(self):
        assert SCENARIO_2.crossover_feature_size(2.4, lam_lo_um=0.25,
                                                 lam_hi_um=1.5) is None


class TestCurves:
    def test_curves_keyed_by_x(self):
        curves = SCENARIO_1.curves(LAMBDAS)
        assert set(curves) == {1.1, 1.2, 1.3}
        for ys in curves.values():
            assert ys.shape == LAMBDAS.shape
            assert np.all(ys > 0)

    def test_convenience_wrappers(self):
        s1 = scenario1_cost_curve(LAMBDAS, growth_rate=1.2)
        s2 = scenario2_cost_curve(LAMBDAS, growth_rate=1.8)
        assert s1.shape == s2.shape == LAMBDAS.shape
        assert np.all(s2 > s1)

    def test_wrapper_offlist_growth_rate(self):
        custom = scenario1_cost_curve(LAMBDAS, growth_rate=1.25)
        assert custom.shape == LAMBDAS.shape


class TestCustomScenario:
    def test_with_growth_rates(self):
        s = SCENARIO_1.with_growth_rates((1.5, 1.6))
        assert s.growth_rates == (1.5, 1.6)
        assert s.design_density == SCENARIO_1.design_density

    def test_validation(self):
        with pytest.raises(ParameterError):
            Scenario(name="bad", growth_rates=(), design_density=30.0)
        with pytest.raises(ParameterError):
            Scenario(name="bad", growth_rates=(0.9,), design_density=30.0)
        with pytest.raises(ParameterError):
            Scenario(name="bad", growth_rates=(1.2,), design_density=-1.0)

    def test_perfect_yield_uses_eq8(self):
        s = Scenario(name="custom", growth_rates=(1.3,),
                     design_density=100.0, reference_yield=1.0)
        model = s.model_for(1.3)
        assert s.cost_dollars(0.5, 1.3) == pytest.approx(
            model.scenario1_cost(0.5, 100.0))

    def test_custom_die_area_function(self):
        s = Scenario(name="flat-die", growth_rates=(1.8,),
                     design_density=200.0, reference_yield=0.7,
                     die_area_cm2_fn=lambda lam: 1.0)
        # Constant 1 cm^2 die: yield is 0.7 everywhere, so the cost ratio
        # between two lambdas reduces to the eq.-(8) ratio.
        r = s.cost_dollars(0.5, 1.8) / s.cost_dollars(1.0, 1.8)
        model = s.model_for(1.8)
        r8 = model.scenario1_cost(0.5, 200.0) / model.scenario1_cost(1.0, 200.0)
        assert r == pytest.approx(r8)
