"""Transistor cost versus calendar year."""

import pytest

from repro.core import (
    CostTrajectory,
    SCENARIO_1,
    divergence_year,
    optimistic_trajectory,
    realistic_trajectory,
)
from repro.errors import ParameterError


class TestOptimisticTrajectory:
    def test_cost_falls_every_year(self):
        traj = optimistic_trajectory()
        years, costs = traj.series(1980.0, 2005.0)
        assert all(b < a for a, b in zip(costs, costs[1:]))

    def test_improvement_rate_healthy(self):
        """The historical norm: double-digit % cost cut per year."""
        traj = optimistic_trajectory()
        for year in (1985.0, 1990.0, 1995.0):
            assert traj.annual_improvement(year) > 0.10

    def test_no_flattening_in_span(self):
        traj = optimistic_trajectory()
        assert traj.flattening_year(1985.0, 2005.0) is None
        assert traj.reversal_year(1985.0, 2005.0) is None


class TestRealisticTrajectory:
    def test_cost_reverses_in_early_1990s(self):
        """The paper (1994): 'Recently the situation has changed.  There
        are some indications that the cost per transistor may no longer
        decrease' — the Scenario-#2 trajectory reverses right around
        when the paper was written."""
        traj = realistic_trajectory(1.8)
        reversal = traj.reversal_year(1985.0, 2005.0)
        assert reversal is not None
        assert 1988.0 <= reversal <= 1996.0

    def test_higher_x_earlier_reversal(self):
        mild = realistic_trajectory(1.8).reversal_year(1985.0, 2005.0)
        harsh = realistic_trajectory(2.4).reversal_year(1985.0, 2005.0)
        assert harsh is not None and mild is not None
        assert harsh <= mild

    def test_cost_rising_after_reversal(self):
        traj = realistic_trajectory(2.1)
        reversal = traj.reversal_year(1985.0, 2005.0)
        assert traj.cost_at_year(reversal + 5.0) > \
            traj.cost_at_year(reversal)


class TestDivergence:
    def test_divergence_year_exists(self):
        year = divergence_year(ratio=4.0)
        assert year is not None
        assert 1985.0 <= year <= 2000.0

    def test_larger_ratio_diverges_later(self):
        y4 = divergence_year(ratio=4.0)
        y20 = divergence_year(ratio=20.0)
        assert y20 is None or (y4 is not None and y20 >= y4)

    def test_unreachable_ratio_none(self):
        assert divergence_year(ratio=1e9) is None


class TestValidation:
    def test_rejects_bad_growth_rate(self):
        with pytest.raises(ParameterError):
            CostTrajectory(scenario=SCENARIO_1, growth_rate=0.5)

    def test_series_validation(self):
        traj = optimistic_trajectory()
        with pytest.raises(ParameterError):
            traj.series(2000.0, 1990.0)
        with pytest.raises(ParameterError):
            traj.series(1990.0, 2000.0, n_points=1)

    def test_flattening_threshold_validation(self):
        with pytest.raises(ParameterError):
            optimistic_trajectory().flattening_year(threshold=0.0)
