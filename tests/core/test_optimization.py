"""The Fig.-8 cost landscape and feature-size optimization."""

import math

import numpy as np
import pytest

from repro.core import CostLandscape, FIG8_FAB, optimal_feature_size, \
    optimal_feature_size_for_die_area
from repro.core.optimization import FabCharacterization, transistor_cost_full
from repro.errors import ParameterError


class TestFullCostFunction:
    def test_positive_for_feasible_point(self):
        c = transistor_cost_full(1e6, 0.8)
        assert 0.0 < c < math.inf

    def test_infeasible_die_is_inf(self):
        # Enormous die at coarse lambda cannot fit the wafer.
        assert transistor_cost_full(5e8, 1.5) == math.inf

    def test_yield_underflow_is_inf(self):
        # Tiny lambda with a huge count: yield underflows, flagged inf.
        assert transistor_cost_full(5e8, 0.3) == math.inf

    def test_fig8_fab_constants(self):
        assert FIG8_FAB.cost_growth_rate == 1.4
        assert FIG8_FAB.design_density == 152.0
        assert FIG8_FAB.defect_coefficient == 1.72
        assert FIG8_FAB.size_exponent_p == 4.07

    def test_validation(self):
        with pytest.raises(ParameterError):
            transistor_cost_full(-1.0, 0.8)
        with pytest.raises(ParameterError):
            FabCharacterization(cost_growth_rate=-1.0)


class TestLandscape:
    @pytest.fixture(scope="class")
    def landscape(self):
        return CostLandscape(
            feature_sizes_um=np.linspace(0.3, 2.0, 24),
            transistor_counts=np.geomspace(1e5, 1e7, 24))

    def test_grid_shape_and_caching(self, landscape):
        g1 = landscape.grid()
        g2 = landscape.grid()
        assert g1 is g2  # cached
        assert g1.shape == (24, 24)

    def test_grid_has_feasible_and_mixed_cells(self, landscape):
        g = landscape.grid()
        assert np.isfinite(g).any()
        assert np.all(g[np.isfinite(g)] > 0)

    def test_optimal_lambda_rises_with_transistor_count(self, landscape):
        """The paper: 'for each die size there is different lambda_opt'.
        Bigger designs favor coarser (higher-yield) feature sizes."""
        optima = landscape.optimal_lambda_per_count()
        assert len(optima) > 10
        lam_small = optima[0][1]
        lam_big = optima[-1][1]
        assert lam_big > lam_small

    def test_local_minima_exist(self, landscape):
        """Fig. 8 shows 'a number of local optima'."""
        assert len(landscape.local_minima()) >= 1

    def test_contour_levels_start_at_valley_floor(self, landscape):
        levels = landscape.contour_levels(6)
        g = landscape.grid()
        finite = g[np.isfinite(g)]
        assert levels[0] == pytest.approx(finite.min())
        # Capped a few decades above the floor, not at the absurd max.
        assert levels[-1] <= finite.min() * 1.0e3 * (1 + 1e-9)
        assert len(levels) == 6

    def test_contour_mask_selects_near_level(self, landscape):
        level = landscape.contour_levels(6)[2]
        mask = landscape.contour_mask(level, tolerance=0.1)
        g = landscape.grid()
        assert mask.any()
        sel = g[mask]
        assert np.all(np.abs(sel - level) / level <= 0.1 + 1e-12)

    def test_contour_mask_validation(self, landscape):
        with pytest.raises(ParameterError):
            landscape.contour_mask(-1.0)


class TestOptimalFeatureSize:
    def test_optimum_is_interior_for_midsize_design(self):
        lam = optimal_feature_size(3e5, lam_lo_um=0.25, lam_hi_um=2.0)
        assert 0.25 < lam < 2.0

    def test_optimum_not_smallest_lambda(self):
        """The paper's punchline: 'the optimum solution may not call for
        the smallest possible (and expensive) feature size'."""
        lam = optimal_feature_size(1e6, lam_lo_um=0.25, lam_hi_um=2.0)
        assert lam > 0.4

    def test_optimum_beats_neighbors(self):
        n_tr = 5e5
        lam = optimal_feature_size(n_tr, lam_lo_um=0.25, lam_hi_um=2.0)
        c_opt = transistor_cost_full(n_tr, lam)
        assert c_opt <= transistor_cost_full(n_tr, lam * 1.07)
        assert c_opt <= transistor_cost_full(n_tr, lam * 0.93)

    def test_bigger_design_coarser_optimum(self):
        lam_small = optimal_feature_size(1e5, lam_lo_um=0.25, lam_hi_um=2.5)
        lam_big = optimal_feature_size(2e6, lam_lo_um=0.25, lam_hi_um=2.5)
        assert lam_big > lam_small

    def test_range_validation(self):
        with pytest.raises(ParameterError):
            optimal_feature_size(1e6, lam_lo_um=1.0, lam_hi_um=0.5)


class TestOptimalForDieArea:
    def test_returns_feasible_point(self):
        lam, cost = optimal_feature_size_for_die_area(0.5)
        assert 0.25 <= lam <= 1.5
        assert 0.0 < cost < math.inf

    def test_larger_die_higher_min_cost(self):
        _, c_small = optimal_feature_size_for_die_area(0.3)
        _, c_large = optimal_feature_size_for_die_area(2.0)
        assert c_large > c_small

    def test_different_die_sizes_different_optima(self):
        """'For each die size there is different lambda_opt'."""
        lams = {optimal_feature_size_for_die_area(a)[0]
                for a in (0.2, 0.8, 2.5)}
        assert len(lams) >= 2

    def test_validation(self):
        with pytest.raises(ParameterError):
            optimal_feature_size_for_die_area(-1.0)
