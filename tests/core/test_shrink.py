"""Product shrink analysis (the [26] application)."""

import pytest

from repro.core import ShrinkAnalysis
from repro.core.wafer_cost import WaferCostModel
from repro.errors import ParameterError
from repro.geometry import Wafer
from repro.technology import PRODUCT_CATALOG
from repro.yieldsim import YieldLearningCurve


@pytest.fixture
def analysis():
    """A 1.2M-transistor logic product on a clean fab (X=1.4).

    The density coefficient must be small: eq. (7)'s lambda^-p killer
    scaling makes shrink punishing unless the fab is clean — with
    D = 0.05 at 1 um, the 0.5 um node sees ~0.84 killers/cm^2.
    """
    return ShrinkAnalysis(
        n_transistors=1.2e6, design_density=150.0,
        wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                  cost_growth_rate=1.4),
        mature_density_per_cm2=0.05)


class TestNodeEvaluation:
    def test_shrink_shrinks_the_die(self, analysis):
        old = analysis.evaluate_node(0.8)
        new = analysis.evaluate_node(0.5)
        assert new.die_area_cm2 == pytest.approx(
            old.die_area_cm2 * (0.5 / 0.8) ** 2)
        assert new.dies_per_wafer > old.dies_per_wafer

    def test_wafer_cost_rises_with_shrink(self, analysis):
        assert analysis.evaluate_node(0.5).wafer_cost_dollars > \
            analysis.evaluate_node(0.8).wafer_cost_dollars

    def test_density_scaling_penalty(self, analysis):
        # Mature density at finer node is worse at the node's own kill
        # radius (lambda^(p-2) scaling).
        assert analysis.mature_density_at(0.5) > \
            analysis.mature_density_at(0.8)

    def test_explicit_density_overrides_mature(self, analysis):
        dirty = analysis.evaluate_node(0.5, defect_density_per_cm2=20.0)
        mature = analysis.evaluate_node(0.5)
        assert dirty.yield_value < mature.yield_value

    def test_oversized_die_raises(self):
        giant = ShrinkAnalysis(n_transistors=5e9, design_density=150.0)
        with pytest.raises(ParameterError):
            giant.evaluate_node(1.0)


class TestShrinkDecision:
    def test_moderate_shrink_pays_at_maturity(self, analysis):
        gain = analysis.shrink_gain_at_maturity(0.8, 0.5)
        assert gain > 1.0

    def test_gain_direction_validation(self, analysis):
        with pytest.raises(ParameterError):
            analysis.shrink_gain_at_maturity(0.5, 0.8)

    def test_best_node_interior_under_harsh_costs(self):
        harsh = ShrinkAnalysis(
            n_transistors=1.2e6, design_density=150.0,
            wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                      cost_growth_rate=2.4),
            mature_density_per_cm2=2.0)
        lam, cost = harsh.best_node((1.0, 0.8, 0.65, 0.5, 0.35))
        assert lam > 0.35  # smallest node is NOT optimal here
        assert cost > 0.0

    def test_best_node_skips_infeasible(self):
        big = ShrinkAnalysis(n_transistors=3e7, design_density=150.0)
        # 3.0 um die would exceed the wafer; finer nodes are feasible.
        lam, _ = big.best_node((3.0, 0.5, 0.35))
        assert lam < 3.0

    def test_best_node_requires_candidates(self, analysis):
        with pytest.raises(ParameterError):
            analysis.best_node(())


class TestLearningBreakeven:
    def test_breakeven_exists_for_fast_learner(self, analysis):
        curve = YieldLearningCurve(
            initial_density_per_cm2=8.0,
            mature_density_per_cm2=analysis.mature_density_at(0.5),
            time_constant_months=6.0)
        month = analysis.breakeven_month(0.8, 0.5, curve)
        assert month is not None
        assert 0.0 < month < 48.0

    def test_faster_learning_earlier_breakeven(self, analysis):
        floor = analysis.mature_density_at(0.5)
        slow = YieldLearningCurve(8.0, floor, 12.0)
        fast = YieldLearningCurve(8.0, floor, 3.0)
        m_slow = analysis.breakeven_month(0.8, 0.5, slow)
        m_fast = analysis.breakeven_month(0.8, 0.5, fast)
        assert m_fast is not None and m_slow is not None
        assert m_fast <= m_slow

    def test_never_breaks_even_with_dirty_floor(self, analysis):
        # Floor so dirty the shrunk node never beats the old node.
        curve = YieldLearningCurve(20.0, 15.0, 6.0)
        assert analysis.breakeven_month(0.8, 0.5, curve) is None


class TestFromProductSpec:
    def test_for_product_roundtrip(self):
        spec = PRODUCT_CATALOG[0]
        analysis = ShrinkAnalysis.for_product(spec)
        assert analysis.n_transistors == spec.n_transistors
        assert analysis.wafer.radius_cm == spec.wafer_radius_cm
        node = analysis.evaluate_node(spec.feature_size_um)
        assert node.die_area_cm2 == pytest.approx(spec.die_area_cm2)

    def test_overrides_respected(self):
        spec = PRODUCT_CATALOG[0]
        analysis = ShrinkAnalysis.for_product(
            spec, mature_density_per_cm2=0.5)
        assert analysis.mature_density_per_cm2 == 0.5
