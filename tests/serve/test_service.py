"""CostService: the thread-safe synchronous client."""

import threading

import pytest

from repro.batch.cache import BatchCache
from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.core.transistor_cost import TransistorCostModel
from repro.core.wafer_cost import WaferCostModel
from repro.geometry import Wafer
from repro.serve import CostService, FabCostQuery, ModelCostQuery
from repro.yieldsim import ReferenceAreaYield


class TestSingleQueries:
    def test_cost_matches_scalar_reference(self):
        with CostService(cache=None) as svc:
            got = svc.cost(FabCostQuery(3.1e6, 0.8))
        assert got == transistor_cost_full(3.1e6, 0.8, FIG8_FAB)

    def test_evaluate_returns_full_breakdown(self):
        with CostService(cache=None) as svc:
            served = svc.evaluate(FabCostQuery(3.1e6, 0.8))
        assert served.feasible
        assert served.dies_per_wafer >= 1
        assert served.cost_per_transistor_dollars \
            == transistor_cost_full(3.1e6, 0.8, FIG8_FAB)

    def test_infeasible_point_served_as_inf(self):
        # A die far larger than the wafer: scalar reference returns inf.
        with CostService(cache=None) as svc:
            served = svc.evaluate(FabCostQuery(1e9, 3.0))
        assert not served.feasible
        assert served.cost_per_transistor_dollars == float("inf")

    def test_model_query_matches_evaluate(self):
        model = TransistorCostModel(
            wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                      cost_growth_rate=1.8),
            wafer=Wafer(radius_cm=7.5))
        law = ReferenceAreaYield(reference_yield=0.7,
                                 reference_area_cm2=1.0)
        want = model.evaluate(n_transistors=3.1e6, feature_size_um=0.8,
                              design_density=150.0, yield_model=law)
        with CostService(cache=None) as svc:
            served = svc.evaluate(ModelCostQuery(
                3.1e6, 0.8, model=model, design_density=150.0,
                yield_model=law))
        assert served.cost_per_transistor_dollars \
            == want.cost_per_transistor_dollars
        assert served.yield_value == want.yield_value
        assert served.dies_per_wafer == want.dies_per_wafer
        assert served.wafer_cost_dollars == want.wafer_cost_dollars
        assert served.die_area_cm2 == want.die_area_cm2


class TestBulk:
    def test_map_preserves_submission_order(self):
        queries = [FabCostQuery(1e5 * (i + 1), 0.5 + 0.01 * i)
                   for i in range(40)]
        with CostService(max_batch_size=16, cache=BatchCache()) as svc:
            served = svc.map(queries)
        for query, result in zip(queries, served):
            assert result.n_transistors == query.n_transistors
            assert result.feature_size_um == query.feature_size_um
            assert result.cost_per_transistor_dollars \
                == transistor_cost_full(query.n_transistors,
                                        query.feature_size_um, FIG8_FAB)

    def test_costs_returns_floats(self):
        queries = [FabCostQuery(1e6, 0.8)] * 5
        with CostService(cache=None) as svc:
            costs = svc.costs(queries)
        assert len(costs) == 5
        assert all(isinstance(c, float) for c in costs)
        assert len(set(costs)) == 1

    def test_queue_depth_visible(self):
        svc = CostService(max_wait_s=60.0, max_batch_size=1000,
                          cache=None)
        assert svc.queue_depth == 0
        svc.close()


class TestConcurrentSubmitters:
    def test_many_threads_share_one_service(self):
        n_threads, per_thread = 8, 25
        errors = []
        with CostService(max_batch_size=64, max_wait_s=0.001,
                         cache=BatchCache()) as svc:
            def worker(tid):
                try:
                    queries = [FabCostQuery(1e5 * (tid + 1) + 997 * i,
                                            0.4 + 0.02 * (i % 10))
                               for i in range(per_thread)]
                    got = svc.costs(queries)
                    want = [transistor_cost_full(
                        q.n_transistors, q.feature_size_um, FIG8_FAB)
                        for q in queries]
                    assert got == want
                except BaseException as exc:  # surfaced on the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(tid,))
                       for tid in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors


class TestConstructorForwarding:
    def test_backend_knobs_reach_the_scheduler(self):
        svc = CostService(backend="process", workers=3,
                          process_threshold=512, adaptive=True,
                          wait_bounds=(0.0005, 0.05), flush_history=16)
        sched = svc.scheduler
        assert sched.backend == "process"
        assert sched.workers == 3
        assert sched.process_threshold == 512
        assert sched.adaptive
        assert sched.wait_bounds == (0.0005, 0.05)
        assert sched.recent_flushes == []  # history armed but empty

    def test_async_facade_forwards_the_same_knobs(self):
        from repro.serve import AsyncCostService
        svc = AsyncCostService(backend="thread", adaptive=True,
                               flush_history=4)
        assert svc.scheduler.backend == "thread"
        assert svc.scheduler.adaptive


class TestProcessBackpressure:
    def test_queue_fills_while_shm_flush_in_flight(self, monkeypatch):
        import threading as _threading

        from repro.errors import BackpressureError
        from repro.serve import ProcessBackend

        started = _threading.Event()
        release = _threading.Event()
        original = ProcessBackend.run_group

        def gated(self, exemplar, points, cache):
            started.set()
            assert release.wait(timeout=10.0)
            return original(self, exemplar, points, cache)

        monkeypatch.setattr(ProcessBackend, "run_group", gated)
        queries = [FabCostQuery(1e5 * (i + 1), 0.8) for i in range(4)]
        with CostService(backend="process", workers=2, max_batch_size=2,
                         max_queue_depth=2, max_wait_s=0.001,
                         cache=None) as svc:
            # First pair drains into a flush that parks inside the
            # (gated) shared-memory backend...
            in_flight = svc.submit_many(queries[:2])
            assert started.wait(timeout=5.0)
            # ...so the next pair refills the bounded queue, and one
            # more non-blocking submit must surface backpressure with
            # the observed depth attached.
            queued = svc.submit_many(queries[2:])
            with pytest.raises(BackpressureError) as excinfo:
                svc.submit(FabCostQuery(9e6, 0.7), timeout=0)
            assert excinfo.value.queue_depth == 2
            release.set()
            # Recovery: both waves land with correct numbers and the
            # service accepts new traffic.
            got = [t.cost(timeout=10.0) for t in in_flight + queued]
            extra = svc.cost(FabCostQuery(5e6, 0.8))
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        assert got == want
        assert extra == transistor_cost_full(5e6, 0.8, FIG8_FAB)
