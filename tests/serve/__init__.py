"""Tests for the repro.serve micro-batching cost-query service."""
