"""ShmBlock: creation, cross-mapping visibility, and the unlink contract."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.serve import ShmBlock


class TestCreation:
    def test_create_shapes_and_zeroes(self):
        block = ShmBlock.create(8, 16)
        try:
            assert block.shape == (8, 16)
            assert block.shm.size >= 8 * 16 * 8
            arr = block.array
            assert arr.dtype == np.float64
            assert arr.shape == (8, 16)
            assert np.all(arr == 0.0)
            del arr
        finally:
            block.release()

    @pytest.mark.parametrize("rows,cols", [(0, 4), (4, 0), (-1, 2), (2, -3)])
    def test_degenerate_shapes_rejected(self, rows, cols):
        with pytest.raises(ParameterError):
            ShmBlock.create(rows, cols)


class TestVisibility:
    def test_writes_visible_through_second_mapping(self):
        block = ShmBlock.create(3, 5)
        try:
            block.array[1, :] = np.arange(5.0)
            other = ShmBlock.attach(block.name, 3, 5)
            view = other.array
            assert view[1].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
            # ...and the reverse direction: attached writes reach the owner.
            view[2, 0] = 42.0
            del view
            other.close()
            assert block.array[2, 0] == 42.0
        finally:
            block.release()

    def test_int_counts_round_trip_exactly(self):
        # Die counts ride float64 rows; integers below 2**53 are exact.
        counts = np.array([0, 1, 2**40, 2**53 - 1], dtype=np.int64)
        block = ShmBlock.create(1, 4)
        try:
            block.array[0, :] = counts
            back = block.array[0, :].astype(np.int64)
            assert (back == counts).all()
        finally:
            block.release()


class TestLifecycle:
    def test_unlink_removes_the_name(self):
        block = ShmBlock.create(2, 2)
        name = block.name
        block.release()
        with pytest.raises(FileNotFoundError):
            ShmBlock.attach(name, 2, 2)

    def test_unlink_is_idempotent(self):
        block = ShmBlock.create(2, 2)
        block.release()
        block.unlink()  # second unlink swallows FileNotFoundError

    def test_attached_mapping_never_unlinks(self):
        block = ShmBlock.create(2, 2)
        try:
            other = ShmBlock.attach(block.name, 2, 2)
            other.unlink()  # non-owner: a no-op
            other.close()
            again = ShmBlock.attach(block.name, 2, 2)  # name still live
            again.close()
        finally:
            block.release()

    def test_close_tolerates_live_views(self):
        block = ShmBlock.create(2, 2)
        view = block.array  # pins the mmap buffer
        block.close()  # BufferError swallowed
        assert view.shape == (2, 2)
        del view
        block.unlink()
