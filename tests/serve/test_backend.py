"""Execution backends: parity, chunk routing, and shm leak-freedom.

The leak contract under test: every shared-memory block a
``ProcessBackend`` creates is *unlinked* by the time ``run_group``
returns — on success, on an injected worker error, and on a hard
worker crash that breaks the pool — and ``close()`` sweeps anything a
hypothetical interrupted flush left behind.
"""

import os
import warnings

import pytest

from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.serve import FabCostQuery, ProcessBackend, ThreadBackend
from repro.serve.backend import FAULT_ENV, validate_backend
from repro.serve.shm import ShmBlock
from repro.errors import ParameterError
from repro.yieldsim.parallel import ParallelExecutionWarning


def _points(k, lam=0.8):
    return [(1e5 * (i + 1), lam) for i in range(k)]


def _assert_parity(result, points):
    for slot, (n, lam) in enumerate(points):
        want = transistor_cost_full(n, lam, FIG8_FAB)
        got = result.cost(slot)
        assert got == want or (got == float("inf") and want == float("inf"))


@pytest.fixture
def track_blocks(monkeypatch):
    """Record every ShmBlock the backend creates, for leak assertions."""
    created = []
    real_create = ShmBlock.create.__func__

    class Recording(ShmBlock):
        @classmethod
        def create(cls, rows, cols):
            block = real_create(cls, rows, cols)
            created.append(block)
            return block

    monkeypatch.setattr("repro.serve.backend.ShmBlock", Recording)
    return created


def _assert_unlinked(created):
    assert created, "backend never allocated a block"
    for block in created:
        with pytest.raises(FileNotFoundError):
            ShmBlock.attach(block.name, *block.shape)


class TestValidateBackend:
    def test_known_choices_pass_through(self):
        for choice in ("auto", "thread", "process"):
            assert validate_backend(choice) == choice

    def test_unknown_choice_rejected(self):
        with pytest.raises(ParameterError):
            validate_backend("fiber")


class TestThreadBackend:
    def test_inline_parity_and_single_chunk(self):
        backend = ThreadBackend(workers=1)
        backend.start()
        try:
            points = _points(10)
            result = backend.run_group(FabCostQuery(*points[0]), points,
                                       None)
            _assert_parity(result, points)
            assert backend.n_chunks_for(10_000) == 1  # no pool, no split
        finally:
            backend.close()

    def test_pooled_parity_matches_inline(self):
        points = _points(23, lam=0.6)
        exemplar = FabCostQuery(*points[0])
        inline = ThreadBackend(workers=1)
        pooled = ThreadBackend(workers=3, chunk_size=5)
        inline.start()
        pooled.start()
        try:
            a = inline.run_group(exemplar, points, None)
            b = pooled.run_group(exemplar, points, None)
            assert a.cost_per_transistor_dollars.tolist() \
                == b.cost_per_transistor_dollars.tolist()
            assert pooled.n_chunks_for(23) == 5
        finally:
            inline.close()
            pooled.close()


class TestProcessBackend:
    def test_parity_and_no_leak_on_success(self, track_blocks):
        backend = ProcessBackend(workers=2, chunk_size=8)
        try:
            points = _points(30, lam=0.7)
            result = backend.run_group(FabCostQuery(*points[0]), points,
                                       None)
            _assert_parity(result, points)
        finally:
            backend.close()
        _assert_unlinked(track_blocks)

    def test_chunks_spread_over_workers(self):
        backend = ProcessBackend(workers=4, chunk_size=1000)
        # 10 points over 4 workers: ceil(10/4)=3 per chunk -> 4 chunks.
        assert backend.n_chunks_for(10) == 4
        # chunk_size still caps the spread for huge groups.
        assert backend.n_chunks_for(100_000) == 100

    def test_worker_error_propagates_and_unlinks(self, monkeypatch,
                                                 track_blocks):
        monkeypatch.setenv(FAULT_ENV, "raise")
        backend = ProcessBackend(workers=2)
        try:
            points = _points(6)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ParallelExecutionWarning)
                with pytest.raises(RuntimeError,
                                   match="injected serve worker fault"):
                    backend.run_group(FabCostQuery(*points[0]), points,
                                      None)
        finally:
            backend.close()
        _assert_unlinked(track_blocks)

    def test_worker_crash_falls_back_and_recovers(self, monkeypatch,
                                                  track_blocks):
        # Every pool worker hard-exits; the parent (whose pid is
        # exempt) must finish the flush in-process with correct
        # numbers, unlink the block, and replace the broken pool on
        # the next flush once the fault clears.
        monkeypatch.setenv(FAULT_ENV, f"exit:{os.getpid()}")
        backend = ProcessBackend(workers=2)
        try:
            points = _points(12, lam=0.9)
            exemplar = FabCostQuery(*points[0])
            with pytest.warns(ParallelExecutionWarning):
                result = backend.run_group(exemplar, points, None)
            _assert_parity(result, points)
            broken_pool = backend._pool
            assert getattr(broken_pool, "_broken", False)

            monkeypatch.delenv(FAULT_ENV)
            again = backend.run_group(exemplar, points, None)
            _assert_parity(again, points)
            assert backend._pool is not broken_pool
            assert not getattr(backend._pool, "_broken", False)
        finally:
            backend.close()
        _assert_unlinked(track_blocks)

    def test_close_sweeps_straggler_blocks(self):
        backend = ProcessBackend(workers=2)
        straggler = ShmBlock.create(8, 4)
        backend._live[straggler.name] = straggler
        backend.close()
        with pytest.raises(FileNotFoundError):
            ShmBlock.attach(straggler.name, 8, 4)

    def test_cache_flag_round_trip(self, track_blocks):
        # use_cache=True routes workers to their process-local default
        # cache; results stay bitwise identical to the uncached run.
        from repro.batch.cache import BatchCache
        backend = ProcessBackend(workers=2, chunk_size=4)
        try:
            points = _points(9, lam=0.65)
            exemplar = FabCostQuery(*points[0])
            cached = backend.run_group(exemplar, points, BatchCache())
            uncached = backend.run_group(exemplar, points, None)
            assert cached.cost_per_transistor_dollars.tolist() \
                == uncached.cost_per_transistor_dollars.tolist()
        finally:
            backend.close()
        _assert_unlinked(track_blocks)
