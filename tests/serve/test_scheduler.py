"""MicroBatchScheduler: ticks, coalescing, dedup, backpressure, close."""

import threading
import time

import pytest

from repro.batch.cache import BatchCache
from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.errors import (
    BackpressureError,
    ParameterError,
    ServiceClosedError,
)
from repro.serve import FabCostQuery, MicroBatchScheduler
from repro.serve.scheduler import CostTicket


def _queries(n, lam=0.8):
    return [FabCostQuery(1e5 * (i + 1), lam) for i in range(n)]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(max_batch_size=0),
        dict(max_wait_s=-0.1),
        dict(max_queue_depth=4, max_batch_size=8),
        dict(chunk_size=0),
        dict(workers=0),
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            MicroBatchScheduler(**kwargs)


class TestFlushing:
    def test_flush_on_batch_size_before_deadline(self):
        # A full batch must not wait out a (deliberately huge) tick.
        with MicroBatchScheduler(max_batch_size=8, max_wait_s=60.0,
                                 cache=None) as sched:
            tickets = [sched.submit(q) for q in _queries(8)]
            results = [t.result(timeout=5.0) for t in tickets]
        assert all(r.feasible for r in results)

    def test_flush_on_deadline_for_partial_batch(self):
        with MicroBatchScheduler(max_batch_size=1000, max_wait_s=0.005,
                                 cache=None) as sched:
            ticket = sched.submit(FabCostQuery(1e6, 0.8))
            assert ticket.result(timeout=5.0).feasible

    def test_bulk_submission_skips_the_tick(self):
        # submit_many is pre-coalesced: even with a huge max_wait and a
        # batch that never fills, the flusher drains it immediately.
        with MicroBatchScheduler(max_batch_size=1000, max_wait_s=60.0,
                                 cache=None) as sched:
            t0 = time.monotonic()
            tickets = sched.submit_many(_queries(16))
            for ticket in tickets:
                ticket.result(timeout=5.0)
            assert time.monotonic() - t0 < 5.0

    def test_results_match_scalar_reference(self):
        queries = _queries(32, lam=0.7)
        with MicroBatchScheduler(max_batch_size=8, cache=None) as sched:
            tickets = sched.submit_many(queries)
            got = [t.cost(timeout=5.0) for t in tickets]
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        assert got == want


class TestCoalescing:
    def test_duplicates_share_one_slot(self):
        query = FabCostQuery(1e6, 0.8)
        with MicroBatchScheduler(max_batch_size=64, cache=None) as sched:
            tickets = sched.submit_many([query] * 10)
            results = [t.result(timeout=5.0) for t in tickets]
        slots = {t._slot for t in tickets}
        assert slots == {0}
        assert len({r.cost_per_transistor_dollars for r in results}) == 1

    def test_mixed_signatures_split_into_groups(self):
        from repro.core.optimization import FabCharacterization
        other = FabCharacterization(
            cost_growth_rate=FIG8_FAB.cost_growth_rate,
            reference_cost_dollars=2 * FIG8_FAB.reference_cost_dollars,
            wafer_radius_cm=FIG8_FAB.wafer_radius_cm,
            design_density=FIG8_FAB.design_density,
            defect_coefficient=FIG8_FAB.defect_coefficient,
            size_exponent_p=FIG8_FAB.size_exponent_p)
        q_a = FabCostQuery(1e6, 0.8)
        q_b = FabCostQuery(1e6, 0.8, fab=other)
        with MicroBatchScheduler(max_batch_size=64, cache=None) as sched:
            ta, tb = sched.submit_many([q_a, q_b])
            cost_a = ta.cost(timeout=5.0)
            cost_b = tb.cost(timeout=5.0)
        assert cost_a == transistor_cost_full(1e6, 0.8, FIG8_FAB)
        assert cost_b == transistor_cost_full(1e6, 0.8, other)
        assert cost_a != cost_b


class TestChunkedExecution:
    def test_worker_pool_chunking_is_invisible(self):
        queries = _queries(50, lam=0.6)
        with MicroBatchScheduler(max_batch_size=64, workers=3,
                                 chunk_size=7, cache=BatchCache()) as sched:
            got = [t.cost(timeout=10.0)
                   for t in sched.submit_many(queries)]
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        assert got == want


class TestBackpressure:
    def test_nonblocking_submit_raises_when_full(self):
        sched = MicroBatchScheduler(max_batch_size=4, max_queue_depth=4,
                                    max_wait_s=60.0, cache=None)
        # Pretend the flusher is running but never drains: with
        # _started set, submit skips auto-start and the fake pending
        # entries stay put, so the queue is genuinely full.
        sched._started = True
        sched._pending = [object()] * 4
        with pytest.raises(BackpressureError):
            sched._submit_all((FabCostQuery(1e6, 0.8),), timeout=0)

    def test_partial_bulk_carries_issued_tickets(self):
        sched = MicroBatchScheduler(max_batch_size=4, max_queue_depth=4,
                                    max_wait_s=60.0, cache=None)
        sched._started = True  # see above: freeze the queue
        sched._pending = [object()] * 2
        try:
            sched._submit_all(tuple(_queries(4)), timeout=0)
        except BackpressureError as exc:
            assert len(exc.tickets) == 2
        else:  # pragma: no cover - the raise is the test
            pytest.fail("expected BackpressureError")

    def test_blocked_submit_proceeds_when_space_frees(self):
        with MicroBatchScheduler(max_batch_size=2, max_queue_depth=2,
                                 max_wait_s=0.001, cache=None) as sched:
            tickets = sched.submit_many(_queries(12), timeout=10.0)
            assert len(tickets) == 12
            for ticket in tickets:
                ticket.result(timeout=5.0)


class TestFailureFanOut:
    def test_executor_error_reaches_every_waiter(self, monkeypatch):
        boom = RuntimeError("executor exploded")

        def explode(*args, **kwargs):
            raise boom

        monkeypatch.setattr("repro.serve.backend.execute_group", explode)
        with MicroBatchScheduler(max_batch_size=4, cache=None,
                                 backend="thread") as sched:
            tickets = sched.submit_many(_queries(4))
            for ticket in tickets:
                with pytest.raises(RuntimeError, match="executor exploded"):
                    ticket.result(timeout=5.0)


class TestTickets:
    def test_result_timeout(self):
        sched = MicroBatchScheduler(cache=None)  # never started
        ticket = CostTicket(FabCostQuery(1e6, 0.8), sched, 0.0)
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)
        with pytest.raises(TimeoutError):
            ticket.cost(timeout=0.01)

    def test_done_callback_fires_after_completion(self):
        landed = threading.Event()
        with MicroBatchScheduler(max_batch_size=4, cache=None) as sched:
            ticket = sched.submit(FabCostQuery(1e6, 0.8))
            ticket.add_done_callback(lambda t: landed.set())
            ticket.result(timeout=5.0)
            assert landed.wait(timeout=5.0)

    def test_done_callback_immediate_when_already_done(self):
        with MicroBatchScheduler(max_batch_size=1, cache=None) as sched:
            ticket = sched.submit(FabCostQuery(1e6, 0.8))
            ticket.result(timeout=5.0)
            calls = []
            ticket.add_done_callback(calls.append)
            assert calls == [ticket]


class TestClose:
    def test_close_drains_pending(self):
        sched = MicroBatchScheduler(max_batch_size=1000, max_wait_s=60.0,
                                    cache=None)
        sched.start()
        ticket = sched.submit(FabCostQuery(1e6, 0.8))
        sched.close()
        assert ticket.result(timeout=0).feasible

    def test_submit_after_close_raises(self):
        sched = MicroBatchScheduler(cache=None)
        sched.start()
        sched.close()
        with pytest.raises(ServiceClosedError):
            sched.submit(FabCostQuery(1e6, 0.8))
        with pytest.raises(ServiceClosedError):
            sched.start()

    def test_close_is_idempotent(self):
        sched = MicroBatchScheduler(cache=None)
        sched.start()
        sched.close()
        sched.close()


class TestObservability:
    def test_flush_metrics_and_span(self):
        from repro import obs
        from repro.obs import state as obs_state
        prev = (obs_state.STATE.tracing, obs_state.STATE.metrics)
        obs.enable()
        try:
            with MicroBatchScheduler(max_batch_size=8, cache=None) as sched:
                query = FabCostQuery(1e6, 0.8)
                tickets = sched.submit_many([query] * 6 + _queries(2))
                for ticket in tickets:
                    ticket.result(timeout=5.0)
            snap = obs.metrics.snapshot()
            assert snap["counters"]["serve.requests"] == 8
            assert snap["counters"]["serve.flushes"] >= 1
            assert snap["counters"]["serve.dedup.duplicates"] >= 5
            assert snap["histograms"][
                "serve.request.latency_seconds"]["count"] == 8
            names = [s.name for s in obs.get_trace()]
            assert "serve.flush" in names
        finally:
            obs.disable()
            obs.clear_trace()
            obs.metrics.reset()
            (obs_state.STATE.tracing,
             obs_state.STATE.metrics) = prev


class TestNewValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(backend="fiber"),
        dict(process_threshold=0),
        dict(flush_history=-1),
        dict(wait_bounds=(0.001, 0.01)),            # requires adaptive
        dict(adaptive=True, wait_bounds=(0.01, 0.001)),  # lo > hi
        dict(adaptive=True, wait_bounds=(-0.001, 0.01)),
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            MicroBatchScheduler(**kwargs)

    def test_backend_choices_accepted(self):
        for backend in ("auto", "thread", "process"):
            sched = MicroBatchScheduler(backend=backend)  # never started
            assert sched.backend == backend


class TestAdaptiveTick:
    def test_fixed_tick_by_default(self):
        sched = MicroBatchScheduler(max_wait_s=0.004)
        assert sched.current_wait_s == 0.004
        assert sched.wait_bounds is None

    def test_default_bounds_bracket_max_wait(self):
        sched = MicroBatchScheduler(max_wait_s=0.008, adaptive=True)
        lo, hi = sched.wait_bounds
        assert lo == 0.001 and hi == 0.064
        assert lo <= sched.current_wait_s <= hi

    def test_update_has_no_opinion_on_first_flush(self):
        from repro.serve.scheduler import _AdaptiveTick
        tick = _AdaptiveTick(lo=0.001, hi=0.1, batch=100)
        assert tick.update(50, now=10.0) is None

    def test_fast_arrivals_shrink_the_window(self):
        from repro.serve.scheduler import _AdaptiveTick
        tick = _AdaptiveTick(lo=0.001, hi=0.1, batch=100)
        now = 0.0
        tick.update(10, now)
        # 10 requests every 1 ms -> rate ~1e4/s -> want 100/1e4 = 10 ms.
        for _ in range(30):
            now += 0.001
            want = tick.update(10, now)
        assert want == pytest.approx(0.01, rel=0.05)

    def test_trickle_grows_to_the_upper_bound(self):
        from repro.serve.scheduler import _AdaptiveTick
        tick = _AdaptiveTick(lo=0.001, hi=0.05, batch=100)
        now = 0.0
        tick.update(1, now)
        # 1 request per second: filling a batch would take 100 s —
        # clamped to hi.
        for _ in range(10):
            now += 1.0
            want = tick.update(1, now)
        assert want == 0.05

    def test_full_flushes_pin_to_the_lower_bound(self):
        from repro.serve.scheduler import _AdaptiveTick
        tick = _AdaptiveTick(lo=0.001, hi=0.1, batch=100)
        now = 0.0
        tick.update(100, now)
        # Saturated: every flush drains a full batch, whatever the
        # instantaneous rate estimate says.
        for _ in range(20):
            now += 0.5
            want = tick.update(100, now)
        assert tick.occupancy > tick.FULL_OCCUPANCY
        assert want == 0.001

    def test_zero_interval_is_skipped(self):
        from repro.serve.scheduler import _AdaptiveTick
        tick = _AdaptiveTick(lo=0.001, hi=0.1, batch=100)
        tick.update(10, now=5.0)
        assert tick.update(10, now=5.0) is None

    def test_adaptive_scheduler_serves_bitwise_results(self):
        queries = _queries(40)
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        with MicroBatchScheduler(max_batch_size=8, max_wait_s=0.001,
                                 adaptive=True,
                                 wait_bounds=(0.0001, 0.004),
                                 cache=None) as sched:
            tickets = [sched.submit(q) for q in queries]
            got = [t.cost(timeout=5.0) for t in tickets]
            lo, hi = sched.wait_bounds
            assert lo <= sched.current_wait_s <= hi
        assert got == want


class TestFlushHistory:
    def test_disabled_by_default(self):
        with MicroBatchScheduler(max_batch_size=4, cache=None) as sched:
            sched.submit_many(_queries(4))
            for t in sched._pending:
                pass
        assert sched.recent_flushes == []

    def test_records_flush_shapes(self):
        with MicroBatchScheduler(max_batch_size=4, max_wait_s=0.001,
                                 flush_history=8, cache=None) as sched:
            query = FabCostQuery(1e6, 0.8)
            tickets = sched.submit_many([query, query] + _queries(2))
            for ticket in tickets:
                ticket.result(timeout=5.0)
        records = sched.recent_flushes
        assert len(records) == 1
        rec = records[0]
        assert rec.requests == 4
        assert rec.unique == 3           # the duplicated point coalesced
        assert rec.groups == 1
        assert rec.wait_s == 0.001
        assert rec.duration_s > 0.0

    def test_history_is_bounded(self):
        with MicroBatchScheduler(max_batch_size=2, max_wait_s=0.001,
                                 flush_history=3, cache=None) as sched:
            tickets = sched.submit_many(_queries(16))
            for ticket in tickets:
                ticket.result(timeout=5.0)
        assert len(sched.recent_flushes) == 3


class TestBackpressureDiagnostics:
    def test_error_carries_queue_depth(self):
        sched = MicroBatchScheduler(max_batch_size=2, max_queue_depth=3,
                                    max_wait_s=60.0, cache=None)
        sched._started = True  # freeze: no flusher drains the queue
        sched._pending = [object()] * 3
        with pytest.raises(BackpressureError) as excinfo:
            sched.submit(FabCostQuery(1e6, 0.8), timeout=0)
        assert excinfo.value.queue_depth == 3
        assert excinfo.value.tickets == []


class TestBackendRouting:
    def test_explicit_process_backend_routes_everything(self):
        with MicroBatchScheduler(backend="process", workers=2,
                                 max_batch_size=4, max_wait_s=0.001,
                                 cache=None) as sched:
            assert sched._thread_backend is None
            assert sched._process_backend is not None
            assert sched._backend_for(1).name == "process"
            queries = _queries(4)
            tickets = sched.submit_many(queries)
            got = [t.cost(timeout=10.0) for t in tickets]
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        assert got == want

    def test_auto_routes_by_group_size(self):
        with MicroBatchScheduler(backend="auto", workers=2,
                                 process_threshold=10,
                                 cache=None) as sched:
            assert sched._backend_for(9).name == "thread"
            assert sched._backend_for(10).name == "process"

    def test_auto_single_worker_never_uses_processes(self):
        with MicroBatchScheduler(backend="auto", workers=1,
                                 process_threshold=2,
                                 cache=None) as sched:
            assert sched._process_backend is None
            assert sched._backend_for(10_000).name == "thread"


class TestFlushHistoryDetail:
    def test_ring_evicts_oldest_flush_ids(self):
        with MicroBatchScheduler(max_batch_size=2, max_wait_s=0.001,
                                 flush_history=3, cache=None) as sched:
            for t in sched.submit_many(_queries(16)):
                t.result(timeout=5.0)
        records = sched.recent_flushes
        assert len(records) == 3
        ids = [r.flush_id for r in records]
        # 16 queries / batch 2 = 8 flushes; the ring keeps the last 3,
        # in order.
        assert ids == [6, 7, 8]

    def test_group_records_carry_signature_detail(self):
        from repro.serve.tuning import signature_key
        query = FabCostQuery(1e6, 0.8)
        with MicroBatchScheduler(max_batch_size=8, flush_history=4,
                                 backend="thread",
                                 cache=None) as sched:
            tickets = sched.submit_many([query, query] + _queries(2))
            for t in tickets:
                t.result(timeout=5.0)
        (rec,) = sched.recent_flushes
        (group,) = rec.group_records
        assert group.sig_key == signature_key(query.signature())
        assert group.points == 3        # the duplicate coalesced
        assert group.requests == 4
        assert group.backend == "thread"
        assert group.duration_s > 0.0

    def test_no_detail_without_history_or_recorder(self):
        with MicroBatchScheduler(max_batch_size=4, cache=None) as sched:
            for t in sched.submit_many(_queries(4)):
                t.result(timeout=5.0)
        assert sched.recent_flushes == []

    def test_concurrent_readers_see_consistent_snapshots(self):
        stop = threading.Event()
        errors = []

        def read_loop(sched):
            while not stop.is_set():
                try:
                    for rec in sched.recent_flushes:
                        assert rec.requests >= rec.unique
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        with MicroBatchScheduler(max_batch_size=2, max_wait_s=0.0,
                                 flush_history=4, cache=None) as sched:
            readers = [threading.Thread(target=read_loop, args=(sched,))
                       for _ in range(2)]
            for r in readers:
                r.start()
            try:
                for _ in range(30):
                    for t in sched.submit_many(_queries(4)):
                        t.result(timeout=5.0)
            finally:
                stop.set()
                for r in readers:
                    r.join(timeout=5.0)
        assert errors == []


class TestTunedBackend:
    def _profile(self, key, threshold):
        from repro.serve.tuning import SignatureTuning, TuningProfile
        return TuningProfile(
            default_process_threshold=1_000_000,
            signatures={key: SignatureTuning(process_threshold=threshold)})

    def test_tuned_requires_profile(self):
        with pytest.raises(ParameterError, match="profile"):
            MicroBatchScheduler(backend="tuned")

    def test_profile_rejected_on_other_backends(self):
        profile = self._profile("abc", 10)
        for backend in ("auto", "thread", "process"):
            with pytest.raises(ParameterError, match="tuned"):
                MicroBatchScheduler(backend=backend, profile=profile)

    def test_tuned_routes_per_signature(self):
        from repro.serve.tuning import signature_key
        query = FabCostQuery(1e6, 0.8)
        key = signature_key(query.signature())
        profile = self._profile(key, threshold=5)
        with MicroBatchScheduler(backend="tuned", workers=2,
                                 profile=profile, cache=None) as sched:
            # The tuned pool is lazy, like auto: force-start it so
            # _backend_for has a process backend to route to.
            assert sched._process_backend is not None
            assert sched._backend_for(4, key).name == "thread"
            assert sched._backend_for(5, key).name == "process"
            # Unknown signatures fall back to the profile default.
            assert sched._backend_for(5, "unknown").name == "thread"
            assert sched._backend_for(1_000_000, "unknown").name == "process"

    def test_tuned_loads_profile_from_path(self, tmp_path):
        profile = self._profile("abc", 10)
        path = profile.save(tmp_path / "profile.json")
        with MicroBatchScheduler(backend="tuned", profile=path,
                                 cache=None) as sched:
            assert sched.profile.signatures["abc"].process_threshold == 10

    def test_tuned_serves_bitwise_results(self):
        queries = _queries(24, lam=0.7)
        query = queries[0]
        from repro.serve.tuning import signature_key
        profile = self._profile(signature_key(query.signature()),
                                threshold=4)
        with MicroBatchScheduler(backend="tuned", workers=2,
                                 max_batch_size=8, profile=profile,
                                 cache=None) as sched:
            got = [t.cost(timeout=10.0)
                   for t in sched.submit_many(queries)]
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        assert got == want
