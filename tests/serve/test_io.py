"""Point-file loading and served-result serialization."""

import json
import math

import pytest

from repro.errors import ParameterError
from repro.serve import (
    RESULT_FIELDS,
    ServedCost,
    format_served_csv,
    format_served_json,
    load_points,
)


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLoadPoints:
    def test_csv_with_aliases_and_blanks(self, tmp_path):
        path = _write(tmp_path, "points.csv",
                      "n_transistors,feature_size,density,yield0\n"
                      "3.1e6,0.8,150,\n"
                      "1e6,0.5,,0.8\n")
        points = load_points(path)
        assert points == [
            {"transistors": 3.1e6, "feature_size": 0.8, "density": 150.0},
            {"transistors": 1e6, "feature_size": 0.5, "yield0": 0.8},
        ]

    def test_json_list_of_objects(self, tmp_path):
        path = _write(tmp_path, "points.json", json.dumps(
            [{"transistors": 1e6, "feature_size_um": 0.8}]))
        assert load_points(path) == [
            {"transistors": 1e6, "feature_size": 0.8}]

    def test_json_columnar(self, tmp_path):
        path = _write(tmp_path, "points.json", json.dumps(
            {"transistors": [1e6, 2e6], "feature_size": [0.8, 0.5]}))
        assert load_points(path) == [
            {"transistors": 1e6, "feature_size": 0.8},
            {"transistors": 2e6, "feature_size": 0.5},
        ]

    def test_json_columnar_unequal_lengths_rejected(self, tmp_path):
        path = _write(tmp_path, "points.json", json.dumps(
            {"transistors": [1e6, 2e6], "feature_size": [0.8]}))
        with pytest.raises(ParameterError, match="equal-length"):
            load_points(path)

    def test_unknown_field_rejected_loudly(self, tmp_path):
        path = _write(tmp_path, "points.csv",
                      "transistors,feature_sise\n1e6,0.8\n")
        with pytest.raises(ParameterError, match="feature_sise"):
            load_points(path)

    def test_non_numeric_value_rejected(self, tmp_path):
        path = _write(tmp_path, "points.csv",
                      "transistors,feature_size\nmany,0.8\n")
        with pytest.raises(ParameterError, match="non-numeric"):
            load_points(path)

    def test_empty_record_rejected(self, tmp_path):
        path = _write(tmp_path, "points.csv",
                      "transistors,feature_size\n,\n")
        with pytest.raises(ParameterError, match="empty point"):
            load_points(path)

    def test_missing_file_and_bad_suffix(self, tmp_path):
        with pytest.raises(ParameterError, match="not found"):
            load_points(tmp_path / "absent.csv")
        path = _write(tmp_path, "points.txt", "transistors\n1e6\n")
        with pytest.raises(ParameterError, match="unsupported"):
            load_points(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = _write(tmp_path, "points.json", "{not json")
        with pytest.raises(ParameterError, match="invalid JSON"):
            load_points(path)


def _served(cost=1.4e-5, feasible=True):
    return ServedCost(
        n_transistors=1e6, feature_size_um=0.8, wafer_cost_dollars=700.0,
        die_area_cm2=1.2, dies_per_wafer=80, yield_value=0.6,
        cost_per_transistor_dollars=cost, feasible=feasible)


class TestFormatting:
    def test_csv_header_and_rows(self):
        text = format_served_csv([_served(), _served(math.inf, False)])
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(RESULT_FIELDS)
        assert len(lines) == 3
        assert lines[1].endswith(",True")
        assert lines[2].endswith(",False")
        assert "inf" in lines[2]

    def test_json_is_columnar_and_parses(self):
        text = format_served_json([_served(), _served()])
        columns = json.loads(text.replace("Infinity", "1e308"))
        assert set(columns) == set(RESULT_FIELDS)
        assert columns["dies_per_wafer"] == [80, 80]
        assert columns["feasible"] == [True, True]
