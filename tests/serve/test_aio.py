"""AsyncCostService: the asyncio front-end over the shared scheduler."""

import asyncio

import pytest

from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.errors import BackpressureError
from repro.serve import AsyncCostService, CostService, FabCostQuery


class TestAsyncQueries:
    def test_cost_matches_scalar_reference(self):
        async def run():
            async with AsyncCostService(cache=None) as svc:
                return await svc.cost(FabCostQuery(3.1e6, 0.8))

        got = asyncio.run(run())
        assert got == transistor_cost_full(3.1e6, 0.8, FIG8_FAB)

    def test_gathered_queries_coalesce_and_match(self):
        queries = [FabCostQuery(2e5 * (i + 1), 0.5 + 0.01 * i)
                   for i in range(30)]

        async def run():
            async with AsyncCostService(max_batch_size=64,
                                        max_wait_s=0.002,
                                        cache=None) as svc:
                return await asyncio.gather(
                    *(svc.cost(q) for q in queries))

        got = asyncio.run(run())
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        assert got == want

    def test_map_preserves_order(self):
        queries = [FabCostQuery(1e6, 0.8), FabCostQuery(2e6, 0.6),
                   FabCostQuery(3e6, 0.4)]

        async def run():
            async with AsyncCostService(cache=None) as svc:
                return await svc.map(queries)

        served = asyncio.run(run())
        assert [s.n_transistors for s in served] \
            == [q.n_transistors for q in queries]

    def test_evaluate_returns_served_breakdown(self):
        async def run():
            async with AsyncCostService(cache=None) as svc:
                return await svc.evaluate(FabCostQuery(3.1e6, 0.8))

        served = asyncio.run(run())
        assert served.feasible
        assert served.cost_per_transistor_dollars \
            == transistor_cost_full(3.1e6, 0.8, FIG8_FAB)


class TestSharedScheduler:
    def test_wrapping_shares_the_sync_scheduler(self):
        svc = CostService(cache=None).start()
        try:
            async_svc = AsyncCostService(service=svc)
            assert async_svc.scheduler is svc.scheduler

            async def run():
                async with async_svc:
                    return await async_svc.cost(FabCostQuery(1e6, 0.8))

            got = asyncio.run(run())
            # The wrapped service is still open and usable afterwards.
            assert svc.cost(FabCostQuery(1e6, 0.8)) == got
        finally:
            svc.close()


class TestAsyncBackpressure:
    def test_zero_timeout_surfaces_backpressure(self):
        svc = CostService(max_queue_depth=2, max_batch_size=2,
                          max_wait_s=60.0, cache=None)
        sched = svc.scheduler
        sched._started = True  # freeze the queue: nothing drains it
        sched._pending = [object()] * 2

        async def run():
            async_svc = AsyncCostService(service=svc)
            with pytest.raises(BackpressureError):
                await async_svc.submit(FabCostQuery(1e6, 0.8), timeout=0)

        asyncio.run(run())


class TestSubmitBulk:
    def test_ordering_and_bitwise_parity(self):
        # Deliberately unsorted, with duplicates, across two signatures
        # (two distinct fabs) — the bulk path coalesces and dedups, but
        # results must come back in submission order, bitwise equal to
        # the scalar reference.
        import dataclasses

        from repro.serve import scalar_reference_cost
        other_fab = dataclasses.replace(FIG8_FAB, cost_growth_rate=2.0)
        queries = []
        for i in range(40):
            fab = FIG8_FAB if i % 3 else other_fab
            queries.append(FabCostQuery(1e5 * (1 + i % 7),
                                        0.4 + 0.05 * (i % 5), fab))
        queries += queries[:5]  # duplicates dedup within the flush

        async def run():
            async with AsyncCostService(max_batch_size=1000,
                                        max_wait_s=60.0,  # bulk skips tick
                                        cache=None) as svc:
                return await svc.map_bulk(queries)

        served = asyncio.run(run())
        assert [(s.n_transistors, s.feature_size_um) for s in served] \
            == [q.point() for q in queries]
        assert [s.cost_per_transistor_dollars for s in served] \
            == [scalar_reference_cost(q) for q in queries]

    def test_bulk_is_one_flush(self):
        # submit_bulk enters the queue in one submit_many call and the
        # whole request drains as one flush — no per-point tick waits.
        queries = [FabCostQuery(2e5 * (i + 1), 0.6) for i in range(32)]

        async def run():
            async with AsyncCostService(max_batch_size=1000,
                                        max_wait_s=60.0,
                                        flush_history=8,
                                        cache=None) as svc:
                await svc.map_bulk(queries)
                scheduler = svc.scheduler
            # Read history only after close: the tickets resolve before
            # the flusher appends its FlushRecord, so an immediate read
            # races with the history append.
            return scheduler.recent_flushes

        flushes = asyncio.run(run())
        assert len(flushes) == 1
        assert flushes[0].requests == len(queries)

    def test_empty_bulk(self):
        async def run():
            async with AsyncCostService(cache=None) as svc:
                return await svc.map_bulk([])

        assert asyncio.run(run()) == []

    def test_costs_bulk_matches_map_bulk(self):
        queries = [FabCostQuery(1e6, 0.8), FabCostQuery(2e6, 0.5)]

        async def run():
            async with AsyncCostService(cache=None) as svc:
                costs = await svc.costs_bulk(queries)
                served = await svc.map_bulk(queries)
                return costs, served

        costs, served = asyncio.run(run())
        assert costs == [s.cost_per_transistor_dollars for s in served]

    def test_zero_timeout_surfaces_backpressure(self):
        svc = CostService(max_queue_depth=2, max_batch_size=2,
                          max_wait_s=60.0, cache=None)
        sched = svc.scheduler
        sched._started = True  # freeze the queue: nothing drains it
        sched._pending = [object()] * 2

        async def run():
            async_svc = AsyncCostService(service=svc)
            with pytest.raises(BackpressureError):
                await async_svc.submit_bulk(
                    [FabCostQuery(1e6, 0.8)], timeout=0)

        asyncio.run(run())


class TestCancellation:
    def test_cancelled_waiter_neither_leaks_nor_wedges(self):
        # A caller that gives up (asyncio.wait_for timeout) cancels its
        # future while the ticket is still pending.  The scheduler must
        # still complete the ticket (no leak in the flush loop), the
        # cancelled future must stay cancelled (no InvalidStateError on
        # the loop), and the service must keep serving afterwards.
        async def run():
            async with AsyncCostService(max_batch_size=1000,
                                        max_wait_s=0.2,
                                        cache=None) as svc:
                with pytest.raises(asyncio.TimeoutError):
                    # The tick (200 ms) far exceeds the caller's
                    # patience (5 ms): the wait is cancelled mid-flight.
                    await asyncio.wait_for(
                        svc.evaluate(FabCostQuery(1e6, 0.8)),
                        timeout=0.005)
                # The flush loop is alive: later traffic is served.
                got = await asyncio.wait_for(
                    svc.cost(FabCostQuery(2e6, 0.6)), timeout=10.0)
                # ...and the abandoned ticket was flushed, not leaked.
                assert svc.scheduler.queue_depth == 0
                return got

        got = asyncio.run(run())
        assert got == transistor_cost_full(2e6, 0.6, FIG8_FAB)

    def test_many_cancelled_waiters_then_bulk_traffic(self):
        queries = [FabCostQuery(1e5 * (i + 1), 0.8) for i in range(20)]

        async def run():
            async with AsyncCostService(max_batch_size=1000,
                                        max_wait_s=0.2,
                                        cache=None) as svc:
                futures = [await svc.submit(q) for q in queries]
                for future in futures:
                    future.cancel()
                # The cancelled wave must not poison the next one.
                return await asyncio.wait_for(svc.map(queries),
                                              timeout=10.0)

        served = asyncio.run(run())
        want = [transistor_cost_full(q.n_transistors, q.feature_size_um,
                                     FIG8_FAB) for q in queries]
        assert [s.cost_per_transistor_dollars for s in served] == want
