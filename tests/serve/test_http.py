"""The HTTP front-end: parser, endpoints, backpressure, drain."""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.errors import ParameterError
from repro.obs.recording import load_recorded_log, query_to_record
from repro.serve import (
    AsyncCostService,
    CostService,
    FabCostQuery,
    scalar_reference_cost,
)
from repro.serve.http import (
    CostHttpServer,
    HttpParseError,
    HttpRequest,
    RequestParser,
    ServerThread,
    point_to_query,
)


def _request_bytes(method: str, target: str, body: str = "", *,
                   headers: dict[str, str] | None = None) -> bytes:
    raw = body.encode()
    lines = [f"{method} {target} HTTP/1.1", "host: t"]
    if raw or method == "POST":
        lines.append(f"content-length: {len(raw)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return "\r\n".join(lines).encode() + b"\r\n\r\n" + raw


def _read_response(sock: socket.socket,
                   buf: bytearray | None = None
                   ) -> tuple[int, dict[str, str], bytes]:
    """Parse one response; ``buf`` carries pipelined leftovers between
    calls on the same socket (pass the same bytearray each time)."""
    if buf is None:
        buf = bytearray()
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError(f"EOF mid-headers: {bytes(buf)!r}")
        buf += chunk
    head, _, rest = bytes(buf).partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("EOF mid-body")
        rest += chunk
    buf[:] = rest[length:]
    return status, headers, rest[:length]


def _http(port: int, method: str, target: str, body: str = ""
          ) -> tuple[int, dict[str, str], bytes]:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(_request_bytes(method, target, body))
        return _read_response(sock)


class TestRequestParser:
    PIPELINED = (
        _request_bytes("POST", "/v1/cost", '{"a": 1}') +
        _request_bytes("GET", "/healthz") +
        _request_bytes("POST", "/v1/cost/bulk", '{"b": [2, 3]}')
    )

    def test_single_request_roundtrip(self):
        [req] = RequestParser().feed(
            _request_bytes("POST", "/v1/cost", '{"x": 1}'))
        assert (req.method, req.target, req.version) \
            == ("POST", "/v1/cost", "HTTP/1.1")
        assert req.body == b'{"x": 1}'
        assert req.keep_alive

    def test_pipelined_batch_in_one_feed(self):
        requests = RequestParser().feed(self.PIPELINED)
        assert [(r.method, r.target) for r in requests] == [
            ("POST", "/v1/cost"), ("GET", "/healthz"),
            ("POST", "/v1/cost/bulk")]
        assert requests[2].body == b'{"b": [2, 3]}'

    def test_torn_reads_byte_at_a_time(self):
        # The degenerate TCP segmentation: every byte its own read.
        # The parser must produce the same three requests, each
        # completing exactly at its final byte.
        parser = RequestParser()
        requests = []
        for i in range(len(self.PIPELINED)):
            got = parser.feed(self.PIPELINED[i:i + 1])
            requests.extend(got)
        assert [(r.method, r.target, r.body) for r in requests] == [
            ("POST", "/v1/cost", b'{"a": 1}'),
            ("GET", "/healthz", b""),
            ("POST", "/v1/cost/bulk", b'{"b": [2, 3]}')]

    def test_torn_at_every_split_point(self):
        # Cut one request at every possible byte boundary: the first
        # feed never yields, the second always yields exactly it.
        raw = _request_bytes("POST", "/v1/cost", '{"x": 42}')
        for cut in range(1, len(raw)):
            parser = RequestParser()
            first = parser.feed(raw[:cut])
            second = parser.feed(raw[cut:])
            assert first == []
            assert len(second) == 1 and second[0].body == b'{"x": 42}'

    def test_connection_close_header(self):
        [req] = RequestParser().feed(_request_bytes(
            "GET", "/healthz", headers={"connection": "close"}))
        assert not req.keep_alive

    def test_http10_defaults_to_close(self):
        [req] = RequestParser().feed(
            b"GET /healthz HTTP/1.0\r\n\r\n")
        assert not req.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(HttpParseError):
            RequestParser().feed(b"NONSENSE\r\n\r\n")

    def test_unsupported_version(self):
        with pytest.raises(HttpParseError) as err:
            RequestParser().feed(b"GET / HTTP/2.0\r\n\r\n")
        assert err.value.status == 505

    def test_transfer_encoding_rejected(self):
        with pytest.raises(HttpParseError) as err:
            RequestParser().feed(
                b"POST /v1/cost HTTP/1.1\r\n"
                b"transfer-encoding: chunked\r\n\r\n")
        assert err.value.status == 501

    def test_bad_content_length(self):
        with pytest.raises(HttpParseError):
            RequestParser().feed(
                b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n")

    def test_oversized_header_block(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as err:
            parser.feed(b"GET / HTTP/1.1\r\nx: " + b"a" * 70_000)
        assert err.value.status == 431

    def test_oversized_body_rejected_before_buffering(self):
        with pytest.raises(HttpParseError) as err:
            RequestParser().feed(
                b"POST / HTTP/1.1\r\ncontent-length: 9000000\r\n\r\n")
        assert err.value.status == 413


class TestEndpoints:
    @pytest.fixture(scope="class")
    def server(self):
        with ServerThread(cache=None) as srv:
            yield srv

    def test_cost_recorded_query_payload_bitwise(self, server):
        query = FabCostQuery(3.1e6, 0.8)
        status, _, body = _http(
            server.port, "POST", "/v1/cost",
            json.dumps({"q": query_to_record(query)}))
        assert status == 200
        result = json.loads(body)
        assert result["cost_per_transistor_dollars"] \
            == transistor_cost_full(3.1e6, 0.8, FIG8_FAB)
        assert result["feasible"] is True

    def test_cost_point_fields_use_server_defaults(self, server):
        status, _, body = _http(
            server.port, "POST", "/v1/cost",
            json.dumps({"transistors": 2e6, "feature_size": 0.7}))
        assert status == 200
        want = scalar_reference_cost(point_to_query(
            {"transistors": 2e6, "feature_size": 0.7}))
        assert json.loads(body)["cost_per_transistor_dollars"] == want

    def test_bulk_queries_columnar_response(self, server):
        queries = [FabCostQuery(1e5 * (i + 1), 0.4 + 0.1 * i)
                   for i in range(6)]
        status, _, body = _http(
            server.port, "POST", "/v1/cost/bulk",
            json.dumps({"queries": [query_to_record(q) for q in queries]}))
        assert status == 200
        columns = json.loads(body)
        assert columns["cost_per_transistor_dollars"] \
            == [scalar_reference_cost(q) for q in queries]
        assert columns["n_transistors"] \
            == [q.n_transistors for q in queries]

    def test_bulk_points_list_and_columnar(self, server):
        rows = json.dumps({"points": [
            {"transistors": 1e6, "feature_size": 0.8},
            {"transistors": 2e6, "feature_size": 0.6}]})
        cols = json.dumps({"points": {
            "transistors": [1e6, 2e6], "feature_size": [0.8, 0.6]}})
        _, _, body_rows = _http(server.port, "POST", "/v1/cost/bulk", rows)
        _, _, body_cols = _http(server.port, "POST", "/v1/cost/bulk", cols)
        assert json.loads(body_rows) == json.loads(body_cols)

    def test_optimize_single_area(self, server):
        from repro.core.optimization import optimal_feature_size_for_die_area
        status, _, body = _http(server.port, "POST", "/v1/optimize",
                                json.dumps({"die_area": 1.0}))
        assert status == 200
        got = json.loads(body)
        lam, cost = optimal_feature_size_for_die_area(1.0)
        assert got["optimal_feature_size_um"] == lam
        assert got["cost_per_transistor_dollars"] == cost

    def test_healthz(self, server):
        status, _, body = _http(server.port, "GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0

    def test_metrics_snapshot_shape(self, server):
        status, _, body = _http(server.port, "GET", "/metrics")
        assert status == 200
        snapshot = json.loads(body)
        assert set(snapshot) >= {"counters", "gauges", "histograms"}

    def test_unknown_route_404(self, server):
        status, _, body = _http(server.port, "GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"] == "bad_request"

    def test_wrong_method_405(self, server):
        status, _, _ = _http(server.port, "GET", "/v1/cost")
        assert status == 405

    def test_invalid_json_400(self, server):
        status, _, body = _http(server.port, "POST", "/v1/cost",
                                "{not json")
        assert status == 400
        assert json.loads(body)["error"] == "bad_request"

    def test_unknown_point_field_400(self, server):
        status, _, body = _http(
            server.port, "POST", "/v1/cost",
            json.dumps({"transistors": 1e6, "feature_siez": 0.8}))
        assert status == 400
        assert "feature_siez" in json.loads(body)["message"]

    def test_parse_error_closes_connection(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            sock.sendall(b"GET / HTTP/2.0\r\n\r\n")
            status, headers, _ = _read_response(sock)
            assert status == 505
            assert headers["connection"] == "close"
            assert sock.recv(1) == b""  # server closed its end

    def test_keepalive_serial_requests_on_one_connection(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            for n in (1e6, 2e6, 3e6):
                sock.sendall(_request_bytes(
                    "POST", "/v1/cost",
                    json.dumps({"q": query_to_record(
                        FabCostQuery(n, 0.8))})))
                status, headers, body = _read_response(sock)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert json.loads(body)["cost_per_transistor_dollars"] \
                    == transistor_cost_full(n, 0.8, FIG8_FAB)

    def test_pipelined_requests_answered_in_order(self, server):
        # Three requests written back-to-back before reading anything;
        # responses must come back in request order with the right
        # costs (the server dispatches them concurrently under the
        # hood so they share a flush).
        counts = [1e6, 2e6, 3e6]
        burst = b"".join(_request_bytes(
            "POST", "/v1/cost",
            json.dumps({"q": query_to_record(FabCostQuery(n, 0.8))}))
            for n in counts)
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            sock.sendall(burst)
            leftovers = bytearray()
            for n in counts:
                status, _, body = _read_response(sock, leftovers)
                assert status == 200
                assert json.loads(body)["n_transistors"] == n


class TestBackpressure:
    def _frozen_server(self) -> CostHttpServer:
        # A queue that is full and never drains: submits with the
        # server's zero timeout must 429 immediately.
        svc = CostService(max_queue_depth=2, max_batch_size=2,
                          max_wait_s=60.0, cache=None)
        svc.scheduler._started = True
        svc.scheduler._pending = [object()] * 2
        return CostHttpServer(service=AsyncCostService(service=svc))

    def test_cost_429_with_retry_after(self):
        server = self._frozen_server()
        request = HttpRequest(
            "POST", "/v1/cost", "HTTP/1.1", {},
            json.dumps({"q": query_to_record(
                FabCostQuery(1e6, 0.8))}).encode())
        status, body, headers = asyncio.run(server._handle(request))
        assert status == 429
        assert body["error"] == "backpressure"
        assert body["queue_depth"] == 2
        assert float(headers["retry-after"]) == body["retry_after_s"]

    def test_bulk_429(self):
        server = self._frozen_server()
        request = HttpRequest(
            "POST", "/v1/cost/bulk", "HTTP/1.1", {},
            json.dumps({"queries": [query_to_record(
                FabCostQuery(1e6, 0.8))]}).encode())
        status, body, _ = asyncio.run(server._handle(request))
        assert status == 429
        assert body["error"] == "backpressure"


class TestGracefulDrain:
    def test_drain_completes_inflight_rejects_new_and_records(self, tmp_path):
        log = tmp_path / "traffic.jsonl"
        # A long tick (no flush for 500 ms) holds the first request
        # in flight while the drain starts around it.
        with ServerThread(record=log, max_wait_s=0.5,
                          max_batch_size=1000, cache=None) as srv:
            slow = socket.create_connection(("127.0.0.1", srv.port),
                                            timeout=30)
            slow.sendall(_request_bytes(
                "POST", "/v1/cost",
                json.dumps({"q": query_to_record(
                    FabCostQuery(3.1e6, 0.8))})))
            time.sleep(0.1)  # request is parsed and awaiting its flush

            assert srv.server is not None and srv._loop is not None
            drain_future = asyncio.run_coroutine_threadsafe(
                srv.server.drain(), srv._loop)
            time.sleep(0.05)  # drain is now waiting on in-flight work

            # A request arriving during the drain gets a clean 503.
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=30) as late:
                late.sendall(_request_bytes("GET", "/healthz"))
                status, headers, body = _read_response(late)
                assert status == 503
                assert json.loads(body)["error"] == "service_closed"
                assert headers["connection"] == "close"

            # The in-flight request still completes, bitwise correct.
            status, _, body = _read_response(slow)
            assert status == 200
            assert json.loads(body)["cost_per_transistor_dollars"] \
                == transistor_cost_full(3.1e6, 0.8, FIG8_FAB)
            slow.close()

            drain_future.result(timeout=30)
            # After the drain the listener is gone: connection refused.
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", srv.port),
                                         timeout=5)

        # The in-flight query landed in the recorded log with its cost.
        recorded = load_recorded_log(log)
        assert len(recorded.records) == 1
        assert recorded.records[0].cost \
            == transistor_cost_full(3.1e6, 0.8, FIG8_FAB)

    def test_drain_is_idempotent_and_server_thread_exits(self):
        srv = ServerThread(cache=None)
        with srv:
            srv.drain()
            srv.drain()  # second drain: immediate no-op
        assert srv._thread is not None
        assert not srv._thread.is_alive()


class TestServerConstruction:
    def test_service_conflicts_with_scheduler_kwargs(self):
        svc = AsyncCostService(cache=None)
        with pytest.raises(ParameterError):
            CostHttpServer(service=svc, max_batch_size=8)

    def test_point_to_query_rejects_optimize_fields(self):
        with pytest.raises(ParameterError):
            point_to_query({"die_area": 1.0})
        with pytest.raises(ParameterError):
            point_to_query({"transistors": 1e6})  # missing feature_size
