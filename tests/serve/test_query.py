"""Query/result types: validation, signatures, dedup coordinates."""

import math

import pytest

from repro.core.optimization import FIG8_FAB, FabCharacterization
from repro.core.transistor_cost import TransistorCostModel
from repro.core.wafer_cost import WaferCostModel
from repro.errors import ParameterError
from repro.geometry import Wafer
from repro.serve import FabCostQuery, ModelCostQuery, ServedCost
from repro.yieldsim import (
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    MixtureYieldModel,
    PoissonYield,
    ReferenceAreaYield,
)


def _model(**kwargs):
    return TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                  cost_growth_rate=1.8),
        wafer=Wafer(radius_cm=7.5), **kwargs)


class TestServedCost:
    def _served(self, **overrides):
        base = dict(n_transistors=1e6, feature_size_um=0.8,
                    wafer_cost_dollars=700.0, die_area_cm2=1.0,
                    dies_per_wafer=100, yield_value=0.5,
                    cost_per_transistor_dollars=1.4e-5, feasible=True)
        base.update(overrides)
        return ServedCost(**base)

    def test_derived_units(self):
        served = self._served()
        assert served.cost_per_transistor_microdollars == 14.0
        assert served.good_dies_per_wafer == 50.0
        assert served.cost_per_good_die_dollars == 700.0 / 50.0

    def test_infeasible_good_die_cost_is_inf(self):
        served = self._served(dies_per_wafer=0, feasible=False,
                              cost_per_transistor_dollars=math.inf)
        assert served.cost_per_good_die_dollars == math.inf
        assert served.cost_per_transistor_microdollars == math.inf


class TestFabCostQuery:
    def test_defaults_to_fig8_fab(self):
        assert FabCostQuery(1e6, 0.8).fab is FIG8_FAB

    @pytest.mark.parametrize("kwargs", [
        dict(n_transistors=0.0, feature_size_um=0.8),
        dict(n_transistors=1e6, feature_size_um=-1.0),
    ])
    def test_rejects_nonpositive_point(self, kwargs):
        with pytest.raises(ParameterError):
            FabCostQuery(**kwargs)

    def test_rejects_non_fab(self):
        with pytest.raises(ParameterError):
            FabCostQuery(1e6, 0.8, fab="not a fab")

    def test_signature_shared_across_points(self):
        a = FabCostQuery(1e6, 0.8)
        b = FabCostQuery(2e6, 0.5)
        assert a.signature() == b.signature()
        assert a.point() != b.point()

    def test_signature_distinguishes_fabs(self):
        other = FabCharacterization(
            cost_growth_rate=FIG8_FAB.cost_growth_rate,
            reference_cost_dollars=FIG8_FAB.reference_cost_dollars + 1.0,
            wafer_radius_cm=FIG8_FAB.wafer_radius_cm,
            design_density=FIG8_FAB.design_density,
            defect_coefficient=FIG8_FAB.defect_coefficient,
            size_exponent_p=FIG8_FAB.size_exponent_p)
        assert FabCostQuery(1e6, 0.8).signature() \
            != FabCostQuery(1e6, 0.8, fab=other).signature()

    def test_signature_is_memoized(self):
        query = FabCostQuery(1e6, 0.8)
        assert query.signature() is query.signature()


class TestModelCostQuery:
    def test_requires_exactly_one_yield_spec(self):
        model = _model()
        with pytest.raises(ParameterError, match="exactly one"):
            ModelCostQuery(1e6, 0.8, model=model, design_density=150.0)
        with pytest.raises(ParameterError, match="exactly one"):
            ModelCostQuery(1e6, 0.8, model=model, design_density=150.0,
                           yield_value=0.7,
                           yield_model=ReferenceAreaYield(0.7, 1.0))

    def test_non_refarea_model_needs_density(self):
        with pytest.raises(ParameterError, match="defect_density"):
            ModelCostQuery(1e6, 0.8, model=_model(), design_density=150.0,
                           yield_model=PoissonYield())

    def test_rejects_bad_model(self):
        with pytest.raises(ParameterError, match="TransistorCostModel"):
            ModelCostQuery(1e6, 0.8, model=object(), design_density=150.0,
                           yield_value=0.7)

    def test_signature_distinguishes_yield_specs(self):
        model = _model()
        base = dict(model=model, design_density=150.0)
        by_value = ModelCostQuery(1e6, 0.8, yield_value=0.7, **base)
        by_law = ModelCostQuery(
            1e6, 0.8, yield_model=ReferenceAreaYield(0.7, 1.0), **base)
        by_density = ModelCostQuery(
            1e6, 0.8, yield_model=PoissonYield(),
            defect_density_per_cm2=0.5, **base)
        sigs = {by_value.signature(), by_law.signature(),
                by_density.signature()}
        assert len(sigs) == 3

    def test_equal_specs_coalesce(self):
        model = _model()
        a = ModelCostQuery(1e6, 0.8, model=model, design_density=150.0,
                           yield_value=0.7)
        b = ModelCostQuery(5e6, 1.2, model=model, design_density=150.0,
                           yield_value=0.7)
        assert a.signature() == b.signature()

    def test_hierarchical_models_coalesce_by_value(self):
        # The compound family is frozen/hashable, so two separately
        # constructed but equal models must share one signature — the
        # scheduler batches their points into one kernel call.
        model = _model()
        base = dict(model=model, design_density=150.0,
                    defect_density_per_cm2=0.5)
        a = ModelCostQuery(
            1e6, 0.8, yield_model=HierarchicalYieldModel(
                lot_alpha=2.0, wafer_alpha=1.5), **base)
        b = ModelCostQuery(
            2e6, 0.5, yield_model=HierarchicalYieldModel(
                lot_alpha=2.0, wafer_alpha=1.5), **base)
        assert a.signature() == b.signature()

    def test_signature_distinguishes_compound_family_members(self):
        # CPG(alpha) and NB-equivalent spellings are different types;
        # hierarchical shapes and mixture weights are part of the key.
        model = _model()
        base = dict(model=model, design_density=150.0,
                    defect_density_per_cm2=0.5)
        sigs = {
            ModelCostQuery(1e6, 0.8, yield_model=CompoundPoissonGamma(
                alpha=1.5), **base).signature(),
            ModelCostQuery(1e6, 0.8, yield_model=HierarchicalYieldModel(
                lot_alpha=2.0, wafer_alpha=1.5), **base).signature(),
            ModelCostQuery(1e6, 0.8, yield_model=HierarchicalYieldModel(
                lot_alpha=3.0, wafer_alpha=1.5), **base).signature(),
            ModelCostQuery(1e6, 0.8, yield_model=MixtureYieldModel((
                (0.3, PoissonYield()),
                (0.7, CompoundPoissonGamma(alpha=1.5)))),
                **base).signature(),
            ModelCostQuery(1e6, 0.8, yield_model=MixtureYieldModel((
                (0.4, PoissonYield()),
                (0.6, CompoundPoissonGamma(alpha=1.5)))),
                **base).signature(),
        }
        assert len(sigs) == 5

    def test_mixture_roundtrips_through_signature_coalescing(self):
        # Equal mixtures coalesce by value, exactly like the scalar
        # laws — no identity fallback for the new combinator.
        model = _model()
        mix = lambda: MixtureYieldModel((  # noqa: E731
            (0.4, PoissonYield()), (0.6, CompoundPoissonGamma(alpha=2.0))))
        a = ModelCostQuery(1e6, 0.8, model=model, design_density=150.0,
                           yield_model=mix(), defect_density_per_cm2=0.5)
        b = ModelCostQuery(3e6, 0.4, model=model, design_density=150.0,
                           yield_model=mix(), defect_density_per_cm2=0.5)
        assert a.signature() == b.signature()

    def test_unhashable_custom_model_coalesces_by_identity(self):
        class Weird(PoissonYield):
            __hash__ = None  # type: ignore[assignment]

        weird = Weird()
        model = _model()
        a = ModelCostQuery(1e6, 0.8, model=model, design_density=150.0,
                           yield_model=weird, defect_density_per_cm2=0.5)
        b = ModelCostQuery(2e6, 0.5, model=model, design_density=150.0,
                           yield_model=weird, defect_density_per_cm2=0.5)
        c = ModelCostQuery(2e6, 0.5, model=model, design_density=150.0,
                           yield_model=Weird(), defect_density_per_cm2=0.5)
        assert a.signature() == b.signature()
        assert b.signature() != c.signature()
