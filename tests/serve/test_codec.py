"""The shared error codec: structured bodies, statuses, retry hints."""

import json
from pathlib import Path

import pytest

from repro.errors import (
    BackpressureError,
    ParameterError,
    ReproError,
    ServiceClosedError,
)
from repro.serve.codec import error_body, retry_after_s, status_for


def _backpressure(depth: int) -> BackpressureError:
    exc = BackpressureError(f"queue full ({depth} pending)")
    exc.queue_depth = depth
    return exc


class TestStatusFor:
    def test_mapping(self):
        assert status_for(_backpressure(10)) == 429
        assert status_for(ServiceClosedError("closed")) == 503
        assert status_for(ParameterError("bad")) == 400
        assert status_for(ReproError("odd")) == 500
        assert status_for(RuntimeError("boom")) == 500


class TestRetryAfter:
    def test_scales_with_queue_depth_within_bounds(self):
        assert retry_after_s(_backpressure(10_000)) == 1.0
        assert retry_after_s(_backpressure(100)) == pytest.approx(0.05)
        assert retry_after_s(_backpressure(10_000_000)) == 5.0

    def test_none_for_unretryable_errors(self):
        assert retry_after_s(ServiceClosedError("closed")) is None
        assert retry_after_s(ParameterError("bad")) is None


class TestErrorBody:
    def test_backpressure_carries_depth_and_hint(self):
        body = error_body(_backpressure(5000))
        assert body["error"] == "backpressure"
        assert body["queue_depth"] == 5000
        assert body["retry_after_s"] == retry_after_s(_backpressure(5000))
        assert "queue full" in body["message"]
        json.dumps(body)  # must be JSON-serializable as-is

    def test_service_closed(self):
        body = error_body(ServiceClosedError("scheduler is closed"))
        assert body == {"error": "service_closed",
                        "message": "scheduler is closed"}

    def test_bad_request(self):
        body = error_body(ParameterError("unknown field 'x'"))
        assert body["error"] == "bad_request"

    def test_unexpected_exception_names_its_type(self):
        body = error_body(RuntimeError("boom"))
        assert body["error"] == "internal"
        assert body["type"] == "RuntimeError"


class TestCliBatchModeUsesCodec:
    """CLI batch mode prints the same structured object on stderr."""

    def _run_cost_batch(self, tmp_path: Path, monkeypatch, exc) -> int:
        from repro.cli import main
        from repro.serve.service import CostService

        points = tmp_path / "points.csv"
        points.write_text("transistors,feature_size\n1e6,0.8\n")

        def _boom(self, queries, **kwargs):
            raise exc

        monkeypatch.setattr(CostService, "map", _boom)
        return main(["cost", "--input", str(points), "--density", "150"])

    def test_backpressure_path(self, tmp_path, monkeypatch, capsys):
        exc = _backpressure(7)
        assert self._run_cost_batch(tmp_path, monkeypatch, exc) == 2
        err = capsys.readouterr().err
        structured = json.loads(err.splitlines()[0])
        assert structured["error"] == "backpressure"
        assert structured["queue_depth"] == 7
        assert "error: queue full" in err

    def test_service_closed_path(self, tmp_path, monkeypatch, capsys):
        exc = ServiceClosedError("scheduler is closed")
        assert self._run_cost_batch(tmp_path, monkeypatch, exc) == 2
        err = capsys.readouterr().err
        structured = json.loads(err.splitlines()[0])
        assert structured == {"error": "service_closed",
                              "message": "scheduler is closed"}
