"""Traffic recording: schema, round-trip, crash-safety, detection."""

import json

import pytest

from repro.core import GenerationModel, TransistorCostModel, WaferCostModel
from repro.errors import ParameterError
from repro.geometry import Wafer
from repro.obs.recording import (
    RECORD_VERSION,
    QueryRecorder,
    is_recorded_log,
    load_recorded_log,
    load_recorded_queries,
    query_to_record,
    record_to_query,
)
from repro.serve import FabCostQuery, MicroBatchScheduler, ModelCostQuery
from repro.serve.tuning import signature_key
from repro.yieldsim import (
    MixtureYieldModel,
    MurphyYield,
    NegativeBinomialYield,
    ReferenceAreaYield,
)


def _model_query(n=2e6, lam=0.8, yield_model=None, yield_value=None):
    model = TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                  cost_growth_rate=1.8,
                                  generation_model=GenerationModel.SHRINK_LOG),
        wafer=Wafer(radius_cm=7.5))
    defect_density = None
    if yield_model is None and yield_value is None:
        yield_model = ReferenceAreaYield(reference_yield=0.7,
                                         reference_area_cm2=1.0)
    elif yield_model is not None \
            and not isinstance(yield_model, ReferenceAreaYield):
        # Area-scaling laws price from a defect density.
        defect_density = 0.5
    return ModelCostQuery(n_transistors=n, feature_size_um=lam,
                          model=model, design_density=150.0,
                          yield_model=yield_model,
                          defect_density_per_cm2=defect_density,
                          yield_value=yield_value)


def _mixed_queries():
    return [
        FabCostQuery(1e6, 0.8),
        FabCostQuery(2e6, 0.8),
        FabCostQuery(1e6, 0.8),           # duplicate: dedups in-flush
        _model_query(),
        _model_query(yield_model=MurphyYield()),
        _model_query(yield_model=MixtureYieldModel(components=(
            (0.6, MurphyYield()), (0.4, NegativeBinomialYield(alpha=2.0))))),
        _model_query(yield_model=None, yield_value=0.81),
    ]


class TestQueryRoundTrip:
    @pytest.mark.parametrize("query", _mixed_queries())
    def test_signature_and_point_survive(self, query):
        rebuilt = record_to_query(query_to_record(query))
        assert rebuilt.signature() == query.signature()
        assert rebuilt.point() == query.point()

    def test_custom_yield_model_is_unreplayable(self):
        class Weird(MurphyYield):
            pass

        assert query_to_record(_model_query(yield_model=Weird())) is None

    def test_malformed_payload_raises(self):
        with pytest.raises(ParameterError):
            record_to_query({"n": 1e6})
        with pytest.raises(ParameterError):
            record_to_query("not an object")


class TestRecorderThroughScheduler:
    def test_lines_carry_schema_and_bitwise_costs(self, tmp_path):
        log_path = tmp_path / "traffic.jsonl"
        queries = _mixed_queries()
        with MicroBatchScheduler(max_batch_size=64, record=log_path,
                                 cache=None) as sched:
            tickets = sched.submit_many(queries)
            costs = [t.cost(timeout=10.0) for t in tickets]
        lines = [json.loads(line)
                 for line in log_path.read_text().splitlines()]
        assert len(lines) == len(queries)
        for line, query, cost in zip(lines, queries, costs):
            assert line["v"] == RECORD_VERSION
            assert line["kind"] == query.kind
            assert line["sig"] == signature_key(query.signature())
            assert line["cost"] == cost        # bitwise through JSON repr
            assert line["t"] >= 0.0
            assert line["flush"] >= 1
            assert line["backend"] in ("thread", "process")

    def test_loaded_log_replays_to_equal_queries(self, tmp_path):
        log_path = tmp_path / "traffic.jsonl"
        queries = _mixed_queries()
        with MicroBatchScheduler(max_batch_size=64, record=log_path,
                                 cache=None) as sched:
            for t in sched.submit_many(queries):
                t.result(timeout=10.0)
        log = load_recorded_log(log_path)
        assert log.truncated_lines == 0
        assert log.unreplayable == 0
        assert len(log) == len(queries)
        for rec, query in zip(log.records, queries):
            assert rec.query.signature() == query.signature()
            assert rec.query.point() == query.point()

    def test_unreplayable_query_degrades_to_null_payload(self, tmp_path):
        class Weird(MurphyYield):
            """A custom law the recorder must refuse to serialize."""

        log_path = tmp_path / "traffic.jsonl"
        # backend pinned: a locally defined yield law cannot pickle to
        # an (env-injected) process pool, and this test is about the
        # recorder's degradation path, not routing.
        with MicroBatchScheduler(max_batch_size=4, record=log_path,
                                 backend="thread", cache=None) as sched:
            sched.submit(_model_query(yield_model=Weird())).result(
                timeout=10.0)
            assert sched.recorder is not None
        assert sched.recorder.unreplayable == 1
        log = load_recorded_log(log_path)
        assert len(log) == 1
        assert log.unreplayable == 1
        assert log.records[0].query is None
        assert log.replayable() == []

    def test_append_mode_accumulates_across_schedulers(self, tmp_path):
        log_path = tmp_path / "traffic.jsonl"
        for _ in range(2):
            with MicroBatchScheduler(max_batch_size=4, record=log_path,
                                     cache=None) as sched:
                sched.submit(FabCostQuery(1e6, 0.8)).result(timeout=10.0)
        assert len(load_recorded_log(log_path)) == 2


class TestCrashSafety:
    def _write_log(self, tmp_path, n=4):
        log_path = tmp_path / "traffic.jsonl"
        with MicroBatchScheduler(max_batch_size=8, record=log_path,
                                 cache=None) as sched:
            for t in sched.submit_many(
                    [FabCostQuery(1e5 * (i + 1), 0.8) for i in range(n)]):
                t.result(timeout=10.0)
        return log_path

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        log_path = self._write_log(tmp_path)
        text = log_path.read_text()
        log_path.write_text(text + '{"v": 1, "t": 0.5, "ki')  # torn write
        log = load_recorded_log(log_path)
        assert log.truncated_lines == 1
        assert len(log) == 4

    def test_midfile_garbage_raises(self, tmp_path):
        log_path = self._write_log(tmp_path)
        lines = log_path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corruption a crash cannot produce
        log_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ParameterError, match="corrupt record line"):
            load_recorded_log(log_path)

    def test_unknown_version_raises(self, tmp_path):
        log_path = tmp_path / "traffic.jsonl"
        log_path.write_text('{"v": 99, "kind": "fab"}\n')
        with pytest.raises(ParameterError, match="version"):
            load_recorded_log(log_path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ParameterError, match="not found"):
            load_recorded_log(tmp_path / "nope.jsonl")

    def test_io_failure_disables_writes_without_raising(self, tmp_path):
        recorder = QueryRecorder(tmp_path / "traffic.jsonl")
        recorder._fh.close()  # simulate the descriptor dying mid-run
        n = recorder.record_flush(
            1, [(0.0, FabCostQuery(1e6, 0.8), "sig", "thread", 1.0, None)])
        assert n == 0
        assert recorder.failed
        recorder.close()


class TestFormatDetection:
    def test_detects_recorded_log(self, tmp_path):
        log_path = tmp_path / "traffic.jsonl"
        with MicroBatchScheduler(max_batch_size=4, record=log_path,
                                 cache=None) as sched:
            sched.submit(FabCostQuery(1e6, 0.8)).result(timeout=10.0)
        assert is_recorded_log(log_path)
        assert len(load_recorded_queries(log_path)) == 1

    def test_rejects_points_files_and_garbage(self, tmp_path):
        points = tmp_path / "points.csv"
        points.write_text("transistors,feature_size\n1e6,0.8\n")
        assert not is_recorded_log(points)
        jsn = tmp_path / "points.json"
        jsn.write_text('[{"transistors": 1e6, "feature_size": 0.8}]\n')
        assert not is_recorded_log(jsn)
        assert not is_recorded_log(tmp_path / "missing.jsonl")
