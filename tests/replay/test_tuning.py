"""Telemetry analyzer: threshold/chunk learning from flush records."""

import math

import pytest

from repro.errors import ParameterError
from repro.replay import learn_profile
from repro.serve.scheduler import FlushRecord, GroupRecord
from repro.serve.tuning import (
    NEVER_PROCESS,
    SignatureTuning,
    TuningProfile,
    signature_key,
)


def _flush(groups, flush_id=1):
    return FlushRecord(
        requests=sum(g.requests for g in groups),
        unique=sum(g.points for g in groups),
        groups=len(groups), wait_s=0.002, duration_s=0.01,
        flush_id=flush_id, group_records=tuple(groups))


def _telemetry(thread_rate=1e-5, overhead=0.01, proc_rate=1e-6,
               sig="sig-a", n=6):
    """Synthetic records with known rates → analytic crossover."""
    records = []
    for i in range(n):
        k = 100 * (i + 1)
        records.append(_flush([GroupRecord(
            sig_key=sig, points=k, requests=k, backend="thread",
            duration_s=thread_rate * k)], flush_id=2 * i + 1))
        records.append(_flush([GroupRecord(
            sig_key=sig, points=k, requests=k, backend="process",
            duration_s=overhead + proc_rate * k)], flush_id=2 * i + 2))
    return records


class TestLearning:
    def test_threshold_matches_analytic_crossover(self):
        thread_rate, overhead, proc_rate = 1e-5, 0.01, 1e-6
        profile = learn_profile(
            _telemetry(thread_rate, overhead, proc_rate))
        tuning = profile.signatures["sig-a"]
        # Crossover where a + b*k == rate*k:  k* = a / (rate - b).
        want = math.ceil(overhead / (thread_rate - proc_rate))
        assert tuning.process_threshold == want
        assert tuning.thread_s_per_point == pytest.approx(thread_rate)
        assert tuning.process_s_per_point == pytest.approx(proc_rate)
        assert tuning.process_overhead_s == pytest.approx(overhead)
        assert tuning.samples == 6

    def test_slow_process_rate_yields_never_process(self):
        # Threads faster per point than processes: no crossover exists.
        profile = learn_profile(
            _telemetry(thread_rate=1e-6, overhead=0.01, proc_rate=1e-5))
        assert profile.signatures["sig-a"].process_threshold \
            == NEVER_PROCESS

    def test_chunk_size_targets_seconds_of_work(self):
        thread_rate = 1e-5
        profile = learn_profile(_telemetry(thread_rate=thread_rate),
                                target_chunk_seconds=0.02)
        tuning = profile.signatures["sig-a"]
        assert tuning.chunk_size == round(0.02 / thread_rate)

    def test_chunk_size_is_clamped(self):
        profile = learn_profile(_telemetry(thread_rate=1.0),
                                min_chunk=256, max_chunk=65536)
        assert profile.signatures["sig-a"].chunk_size == 256
        profile = learn_profile(_telemetry(thread_rate=1e-12),
                                min_chunk=256, max_chunk=65536)
        assert profile.signatures["sig-a"].chunk_size == 65536

    def test_min_samples_gate(self):
        records = _telemetry(n=2)
        profile = learn_profile(records, min_samples=3)
        assert "sig-a" not in profile.signatures
        profile = learn_profile(records, min_samples=2)
        assert "sig-a" in profile.signatures

    def test_no_process_data_keeps_default_threshold(self):
        records = [_flush([GroupRecord(
            sig_key="sig-a", points=100 * (i + 1),
            requests=100 * (i + 1), backend="thread",
            duration_s=1e-5 * 100 * (i + 1))], flush_id=i + 1)
            for i in range(4)]
        profile = learn_profile(records, default_process_threshold=777)
        tuning = profile.signatures["sig-a"]
        assert tuning.process_threshold == 777
        assert tuning.process_s_per_point is None
        assert tuning.chunk_size is not None  # learned from thread rate

    def test_detail_free_records_are_ignored(self):
        bare = FlushRecord(requests=8, unique=8, groups=1,
                           wait_s=0.002, duration_s=0.01)
        profile = learn_profile([bare])
        assert profile.signatures == {}
        assert profile.meta["flushes"] == 1
        assert profile.meta["groups"] == 0

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            learn_profile([], min_samples=0)
        with pytest.raises(ParameterError):
            learn_profile([], target_chunk_seconds=0.0)
        with pytest.raises(ParameterError):
            learn_profile([], min_chunk=512, max_chunk=256)

    def test_meta_provenance_is_merged(self):
        profile = learn_profile(_telemetry(), meta={"source": "unit-test"})
        assert profile.meta["source"] == "unit-test"
        assert profile.meta["process_observations"] == 6


class TestProfilePersistence:
    def test_round_trip_through_json(self, tmp_path):
        profile = learn_profile(_telemetry(), meta={"origin": "test"})
        path = profile.save(tmp_path / "profile.json")
        loaded = TuningProfile.load(path)
        assert loaded == profile

    def test_load_rejects_bad_documents(self, tmp_path):
        bad = tmp_path / "profile.json"
        bad.write_text("not json")
        with pytest.raises(ParameterError, match="invalid"):
            TuningProfile.load(bad)
        bad.write_text('{"version": 99}')
        with pytest.raises(ParameterError, match="version"):
            TuningProfile.load(bad)
        with pytest.raises(ParameterError, match="not found"):
            TuningProfile.load(tmp_path / "missing.json")

    def test_signature_tuning_rejects_unknown_fields(self):
        with pytest.raises(ParameterError, match="unknown"):
            SignatureTuning.from_dict({"process_threshold": 4,
                                       "surprise": 1})
        with pytest.raises(ParameterError, match="process_threshold"):
            SignatureTuning.from_dict({"chunk_size": 4})

    def test_lookup_falls_back_to_defaults(self):
        profile = TuningProfile(
            default_process_threshold=1000, default_chunk_size=512,
            signatures={"aa": SignatureTuning(process_threshold=7,
                                              chunk_size=64)})
        assert profile.process_threshold_for("aa") == 7
        assert profile.chunk_size_for("aa") == 64
        assert profile.process_threshold_for("bb") == 1000
        assert profile.chunk_size_for("bb") == 512
        assert profile.process_threshold_for(None) == 1000

    def test_signature_key_is_stable_and_short(self):
        sig = ("fab", 1.8, 500.0, 7.5, 150.0, 0.3, 2.0)
        key = signature_key(sig)
        assert key == signature_key(("fab", 1.8, 500.0, 7.5, 150.0,
                                     0.3, 2.0))
        assert len(key) == 16
        assert key != signature_key(sig + ("x",))
