"""Replay engine: parity, modes, skipping, measurement plumbing."""

import pytest

from repro.errors import ParameterError
from repro.obs.recording import RecordedQuery, load_recorded_log
from repro.replay import replay_log
from repro.replay.engine import ReplayConfig
from repro.serve import FabCostQuery, MicroBatchScheduler
from repro.serve.tuning import SignatureTuning, TuningProfile, signature_key


def _record_log(tmp_path, n=40):
    log_path = tmp_path / "traffic.jsonl"
    queries = [FabCostQuery(1e5 * (i % 10 + 1), 0.6 + 0.1 * (i % 3))
               for i in range(n)]
    with MicroBatchScheduler(max_batch_size=16, record=log_path,
                             cache=None) as sched:
        for t in sched.submit_many(queries):
            t.result(timeout=10.0)
    return log_path


class TestConfigValidation:
    def test_bad_backend_and_empty_name(self):
        with pytest.raises(ParameterError):
            ReplayConfig(name="x", backend="fiber")
        with pytest.raises(ParameterError):
            ReplayConfig(name="")

    def test_tuned_requires_profile(self):
        with pytest.raises(ParameterError, match="Profile"):
            ReplayConfig(name="tuned", backend="tuned")

    def test_bad_mode_and_speed(self, tmp_path):
        log_path = _record_log(tmp_path, n=4)
        config = ReplayConfig(name="thread", backend="thread")
        with pytest.raises(ParameterError, match="mode"):
            replay_log(log_path, config, mode="sideways")
        with pytest.raises(ParameterError, match="speed"):
            replay_log(log_path, config, mode="open", speed=0.0)


class TestParity:
    @pytest.mark.parametrize("mode", ["open", "closed"])
    def test_zero_mismatches_against_own_recording(self, tmp_path, mode):
        log_path = _record_log(tmp_path)
        config = ReplayConfig(name="thread", backend="thread")
        result = replay_log(log_path, config, mode=mode, speed=1000.0)
        assert result.n_queries == 40
        assert result.n_skipped == 0
        assert result.mismatches == 0
        assert result.wall_s > 0.0
        assert result.p50_ms <= result.p95_ms <= result.p99_ms

    def test_accepts_log_object_and_path(self, tmp_path):
        log_path = _record_log(tmp_path, n=8)
        log = load_recorded_log(log_path)
        config = ReplayConfig(name="auto", backend="auto")
        by_path = replay_log(log_path, config, mode="closed")
        by_obj = replay_log(log, config, mode="closed")
        assert by_path.mismatches == by_obj.mismatches == 0

    def test_corrupted_cost_counts_as_mismatch(self, tmp_path):
        log_path = _record_log(tmp_path, n=8)
        log = load_recorded_log(log_path)
        records = list(log.records)
        bad = records[3]
        records[3] = RecordedQuery(
            t=bad.t, kind=bad.kind, sig=bad.sig, flush=bad.flush,
            backend=bad.backend, cost=(bad.cost or 1.0) * 1.5,
            query=bad.query)
        config = ReplayConfig(name="thread", backend="thread")
        result = replay_log(records, config, mode="closed")
        assert result.mismatches == 1

    def test_unreplayable_records_are_skipped(self, tmp_path):
        log_path = _record_log(tmp_path, n=8)
        log = load_recorded_log(log_path)
        records = list(log.records)
        records.append(RecordedQuery(t=1.0, kind="model", sig="x",
                                     flush=9, backend="thread",
                                     cost=None, query=None))
        config = ReplayConfig(name="thread", backend="thread")
        result = replay_log(records, config, mode="closed")
        assert result.n_queries == 8
        assert result.n_skipped == 1
        assert result.mismatches == 0


class TestTunedConfig:
    def test_tuned_replay_matches_recording(self, tmp_path):
        log_path = _record_log(tmp_path)
        log = load_recorded_log(log_path)
        keys = {signature_key(r.query.signature())
                for r in log.replayable()}
        profile = TuningProfile(
            default_process_threshold=2048,
            signatures={key: SignatureTuning(process_threshold=4,
                                             chunk_size=512)
                        for key in keys})
        config = ReplayConfig(name="tuned", backend="tuned", workers=2,
                              profile=profile)
        result = replay_log(log, config, mode="closed")
        assert result.mismatches == 0
        assert result.config.to_dict()["tuned_signatures"] == len(keys)


class TestMeasurement:
    def test_flush_telemetry_and_derived_stats(self, tmp_path):
        log_path = _record_log(tmp_path)
        config = ReplayConfig(name="thread", backend="thread",
                              max_batch_size=16)
        result = replay_log(log_path, config, mode="closed")
        assert result.flushes >= 1
        assert result.qps > 0.0
        assert sum(f.requests for f in result.flush_records) == 40
        assert 0.0 <= result.dedup_rate < 1.0
        assert 0.0 < result.mean_occupancy <= 1.0
        assert sum(result.flush_size_hist.values()) == result.flushes
        assert set(result.backend_groups) <= {"thread", "process"}
        doc = result.to_dict()
        assert doc["n_queries"] == 40
        assert doc["mismatches"] == 0
        assert doc["config"]["name"] == "thread"

    def test_open_loop_respects_speedup(self, tmp_path):
        # With a huge speed factor the recorded gaps collapse; the
        # replay must still finish and preserve parity.
        log_path = _record_log(tmp_path, n=12)
        config = ReplayConfig(name="auto", backend="auto")
        result = replay_log(log_path, config, mode="open", speed=1e6)
        assert result.mismatches == 0
        assert result.max_queue_depth >= 0
