"""Run-dir reporter: raw/ → results.csv → report.md, profile wiring."""

import csv
import json

import pytest

from repro.errors import ParameterError
from repro.replay.rundir import (
    CSV_COLUMNS,
    configs_from_names,
    default_configs,
    run_all,
    to_results_csv,
    write_report,
)
from repro.serve import FabCostQuery, MicroBatchScheduler
from repro.serve.tuning import SignatureTuning, TuningProfile


@pytest.fixture(scope="module")
def recorded_log(tmp_path_factory):
    log_path = tmp_path_factory.mktemp("traffic") / "traffic.jsonl"
    queries = [FabCostQuery(1e5 * (i % 8 + 1), 0.6 + 0.1 * (i % 3))
               for i in range(60)]
    with MicroBatchScheduler(max_batch_size=16, record=log_path,
                             cache=None) as sched:
        for t in sched.submit_many(queries):
            t.result(timeout=10.0)
    return log_path


class TestConfigBuilders:
    def test_default_configs_are_the_non_tuned_set(self):
        names = [c.name for c in default_configs()]
        assert names == ["thread", "process", "auto"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="config"):
            configs_from_names(["thread", "fiber"])

    def test_tuned_requires_profile(self):
        with pytest.raises(ParameterError, match="tuned"):
            configs_from_names(["tuned"])
        profile = TuningProfile(signatures={
            "aa": SignatureTuning(process_threshold=4)})
        (config,) = configs_from_names(["tuned"], profile=profile)
        assert config.profile is profile


class TestRunAll:
    def test_full_run_dir_with_learned_profile(self, recorded_log,
                                               tmp_path):
        run_dir = tmp_path / "run"
        summary = run_all(recorded_log, run_dir, workers=2, mode="closed")
        assert summary["mismatches"] == 0
        assert [r.config.name for r in summary["results"]] \
            == ["thread", "process", "auto", "tuned"]
        for name in ("thread", "process", "auto", "tuned"):
            doc = json.loads((run_dir / "raw" / f"{name}.json").read_text())
            assert doc["mismatches"] == 0
            assert doc["n_queries"] == 60
        # The tuned leg learned its profile from the other legs and
        # persisted it for reproducibility.
        profile = TuningProfile.load(run_dir / "profile.json")
        assert profile == summary["profile"]
        assert profile.meta["configs"] == ["thread", "process", "auto"]

        with open(run_dir / "results.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert tuple(rows[0]) == CSV_COLUMNS
        assert len(rows) == 5                       # header + 4 configs
        # Fastest-first ordering by wall time.
        walls = [float(r[rows[0].index("wall_s")]) for r in rows[1:]]
        assert walls == sorted(walls)

        report = (run_dir / "report.md").read_text()
        assert "| rank | config | backend" in report
        assert "p50 ms | p95 ms | p99 ms | occupancy" in report
        assert "bitwise equal" in report
        assert "Tuning profile" in report

    def test_subset_without_tuned_skips_profile(self, recorded_log,
                                                tmp_path):
        run_dir = tmp_path / "run"
        summary = run_all(recorded_log, run_dir, names=("thread", "auto"),
                          workers=1, mode="closed")
        assert summary["profile"] is None
        assert not (run_dir / "profile.json").exists()
        assert sorted(p.name for p in (run_dir / "raw").glob("*.json")) \
            == ["auto.json", "thread.json"]

    def test_supplied_profile_is_used_verbatim(self, recorded_log,
                                               tmp_path):
        profile = TuningProfile(default_process_threshold=123,
                                meta={"origin": "hand-set"})
        run_dir = tmp_path / "run"
        summary = run_all(recorded_log, run_dir, names=("tuned",),
                          workers=1, profile=profile, mode="closed")
        assert summary["mismatches"] == 0
        loaded = TuningProfile.load(run_dir / "profile.json")
        assert loaded.meta["origin"] == "hand-set"
        assert loaded.default_process_threshold == 123


class TestRegeneration:
    def test_csv_and_report_regenerate_from_raw(self, recorded_log,
                                                tmp_path):
        run_dir = tmp_path / "run"
        run_all(recorded_log, run_dir, names=("thread",), workers=1,
                mode="closed")
        (run_dir / "results.csv").unlink()
        (run_dir / "report.md").unlink()
        assert to_results_csv(run_dir).exists()
        assert write_report(run_dir).exists()

    def test_empty_run_dir_raises(self, tmp_path):
        with pytest.raises(ParameterError, match="raw"):
            to_results_csv(tmp_path)
        (tmp_path / "raw").mkdir()
        with pytest.raises(ParameterError, match="raw"):
            write_report(tmp_path)
