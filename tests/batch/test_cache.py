"""Tests for :mod:`repro.batch.cache`."""

import threading

import numpy as np
import pytest

from repro.batch import BatchCache, default_cache
from repro.batch.cache import array_fingerprint
from repro.errors import ParameterError


class TestArrayFingerprint:
    def test_equal_content_equal_key(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 3.0])
        assert array_fingerprint(a) == array_fingerprint(b)

    def test_shape_distinguishes(self):
        a = np.arange(6.0)
        assert array_fingerprint(a) != array_fingerprint(a.reshape(2, 3))

    def test_dtype_distinguishes(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert array_fingerprint(a) != array_fingerprint(a.astype(float))

    def test_non_contiguous_ok(self):
        a = np.arange(10.0)[::2]
        assert array_fingerprint(a) == array_fingerprint(a.copy())


class TestBatchCache:
    def test_miss_then_hit_returns_same_object(self):
        cache = BatchCache()
        calls = []

        def compute():
            calls.append(1)
            return np.array([1.0, 2.0])

        first = cache.get_or_compute("k", compute)
        second = cache.get_or_compute("k", compute)
        assert first is second
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_arrays_are_read_only(self):
        cache = BatchCache()
        arr = cache.get_or_compute("k", lambda: np.array([1.0]))
        with pytest.raises(ValueError):
            arr[0] = 9.0

    def test_distinct_keys_distinct_entries(self):
        cache = BatchCache()
        a = cache.get_or_compute(("x", 1), lambda: np.array([1.0]))
        b = cache.get_or_compute(("x", 2), lambda: np.array([2.0]))
        assert a[0] == 1.0 and b[0] == 2.0
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = BatchCache(max_entries=2)
        cache.get_or_compute("a", lambda: np.array([1.0]))
        cache.get_or_compute("b", lambda: np.array([2.0]))
        cache.get_or_compute("a", lambda: np.array([1.0]))  # refresh "a"
        cache.get_or_compute("c", lambda: np.array([3.0]))  # evicts "b"
        calls = []
        cache.get_or_compute("a", lambda: calls.append(1) or np.array([1.0]))
        assert not calls  # "a" survived
        cache.get_or_compute("b", lambda: calls.append(1) or np.array([2.0]))
        assert calls  # "b" was evicted

    def test_clear_keeps_counters(self):
        cache = BatchCache()
        cache.get_or_compute("k", lambda: np.array([1.0]))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_evictions_counted_under_lru_pressure(self):
        cache = BatchCache(max_entries=2)
        for key in ("a", "b", "c", "d"):
            cache.get_or_compute(key, lambda: np.array([1.0]))
        assert cache.stats.evictions == 2
        assert cache.stats.misses == 4

    def test_no_pressure_no_evictions(self):
        cache = BatchCache(max_entries=8)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda: np.array([1.0]))
        assert cache.stats.evictions == 0

    def test_clear_is_not_an_eviction(self):
        cache = BatchCache(max_entries=2)
        cache.get_or_compute("a", lambda: np.array([1.0]))
        cache.get_or_compute("b", lambda: np.array([2.0]))
        cache.clear()
        assert cache.stats.evictions == 0

    def test_evictions_survive_clear(self):
        cache = BatchCache(max_entries=1)
        cache.get_or_compute("a", lambda: np.array([1.0]))
        cache.get_or_compute("b", lambda: np.array([2.0]))  # evicts "a"
        cache.clear()
        assert cache.stats.evictions == 1

    def test_untouched_hit_rate_zero(self):
        # Regression pin: hits + misses == 0 must yield 0.0, not a
        # ZeroDivisionError — a service polls stats before traffic.
        assert BatchCache().stats.hit_rate == 0.0

    def test_hit_rate_zero_after_clear_without_traffic(self):
        cache = BatchCache()
        cache.clear()
        assert cache.stats.hit_rate == 0.0

    def test_hit_rate_reflects_lifetime_traffic(self):
        cache = BatchCache()
        cache.get_or_compute("k", lambda: np.array([1.0]))
        for _ in range(3):
            cache.get_or_compute("k", lambda: np.array([1.0]))
        assert cache.stats.hit_rate == 0.75

    def test_invalid_max_entries(self):
        with pytest.raises(ParameterError):
            BatchCache(max_entries=0)

    def test_default_cache_is_singleton(self):
        assert default_cache() is default_cache()


class TestConcurrentAccess:
    """Regression: one BatchCache shared by concurrent sweeps.

    The serve scheduler hands the same cache to every flush (and a
    worker pool may hit it from several threads at once), so lookups,
    insertions, evictions, ``len()`` and ``stats`` must all stay
    coherent under contention.
    """

    def test_hammered_cache_stays_consistent(self):
        cache = BatchCache(max_entries=16)
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = ("k", i % 24)  # contended + evicting key set
                    value = cache.get_or_compute(
                        key, lambda i=i: np.array([float(i % 24)]))
                    assert value.shape == (1,)
                    assert not value.flags.writeable
                    len(cache)          # must never race the evictor
                    cache.stats         # snapshot under contention
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats
        # Every lookup is either a hit or a miss — none lost to races.
        assert stats.hits + stats.misses == n_threads * per_thread
        assert stats.entries == len(cache) <= 16

    def test_concurrent_same_key_returns_equal_arrays(self):
        cache = BatchCache()
        results = [None] * 6
        barrier = threading.Barrier(len(results))

        def worker(slot):
            barrier.wait()
            results[slot] = cache.get_or_compute(
                "shared", lambda: np.array([42.0]))

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(len(results))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(np.array_equal(r, np.array([42.0])) for r in results)
        stats = cache.stats
        assert stats.hits + stats.misses == len(results)
        # A same-key race may compute more than once, but the cache
        # must keep exactly one live entry for the key.
        assert stats.entries == 1


class TestPrewarm:
    def _queries(self):
        from repro.serve import FabCostQuery
        grid = [(1e5 * (i + 1), 0.4 + 0.05 * j)
                for i in range(10) for j in range(5)]
        return [FabCostQuery(n, lam) for n, lam in grid], grid

    def test_returns_unique_point_count(self):
        queries, grid = self._queries()
        cache = BatchCache()
        # Duplicate the traffic: prewarm coalesces exactly like a flush.
        assert cache.prewarm(queries + queries) == len(grid)

    def test_prewarmed_service_starts_at_steady_state_hit_rate(self):
        from repro.serve import CostService
        queries, _ = self._queries()

        cold = BatchCache()
        with CostService(cache=cold) as svc:
            cold_results = svc.map(queries)
        cold_misses = cold.stats.misses

        warm = BatchCache()
        warm.prewarm(queries)
        misses_before = warm.stats.misses
        with CostService(cache=warm) as svc:
            warm_results = svc.map(queries)
        stats = warm.stats

        # The live pass computed nothing: every lookup hit.
        assert stats.misses == misses_before
        assert stats.hits >= 1
        assert cold_misses >= 1
        # ...and prewarming cannot change a single bit.
        assert warm_results == cold_results

    def test_groups_by_signature(self):
        from repro.core.optimization import FIG8_FAB, FabCharacterization
        from repro.serve import FabCostQuery
        other = FabCharacterization(
            cost_growth_rate=FIG8_FAB.cost_growth_rate,
            reference_cost_dollars=2 * FIG8_FAB.reference_cost_dollars,
            wafer_radius_cm=FIG8_FAB.wafer_radius_cm,
            design_density=FIG8_FAB.design_density,
            defect_coefficient=FIG8_FAB.defect_coefficient,
            size_exponent_p=FIG8_FAB.size_exponent_p)
        queries = [FabCostQuery(1e6, 0.8), FabCostQuery(1e6, 0.8, fab=other)]
        cache = BatchCache()
        # Same point under two signatures: both count (separate groups).
        assert cache.prewarm(queries) == 2

    def test_empty_iterable_is_a_noop(self):
        cache = BatchCache()
        assert cache.prewarm([]) == 0
        assert len(cache) == 0

    def test_prewarm_from_recorded_log_round_trip(self, tmp_path):
        # Record live traffic, then prewarm a fresh cache straight from
        # the log path: the warmed service must hit on every lookup and
        # serve bitwise-identical results (satellite of docs/replay.md).
        from repro.serve import CostService
        queries, _ = self._queries()
        log_path = tmp_path / "traffic.jsonl"
        cold = BatchCache()
        with CostService(cache=cold, record=log_path) as svc:
            cold_results = svc.map(queries)

        warm = BatchCache()
        warmed = warm.prewarm(log_path)
        assert warmed == len({q.point() for q in queries})
        misses_before = warm.stats.misses
        with CostService(cache=warm) as svc:
            warm_results = svc.map(queries)
        assert warm.stats.misses == misses_before
        assert warm_results == cold_results

    def test_prewarm_rejects_non_recorded_paths(self, tmp_path):
        points = tmp_path / "points.csv"
        points.write_text("transistors,feature_size\n1e6,0.8\n")
        with pytest.raises(ParameterError, match="recorded-traffic"):
            BatchCache().prewarm(points)
