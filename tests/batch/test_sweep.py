"""TiledSweepRunner: plans, specs, checkpoints, faults, out= contract.

The bitwise-parity quantification over tile size / workers / backend /
resume lives in ``tests/property_based/test_sweep_parity.py``; the
kill-a-real-process resume test in
``tests/integration/test_sweep_resume.py``.  This module pins the
mechanics those rely on.
"""

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.batch.sweep import (
    DEFAULT_TILE_SIZE,
    DieAreaCostSweep,
    FabCostSweep,
    FAULT_ENV,
    ScenarioSweep,
    SweepCheckpoint,
    SweepPlan,
    Tile,
    TiledSweepRunner,
    validate_backend,
)
from repro.core.optimization import FIG8_FAB, CostLandscape
from repro.core.scenarios import SCENARIO_2
from repro.errors import ParameterError
from repro.yieldsim.parallel import ParallelExecutionWarning

COUNTS = np.geomspace(1e5, 1e7, 17)
LAMS = np.linspace(0.3, 2.0, 23)


def _reference_grid():
    return CostLandscape(fab=FIG8_FAB, feature_sizes_um=LAMS,
                         transistor_counts=COUNTS).grid()


class TestPlan:
    def test_tiles_partition_the_grid_exactly_once(self):
        plan = SweepPlan.for_grid(17, 23, tile_size=40)
        seen = np.zeros((17, 23), dtype=int)
        for tile in plan.tiles():
            seen[tile.row_lo:tile.row_hi, tile.col_lo:tile.col_hi] += 1
        assert (seen == 1).all()

    def test_enumeration_and_random_access_agree(self):
        plan = SweepPlan.for_grid(10, 7, tile_size=9)
        for tile in plan.tiles():
            assert plan.tile(tile.index) == tile

    def test_full_width_tiles_preferred(self):
        # tile_cols saturates at n_cols first; leftover budget stacks
        # rows — slabs stay contiguous runs of the row-major grid.
        plan = SweepPlan.for_grid(100, 10, tile_size=50)
        assert plan.tile_cols == 10
        assert plan.tile_rows == 5

    def test_tile_size_smaller_than_a_row(self):
        plan = SweepPlan.for_grid(4, 100, tile_size=30)
        assert plan.tile_cols == 30
        assert plan.tile_rows == 1
        assert plan.n_tiles == 4 * 4  # ceil(100/30) = 4 col bands

    def test_counts(self):
        plan = SweepPlan.for_grid(17, 23, tile_size=40)
        assert plan.n_tiles == plan.n_row_bands * plan.n_col_bands
        assert sum(t.n_points for t in plan.tiles()) == 17 * 23

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ParameterError):
            SweepPlan.for_grid(0, 5)
        with pytest.raises(ParameterError):
            SweepPlan.for_grid(5, 0)
        with pytest.raises(ParameterError):
            SweepPlan.for_grid(5, 5, tile_size=0)
        with pytest.raises(ParameterError):
            SweepPlan.for_grid(5, 5).tile(999)

    def test_backend_vocabulary(self):
        assert validate_backend("auto") == "auto"
        with pytest.raises(ParameterError):
            validate_backend("fork")


class TestRunnerBasics:
    def test_sequential_matches_landscape_grid_bitwise(self):
        # workers pinned: this is the parity *reference* path, and it
        # must stay sequential even under the CI env-injection matrix.
        result = TiledSweepRunner(workers=1, tile_size=64).run(
            FabCostSweep(), COUNTS, LAMS)
        assert np.array_equal(result.values, _reference_grid())
        assert result.stats["backend"] == "sequential"
        assert result.stats["tiles_computed"] == result.plan.n_tiles

    def test_out_buffer_is_filled_and_returned(self):
        out = np.empty((COUNTS.size, LAMS.size), dtype=np.float64)
        result = TiledSweepRunner(tile_size=100).run(
            FabCostSweep(), COUNTS, LAMS, out=out)
        assert result.values is out
        assert np.array_equal(out, _reference_grid())

    def test_out_validation(self):
        runner = TiledSweepRunner()
        with pytest.raises(ParameterError):
            runner.run(FabCostSweep(), COUNTS, LAMS,
                       out=np.empty((1, LAMS.size)))
        with pytest.raises(ParameterError):
            runner.run(FabCostSweep(), COUNTS, LAMS,
                       out=np.empty((COUNTS.size, LAMS.size),
                                    dtype=np.float32))

    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            TiledSweepRunner(backend="fork")
        with pytest.raises(ParameterError):
            TiledSweepRunner(workers=0)
        with pytest.raises(ParameterError):
            TiledSweepRunner(tile_size=0)
        with pytest.raises(ParameterError):
            TiledSweepRunner(resume=True)  # needs checkpoint_dir

    def test_empty_axes_rejected(self):
        with pytest.raises(ParameterError):
            TiledSweepRunner().run(FabCostSweep(), [], LAMS)

    def test_auto_backend_resolution(self):
        assert TiledSweepRunner(
            backend="auto", workers=1)._resolved_backend() == "thread"
        with TiledSweepRunner(backend="auto", workers=2) as runner:
            assert runner._resolved_backend() == "process"

    def test_on_tile_progress_sequence(self):
        calls = []
        TiledSweepRunner(tile_size=64).run(
            FabCostSweep(), COUNTS, LAMS,
            on_tile=lambda tile, done, total: calls.append((done, total)))
        total = calls[0][1]
        assert [c[0] for c in calls] == list(range(1, total + 1))
        assert all(c[1] == total for c in calls)

    def test_argmin_is_the_cheapest_feasible_cell(self):
        result = TiledSweepRunner(tile_size=64).run(
            FabCostSweep(), COUNTS, LAMS)
        i, j = result.argmin()
        finite = result.values[np.isfinite(result.values)]
        assert result.values[i, j] == finite.min()

    def test_argmin_none_when_everything_infeasible(self):
        # Counts so large no die ever fits the wafer: all-inf grid.
        result = TiledSweepRunner().run(
            FabCostSweep(), np.array([1e18, 2e18]), LAMS)
        assert not np.isfinite(result.values).any()
        assert result.argmin() is None


class TestBackends:
    def test_thread_backend_bitwise(self):
        with TiledSweepRunner(backend="thread", workers=3,
                              tile_size=37) as runner:
            result = runner.run(FabCostSweep(), COUNTS, LAMS)
        assert np.array_equal(result.values, _reference_grid())
        assert result.stats["backend"] == "thread"

    def test_process_backend_bitwise(self):
        with TiledSweepRunner(backend="process", workers=2,
                              tile_size=100) as runner:
            result = runner.run(FabCostSweep(), COUNTS, LAMS)
        assert np.array_equal(result.values, _reference_grid())
        assert result.stats["backend"] == "process"

    def test_pool_reused_across_runs(self):
        with TiledSweepRunner(backend="process", workers=2,
                              tile_size=200) as runner:
            runner.run(FabCostSweep(), COUNTS, LAMS)
            pool = runner._pool
            assert pool is not None
            runner.run(FabCostSweep(), COUNTS, LAMS)
            assert runner._pool is pool
        assert runner._pool is None  # context exit shut it down

    def test_injected_raise_surfaces_after_fallback(self):
        # "raise" faults in every process, the parent's in-process
        # retry included — the error must surface to the caller, not
        # vanish into a silent half-written grid.
        os.environ[FAULT_ENV] = "raise"
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ParallelExecutionWarning)
                with TiledSweepRunner(backend="process", workers=2,
                                      tile_size=100) as runner:
                    with pytest.raises(RuntimeError,
                                       match="injected sweep worker"):
                        runner.run(FabCostSweep(), COUNTS, LAMS)
        finally:
            del os.environ[FAULT_ENV]

    def test_killed_workers_degrade_to_sequential_parity(self):
        # Workers hard-exit; the parent (whose pid is exempted) picks
        # the tiles up in-process and the sweep still lands bitwise.
        os.environ[FAULT_ENV] = f"exit:{os.getpid()}"
        try:
            with pytest.warns(ParallelExecutionWarning):
                with TiledSweepRunner(backend="process", workers=2,
                                      tile_size=100) as runner:
                    result = runner.run(FabCostSweep(), COUNTS, LAMS)
        finally:
            del os.environ[FAULT_ENV]
        assert np.array_equal(result.values, _reference_grid())


class TestSpecs:
    def test_die_area_sweep_matches_scalar_operation_order(self):
        # Each row must land bitwise on the scalar optimizer's own
        # scan (which evaluates a 1-D batch per area): same eq.-(5)
        # operation order, same kernel, different broadcasting shape.
        from repro.batch.engine import transistor_cost_batch
        areas = np.array([0.25, 1.0, 2.5])
        lams = np.linspace(0.4, 1.6, 11)
        out = np.empty((3, 11), dtype=np.float64)
        DieAreaCostSweep().evaluate_tile(areas, lams, out, cache=None)
        for i, area in enumerate(areas):
            n_tr = area * 1.0e8 / (FIG8_FAB.design_density * lams * lams)
            want = transistor_cost_batch(
                n_tr, lams, FIG8_FAB, cache=None).cost_per_transistor_dollars
            assert np.array_equal(out[i], want)

    def test_die_area_sweep_argmin_matches_scalar_optimizer(self):
        from repro.core.optimization import (
            _DIE_AREA_SCAN_POINTS, optimal_feature_size_for_die_area)
        lams = np.linspace(0.25, 1.5, _DIE_AREA_SCAN_POINTS)
        out = np.empty((1, lams.size), dtype=np.float64)
        DieAreaCostSweep().evaluate_tile(np.array([1.0]), lams, out)
        k = int(np.argmin(np.where(np.isfinite(out[0]), out[0], np.inf)))
        lam_opt, cost_opt = optimal_feature_size_for_die_area(1.0)
        assert float(lams[k]) == lam_opt
        assert float(out[0, k]) == cost_opt

    def test_scenario_sweep_rows_are_the_per_x_curves(self):
        lams = np.linspace(0.3, 1.0, 15)
        rates = np.asarray(SCENARIO_2.growth_rates)
        out = np.empty((rates.size, lams.size), dtype=np.float64)
        ScenarioSweep(SCENARIO_2).evaluate_tile(rates, lams, out)
        for i, x in enumerate(SCENARIO_2.growth_rates):
            assert np.array_equal(out[i], SCENARIO_2._curve(lams, x))

    def test_fingerprints_distinguish_specs(self):
        prints = {FabCostSweep().fingerprint(),
                  DieAreaCostSweep().fingerprint(),
                  ScenarioSweep(SCENARIO_2).fingerprint()}
        assert len(prints) == 3
        # ...and are stable across instances (the manifest contract).
        assert FabCostSweep().fingerprint() == FabCostSweep().fingerprint()


class TestCheckpoint:
    def _interrupt_after(self, n):
        class Stop(Exception):
            pass

        def hook(tile, done, total):
            if done >= n:
                raise Stop

        return Stop, hook

    def test_interrupt_then_resume_is_bitwise(self, tmp_path):
        Stop, hook = self._interrupt_after(3)
        ckpt = tmp_path / "run"
        with pytest.raises(Stop):
            TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt).run(
                FabCostSweep(), COUNTS, LAMS, on_tile=hook)
        stored = sorted(p.name for p in (ckpt / "tiles").glob("*.npy"))
        assert stored == [f"tile_{i:06d}.npy" for i in range(3)]

        result = TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt,
                                  resume=True).run(
            FabCostSweep(), COUNTS, LAMS)
        assert result.stats["tiles_resumed"] == 3
        assert result.stats["tiles_computed"] == result.plan.n_tiles - 3
        assert np.array_equal(result.values, _reference_grid())

    def test_completed_dir_without_resume_refused(self, tmp_path):
        ckpt = tmp_path / "run"
        TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt).run(
            FabCostSweep(), COUNTS, LAMS)
        with pytest.raises(ParameterError, match="resume=True"):
            TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt).run(
                FabCostSweep(), COUNTS, LAMS)

    def test_mismatched_plan_refused_even_with_resume(self, tmp_path):
        ckpt = tmp_path / "run"
        TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt).run(
            FabCostSweep(), COUNTS, LAMS)
        for runner in (
                TiledSweepRunner(tile_size=32, checkpoint_dir=ckpt,
                                 resume=True),  # different tiling
                TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt,
                                 resume=True)):
            with pytest.raises(ParameterError, match="incompatible"):
                runner.run(FabCostSweep(), COUNTS[:-1], LAMS)
        with pytest.raises(ParameterError, match="incompatible"):
            TiledSweepRunner(tile_size=32, checkpoint_dir=ckpt,
                             resume=True).run(FabCostSweep(), COUNTS, LAMS)

    def test_different_spec_refused(self, tmp_path):
        ckpt = tmp_path / "run"
        TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt).run(
            FabCostSweep(), COUNTS, LAMS)
        with pytest.raises(ParameterError, match="incompatible"):
            TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt,
                             resume=True).run(
                DieAreaCostSweep(), COUNTS, LAMS)

    def test_resume_on_fresh_dir_computes_everything(self, tmp_path):
        result = TiledSweepRunner(tile_size=64,
                                  checkpoint_dir=tmp_path / "new",
                                  resume=True).run(
            FabCostSweep(), COUNTS, LAMS)
        assert result.stats["tiles_resumed"] == 0
        assert np.array_equal(result.values, _reference_grid())

    def test_corrupt_tile_is_recomputed(self, tmp_path):
        ckpt = tmp_path / "run"
        Stop, hook = self._interrupt_after(2)
        with pytest.raises(Stop):
            TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt).run(
                FabCostSweep(), COUNTS, LAMS, on_tile=hook)
        (ckpt / "tiles" / "tile_000001.npy").write_bytes(b"garbage")
        result = TiledSweepRunner(tile_size=64, checkpoint_dir=ckpt,
                                  resume=True).run(
            FabCostSweep(), COUNTS, LAMS)
        assert result.stats["tiles_resumed"] == 1  # only the intact one
        assert np.array_equal(result.values, _reference_grid())

    def test_killed_mid_write_leaves_no_partial_tile(self, tmp_path):
        # Atomicity contract: SweepCheckpoint.store goes through a
        # temp name + os.replace, so a tile file either exists whole
        # or not at all — a leftover temp is ignored by resume.
        ckpt = SweepCheckpoint(tmp_path, resume=True)
        plan = SweepPlan.for_grid(4, 4, tile_size=4)
        manifest_stub = {"version": 1, "n_rows": 4, "n_cols": 4,
                         "tile_rows": 1, "tile_cols": 4, "n_tiles": 4,
                         "rows_sha256": "x", "cols_sha256": "y",
                         "spec": "stub"}
        ckpt.prepare(manifest_stub)
        (ckpt.tiles_dir / ".tile_000002.tmp").write_bytes(b"partial")
        assert ckpt._completed(plan.n_tiles) == set()
        assert ckpt.load(plan.tile(2)) is None


class TestProcessBackendObservability:
    def test_worker_metrics_reparent(self):
        from repro import obs

        obs.enable()
        obs.clear_trace()
        obs.metrics.reset()
        try:
            with TiledSweepRunner(backend="process", workers=2,
                                  tile_size=100) as runner:
                runner.run(FabCostSweep(), COUNTS, LAMS)
            counters = obs.metrics.snapshot()["counters"]
        finally:
            obs.disable()
            obs.clear_trace()
            obs.metrics.reset()
        plan = SweepPlan.for_grid(COUNTS.size, LAMS.size, 100)
        assert counters["sweep.runs"] == 1
        assert counters["sweep.tiles"] == plan.n_tiles
        assert counters["sweep.points"] == COUNTS.size * LAMS.size
        assert counters["sweep.shm.blocks"] == 1
        # Worker-side batch-engine activity crossed the process
        # boundary via the capture/absorb protocol.
        assert counters.get("batch.evaluate.calls", 0) > 0


class TestShutdownHygiene:
    def test_process_sweep_interpreter_exit_is_clean(self):
        # End-to-end guard for the promoted ShmBlock's tracker
        # discipline: a full process-backend sweep must leave a fresh
        # interpreter with rc 0 and zero stderr (no resource-tracker
        # KeyErrors, no leaked-segment warnings at shutdown).
        code = "\n".join([
            "import numpy as np",
            "from repro.batch.sweep import FabCostSweep, TiledSweepRunner",
            "counts = np.geomspace(1e5, 1e7, 8)",
            "lams = np.linspace(0.3, 2.0, 9)",
            "with TiledSweepRunner(backend='process', workers=2,",
            "                      tile_size=24) as runner:",
            "    runner.run(FabCostSweep(), counts, lams)",
        ])
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.strip() == "", proc.stderr
