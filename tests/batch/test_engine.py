"""Tests for :mod:`repro.batch.engine` — each primitive against its
scalar reference, plus the composed eq.-(1) calls."""

import math

import numpy as np
import pytest

from repro.batch import (
    BatchCache,
    dies_per_wafer_batch,
    evaluate_batch,
    scaled_poisson_yield_batch,
    transistor_cost_batch,
    wafer_cost_batch,
)
from repro.batch.engine import (
    generations_batch,
    poisson_yield_batch,
    scenario1_cost_batch,
    scenario2_cost_batch,
    transistors_per_die_batch,
    yield_for_area_batch,
)
from repro.core import GenerationModel, TransistorCostModel, WaferCostModel
from repro.core.optimization import FIG8_FAB, transistor_cost_full
from repro.errors import ParameterError
from repro.geometry import Die, Wafer, dies_per_wafer_maly
from repro.technology.roadmap import die_area_trend_cm2
from repro.yieldsim import (
    BoseEinsteinYield,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    ReferenceAreaYield,
    SeedsYield,
    poisson_yield,
    scaled_poisson_yield,
)
from repro.yieldsim.models import YieldModel

LAMS = np.array([0.35, 0.5, 0.8, 1.0, 1.5, 2.0])
RTOL = 1e-12


def _model(**kwargs) -> TransistorCostModel:
    return TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                  cost_growth_rate=1.4),
        wafer=Wafer(radius_cm=7.5), **kwargs)


class TestGenerationsBatch:
    @pytest.mark.parametrize("law", list(GenerationModel))
    def test_matches_scalar_law(self, law):
        g = generations_batch(LAMS, 1.0, model=law)
        for k, lam in enumerate(LAMS):
            assert math.isclose(float(g[k]), law.generations(float(lam), 1.0),
                                rel_tol=RTOL, abs_tol=1e-15)

    def test_rejects_bad_shrink(self):
        with pytest.raises(ParameterError):
            generations_batch(LAMS, 1.0, shrink=1.5)

    def test_rejects_nonpositive_lam(self):
        with pytest.raises(ParameterError):
            generations_batch(np.array([0.5, -1.0]))


class TestWaferCostBatch:
    def test_pure_cost_parity(self):
        model = WaferCostModel(reference_cost_dollars=700.0,
                               cost_growth_rate=1.8)
        costs = wafer_cost_batch(model, LAMS, cache=None)
        for k, lam in enumerate(LAMS):
            assert math.isclose(float(costs[k]), model.pure_cost(float(lam)),
                                rel_tol=RTOL)

    def test_volume_cost_parity(self):
        model = WaferCostModel(reference_cost_dollars=700.0,
                               cost_growth_rate=1.8,
                               overhead_dollars=1e6)
        costs = wafer_cost_batch(model, LAMS, volume_wafers=2500.0,
                                 cache=None)
        for k, lam in enumerate(LAMS):
            assert math.isclose(
                float(costs[k]), model.cost_at_volume(float(lam), 2500.0),
                rel_tol=RTOL)


class TestDiesPerWaferBatch:
    def test_bitwise_parity_with_maly(self):
        wafer = Wafer(radius_cm=7.5)
        areas = np.geomspace(0.01, 50.0, 40)
        dies = [Die.from_area(float(a)) for a in areas]
        counts = dies_per_wafer_batch(wafer, [d.width_cm for d in dies],
                                      [d.height_cm for d in dies],
                                      cache=None)
        assert counts.dtype == np.int64
        assert counts.tolist() == [dies_per_wafer_maly(wafer, d)
                                   for d in dies]

    def test_scribe_and_edge_exclusion(self):
        wafer = Wafer(radius_cm=10.0, edge_exclusion_cm=0.4)
        die = Die(width_cm=0.9, height_cm=1.2, scribe_cm=0.02)
        counts = dies_per_wafer_batch(wafer, [die.width_cm], [die.height_cm],
                                      scribe_cm=0.02, cache=None)
        assert int(counts[0]) == dies_per_wafer_maly(wafer, die)

    def test_oversize_die_counts_zero(self):
        wafer = Wafer(radius_cm=5.0)
        counts = dies_per_wafer_batch(wafer, [11.0, 1.0], [1.0, 11.0],
                                      cache=None)
        assert counts.tolist() == [0, 0]

    def test_broadcasts_width_against_height(self):
        wafer = Wafer(radius_cm=7.5)
        counts = dies_per_wafer_batch(
            wafer, np.array([[0.5], [1.0]]), np.array([[0.5, 1.0]]),
            cache=None)
        assert counts.shape == (2, 2)
        for i, w in enumerate((0.5, 1.0)):
            for j, h in enumerate((0.5, 1.0)):
                assert int(counts[i, j]) == dies_per_wafer_maly(
                    wafer, Die(width_cm=w, height_cm=h))

    def test_absurd_row_count_refused(self):
        with pytest.raises(ParameterError):
            dies_per_wafer_batch(Wafer(radius_cm=7.5), [1.0], [1e-9],
                                 cache=None)


class TestYieldBatches:
    def test_transistors_per_die_bitwise(self):
        die = Die.from_area(1.21)
        got = transistors_per_die_batch(die.area_cm2, 152.0, LAMS)
        for k, lam in enumerate(LAMS):
            assert float(got[k]) == die.transistor_count(152.0, float(lam))

    def test_poisson_yield_parity(self):
        areas = np.array([0.0, 0.3, 1.0, 4.0])
        got = poisson_yield_batch(areas, 0.8)
        for k, a in enumerate(areas):
            assert math.isclose(float(got[k]), poisson_yield(float(a), 0.8),
                                rel_tol=RTOL)

    def test_scaled_poisson_parity(self):
        got = scaled_poisson_yield_batch(2e6, 152.0, 1.72, LAMS, 4.07)
        for k, lam in enumerate(LAMS):
            assert math.isclose(
                float(got[k]),
                scaled_poisson_yield(2e6, 152.0, 1.72, float(lam), 4.07),
                rel_tol=RTOL)

    def test_underflow_clamps_to_denormal(self):
        got = scaled_poisson_yield_batch(1e12, 152.0, 1.72,
                                         np.array([0.3]), 4.07)
        assert float(got[0]) == 5e-324
        assert float(got[0]) == scaled_poisson_yield(1e12, 152.0, 1.72,
                                                     0.3, 4.07)

    @pytest.mark.parametrize("model", [
        PoissonYield(), MurphyYield(), SeedsYield(),
        BoseEinsteinYield(n_layers=3), NegativeBinomialYield(alpha=1.5),
        ReferenceAreaYield(0.7, 1.0),
    ])
    def test_yield_for_area_dispatch(self, model):
        areas = np.array([0.0, 0.2, 1.0, 3.0])
        got = yield_for_area_batch(model, areas, 0.9)
        for k, a in enumerate(areas):
            assert math.isclose(
                float(got[k]), model.yield_for_area(float(a), 0.9),
                rel_tol=RTOL)

    def test_unknown_model_falls_back_elementwise(self):
        class Halved(YieldModel):
            def yield_from_expectation(self, m: float) -> float:
                return 1.0 / (1.0 + 0.5 * m)

        areas = np.array([[0.1, 1.0], [2.0, 3.0]])
        got = yield_for_area_batch(Halved(), areas, 1.0)
        assert got.shape == areas.shape
        for idx in np.ndindex(areas.shape):
            assert float(got[idx]) == Halved().yield_from_expectation(
                float(areas[idx]))

    def test_unknown_model_parity_through_evaluate_batch(self):
        # The fallback loop must carry a custom subclass through the
        # full composed eq.-(1) evaluation with scalar parity, not
        # just through the yield kernel in isolation.
        class Halved(YieldModel):
            def yield_from_expectation(self, m: float) -> float:
                """Toy 1/(1 + m/2) law exercising the fallback loop."""
                return 1.0 / (1.0 + 0.5 * m)

        model = TransistorCostModel(
            wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                      cost_growth_rate=1.8),
            wafer=Wafer(radius_cm=7.5))
        law = Halved()
        counts = np.geomspace(1e5, 5e6, 5)
        lams = np.linspace(0.4, 1.5, 4)
        result = evaluate_batch(
            model, n_transistors=counts[:, None],
            feature_sizes_um=lams[None, :], design_density=150.0,
            yield_model=law, defect_density_per_cm2=0.6, cache=None)
        for i, n_tr in enumerate(counts):
            for j, lam in enumerate(lams):
                scalar = model.evaluate(
                    n_transistors=float(n_tr), feature_size_um=float(lam),
                    design_density=150.0, yield_model=law,
                    defect_density_per_cm2=0.6)
                assert float(result.yield_value[i, j]) \
                    == scalar.yield_value
                assert int(result.dies_per_wafer[i, j]) \
                    == scalar.dies_per_wafer
                assert math.isclose(
                    float(result.cost_per_transistor_dollars[i, j]),
                    scalar.cost_per_transistor_dollars, rel_tol=RTOL)


class TestTransistorCostBatch:
    def test_fig8_grid_matches_scalar(self):
        lams = np.linspace(0.3, 2.0, 12)
        counts = np.geomspace(1e5, 1e7, 11)
        result = transistor_cost_batch(counts[:, None], lams[None, :],
                                       cache=None)
        assert result.shape == (11, 12)
        for i, n_tr in enumerate(counts):
            for j, lam in enumerate(lams):
                scalar = transistor_cost_full(float(n_tr), float(lam))
                batch = float(result.cost_per_transistor_dollars[i, j])
                if math.isinf(scalar):
                    assert math.isinf(batch)
                else:
                    assert math.isclose(scalar, batch, rel_tol=RTOL)

    def test_infeasible_cells_masked_not_raised(self):
        # 1e10 transistors at 2 µm is a die far larger than the wafer.
        result = transistor_cost_batch(np.array([1e10]), np.array([2.0]),
                                       cache=None)
        assert not result.feasible[0]
        assert math.isinf(result.cost_per_transistor_dollars[0])
        assert result.n_feasible == 0

    def test_derived_properties(self):
        result = transistor_cost_batch(np.array([1e6]), np.array([0.8]),
                                       cache=None)
        assert result.n_feasible == 1
        assert float(result.cost_per_transistor_microdollars[0]) == \
            float(result.cost_per_transistor_dollars[0]) * 1e6
        good = float(result.good_dies_per_wafer[0])
        assert good == float(result.dies_per_wafer[0]) \
            * float(result.yield_value[0])
        assert math.isclose(float(result.cost_per_good_die_dollars[0]),
                            float(result.wafer_cost_dollars[0]) / good,
                            rel_tol=RTOL)

    def test_cost_per_good_die_inf_where_no_dies(self):
        result = transistor_cost_batch(np.array([1e10]), np.array([2.0]),
                                       cache=None)
        assert math.isinf(result.cost_per_good_die_dollars[0])

    def test_cache_reuse_across_calls(self):
        cache = BatchCache()
        lams = np.linspace(0.4, 1.6, 8)
        transistor_cost_batch(np.array([[1e6]]), lams[None, :], cache=cache)
        before = cache.stats.misses
        transistor_cost_batch(np.array([[1e6]]), lams[None, :], cache=cache)
        assert cache.stats.misses == before
        assert cache.stats.hits >= 2  # dies-per-wafer and wafer-cost

    def test_rejects_bad_cache_argument(self):
        with pytest.raises(ParameterError):
            transistor_cost_batch(np.array([1e6]), np.array([1.0]),
                                  cache="yes please")


class TestEvaluateBatch:
    def test_yield_value_mode_matches_scalar(self):
        model = _model()
        result = evaluate_batch(model, n_transistors=np.array([2e6]),
                                feature_sizes_um=np.array([0.8]),
                                design_density=152.0, yield_value=0.6,
                                cache=None)
        scalar = model.evaluate(n_transistors=2e6, feature_size_um=0.8,
                                design_density=152.0, yield_value=0.6)
        assert int(result.dies_per_wafer[0]) == scalar.dies_per_wafer
        assert float(result.die_area_cm2[0]) == scalar.die_area_cm2
        assert math.isclose(float(result.cost_per_transistor_dollars[0]),
                            scalar.cost_per_transistor_dollars, rel_tol=RTOL)

    def test_reference_area_yield_mode(self):
        model = _model()
        law = ReferenceAreaYield(0.7, 1.0)
        result = evaluate_batch(model, n_transistors=np.array([2e6]),
                                feature_sizes_um=np.array([0.8]),
                                design_density=152.0, yield_model=law,
                                cache=None)
        scalar = model.evaluate(n_transistors=2e6, feature_size_um=0.8,
                                design_density=152.0, yield_model=law)
        assert math.isclose(float(result.yield_value[0]),
                            scalar.yield_value, rel_tol=RTOL)
        assert math.isclose(float(result.cost_per_transistor_dollars[0]),
                            scalar.cost_per_transistor_dollars, rel_tol=RTOL)

    def test_density_yield_mode(self):
        model = _model()
        result = evaluate_batch(model, n_transistors=np.array([2e6]),
                                feature_sizes_um=np.array([0.8]),
                                design_density=152.0,
                                yield_model=MurphyYield(),
                                defect_density_per_cm2=0.9, cache=None)
        scalar = model.evaluate(n_transistors=2e6, feature_size_um=0.8,
                                design_density=152.0,
                                yield_model=MurphyYield(),
                                defect_density_per_cm2=0.9)
        assert math.isclose(float(result.cost_per_transistor_dollars[0]),
                            scalar.cost_per_transistor_dollars, rel_tol=RTOL)

    def test_infeasible_masked_where_scalar_raises(self):
        model = _model()
        with pytest.raises(ParameterError):
            model.evaluate(n_transistors=1e10, feature_size_um=2.0,
                           design_density=152.0, yield_value=0.5)
        result = evaluate_batch(model, n_transistors=np.array([1e10]),
                                feature_sizes_um=np.array([2.0]),
                                design_density=152.0, yield_value=0.5,
                                cache=None)
        assert not result.feasible[0]
        assert math.isinf(result.cost_per_transistor_dollars[0])

    def test_yield_spec_validation(self):
        model = _model()
        with pytest.raises(ParameterError):
            evaluate_batch(model, n_transistors=np.array([1e6]),
                           feature_sizes_um=np.array([0.8]),
                           design_density=152.0, yield_value=0.5,
                           yield_model=PoissonYield(), cache=None)
        with pytest.raises(ParameterError):
            evaluate_batch(model, n_transistors=np.array([1e6]),
                           feature_sizes_um=np.array([0.8]),
                           design_density=152.0,
                           yield_model=PoissonYield(), cache=None)


class TestScenarioBatches:
    def test_scenario1_parity(self):
        model = _model()
        got = scenario1_cost_batch(model, LAMS, 30.0, cache=None)
        for k, lam in enumerate(LAMS):
            assert math.isclose(float(got[k]),
                                model.scenario1_cost(float(lam), 30.0),
                                rel_tol=RTOL)

    def test_scenario2_parity_with_default_trend(self):
        model = _model()
        got = scenario2_cost_batch(model, LAMS, 200.0,
                                   reference_yield=0.7, cache=None)
        for k, lam in enumerate(LAMS):
            expected = model.scenario2_cost(
                float(lam), 200.0, reference_yield=0.7,
                reference_area_cm2=1.0,
                die_area_cm2=die_area_trend_cm2(float(lam)))
            assert math.isclose(float(got[k]), expected, rel_tol=RTOL)

    def test_scenario2_with_explicit_areas(self):
        model = _model()
        areas = np.full(LAMS.shape, 0.8)
        got = scenario2_cost_batch(model, LAMS, 200.0,
                                   reference_yield=0.7, die_area_cm2=areas,
                                   cache=None)
        for k, lam in enumerate(LAMS):
            expected = model.scenario2_cost(
                float(lam), 200.0, reference_yield=0.7,
                reference_area_cm2=1.0, die_area_cm2=0.8)
            assert math.isclose(float(got[k]), expected, rel_tol=RTOL)


class TestArrayOut:
    def test_wafer_cost_out_buffer_is_returned_and_filled(self):
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8)
        lam = np.array([0.5, 0.8, 1.2])
        plain = wafer_cost_batch(model, lam, cache=None)
        out = np.empty(3, dtype=np.float64)
        got = wafer_cost_batch(model, lam, cache=None, out=out)
        assert got is out
        assert (out == plain).all()

    def test_out_shape_mismatch_rejected(self):
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8)
        with pytest.raises(ParameterError):
            wafer_cost_batch(model, [0.5, 0.8], cache=None,
                             out=np.empty(3))

    def test_die_counts_land_exactly_in_float64_out(self):
        wafer = Wafer(radius_cm=7.5)
        width = np.array([0.3, 0.8, 1.4, 20.0])  # last one never fits
        height = np.array([0.4, 0.6, 1.4, 20.0])
        counts = dies_per_wafer_batch(wafer, width, height, cache=None)
        out = np.empty(4, dtype=np.float64)
        got = dies_per_wafer_batch(wafer, width, height, cache=None,
                                   out=out)
        assert got is out
        assert counts.dtype == np.int64
        assert (out.astype(np.int64) == counts).all()

    def test_cache_hit_is_copied_into_out(self):
        # The cached array is frozen; out= must hand the caller a
        # writable copy, never the read-only cache entry itself.
        cache = BatchCache()
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8)
        lam = np.array([0.5, 0.8])
        first = wafer_cost_batch(model, lam, cache=cache)
        out = np.empty(2, dtype=np.float64)
        got = wafer_cost_batch(model, lam, cache=cache, out=out)
        assert got is out
        assert (out == first).all()
        out[0] = -1.0  # caller may scribble on its buffer...
        again = wafer_cost_batch(model, lam, cache=cache)
        assert again[0] == first[0]  # ...without corrupting the cache

    def test_yield_out_buffer(self):
        y = scaled_poisson_yield_batch([1e6, 2e6], 150.0, 1.0,
                                       [0.8, 0.8], 3.0)
        out = np.empty(2, dtype=np.float64)
        got = scaled_poisson_yield_batch([1e6, 2e6], 150.0, 1.0,
                                         [0.8, 0.8], 3.0, out=out)
        assert got is out
        assert (out == y).all()

    def test_out_broadcastable_shape_still_rejected(self):
        # A (1, 2) buffer would broadcast silently under plain numpy
        # assignment; the out= contract is exact shape or an error.
        with pytest.raises(ParameterError):
            scaled_poisson_yield_batch([1e6, 2e6], 150.0, 1.0,
                                       [0.8, 0.8], 3.0,
                                       out=np.empty((1, 2)))
        wafer = Wafer(radius_cm=7.5)
        with pytest.raises(ParameterError):
            dies_per_wafer_batch(wafer, [0.3, 0.8], [0.4, 0.6],
                                 cache=None, out=np.empty((2, 1)))

    def test_out_non_float64_rejected(self):
        # ...and never a silent cast: a float32 or integer buffer is
        # refused outright instead of degrading the result's precision.
        model = WaferCostModel(reference_cost_dollars=500.0,
                               cost_growth_rate=1.8)
        for bad_dtype in (np.float32, np.int64):
            with pytest.raises(ParameterError):
                wafer_cost_batch(model, [0.5, 0.8], cache=None,
                                 out=np.empty(2, dtype=bad_dtype))
        wafer = Wafer(radius_cm=7.5)
        with pytest.raises(ParameterError):
            dies_per_wafer_batch(wafer, [0.3], [0.4], cache=None,
                                 out=np.empty(1, dtype=np.float32))
        with pytest.raises(ParameterError):
            scaled_poisson_yield_batch([1e6], 150.0, 1.0, [0.8], 3.0,
                                       out=np.empty(1, dtype=np.int32))
