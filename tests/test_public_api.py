"""Public API surface: exports resolve, and everything is documented.

Deliverable-level guarantees: every name in every ``__all__`` exists,
every public class/function/method carries a docstring, and the
top-level package re-exports the advertised core objects.
"""

import inspect
import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.geometry",
    "repro.yieldsim",
    "repro.technology",
    "repro.manufacturing",
    "repro.system",
    "repro.analysis",
    "repro.batch",
    "repro.obs",
    "repro.serve",
    "repro.replay",
]

MODULES = [
    "repro.units",
    "repro.errors",
    "repro.cli",
    "repro.core.wafer_cost",
    "repro.core.transistor_cost",
    "repro.core.scenarios",
    "repro.core.optimization",
    "repro.core.diversity",
    "repro.core.sensitivity",
    "repro.core.trajectory",
    "repro.core.pricing",
    "repro.core.shrink",
    "repro.geometry.die",
    "repro.geometry.wafer",
    "repro.geometry.packing",
    "repro.yieldsim.models",
    "repro.yieldsim.defects",
    "repro.yieldsim.critical_area",
    "repro.yieldsim.monte_carlo",
    "repro.yieldsim.parallel",
    "repro.yieldsim.redundancy",
    "repro.yieldsim.parametric",
    "repro.yieldsim.learning",
    "repro.yieldsim.estimation",
    "repro.yieldsim.budget",
    "repro.yieldsim.spatial",
    "repro.yieldsim.selection",
    "repro.batch.engine",
    "repro.batch.cache",
    "repro.batch.crossval",
    "repro.obs.state",
    "repro.obs.trace",
    "repro.obs.registry",
    "repro.obs.capture",
    "repro.obs.recording",
    "repro.serve.query",
    "repro.serve.executor",
    "repro.serve.scheduler",
    "repro.serve.service",
    "repro.serve.aio",
    "repro.serve.io",
    "repro.serve.tuning",
    "repro.replay.engine",
    "repro.replay.tuning",
    "repro.replay.rundir",
    "repro.technology.roadmap",
    "repro.technology.fabline",
    "repro.technology.density",
    "repro.technology.products",
    "repro.technology.sia_roadmap",
    "repro.technology.scaling",
    "repro.manufacturing.volume",
    "repro.manufacturing.equipment",
    "repro.manufacturing.product_mix",
    "repro.manufacturing.test_cost",
    "repro.manufacturing.cost_of_ownership",
    "repro.manufacturing.throughput",
    "repro.manufacturing.investment",
    "repro.system.partitioning",
    "repro.system.mcm",
    "repro.system.kgd",
    "repro.system.cosynthesis",
    "repro.analysis.figures",
    "repro.analysis.tables",
    "repro.analysis.report",
    "repro.analysis.wafermap",
    "repro.analysis.reproduce",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for export in module.__all__:
        assert hasattr(module, export), f"{name}.{export} missing"


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, \
        f"{name} lacks a module docstring"


def _public_members(module):
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield attr_name, obj


@pytest.mark.parametrize("name", MODULES)
def test_every_public_item_has_docstring(name):
    module = importlib.import_module(name)
    undocumented = []
    for attr_name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(attr_name)
        if inspect.isclass(obj):
            for meth_name, meth in inspect.getmembers(obj,
                                                      inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{attr_name}.{meth_name}")
    assert not undocumented, f"{name}: undocumented public items: " \
                             f"{undocumented}"


def test_top_level_reexports():
    for name in ("TransistorCostModel", "WaferCostModel", "Wafer", "Die",
                 "PoissonYield", "SCENARIO_1", "SCENARIO_2",
                 "CompoundPoissonGamma", "HierarchicalYieldModel",
                 "MixtureYieldModel", "fit_yield_models",
                 "FittedYieldLaw", "ModelSelectionReport",
                 "evaluate_catalog", "GenerationModel", "LotResult",
                 "cross_validate_yield_batch",
                 "cross_validate_model_suite",
                 "obs", "span", "metrics", "get_trace",
                 "serve", "CostService", "AsyncCostService",
                 "FabCostQuery", "ModelCostQuery", "ServedCost",
                 "TuningProfile", "replay", "replay_log",
                 "learn_profile"):
        assert hasattr(repro, name)


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
