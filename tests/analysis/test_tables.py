"""Table data generators."""

import math

import pytest

from repro.analysis import table1, table2, table3
from repro.analysis.tables import TableData
from repro.errors import ParameterError


class TestTableData:
    def test_column_extraction(self):
        t = TableData(name="t", headers=("a", "b"),
                      rows=((1, 2), (3, 4)))
        assert t.column("b") == [2, 4]

    def test_unknown_column_rejected(self):
        t = TableData(name="t", headers=("a",), rows=((1,),))
        with pytest.raises(ParameterError):
            t.column("z")

    def test_row_shape_validated(self):
        with pytest.raises(ParameterError):
            TableData(name="t", headers=("a", "b"), rows=((1,),))


class TestTable1:
    def test_six_rows(self):
        assert len(table1().rows) == 6

    def test_recomputed_column_matches_published(self):
        t = table1()
        for pub, rec in zip(t.column("d_d published"),
                            t.column("d_d recomputed")):
            assert rec == pytest.approx(pub, rel=0.01)


class TestTable2:
    def test_seventeen_rows(self):
        assert len(table2().rows) == 17

    def test_density_column_span(self):
        dds = table2().column("d_d [lambda^2/tr]")
        assert min(dds) == pytest.approx(17.80)
        assert max(dds) == pytest.approx(2631.04)


class TestTable3:
    @pytest.fixture(scope="class")
    def t3(self):
        return table3()

    def test_seventeen_rows_with_model_and_paper_columns(self, t3):
        assert len(t3.rows) == 17
        assert "C_tr model [$1e-6]" in t3.headers
        assert "C_tr paper [$1e-6]" in t3.headers

    def test_model_values_positive(self, t3):
        assert all(v > 0 for v in t3.column("C_tr model [$1e-6]"))

    def test_ratios_reasonable_for_non_reconstructed(self, t3):
        names = t3.column("IC type")
        ratios = t3.column("model/paper")
        for name, ratio in zip(names, ratios):
            if "reconstructed" in name or math.isnan(ratio):
                continue
            assert 0.5 < ratio < 2.0, name

    def test_notes_report_agreement(self, t3):
        assert "log error" in t3.notes
