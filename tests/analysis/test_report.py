"""ASCII rendering: structural checks only (presentation code)."""

import numpy as np
import pytest

from repro.analysis import ascii_chart, ascii_table, render_contour_grid
from repro.errors import ParameterError


class TestChart:
    def test_renders_all_series_markers(self):
        x = np.linspace(0, 1, 20)
        out = ascii_chart(x, {"a": x, "b": x ** 2})
        assert "*" in out and "o" in out
        assert "*=a" in out and "o=b" in out

    def test_dimensions(self):
        x = np.linspace(0, 1, 10)
        out = ascii_chart(x, {"s": x}, width=40, height=10)
        lines = out.splitlines()
        # height rows + axis + x labels + legend (+ optional labels line)
        assert len(lines) >= 12
        assert max(len(l) for l in lines) <= 40 + 14

    def test_log_scale_rejects_nonpositive(self):
        x = np.linspace(0, 1, 5)
        with pytest.raises(ParameterError):
            ascii_chart(x, {"s": np.array([1.0, 2.0, 0.0, 3.0, 4.0])},
                        log_y=True)

    def test_log_scale_renders(self):
        x = np.linspace(0, 1, 5)
        out = ascii_chart(x, {"s": np.geomspace(1, 1e6, 5)}, log_y=True,
                          x_label="t", y_label="cost")
        assert "[log scale]" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            ascii_chart([0, 1, 2], {"s": [1.0, 2.0]})

    def test_needs_points_and_series(self):
        with pytest.raises(ParameterError):
            ascii_chart([0], {"s": [1.0]})
        with pytest.raises(ParameterError):
            ascii_chart([0, 1], {})

    def test_constant_series_does_not_crash(self):
        out = ascii_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in out


class TestTable:
    def test_alignment_and_content(self):
        out = ascii_table(("name", "value"),
                          [("alpha", 1.5), ("beta-long-name", 22.125)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(l) == len(lines[0]) for l in lines[1:2])
        assert "alpha" in out and "22.12" in out

    def test_float_formatting(self):
        out = ascii_table(("v",), [(1.23456789,)], float_format="{:.2f}")
        assert "1.23" in out

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            ascii_table(("a", "b"), [(1,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ParameterError):
            ascii_table((), [])

    def test_non_float_cells_stringified(self):
        out = ascii_table(("a",), [("text",), (7,)])
        assert "text" in out and "7" in out


class TestContourGrid:
    def test_marks_levels_and_infeasible(self):
        g = np.array([[1.0, 2.0], [4.0, np.inf]])
        out = render_contour_grid(g, [1.0, 4.0])
        assert "0" in out  # level-0 marker
        assert "1" in out  # level-1 marker
        assert "." in out  # infeasible cell
        assert "levels:" in out

    def test_y_axis_top_is_last_row(self):
        g = np.array([[1.0], [100.0]])
        out = render_contour_grid(g, [100.0], y_values=[0.0, 1.0])
        first_data_line = out.splitlines()[0]
        assert "0" in first_data_line  # the 100.0 cell (row 1) renders on top

    def test_validation(self):
        with pytest.raises(ParameterError):
            render_contour_grid(np.zeros(3), [1.0])
        with pytest.raises(ParameterError):
            render_contour_grid(np.ones((2, 2)), [])
        with pytest.raises(ParameterError):
            render_contour_grid(np.ones((2, 2)), [1.0] * 11)
        with pytest.raises(ParameterError):
            render_contour_grid(np.ones((2, 2)), [-1.0])
