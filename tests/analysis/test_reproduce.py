"""The one-shot reproduction report generator."""

import io

import pytest

from repro.analysis.reproduce import main, write_report


@pytest.fixture(scope="module")
def report_text():
    buffer = io.StringIO()
    write_report(buffer)
    return buffer.getvalue()


class TestReportContent:
    def test_headline_checks_present(self, report_text):
        assert "Headline checks" in report_text
        assert "Table 3 mean |log error|" in report_text
        assert "Product-mix penalty" in report_text

    def test_every_figure_section_present(self, report_text):
        for fig in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4",
                    "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
            assert f"## {fig}" in report_text

    def test_every_table_section_present(self, report_text):
        for table in ("Table 1", "Table 2", "Table 3"):
            assert f"## {table}" in report_text

    def test_report_is_substantial(self, report_text):
        assert len(report_text.splitlines()) > 300


class TestMain:
    def test_writes_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main([str(target)]) == 0
        assert target.exists()
        assert "Headline checks" in target.read_text()
        assert "report written" in capsys.readouterr().out

    def test_writes_to_stdout(self, capsys):
        assert main([]) == 0
        assert "Headline checks" in capsys.readouterr().out
