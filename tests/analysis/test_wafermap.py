"""ASCII wafer-map rendering."""

import numpy as np
import pytest

from repro.analysis import render_lot_summary, render_wafer_map
from repro.errors import ParameterError
from repro.geometry import Die, Wafer
from repro.yieldsim import SpotDefectSimulator
from repro.yieldsim.monte_carlo import WaferMap


@pytest.fixture(scope="module")
def lot():
    sim = SpotDefectSimulator(Wafer(radius_cm=7.5), Die.square(1.0),
                              defect_density_per_cm2=0.8)
    return sim.simulate_lot(4, np.random.default_rng(9))


class TestWaferMapRendering:
    def test_marks_good_and_bad(self, lot):
        out = render_wafer_map(lot[0])
        assert "." in out
        assert "X" in out
        assert "good" in out.splitlines()[-1]

    def test_counts_mode(self, lot):
        out = render_wafer_map(lot[0], show_counts=True)
        assert "X" not in out.splitlines()[0]
        # Some die should carry a digit with this density.
        assert any(ch.isdigit() for ch in out.split("\n")[0] + out)

    def test_circular_silhouette(self, lot):
        """Edge rows must be narrower than center rows."""
        lines = [l for l in render_wafer_map(lot[0]).splitlines()[:-1]
                 if l.strip()]
        widths = [len(l.strip()) for l in lines]
        assert widths[0] < max(widths)
        assert widths[-1] < max(widths)

    def test_summary_counts_match_map_object(self, lot):
        wmap = lot[0]
        summary = render_wafer_map(wmap).splitlines()[-1]
        assert f"{wmap.n_good}/{wmap.n_dies}" in summary

    def test_empty_map_rejected(self):
        empty = WaferMap(die_centers_cm=np.empty((0, 2)),
                         defect_counts=np.empty(0, dtype=int),
                         n_defects_total=0)
        with pytest.raises(ParameterError):
            render_wafer_map(empty)


class TestLotSummary:
    def test_one_line_per_wafer_plus_total(self, lot):
        out = render_lot_summary(lot)
        lines = out.splitlines()
        assert len(lines) == len(lot) + 1
        assert lines[-1].startswith("lot:")

    def test_empty_lot_rejected(self):
        with pytest.raises(ParameterError):
            render_lot_summary([])
