"""Figure data generators: every series the paper plots."""

import numpy as np
import pytest

from repro.analysis import (
    fig1_feature_size,
    fig2_fab_cost,
    fig3_die_size,
    fig4_steps_and_defects,
    fig5_defect_distribution,
    fig6_scenario1,
    fig7_scenario2,
    fig8_contours,
)
from repro.analysis.figures import FigureData
from repro.errors import ParameterError

ALL_SIMPLE_FIGURES = [
    fig1_feature_size, fig2_fab_cost, fig3_die_size,
    fig4_steps_and_defects, fig5_defect_distribution,
    fig6_scenario1, fig7_scenario2,
]


class TestCommonContract:
    @pytest.mark.parametrize("fig_fn", ALL_SIMPLE_FIGURES,
                             ids=lambda f: f.__name__)
    def test_series_aligned_with_x(self, fig_fn):
        data = fig_fn()
        assert isinstance(data, FigureData)
        for name, ys in data.series.items():
            assert ys.shape == data.x.shape, name
            assert np.all(np.isfinite(ys)), name

    def test_figuredata_validates_shapes(self):
        with pytest.raises(ParameterError):
            FigureData(name="bad", x=np.arange(3),
                       series={"s": np.arange(4).astype(float)},
                       x_label="x", y_label="y")
        with pytest.raises(ParameterError):
            FigureData(name="bad", x=np.arange(3), series={},
                       x_label="x", y_label="y")


class TestFig1:
    def test_feature_size_shrinks_over_time(self):
        data = fig1_feature_size()
        lam = data.series["feature size"]
        assert np.all(np.diff(lam) < 0)

    def test_1989_anchor(self):
        data = fig1_feature_size(year_lo=1989.0, year_hi=1989.0 + 1e-9,
                                 n_points=2)
        assert data.series["feature size"][0] == pytest.approx(1.0)


class TestFig2:
    def test_both_series_grow(self):
        data = fig2_fab_cost()
        assert np.all(np.diff(data.series["fab cost [$M]"]) > 0)
        assert np.all(np.diff(data.series["wafer cost [$]"]) >= 0)

    def test_notes_quote_extractions(self):
        data = fig2_fab_cost()
        assert "1.2-1.4" in data.notes


class TestFig3:
    def test_die_area_grows_with_shrink(self):
        data = fig3_die_size()
        # x is lambda ascending, so area must be descending.
        assert np.all(np.diff(data.series["die area"]) < 0)


class TestFig4:
    def test_steps_up_density_down(self):
        data = fig4_steps_and_defects()
        lam = data.x  # descending generations list filtered <= 1.0
        steps = data.series["process steps"]
        dens = data.series["required defect density [1/cm^2]"]
        order = np.argsort(lam)
        assert np.all(np.diff(steps[order]) < 0)   # more steps at smaller lam
        assert np.all(np.diff(dens[order]) > 0)    # cleaner fab at smaller lam


class TestFig5:
    def test_pdf_peaks_at_r0(self):
        data = fig5_defect_distribution(r0_um=0.2)
        pdf = data.series["pdf f(R)"]
        peak_r = data.x[int(np.argmax(pdf))]
        assert peak_r == pytest.approx(0.2, abs=0.05)

    def test_survival_monotone(self):
        data = fig5_defect_distribution()
        surv = data.series["P(R > r) (critical fraction)"]
        assert np.all(np.diff(surv) <= 1e-12)


class TestFig6:
    def test_three_x_curves_all_decreasing_in_lambda(self):
        data = fig6_scenario1()
        assert set(data.series) == {"X=1.1", "X=1.2", "X=1.3"}
        for ys in data.series.values():
            assert np.all(np.diff(ys) > 0)  # increasing in lambda = shrink pays

    def test_x_ordering_at_fine_node(self):
        data = fig6_scenario1()
        assert data.series["X=1.3"][0] > data.series["X=1.1"][0]


class TestFig7:
    def test_cost_rises_as_lambda_shrinks(self):
        """The paper's central exhibit."""
        data = fig7_scenario2()
        for ys in data.series.values():
            assert ys[0] > ys[-1]  # cost at 0.25 um above cost at 1.0 um

    def test_scenario2_above_scenario1(self):
        f6 = fig6_scenario1()
        f7 = fig7_scenario2()
        assert f7.series["X=1.8"].min() > f6.series["X=1.3"].max()


class TestFig8:
    def test_landscape_and_optima(self):
        data, landscape = fig8_contours(n_lam=16, n_counts=16)
        assert len(data.x) > 5
        lam_opt = data.series["lambda_opt [um]"]
        assert np.all((0.3 <= lam_opt) & (lam_opt <= 2.0))
        assert landscape.grid().shape == (16, 16)

    def test_optimal_lambda_grows_with_count(self):
        data, _ = fig8_contours(n_lam=16, n_counts=16)
        lam_opt = data.series["lambda_opt [um]"]
        assert lam_opt[-1] >= lam_opt[0]
