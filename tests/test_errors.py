"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    CapacityError,
    ConvergenceError,
    GeometryError,
    ParameterError,
    ReproError,
)


@pytest.mark.parametrize("exc", [
    ParameterError, GeometryError, ConvergenceError, CapacityError,
])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_parameter_error_is_value_error():
    # Callers used to stdlib semantics can still catch ValueError.
    assert issubclass(ParameterError, ValueError)


def test_geometry_error_is_value_error():
    assert issubclass(GeometryError, ValueError)


def test_convergence_error_is_runtime_error():
    assert issubclass(ConvergenceError, RuntimeError)


def test_capacity_error_is_value_error():
    assert issubclass(CapacityError, ValueError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise GeometryError("die too big")
