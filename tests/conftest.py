"""Shared fixtures: environment-selected serve backend matrix.

CI runs the serve suites twice — once as-is, once with
``REPRO_SERVE_BACKEND=process REPRO_SERVE_WORKERS=2`` — so every
scheduler/service/parity test doubles as a process-backend test
without duplicating the files (the same idiom as
``REPRO_TEST_WORKERS`` for the Monte Carlo shards).  The injection
uses ``setdefault``: tests that pin ``backend=``/``workers=``
explicitly keep their pinned values.
"""

import os

import pytest

_BACKEND = os.environ.get("REPRO_SERVE_BACKEND")
_WORKERS = os.environ.get("REPRO_SERVE_WORKERS")


@pytest.fixture(autouse=True, scope="session")
def _serve_backend_from_env():
    if not (_BACKEND or _WORKERS):
        yield
        return
    from repro.serve.scheduler import MicroBatchScheduler

    original = MicroBatchScheduler.__init__

    def injected(self, **kwargs):
        if _BACKEND:
            kwargs.setdefault("backend", _BACKEND)
        if _WORKERS:
            kwargs.setdefault("workers", int(_WORKERS))
        original(self, **kwargs)

    MicroBatchScheduler.__init__ = injected
    try:
        yield
    finally:
        MicroBatchScheduler.__init__ = original
