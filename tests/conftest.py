"""Shared fixtures: environment-selected serve/sweep backend matrix.

CI runs the serve suites twice — once as-is, once with
``REPRO_SERVE_BACKEND=process REPRO_SERVE_WORKERS=2`` — so every
scheduler/service/parity test doubles as a process-backend test
without duplicating the files (the same idiom as
``REPRO_TEST_WORKERS`` for the Monte Carlo shards).
``REPRO_SWEEP_BACKEND``/``REPRO_SWEEP_WORKERS`` do the same for every
test that goes through :class:`repro.batch.sweep.TiledSweepRunner` —
the sweep CI job reruns the whole sweep surface on the shm process
pool, and the bitwise-parity assertions must keep holding.  Both
injections use ``setdefault``: tests that pin ``backend=``/
``workers=`` explicitly keep their pinned values.
"""

import os

import pytest

_BACKEND = os.environ.get("REPRO_SERVE_BACKEND")
_WORKERS = os.environ.get("REPRO_SERVE_WORKERS")
_SWEEP_BACKEND = os.environ.get("REPRO_SWEEP_BACKEND")
_SWEEP_WORKERS = os.environ.get("REPRO_SWEEP_WORKERS")


@pytest.fixture(autouse=True, scope="session")
def _serve_backend_from_env():
    if not (_BACKEND or _WORKERS):
        yield
        return
    from repro.serve.scheduler import MicroBatchScheduler

    original = MicroBatchScheduler.__init__

    def injected(self, **kwargs):
        if _BACKEND:
            kwargs.setdefault("backend", _BACKEND)
        if _WORKERS:
            kwargs.setdefault("workers", int(_WORKERS))
        original(self, **kwargs)

    MicroBatchScheduler.__init__ = injected
    try:
        yield
    finally:
        MicroBatchScheduler.__init__ = original


@pytest.fixture(autouse=True, scope="session")
def _sweep_backend_from_env():
    if not (_SWEEP_BACKEND or _SWEEP_WORKERS):
        yield
        return
    from repro.batch.sweep import TiledSweepRunner

    original = TiledSweepRunner.__init__

    def injected(self, **kwargs):
        if _SWEEP_BACKEND:
            kwargs.setdefault("backend", _SWEEP_BACKEND)
        if _SWEEP_WORKERS:
            kwargs.setdefault("workers", int(_SWEEP_WORKERS))
        original(self, **kwargs)

    TiledSweepRunner.__init__ = injected
    try:
        yield
    finally:
        TiledSweepRunner.__init__ = original
