"""Aspect-ratio optimization and multi-project wafers."""

import pytest

from repro.errors import GeometryError, ParameterError
from repro.geometry import (
    Die,
    ProjectRequest,
    Wafer,
    aspect_ratio_penalty,
    best_aspect_ratio,
    dies_per_wafer_maly,
    multi_project_allocation,
    mpw_cost_per_die,
)


@pytest.fixture
def wafer():
    return Wafer(radius_cm=7.5)


class TestAspectRatio:
    def test_best_beats_or_ties_square(self, wafer):
        for area in (0.5, 1.0, 2.0, 4.0):
            ratio, count = best_aspect_ratio(wafer, area)
            square = dies_per_wafer_maly(wafer, Die.from_area(area))
            assert count >= square

    def test_best_count_is_achievable(self, wafer):
        ratio, count = best_aspect_ratio(wafer, 2.0)
        die = Die.from_area(2.0, aspect_ratio=ratio)
        assert dies_per_wafer_maly(wafer, die) == count

    def test_penalty_zero_at_best(self, wafer):
        ratio, _ = best_aspect_ratio(wafer, 1.5)
        assert aspect_ratio_penalty(wafer, 1.5, ratio) == pytest.approx(0.0)

    def test_extreme_ratio_penalized(self, wafer):
        # A 16:1 sliver of 2 cm^2 wastes wafer edge badly.
        penalty = aspect_ratio_penalty(wafer, 2.0, 16.0)
        assert penalty > 0.05

    def test_oversized_area_raises(self):
        with pytest.raises(GeometryError):
            best_aspect_ratio(Wafer(radius_cm=2.0), 50.0)

    def test_validation(self, wafer):
        with pytest.raises(ParameterError):
            best_aspect_ratio(wafer, 1.0, ratio_lo=2.0, ratio_hi=1.0)
        with pytest.raises(ParameterError):
            best_aspect_ratio(wafer, 1.0, n_ratios=2)


class TestMultiProjectWafer:
    @pytest.fixture
    def requests(self):
        return (
            ProjectRequest(name="asic-a", die=Die.square(1.0),
                           dies_wanted=30),
            ProjectRequest(name="asic-b", die=Die.square(0.7),
                           dies_wanted=40),
            ProjectRequest(name="testchip", die=Die.square(0.4),
                           dies_wanted=50),
        )

    def test_everyone_served_on_big_wafer(self, wafer, requests):
        allocations = multi_project_allocation(wafer, requests, 1500.0)
        assert len(allocations) == 3
        assert all(a.satisfied for a in allocations)

    def test_cost_shares_sum_to_total_when_all_area_used(self, wafer, requests):
        allocations = multi_project_allocation(wafer, requests, 1500.0)
        total = sum(a.cost_share_dollars for a in allocations)
        assert total == pytest.approx(1500.0, rel=1e-9)

    def test_shares_proportional_to_silicon(self, wafer, requests):
        allocations = multi_project_allocation(wafer, requests, 1000.0)
        for a in allocations:
            expected = a.dies_obtained * a.request.die.area_cm2
            got_fraction = a.cost_share_dollars / 1000.0
            total_area = sum(x.dies_obtained * x.request.die.area_cm2
                             for x in allocations)
            assert got_fraction == pytest.approx(expected / total_area)

    def test_mpw_cost_per_die(self, wafer, requests):
        allocations = multi_project_allocation(wafer, requests, 1500.0)
        for a in allocations:
            per_die = mpw_cost_per_die(a)
            assert per_die == pytest.approx(
                a.cost_share_dollars / a.dies_obtained)

    def test_mpw_beats_solo_wafer_for_small_need(self, wafer):
        """The Phase-2 story: a 30-die project sharing a wafer pays far
        less than buying the whole wafer."""
        req = ProjectRequest(name="solo", die=Die.square(1.0),
                             dies_wanted=30)
        filler = ProjectRequest(name="filler", die=Die.square(0.5),
                                dies_wanted=300)
        allocations = multi_project_allocation(wafer, (req, filler), 1500.0)
        mine = next(a for a in allocations if a.request.name == "solo")
        assert mine.satisfied
        assert mine.cost_share_dollars < 1500.0 * 0.6

    def test_empty_requests_rejected(self, wafer):
        with pytest.raises(ParameterError):
            multi_project_allocation(wafer, (), 1000.0)

    def test_zero_dies_project_has_no_unit_cost(self, wafer):
        huge = ProjectRequest(name="toolarge", die=Die.square(9.0),
                              dies_wanted=1)
        small = ProjectRequest(name="small", die=Die.square(0.5),
                               dies_wanted=10)
        allocations = multi_project_allocation(wafer, (huge, small), 1000.0)
        big_alloc = next(a for a in allocations
                         if a.request.name == "toolarge")
        if big_alloc.dies_obtained == 0:
            with pytest.raises(ParameterError):
                mpw_cost_per_die(big_alloc)

    def test_request_validation(self):
        with pytest.raises(ParameterError):
            ProjectRequest(name="bad", die=Die.square(1.0), dies_wanted=0)
