"""Die geometry: construction, eq. (5), scribe handling."""

import math

import pytest

from repro.errors import GeometryError, ParameterError
from repro.geometry import Die


class TestConstruction:
    def test_square(self):
        die = Die.square(1.2)
        assert die.width_cm == die.height_cm == 1.2
        assert die.area_cm2 == pytest.approx(1.44)

    def test_from_area_square(self):
        die = Die.from_area(2.25)
        assert die.width_cm == pytest.approx(1.5)
        assert die.aspect_ratio == pytest.approx(1.0)

    def test_from_area_preserves_area_with_aspect(self):
        die = Die.from_area(3.0, aspect_ratio=2.0)
        assert die.area_cm2 == pytest.approx(3.0)
        assert die.aspect_ratio == pytest.approx(2.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ParameterError):
            Die(width_cm=0.0, height_cm=1.0)
        with pytest.raises(ParameterError):
            Die(width_cm=1.0, height_cm=-1.0)

    def test_rejects_negative_scribe(self):
        with pytest.raises(ParameterError):
            Die(width_cm=1.0, height_cm=1.0, scribe_cm=-0.01)


class TestEquationFive:
    def test_from_transistor_count_matches_hand_calc(self):
        # 3.1M transistors at d_d=150, lambda=0.8: A = 3.1e6*150*0.64 um^2
        die = Die.from_transistor_count(3.1e6, 150.0, 0.8)
        expected_cm2 = 3.1e6 * 150.0 * 0.64 / 1e8
        assert die.area_cm2 == pytest.approx(expected_cm2)

    def test_transistor_count_inverts_from_transistor_count(self):
        die = Die.from_transistor_count(1.0e6, 200.0, 0.5)
        assert die.transistor_count(200.0, 0.5) == pytest.approx(1.0e6)

    def test_count_scales_inverse_square_of_lambda(self):
        die = Die.square(1.0)
        n1 = die.transistor_count(100.0, 1.0)
        n2 = die.transistor_count(100.0, 0.5)
        assert n2 == pytest.approx(4.0 * n1)

    def test_count_scales_inverse_of_density(self):
        die = Die.square(1.0)
        assert die.transistor_count(50.0, 1.0) == pytest.approx(
            2.0 * die.transistor_count(100.0, 1.0))

    def test_one_cm2_at_1um_dd1_is_1e8_transistors(self):
        # 1 cm^2 = 1e8 um^2 = 1e8 lambda^2 squares at lambda = 1 um.
        die = Die.square(1.0)
        assert die.transistor_count(1.0, 1.0) == pytest.approx(1.0e8)


class TestDerivedProperties:
    def test_pitch_includes_scribe(self):
        die = Die(width_cm=1.0, height_cm=0.8, scribe_cm=0.02)
        assert die.pitch_x_cm == pytest.approx(1.02)
        assert die.pitch_y_cm == pytest.approx(0.82)

    def test_diagonal(self):
        die = Die(width_cm=3.0, height_cm=4.0)
        assert die.diagonal_cm == pytest.approx(5.0)

    def test_area_mm2(self):
        assert Die.square(1.0).area_mm2 == pytest.approx(100.0)

    def test_rotated_swaps_dimensions(self):
        die = Die(width_cm=2.0, height_cm=1.0, scribe_cm=0.05)
        rot = die.rotated()
        assert (rot.width_cm, rot.height_cm) == (1.0, 2.0)
        assert rot.scribe_cm == 0.05
        assert rot.area_cm2 == pytest.approx(die.area_cm2)


class TestFitsRadius:
    def test_fits(self):
        Die(width_cm=3.0, height_cm=4.0).check_fits_radius(2.5)  # diag 5 = 2R

    def test_does_not_fit(self):
        with pytest.raises(GeometryError):
            Die(width_cm=3.0, height_cm=4.0).check_fits_radius(2.49)
