"""Dies-per-wafer: eq. (4), exact grid, and area approximations."""

import math

import pytest

from repro.errors import GeometryError, ParameterError
from repro.geometry import (
    Die,
    Wafer,
    best_grid_offset,
    dies_per_wafer_area_approx,
    dies_per_wafer_exact,
    dies_per_wafer_maly,
)


@pytest.fixture
def paper_wafer():
    """The 7.5 cm wafer of all the paper's scenarios."""
    return Wafer(radius_cm=7.5)


class TestWaferConstruction:
    def test_from_diameter(self):
        w = Wafer.from_diameter_inches(6.0)
        assert w.radius_cm == pytest.approx(7.62)

    def test_rejects_negative_radius(self):
        with pytest.raises(ParameterError):
            Wafer(radius_cm=-1.0)

    def test_rejects_edge_exclusion_consuming_wafer(self):
        with pytest.raises(GeometryError):
            Wafer(radius_cm=5.0, edge_exclusion_cm=5.0)

    def test_usable_radius(self):
        w = Wafer(radius_cm=7.5, edge_exclusion_cm=0.3)
        assert w.usable_radius_cm == pytest.approx(7.2)

    def test_areas(self, paper_wafer):
        assert paper_wafer.area_cm2 == pytest.approx(math.pi * 56.25)
        assert paper_wafer.usable_area_cm2 == paper_wafer.area_cm2


class TestMalyFormula:
    def test_die_as_big_as_wafer_diameter_fits_zero_or_more(self, paper_wafer):
        # A 15x15 cm die cannot fit a radius-7.5 circle (diagonal 21.2 > 15).
        assert dies_per_wafer_maly(paper_wafer, Die.square(15.0)) == 0

    def test_small_die_count_near_area_ratio(self, paper_wafer):
        die = Die.square(0.3)
        count = dies_per_wafer_maly(paper_wafer, die)
        gross = paper_wafer.area_cm2 / die.area_cm2
        # Edge loss for a tiny die is a few percent at most.
        assert 0.9 * gross < count < gross

    def test_monotone_in_die_size(self, paper_wafer):
        counts = [dies_per_wafer_maly(paper_wafer, Die.square(s))
                  for s in (0.5, 0.8, 1.2, 2.0, 3.5)]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_monotone_in_wafer_radius(self):
        die = Die.square(1.0)
        counts = [dies_per_wafer_maly(Wafer(radius_cm=r), die)
                  for r in (5.0, 7.5, 10.0, 15.0)]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_single_huge_die(self):
        # A 1x1 die on a radius-1 wafer: diagonal 1.41 < 2, so a die can fit,
        # and the row formula should find at least one placement... the
        # bottom-anchored rows may or may not capture it; assert it never
        # reports more than area allows.
        count = dies_per_wafer_maly(Wafer(radius_cm=1.0), Die.square(1.0))
        assert 0 <= count <= 3

    def test_rectangle_orientation_matters(self, paper_wafer):
        tall = Die(width_cm=0.5, height_cm=2.0)
        wide = tall.rotated()
        c_tall = dies_per_wafer_maly(paper_wafer, tall)
        c_wide = dies_per_wafer_maly(paper_wafer, wide)
        # Counts are close but generally not equal; both substantial.
        assert c_tall > 100 and c_wide > 100

    def test_scribe_reduces_count(self, paper_wafer):
        plain = dies_per_wafer_maly(paper_wafer, Die.square(1.0))
        scribed = dies_per_wafer_maly(paper_wafer,
                                      Die.square(1.0, scribe_cm=0.05))
        assert scribed < plain

    def test_edge_exclusion_reduces_count(self):
        die = Die.square(1.0)
        full = dies_per_wafer_maly(Wafer(radius_cm=7.5), die)
        excl = dies_per_wafer_maly(Wafer(radius_cm=7.5, edge_exclusion_cm=0.5),
                                   die)
        assert excl < full

    def test_table3_geometry_bicmos_up(self, paper_wafer):
        # Row 1 of Table 3: 3.1M tr, d_d=150, lambda=0.8 -> 2.976 cm^2 die.
        die = Die.from_transistor_count(3.1e6, 150.0, 0.8)
        count = dies_per_wafer_maly(paper_wafer, die)
        # Gross area ratio is 59; eq. (4) must land well below with edge loss.
        assert 35 <= count <= 59


class TestExactGrid:
    def test_matches_maly_within_packing_slack(self, paper_wafer):
        # The two independent counters must agree within grid-phase slack.
        for side in (0.5, 1.0, 1.7):
            die = Die.square(side)
            maly = dies_per_wafer_maly(paper_wafer, die)
            exact = dies_per_wafer_exact(paper_wafer, die, optimize_offset=True)
            assert exact >= maly * 0.9
            assert exact <= maly * 1.15 + 4

    def test_optimized_offset_never_worse(self, paper_wafer):
        die = Die.square(1.3)
        fixed = dies_per_wafer_exact(paper_wafer, die)
        optimized = dies_per_wafer_exact(paper_wafer, die, optimize_offset=True)
        assert optimized >= fixed

    def test_zero_when_die_exceeds_wafer(self):
        assert dies_per_wafer_exact(Wafer(radius_cm=1.0), Die.square(2.0)) == 0

    def test_best_grid_offset_reports_consistent_count(self, paper_wafer):
        die = Die.square(1.1)
        ox, oy, n = best_grid_offset(paper_wafer, die)
        recount = dies_per_wafer_exact(paper_wafer, die,
                                       offset_x=ox, offset_y=oy)
        assert recount == n


class TestAreaApproximations:
    def test_gross_upper_bounds_everything(self, paper_wafer):
        die = Die.square(1.0)
        gross = dies_per_wafer_area_approx(paper_wafer, die, kind="gross")
        fp = dies_per_wafer_area_approx(paper_wafer, die, kind="ferris-prabhu")
        ind = dies_per_wafer_area_approx(paper_wafer, die, kind="industry")
        maly = dies_per_wafer_maly(paper_wafer, die)
        assert gross >= fp and gross >= ind and gross >= maly

    def test_industry_approx_close_to_maly_for_small_die(self, paper_wafer):
        die = Die.square(0.5)
        ind = dies_per_wafer_area_approx(paper_wafer, die, kind="industry")
        maly = dies_per_wafer_maly(paper_wafer, die)
        assert abs(ind - maly) / maly < 0.08

    def test_unknown_kind_raises(self, paper_wafer):
        with pytest.raises(ParameterError):
            dies_per_wafer_area_approx(paper_wafer, Die.square(1.0),
                                       kind="bogus")

    def test_industry_never_negative(self):
        # Huge die relative to wafer: correction would go negative; clamped.
        val = dies_per_wafer_area_approx(Wafer(radius_cm=2.0), Die.square(2.5),
                                         kind="industry")
        assert val >= 0.0


class TestDiesDispatch:
    def test_dispatch_methods_agree_with_direct_calls(self, paper_wafer):
        die = Die.square(1.0)
        assert paper_wafer.dies(die) == dies_per_wafer_maly(paper_wafer, die)
        assert paper_wafer.dies(die, method="exact") == dies_per_wafer_exact(
            paper_wafer, die, optimize_offset=True)
        assert paper_wafer.dies(die, method="gross") == int(
            dies_per_wafer_area_approx(paper_wafer, die, kind="gross"))
