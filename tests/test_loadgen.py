"""The open-loop load generator: workload, driving, verification."""

import json

import pytest

from repro.errors import ParameterError
from repro.loadgen import (
    LoadResult,
    build_workload,
    format_report,
    run_load,
)
from repro.serve.http import ServerThread


class TestBuildWorkload:
    def test_reproducible_and_mixed(self):
        specs_a = build_workload(200, seed=11)
        specs_b = build_workload(200, seed=11)
        assert [(s.kind, s.body) for s in specs_a] \
            == [(s.kind, s.body) for s in specs_b]
        kinds = {s.kind for s in specs_a}
        assert kinds == {"cost", "bulk", "optimize"}

    def test_every_cost_spec_carries_its_reference(self):
        for spec in build_workload(100, seed=2):
            if spec.kind == "cost":
                assert spec.expected is not None
                assert len(spec.expected) == 1
            elif spec.kind == "bulk":
                assert spec.expected is not None
                assert len(spec.expected) == len(
                    json.loads(spec.body)["queries"])
            else:
                assert spec.expected is None
                assert spec.die_areas is not None

    def test_both_single_cost_body_shapes_appear(self):
        specs = [s for s in build_workload(100, mix={"cost": 1.0}, seed=0)]
        bodies = [json.loads(s.body) for s in specs]
        assert any("q" in b for b in bodies)
        assert any("transistors" in b for b in bodies)

    def test_mix_validation(self):
        with pytest.raises(ParameterError):
            build_workload(10, mix={"nope": 1.0})
        with pytest.raises(ParameterError):
            build_workload(10, mix={"cost": 0.0})
        with pytest.raises(ParameterError):
            build_workload(0)
        with pytest.raises(ParameterError):
            build_workload(10, bulk_size=0)


class TestRunLoad:
    def test_mixed_load_against_live_server_bitwise_clean(self):
        specs = build_workload(80, bulk_size=8, seed=5)
        with ServerThread(cache=None) as srv:
            result = run_load("127.0.0.1", srv.port, specs,
                              rps=800.0, connections=4)
        assert result.requests == 80
        assert result.completed == 80
        assert result.status_counts.get("200") == 80
        assert result.mismatches == 0
        assert result.verified_costs > 80  # bulks verify many per request
        assert result.timeouts == 0
        assert result.connection_errors == 0
        assert result.latency_ms["p50"] <= result.latency_ms["p95"] \
            <= result.latency_ms["p99"] <= result.latency_ms["max"]

    def test_verification_catches_a_lying_server(self):
        # Same workload, but the expected answers are deliberately
        # wrong: the bitwise check must flag every served cost.
        specs = build_workload(10, mix={"cost": 1.0}, seed=1)
        import dataclasses
        lies = [dataclasses.replace(s, expected=(-1.0,) * len(s.expected))
                for s in specs]
        with ServerThread(cache=None) as srv:
            result = run_load("127.0.0.1", srv.port, lies,
                              rps=500.0, connections=2)
        assert result.mismatches == result.verified_costs == 10

    def test_connection_errors_counted_not_raised(self):
        # Nothing is listening on this port: every request should be
        # classified as a connection error, never an exception.
        specs = build_workload(5, mix={"cost": 1.0}, seed=0)
        result = run_load("127.0.0.1", 1, specs, rps=1000.0,
                          connections=2, timeout_s=5.0)
        assert result.connection_errors == 5
        assert result.completed == 0

    def test_parameter_validation(self):
        specs = build_workload(2, seed=0)
        with pytest.raises(ParameterError):
            run_load("127.0.0.1", 80, specs, rps=0.0)
        with pytest.raises(ParameterError):
            run_load("127.0.0.1", 80, specs, rps=10.0, connections=0)


class TestReport:
    def test_format_report_mentions_everything(self):
        result = LoadResult(
            requests=10, completed=9,
            status_counts={"200": 8, "429": 1}, timeouts=1,
            connection_errors=0, mismatches=0, verified_costs=42,
            duration_s=0.5, offered_rps=100.0, achieved_rps=18.0,
            latency_ms={"p50": 1.0, "p95": 2.0, "p99": 3.0,
                        "mean": 1.2, "max": 3.5})
        report = format_report(result)
        assert "p99=3.00" in report
        assert "429" in report
        assert "0 bitwise mismatches" in report
        assert result.error_budget["http_429"] == 1
        assert result.error_budget["timeouts"] == 1
