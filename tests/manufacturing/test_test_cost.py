"""Test cost and DFT/BIST economics (Sec. III.A.e, Sec. VI)."""

import math

import pytest

from repro.errors import ParameterError
from repro.manufacturing import TestCostModel, TestEconomics


@pytest.fixture
def model():
    return TestCostModel()


class TestTimes:
    def test_probe_time_grows_with_size(self, model):
        assert model.probe_seconds(3e6) > model.probe_seconds(1e5)

    def test_probe_cost_is_time_times_rate(self, model):
        n = 1e6
        expected = model.probe_seconds(n) * 300.0 / 3600.0
        assert model.probe_cost(n) == pytest.approx(expected)

    def test_final_slower_than_probe(self, model):
        # Packaged test runs longer vector sets per the configured model.
        assert model.final_seconds(1e6) > model.probe_seconds(1e6)

    def test_wafer_test_cost_scale(self, model):
        """Paper: 'the cost of testing a wafer may be comparable with
        the cost of manufacturing' — with a big die count and multi-
        million-transistor dies, probe cost reaches hundreds of dollars."""
        cost = model.wafer_test_cost(3.0e6, dies_per_wafer=50)
        assert cost > 30.0  # same order as a cheap wafer's cost

    def test_rejects_bad_die_count(self, model):
        with pytest.raises(ParameterError):
            model.wafer_test_cost(1e6, dies_per_wafer=0)


class TestDefectLevel:
    def test_full_coverage_ships_no_escapes(self):
        econ = TestEconomics(yield_value=0.5, fault_coverage=1.0)
        assert econ.defect_level == pytest.approx(0.0)

    def test_zero_coverage_ships_everything(self):
        econ = TestEconomics(yield_value=0.6, fault_coverage=0.0)
        assert econ.defect_level == pytest.approx(0.4)
        assert econ.shipped_fraction() == pytest.approx(1.0)

    def test_williams_brown_value(self):
        econ = TestEconomics(yield_value=0.5, fault_coverage=0.9)
        assert econ.defect_level == pytest.approx(1.0 - 0.5 ** 0.1)

    def test_defect_level_falls_with_coverage(self):
        dls = [TestEconomics(yield_value=0.5, fault_coverage=c).defect_level
               for c in (0.5, 0.8, 0.95, 0.99)]
        assert dls == sorted(dls, reverse=True)

    def test_shipped_fraction_identity(self):
        """shipped = Y^c (pass probability) under Williams-Brown."""
        econ = TestEconomics(yield_value=0.7, fault_coverage=0.85)
        assert econ.shipped_fraction() == pytest.approx(0.7 ** 0.85)


class TestCostPerShippedDie:
    def test_higher_coverage_cuts_escape_cost(self):
        low = TestEconomics(yield_value=0.6, fault_coverage=0.8,
                            escape_cost_dollars=500.0)
        high = TestEconomics(yield_value=0.6, fault_coverage=0.99,
                             escape_cost_dollars=500.0)
        assert high.cost_per_shipped_die(1e6, 20.0) < \
            low.cost_per_shipped_die(1e6, 20.0)

    def test_escape_cost_zero_favors_less_testing(self):
        """With free escapes, extra coverage only adds cost, proving the
        model prices coverage rather than assuming it is always good."""
        low = TestEconomics(yield_value=0.6, fault_coverage=0.8,
                            escape_cost_dollars=0.0)
        high = TestEconomics(yield_value=0.6, fault_coverage=0.99,
                             escape_cost_dollars=0.0)
        # Higher coverage rejects more dies, raising cost per shipped die.
        assert high.cost_per_shipped_die(1e6, 20.0) > \
            low.cost_per_shipped_die(1e6, 20.0)

    def test_die_cost_passthrough(self):
        econ = TestEconomics(yield_value=1.0, fault_coverage=1.0,
                             escape_cost_dollars=0.0)
        base = econ.cost_per_shipped_die(1e5, 10.0)
        more = econ.cost_per_shipped_die(1e5, 11.0)
        assert more - base == pytest.approx(1.0)


class TestDftDecision:
    def test_dft_pays_when_escapes_expensive(self):
        econ = TestEconomics(yield_value=0.6, fault_coverage=0.85,
                             escape_cost_dollars=1000.0)
        outcome = econ.with_dft(coverage_gain=0.12,
                                area_overhead_fraction=0.05)
        assert outcome.net_benefit_per_shipped_die(2e6, 25.0) > 0.0

    def test_dft_does_not_pay_when_escapes_cheap(self):
        econ = TestEconomics(yield_value=0.9, fault_coverage=0.95,
                             escape_cost_dollars=1.0)
        outcome = econ.with_dft(coverage_gain=0.04,
                                area_overhead_fraction=0.10)
        assert outcome.net_benefit_per_shipped_die(2e6, 25.0) < 0.0

    def test_coverage_clamped_at_one(self):
        econ = TestEconomics(yield_value=0.8, fault_coverage=0.95)
        outcome = econ.with_dft(coverage_gain=0.5,
                                area_overhead_fraction=0.02)
        assert outcome.improved.fault_coverage == 1.0

    def test_bist_compresses_test_time(self):
        econ = TestEconomics(yield_value=0.8, fault_coverage=0.9)
        outcome = econ.with_dft(coverage_gain=0.05,
                                area_overhead_fraction=0.03,
                                test_time_factor=0.25)
        base_t = econ.test_model.probe_seconds(1e6)
        new_t = outcome.improved.test_model.probe_seconds(1e6)
        assert new_t == pytest.approx(0.25 * base_t)

    def test_validation(self):
        econ = TestEconomics(yield_value=0.8, fault_coverage=0.9)
        with pytest.raises(ParameterError):
            econ.with_dft(coverage_gain=0.05, area_overhead_fraction=1.0)
        with pytest.raises(ParameterError):
            TestEconomics(yield_value=0.0, fault_coverage=0.9)
