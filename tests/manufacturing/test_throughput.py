"""Fab queueing dynamics: cycle time, WIP, cost of time."""

import pytest

from repro.errors import CapacityError, ParameterError
from repro.manufacturing import CycleTimeCost, FabDynamics, erlang_c, mmc_wait_hours
from repro.manufacturing.equipment import ProcessFlow
from repro.manufacturing.product_mix import size_equipment_for_flow


class TestErlangC:
    def test_single_server_known_value(self):
        # M/M/1: P(wait) = rho.
        assert erlang_c(1, 0.5) == pytest.approx(0.5)
        assert erlang_c(1, 0.9) == pytest.approx(0.9)

    def test_zero_load_never_waits(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_more_servers_less_waiting(self):
        # Same offered load spread over more servers.
        assert erlang_c(4, 2.0) < erlang_c(3, 2.0)

    def test_unstable_queue_raises(self):
        with pytest.raises(CapacityError):
            erlang_c(2, 2.0)

    def test_probability_bounds(self):
        for c, a in [(1, 0.3), (2, 1.5), (8, 7.0)]:
            p = erlang_c(c, a)
            assert 0.0 <= p <= 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            erlang_c(0, 0.5)


class TestMmcWait:
    def test_mm1_closed_form(self):
        # M/M/1 wait: rho/(mu - lambda_arr) ... W_q = rho/(mu(1-rho)).
        lam, mu = 0.5, 1.0
        expected = (lam / mu) / (mu - lam)
        assert mmc_wait_hours(1, lam, 1.0 / mu) == pytest.approx(expected)

    def test_wait_explodes_near_saturation(self):
        w_low = mmc_wait_hours(1, 0.5, 1.0)
        w_high = mmc_wait_hours(1, 0.95, 1.0)
        assert w_high > 10 * w_low


@pytest.fixture
def flow():
    return ProcessFlow.generic_cmos(n_metal_layers=2)


@pytest.fixture
def equipment(flow):
    return size_equipment_for_flow(flow, 3000.0)


class TestFabDynamics:
    def test_x_factor_at_least_one(self, flow, equipment):
        dyn = FabDynamics(equipment=equipment, flow=flow,
                          wafer_starts_per_hour=10.0)
        assert dyn.x_factor() >= 1.0

    def test_hockey_stick(self, flow, equipment):
        """Cycle time grows nonlinearly as starts approach capacity."""
        rates = (5.0, 10.0, 15.0, 17.0)
        cycle_times = []
        for rate in rates:
            dyn = FabDynamics(equipment=equipment, flow=flow,
                              wafer_starts_per_hour=rate)
            cycle_times.append(dyn.cycle_time_hours())
        assert cycle_times == sorted(cycle_times)
        # Convexity: the last increment dwarfs the first.
        assert (cycle_times[3] - cycle_times[2]) > \
            2.0 * (cycle_times[1] - cycle_times[0])

    def test_littles_law(self, flow, equipment):
        dyn = FabDynamics(equipment=equipment, flow=flow,
                          wafer_starts_per_hour=12.0)
        assert dyn.wip_wafers() == pytest.approx(
            12.0 * dyn.cycle_time_hours())

    def test_bottleneck_is_most_utilized(self, flow, equipment):
        dyn = FabDynamics(equipment=equipment, flow=flow,
                          wafer_starts_per_hour=12.0)
        stations = dyn.stations()
        assert dyn.bottleneck().utilization == pytest.approx(
            max(s.utilization for s in stations))

    def test_overload_raises(self, flow, equipment):
        dyn = FabDynamics(equipment=equipment, flow=flow,
                          wafer_starts_per_hour=1000.0)
        with pytest.raises(CapacityError):
            dyn.cycle_time_hours()

    def test_raw_process_time_is_flow_total(self, flow, equipment):
        dyn = FabDynamics(equipment=equipment, flow=flow,
                          wafer_starts_per_hour=5.0)
        assert dyn.raw_process_hours() == pytest.approx(
            sum(flow.demand_by_type().values()))

    def test_validation(self, flow, equipment):
        with pytest.raises(ParameterError):
            FabDynamics(equipment=(), flow=flow, wafer_starts_per_hour=1.0)
        with pytest.raises(ParameterError):
            FabDynamics(equipment=equipment, flow=flow,
                        wafer_starts_per_hour=0.0)


class TestCycleTimeCost:
    def test_zero_cycle_time_costs_nothing(self):
        assert CycleTimeCost().cost_per_wafer(0.0) == pytest.approx(0.0)

    def test_cost_monotone_in_cycle_time(self):
        cost = CycleTimeCost()
        values = [cost.cost_per_wafer(h) for h in (24, 240, 2400)]
        assert values == sorted(values)

    def test_erosion_dominates_carrying_for_products(self):
        """For a priced product, time-to-market (price erosion) costs far
        more than WIP carrying — the reason cycle time obsesses fabs."""
        cost = CycleTimeCost(wip_value_dollars=1000.0,
                             annual_carrying_rate=0.15,
                             revenue_decay_per_month=0.03,
                             revenue_per_wafer_dollars=5000.0)
        month_hours = 24.0 * 30.0
        carrying_only = CycleTimeCost(
            wip_value_dollars=1000.0, annual_carrying_rate=0.15,
            revenue_decay_per_month=1e-9,
            revenue_per_wafer_dollars=5000.0).cost_per_wafer(month_hours)
        total = cost.cost_per_wafer(month_hours)
        assert total - carrying_only > 5.0 * carrying_only

    def test_validation(self):
        with pytest.raises(ParameterError):
            CycleTimeCost(annual_carrying_rate=1.0)
        with pytest.raises(ParameterError):
            CycleTimeCost().cost_per_wafer(-1.0)
