"""Eq. (2): volume/overhead economics."""

import pytest

from repro.errors import ParameterError
from repro.manufacturing import VolumeCostCurve


class TestCost:
    def test_equation_two(self):
        curve = VolumeCostCurve(pure_cost_dollars=500.0,
                                overhead_dollars=1.0e6)
        assert curve.cost(10_000) == pytest.approx(600.0)

    def test_infinite_volume_limit_is_pure_cost(self):
        curve = VolumeCostCurve(pure_cost_dollars=500.0,
                                overhead_dollars=1.0e8)
        assert curve.cost(1e12) == pytest.approx(500.0, rel=1e-3)

    def test_low_volume_dominated_by_overhead(self):
        """The paper's $100M uP overhead at ASIC-like volume is ruinous."""
        micro = VolumeCostCurve(pure_cost_dollars=800.0,
                                overhead_dollars=100.0e6)
        assert micro.cost(1000) > 100 * micro.pure_cost_dollars

    def test_cost_monotone_decreasing_in_volume(self):
        curve = VolumeCostCurve(500.0, 5.0e6)
        costs = [curve.cost(v) for v in (100, 1000, 10_000, 100_000)]
        assert costs == sorted(costs, reverse=True)

    def test_rejects_zero_volume(self):
        with pytest.raises(ParameterError):
            VolumeCostCurve(500.0, 1e6).cost(0.0)


class TestOverheadShare:
    def test_half_share_volume(self):
        curve = VolumeCostCurve(500.0, 1.0e6)
        v = curve.volume_for_cost(1000.0)  # overhead = pure at this volume
        assert curve.overhead_share(v) == pytest.approx(0.5)

    def test_share_falls_with_volume(self):
        curve = VolumeCostCurve(500.0, 1.0e6)
        assert curve.overhead_share(1e5) < curve.overhead_share(1e3)

    def test_zero_overhead_zero_share(self):
        assert VolumeCostCurve(500.0).overhead_share(100.0) == 0.0


class TestVolumeForCost:
    def test_roundtrip(self):
        curve = VolumeCostCurve(500.0, 2.0e6)
        v = curve.volume_for_cost(700.0)
        assert curve.cost(v) == pytest.approx(700.0)

    def test_unreachable_target_raises(self):
        curve = VolumeCostCurve(500.0, 1e6)
        with pytest.raises(ParameterError):
            curve.volume_for_cost(500.0)

    def test_flat_curve_raises(self):
        with pytest.raises(ParameterError):
            VolumeCostCurve(500.0, 0.0).volume_for_cost(600.0)


class TestBreakeven:
    def test_make_vs_buy(self):
        own_fab = VolumeCostCurve(pure_cost_dollars=400.0,
                                  overhead_dollars=50.0e6)
        foundry = VolumeCostCurve(pure_cost_dollars=900.0,
                                  overhead_dollars=1.0e6)
        v = own_fab.breakeven_volume(foundry)
        assert own_fab.cost(v) == pytest.approx(foundry.cost(v))
        # Below breakeven the foundry wins, above the own fab wins.
        assert foundry.cost(v / 2) < own_fab.cost(v / 2)
        assert own_fab.cost(v * 2) < foundry.cost(v * 2)

    def test_breakeven_symmetric(self):
        a = VolumeCostCurve(400.0, 5e7)
        b = VolumeCostCurve(900.0, 1e6)
        assert a.breakeven_volume(b) == pytest.approx(b.breakeven_volume(a))

    def test_dominated_curves_raise(self):
        cheap = VolumeCostCurve(400.0, 1e6)
        dear = VolumeCostCurve(900.0, 5e7)
        with pytest.raises(ParameterError):
            cheap.breakeven_volume(dear)

    def test_identical_curves_raise(self):
        a = VolumeCostCurve(400.0, 1e6)
        with pytest.raises(ParameterError):
            a.breakeven_volume(VolumeCostCurve(400.0, 1e6))
