"""Product-mix cost penalty (Sec. III.A.d / ref [12])."""

import pytest

from repro.errors import ParameterError
from repro.manufacturing import FabLoad, ProductDemand, mix_cost_ratio
from repro.manufacturing.equipment import (
    Equipment,
    EquipmentType,
    ProcessFlow,
    ProcessStep,
)
from repro.manufacturing.product_mix import size_equipment_for_flow


@pytest.fixture
def flows():
    return tuple(ProcessFlow.generic_cmos(n_metal_layers=m, name=f"cmos-{m}M")
                 for m in (1, 2, 3, 4))


class TestSizing:
    def test_sized_fab_sustains_its_flow(self, flows):
        flow = flows[1]
        equipment = size_equipment_for_flow(flow, 1000.0)
        load = FabLoad(equipment=equipment,
                       demands=(ProductDemand(flow=flow, wafers_per_week=1000.0),))
        utils = load.utilizations()  # must not raise CapacityError
        assert all(0.0 < u <= 1.0 for u in utils.values())

    def test_high_volume_fab_is_well_utilized(self, flows):
        """The mono-product premise: near-full utilization at volume."""
        flow = flows[1]
        equipment = size_equipment_for_flow(flow, 5000.0)
        load = FabLoad(equipment=equipment,
                       demands=(ProductDemand(flow=flow, wafers_per_week=5000.0),))
        assert load.mean_utilization() > 0.8

    def test_low_volume_fab_poorly_utilized(self, flows):
        flow = flows[1]
        equipment = size_equipment_for_flow(flow, 10.0)
        load = FabLoad(equipment=equipment,
                       demands=(ProductDemand(flow=flow, wafers_per_week=10.0),))
        assert load.mean_utilization() < 0.5


class TestMixRatio:
    def test_low_volume_multiproduct_penalty_large(self, flows):
        """The [12] result: the penalty can reach ~7x (and beyond at
        extreme volumes)."""
        ratio = mix_cost_ratio(flows, wafers_per_week_each=20.0,
                               reference_volume_per_week=5000.0)
        assert ratio >= 5.0

    def test_penalty_shrinks_with_volume(self, flows):
        low = mix_cost_ratio(flows, 20.0, 5000.0)
        mid = mix_cost_ratio(flows, 200.0, 5000.0)
        high = mix_cost_ratio(flows, 1000.0, 5000.0)
        assert low > mid > high

    def test_high_volume_multiproduct_near_parity(self, flows):
        ratio = mix_cost_ratio(flows, 2000.0, 5000.0)
        assert ratio < 2.0

    def test_single_flow_at_reference_volume_is_parity(self, flows):
        ratio = mix_cost_ratio(flows[:1], 5000.0, 5000.0)
        assert ratio == pytest.approx(1.0, abs=0.15)

    def test_rejects_empty_flows(self):
        with pytest.raises(ParameterError):
            mix_cost_ratio((), 10.0, 1000.0)


class TestFabLoad:
    def test_ownership_cost_per_wafer(self):
        eq = (Equipment(EquipmentType.LITHOGRAPHY, n_tools=1,
                        ownership_cost_per_week_dollars=70_000.0),)
        flow = ProcessFlow(name="f", steps=(
            ProcessStep(EquipmentType.LITHOGRAPHY, 0.1),))
        load = FabLoad(equipment=eq,
                       demands=(ProductDemand(flow=flow, wafers_per_week=700.0),))
        assert load.ownership_cost_per_wafer() == pytest.approx(100.0)

    def test_overloaded_fab_has_no_cost(self):
        eq = (Equipment(EquipmentType.LITHOGRAPHY, n_tools=1,
                        hours_per_week=100.0),)
        flow = ProcessFlow(name="f", steps=(
            ProcessStep(EquipmentType.LITHOGRAPHY, 1.0),))
        load = FabLoad(equipment=eq,
                       demands=(ProductDemand(flow=flow, wafers_per_week=200.0),))
        with pytest.raises(Exception):
            load.ownership_cost_per_wafer()

    def test_validation(self):
        with pytest.raises(ParameterError):
            FabLoad(equipment=(), demands=())
