"""Equipment groups, process flows, utilization."""

import pytest

from repro.errors import CapacityError, ParameterError
from repro.manufacturing import Equipment, EquipmentType, ProcessFlow, ProcessStep
from repro.manufacturing.equipment import utilization_by_type


@pytest.fixture
def litho():
    return Equipment(kind=EquipmentType.LITHOGRAPHY, n_tools=2,
                     hours_per_week=144.0,
                     ownership_cost_per_week_dollars=80_000.0)


class TestEquipment:
    def test_capacity(self, litho):
        assert litho.capacity_hours_per_week == pytest.approx(288.0)

    def test_weekly_ownership(self, litho):
        assert litho.weekly_ownership_cost_dollars == pytest.approx(160_000.0)

    def test_rejects_zero_tools(self):
        with pytest.raises(ParameterError):
            Equipment(kind=EquipmentType.ETCH, n_tools=0)

    def test_rejects_impossible_hours(self):
        with pytest.raises(ParameterError):
            Equipment(kind=EquipmentType.ETCH, n_tools=1, hours_per_week=169.0)


class TestProcessFlow:
    def test_demand_aggregation(self):
        flow = ProcessFlow(name="toy", steps=(
            ProcessStep(EquipmentType.LITHOGRAPHY, 0.02),
            ProcessStep(EquipmentType.LITHOGRAPHY, 0.03),
            ProcessStep(EquipmentType.ETCH, 0.01),
        ))
        demand = flow.demand_by_type()
        assert demand[EquipmentType.LITHOGRAPHY] == pytest.approx(0.05)
        assert demand[EquipmentType.ETCH] == pytest.approx(0.01)
        assert flow.n_steps == 3

    def test_empty_flow_rejected(self):
        with pytest.raises(ParameterError):
            ProcessFlow(name="empty", steps=())

    def test_generic_cmos_scales_with_metal_layers(self):
        two = ProcessFlow.generic_cmos(n_metal_layers=2)
        four = ProcessFlow.generic_cmos(n_metal_layers=4)
        assert four.n_steps > two.n_steps
        d2 = two.demand_by_type()[EquipmentType.LITHOGRAPHY]
        d4 = four.demand_by_type()[EquipmentType.LITHOGRAPHY]
        assert d4 > d2

    def test_generic_cmos_step_count_plausible(self):
        """Fig.-4 scale: hundreds of steps for a 1990s CMOS flow."""
        flow = ProcessFlow.generic_cmos(n_metal_layers=3)
        assert 50 <= flow.n_steps <= 500

    def test_generic_cmos_rejects_zero_layers(self):
        with pytest.raises(ParameterError):
            ProcessFlow.generic_cmos(n_metal_layers=0)


class TestUtilization:
    def test_basic(self, litho):
        util = utilization_by_type((litho,),
                                   {EquipmentType.LITHOGRAPHY: 144.0})
        assert util[EquipmentType.LITHOGRAPHY] == pytest.approx(0.5)

    def test_pools_same_type(self):
        eq = (Equipment(EquipmentType.ETCH, n_tools=1),
              Equipment(EquipmentType.ETCH, n_tools=1))
        util = utilization_by_type(eq, {EquipmentType.ETCH: 144.0})
        assert util[EquipmentType.ETCH] == pytest.approx(0.5)

    def test_overload_raises(self, litho):
        with pytest.raises(CapacityError):
            utilization_by_type((litho,),
                                {EquipmentType.LITHOGRAPHY: 289.0})

    def test_missing_equipment_raises(self, litho):
        with pytest.raises(CapacityError):
            utilization_by_type((litho,), {EquipmentType.IMPLANT: 1.0})

    def test_zero_demand_for_missing_type_ok(self, litho):
        util = utilization_by_type((litho,), {EquipmentType.IMPLANT: 0.0})
        assert util[EquipmentType.LITHOGRAPHY] == 0.0

    def test_idle_types_reported_at_zero(self, litho):
        idle = Equipment(EquipmentType.CMP, n_tools=1)
        util = utilization_by_type((litho, idle),
                                   {EquipmentType.LITHOGRAPHY: 100.0})
        assert util[EquipmentType.CMP] == 0.0
