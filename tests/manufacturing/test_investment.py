"""Fab investment: NPV, IRR, payback, breakeven margin."""

import pytest

from repro.errors import ConvergenceError, ParameterError
from repro.manufacturing import FabInvestment, irr, npv


class TestNpv:
    def test_zero_rate_is_sum(self):
        assert npv([-100.0, 60.0, 60.0], 0.0) == pytest.approx(20.0)

    def test_known_value(self):
        # -100 + 110/1.1 = 0 at 10%.
        assert npv([-100.0, 110.0], 0.10) == pytest.approx(0.0)

    def test_higher_rate_lower_npv_for_conventional(self):
        flows = [-100.0, 50.0, 50.0, 50.0]
        assert npv(flows, 0.05) > npv(flows, 0.20)

    def test_validation(self):
        with pytest.raises(ParameterError):
            npv([], 0.1)
        with pytest.raises(ParameterError):
            npv([-1.0, 2.0], -1.0)


class TestIrr:
    def test_known_irr(self):
        assert irr([-100.0, 110.0]) == pytest.approx(0.10, abs=1e-6)

    def test_multi_year(self):
        # -100 now, 60 for two years: IRR solves 60/(1+r)+60/(1+r)^2=100.
        rate = irr([-100.0, 60.0, 60.0])
        assert npv([-100.0, 60.0, 60.0], rate) == pytest.approx(0.0, abs=1e-5)

    def test_all_positive_flows_unbracketed(self):
        with pytest.raises(ConvergenceError):
            irr([100.0, 50.0])


@pytest.fixture
def megafab():
    """A $1B fab shipping 120k wafers/year at $2500 margin (a mid-1990s
    leading-edge wafer sold near $4-6k against ~$2k variable cost)."""
    return FabInvestment(construction_cost_dollars=1.0e9,
                         wafers_per_year=120_000,
                         margin_per_wafer_dollars=2500.0,
                         ramp_years=2, life_years=8)


class TestFabInvestment:
    def test_cash_flow_shape(self, megafab):
        flows = megafab.cash_flows()
        assert len(flows) == 9
        assert flows[0] == -1.0e9
        # Ramp: year 1 ships half of steady state.
        assert flows[1] == pytest.approx(flows[2] / 2.0)
        assert all(f > 0 for f in flows[1:])

    def test_positive_npv_at_modest_hurdle(self, megafab):
        assert megafab.npv(0.10) > 0.0

    def test_irr_above_hurdle(self, megafab):
        assert megafab.irr() > 0.10

    def test_payback_within_life(self, megafab):
        payback = megafab.discounted_payback_years(0.10)
        assert payback is not None
        assert 1 <= payback <= 8

    def test_margin_erosion_kills_the_case(self):
        eroding = FabInvestment(construction_cost_dollars=1.0e9,
                                wafers_per_year=120_000,
                                margin_per_wafer_dollars=2500.0,
                                ramp_years=2, life_years=8,
                                margin_erosion_per_year=0.35)
        solid = FabInvestment(construction_cost_dollars=1.0e9,
                              wafers_per_year=120_000,
                              margin_per_wafer_dollars=2500.0,
                              ramp_years=2, life_years=8)
        assert eroding.npv(0.10) < solid.npv(0.10)
        assert eroding.irr() < solid.irr()

    def test_breakeven_margin_is_a_zero(self, megafab):
        floor = megafab.breakeven_margin(0.12)
        at_floor = FabInvestment(construction_cost_dollars=1.0e9,
                                 wafers_per_year=120_000,
                                 margin_per_wafer_dollars=floor,
                                 ramp_years=2, life_years=8)
        assert at_floor.npv(0.12) == pytest.approx(0.0, abs=1.0e4)
        # Below the floor: negative NPV.
        below = FabInvestment(construction_cost_dollars=1.0e9,
                              wafers_per_year=120_000,
                              margin_per_wafer_dollars=floor * 0.8,
                              ramp_years=2, life_years=8)
        assert below.npv(0.12) < 0.0

    def test_phase1_story(self):
        """The paper's Phase-1 asymmetry: the same margin stream that
        justifies a megafab at high volume cannot justify it at niche
        volume — capital indivisibility is the moat."""
        mega = FabInvestment(construction_cost_dollars=1.0e9,
                             wafers_per_year=120_000,
                             margin_per_wafer_dollars=2500.0)
        niche_in_megafab = FabInvestment(construction_cost_dollars=1.0e9,
                                         wafers_per_year=20_000,
                                         margin_per_wafer_dollars=2500.0)
        assert mega.npv(0.10) > 0.0
        assert niche_in_megafab.npv(0.10) < 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            FabInvestment(construction_cost_dollars=1e9,
                          wafers_per_year=1e5,
                          margin_per_wafer_dollars=500.0,
                          ramp_years=0)
        with pytest.raises(ParameterError):
            FabInvestment(construction_cost_dollars=1e9,
                          wafers_per_year=1e5,
                          margin_per_wafer_dollars=500.0,
                          ramp_years=4, life_years=3)
