"""Bottom-up wafer cost (the [12] substrate)."""

import pytest

from repro.errors import ParameterError
from repro.manufacturing import BottomUpWaferCost, StepCost
from repro.manufacturing.equipment import EquipmentType


@pytest.fixture
def model():
    return BottomUpWaferCost()


class TestStepCost:
    def test_components_add_up(self):
        step = StepCost(kind=EquipmentType.ETCH, tool_price_dollars=1.5e6,
                        throughput_wafers_per_hour=60.0,
                        labor_minutes=0.5, materials_dollars=2.0)
        total = step.cost_per_wafer(depreciation_years=5.0,
                                    maintenance_fraction_per_year=0.08,
                                    utilization=0.85,
                                    hours_per_year=7500.0,
                                    labor_rate_per_hour=40.0)
        annual = 1.5e6 / 5.0 + 1.5e6 * 0.08
        equipment = annual / (60.0 * 7500.0 * 0.85)
        assert total == pytest.approx(equipment + 40.0 * 0.5 / 60.0 + 2.0)

    def test_idle_tool_costs_more_per_wafer(self):
        step = StepCost(kind=EquipmentType.LITHOGRAPHY,
                        tool_price_dollars=4e6,
                        throughput_wafers_per_hour=50.0)
        busy = step.cost_per_wafer(utilization=0.9)
        idle = step.cost_per_wafer(utilization=0.3)
        # Equipment share scales as 1/utilization (3x here); labor and
        # materials do not, so the total lands between 2x and 3x.
        assert 2.0 * busy < idle < 3.0 * busy

    def test_validation(self):
        with pytest.raises(ParameterError):
            StepCost(kind=EquipmentType.ETCH, tool_price_dollars=0.0,
                     throughput_wafers_per_hour=60.0)


class TestBreakdown:
    def test_reference_node_cost_in_paper_band(self, model):
        """$500-800 for a 1 um 6-inch wafer [12, 13] — the bottom-up
        build must land in the same ballpark without tuning."""
        cost = model.cost(1.0)
        assert 400.0 < cost < 1000.0

    def test_cost_grows_under_shrink(self, model):
        costs = [model.cost(l) for l in (1.0, 0.8, 0.65, 0.5, 0.35)]
        assert costs == sorted(costs)

    def test_step_count_follows_fig4(self, model):
        assert model.breakdown(1.0).n_steps == pytest.approx(250, abs=2)
        assert model.breakdown(0.5).n_steps > model.breakdown(1.0).n_steps

    def test_equipment_share_grows_with_shrink(self, model):
        """Capital intensification: equipment's share of wafer cost rises
        each generation (the mechanism behind X)."""
        share_1um = model.breakdown(1.0).share("equipment")
        share_035 = model.breakdown(0.35).share("equipment")
        assert share_035 > share_1um

    def test_breakdown_components_sum(self, model):
        b = model.breakdown(0.8)
        assert b.total_dollars == pytest.approx(
            b.equipment_dollars + b.labor_dollars + b.materials_dollars
            + b.facility_dollars)

    def test_share_validates_component(self, model):
        with pytest.raises(ParameterError):
            model.breakdown(1.0).share("magic")


class TestEffectiveX:
    def test_derived_x_in_published_band(self, model):
        """The bottom-up build implies X in the published 1.2-2.4 range,
        closing the loop between Fig. 4 and eq. (3)."""
        x = model.effective_growth_rate()
        assert 1.2 <= x <= 2.4

    def test_contamination_crisis_raises_x(self, model):
        """S.1.1: X grows 'at any juncture requiring quantum improvements
        in contamination control'."""
        crisis = model.with_contamination_crisis(facility_growth=1.8)
        assert crisis.effective_growth_rate() > model.effective_growth_rate()

    def test_x_direction_with_litho_inflation(self, model):
        import dataclasses
        growth = dict(model.tool_price_growth)
        growth[EquipmentType.LITHOGRAPHY] = 2.0
        hot = dataclasses.replace(model, tool_price_growth=growth)
        assert hot.effective_growth_rate() > model.effective_growth_rate()

    def test_x_validation(self, model):
        with pytest.raises(ParameterError):
            model.effective_growth_rate(lam_fine_um=1.0, lam_coarse_um=0.5)


class TestValidation:
    def test_step_mix_must_sum_to_one(self):
        with pytest.raises(ParameterError):
            BottomUpWaferCost(step_mix={EquipmentType.ETCH: 0.5})

    def test_mix_needs_prices(self):
        with pytest.raises(ParameterError):
            BottomUpWaferCost(step_mix={EquipmentType.ETCH: 1.0},
                              tool_prices={})
