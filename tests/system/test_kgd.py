"""Known-good-die economics (ref [31])."""

import pytest

from repro.errors import ParameterError
from repro.system import KgdEconomics, McmSubstrate
from repro.system.kgd import incoming_quality


@pytest.fixture
def substrate():
    return McmSubstrate(name="passive", cost_dollars=60.0,
                        diagnosis_cost_dollars=300.0, rework_success=0.7)


def economics(substrate, n_dies=8, die_yield=0.8, kgd_cost=15.0):
    return KgdEconomics(
        die_yield=die_yield, probe_coverage=0.90, kgd_coverage=0.99,
        kgd_test_cost_dollars=kgd_cost, die_cost_dollars=60.0,
        n_dies=n_dies, substrate=substrate)


class TestIncomingQuality:
    def test_williams_brown_form(self):
        assert incoming_quality(0.8, 0.9) == pytest.approx(0.8 ** 0.1)

    def test_full_coverage_perfect_quality(self):
        assert incoming_quality(0.3, 1.0) == pytest.approx(1.0)

    def test_zero_coverage_quality_is_yield(self):
        assert incoming_quality(0.55, 0.0) == pytest.approx(0.55)

    def test_monotone_in_coverage(self):
        qs = [incoming_quality(0.7, c) for c in (0.0, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_validation(self):
        with pytest.raises(ParameterError):
            incoming_quality(0.0, 0.9)
        with pytest.raises(ParameterError):
            incoming_quality(0.5, 1.1)


class TestKgdDecision:
    def test_kgd_pays_for_large_modules(self, substrate):
        econ = economics(substrate, n_dies=40)
        assert econ.kgd_premium_worth_paying() > 0.0

    def test_kgd_wasteful_for_single_die(self, substrate):
        econ = economics(substrate, n_dies=1)
        assert econ.kgd_premium_worth_paying() < 0.0

    def test_breakeven_is_a_threshold(self, substrate):
        econ = economics(substrate)
        n_star = econ.breakeven_module_size(max_dies=64)
        assert n_star is not None and n_star > 1
        below = economics(substrate, n_dies=n_star - 1)
        at = economics(substrate, n_dies=n_star)
        assert below.kgd_premium_worth_paying() <= 0.0
        assert at.kgd_premium_worth_paying() > 0.0

    def test_free_kgd_always_pays_beyond_one_die(self, substrate):
        econ = economics(substrate, n_dies=4, kgd_cost=0.0)
        assert econ.kgd_premium_worth_paying() > 0.0

    def test_exorbitant_kgd_never_pays(self, substrate):
        econ = economics(substrate, kgd_cost=100_000.0)
        assert econ.breakeven_module_size(max_dies=32) is None

    def test_low_yield_die_raises_kgd_value(self, substrate):
        """Worse silicon means more escapes at probe, so KGD testing is
        worth more per module."""
        good = economics(substrate, n_dies=16, die_yield=0.9)
        bad = economics(substrate, n_dies=16, die_yield=0.6)
        assert bad.kgd_premium_worth_paying() > \
            good.kgd_premium_worth_paying()


class TestValidation:
    def test_kgd_coverage_must_dominate_probe(self, substrate):
        with pytest.raises(ParameterError):
            KgdEconomics(die_yield=0.8, probe_coverage=0.95,
                         kgd_coverage=0.90, kgd_test_cost_dollars=10.0,
                         die_cost_dollars=50.0, n_dies=4,
                         substrate=substrate)

    def test_rejects_zero_dies(self, substrate):
        with pytest.raises(ParameterError):
            KgdEconomics(die_yield=0.8, probe_coverage=0.9,
                         kgd_coverage=0.99, kgd_test_cost_dollars=10.0,
                         die_cost_dollars=50.0, n_dies=0,
                         substrate=substrate)
