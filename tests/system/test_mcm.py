"""MCM substrate economics (Sec. VI, refs [30, 31])."""

import pytest

from repro.errors import ParameterError
from repro.system import McmCostModel, McmSubstrate
from repro.system.mcm import compare_substrates


@pytest.fixture
def passive():
    return McmSubstrate(name="passive ceramic", cost_dollars=50.0,
                        diagnosis_cost_dollars=400.0, rework_success=0.6)


@pytest.fixture
def smart():
    return McmSubstrate(name="active silicon", cost_dollars=250.0,
                        self_test=True, diagnosis_cost_dollars=5.0,
                        rework_success=0.95)


def module(substrate, n_dies=8, quality=0.95, die_cost=80.0):
    return McmCostModel(substrate=substrate, n_dies=n_dies,
                        die_cost_dollars=die_cost, incoming_quality=quality)


class TestFirstPassYield:
    def test_compounding(self, passive):
        m = module(passive, n_dies=8, quality=0.95)
        assert m.first_pass_module_yield == pytest.approx(0.95 ** 8)

    def test_single_die_module(self, passive):
        m = module(passive, n_dies=1, quality=0.9)
        assert m.first_pass_module_yield == pytest.approx(0.9)

    def test_perfect_quality_perfect_module(self, passive):
        m = module(passive, quality=1.0 - 1e-12)
        assert m.first_pass_module_yield == pytest.approx(1.0, abs=1e-9)


class TestCostPerGoodModule:
    def test_rework_helps(self, passive):
        no_rework = McmCostModel(substrate=passive, n_dies=8,
                                 die_cost_dollars=80.0,
                                 incoming_quality=0.9,
                                 max_rework_attempts=0)
        with_rework = McmCostModel(substrate=passive, n_dies=8,
                                   die_cost_dollars=80.0,
                                   incoming_quality=0.9,
                                   max_rework_attempts=2)
        assert with_rework.cost_per_good_module() < \
            no_rework.cost_per_good_module()

    def test_more_dies_cost_more(self, smart):
        c4 = module(smart, n_dies=4).cost_per_good_module()
        c12 = module(smart, n_dies=12).cost_per_good_module()
        assert c12 > c4

    def test_lower_quality_costs_more(self, smart):
        good = module(smart, quality=0.99).cost_per_good_module()
        bad = module(smart, quality=0.90).cost_per_good_module()
        assert bad > good

    def test_cost_yield_pair_consistent(self, passive):
        m = module(passive)
        cost, y = m.expected_cost_and_yield()
        assert 0.0 < y <= 1.0
        assert m.cost_per_good_module() == pytest.approx(cost / y)

    def test_final_yield_at_least_first_pass(self, passive):
        m = module(passive)
        _, y = m.expected_cost_and_yield()
        assert y >= m.first_pass_module_yield


class TestSmartSubstrateArgument:
    def test_expensive_smart_substrate_wins_at_system_level(self, passive, smart):
        """The paper's Sec.-VI claim: 'very expensive substrate' can
        'minimize the overall system cost' — substrate 5x dearer, module
        cheaper."""
        result = compare_substrates(module(passive), module(smart))
        assert result["smart_substrate_dollars"] > \
            result["passive_substrate_dollars"]
        assert result["smart_saves"] > 0.0

    def test_smart_does_not_pay_for_tiny_modules(self, passive, smart):
        """With 2 near-perfect dies there is little to diagnose; the
        substrate premium dominates and passive wins."""
        result = compare_substrates(
            module(passive, n_dies=2, quality=0.999),
            module(smart, n_dies=2, quality=0.999))
        assert result["smart_saves"] < 0.0


class TestValidation:
    def test_substrate_validation(self):
        with pytest.raises(ParameterError):
            McmSubstrate(name="x", cost_dollars=0.0)
        with pytest.raises(ParameterError):
            McmSubstrate(name="x", cost_dollars=10.0, rework_success=0.0)

    def test_model_validation(self, passive):
        with pytest.raises(ParameterError):
            McmCostModel(substrate=passive, n_dies=0, die_cost_dollars=10.0,
                         incoming_quality=0.9)
        with pytest.raises(ParameterError):
            McmCostModel(substrate=passive, n_dies=4, die_cost_dollars=10.0,
                         incoming_quality=0.0)

    def test_replacement_die_cost_override(self, passive):
        m = McmCostModel(substrate=passive, n_dies=4, die_cost_dollars=10.0,
                         incoming_quality=0.9,
                         replacement_die_cost_dollars=99.0)
        cheaper = McmCostModel(substrate=passive, n_dies=4,
                               die_cost_dollars=10.0, incoming_quality=0.9,
                               replacement_die_cost_dollars=1.0)
        assert m.cost_per_good_module() > cheaper.cost_per_good_module()
