"""System partitioning with per-partition feature size (Sec. IV.B)."""

import math

import pytest

from repro.errors import ParameterError
from repro.system import (
    Partition,
    PartitionedSystem,
    optimal_partition_count,
    optimize_partition_feature_sizes,
)


@pytest.fixture
def cpu_like_system():
    """A Table-1-flavored system: dense caches plus sparse control."""
    return PartitionedSystem(partitions=(
        Partition(name="i-cache", n_transistors=1.2e6, design_density=43.2),
        Partition(name="d-cache", n_transistors=1.1e6, design_density=50.7),
        Partition(name="fpu", n_transistors=3.2e5, design_density=222.3),
        Partition(name="integer", n_transistors=2.3e5, design_density=257.9),
        Partition(name="bus", n_transistors=5.0e4, design_density=399.0),
    ))


class TestOptimizePerPartition:
    def test_one_choice_per_partition(self, cpu_like_system):
        choices = optimize_partition_feature_sizes(cpu_like_system)
        assert len(choices) == 5
        for choice in choices:
            assert 0.3 <= choice.feature_size_um <= 1.2
            assert choice.cost_per_transistor_dollars > 0.0

    def test_per_partition_beats_uniform_lambda(self, cpu_like_system):
        """The Sec.-IV.B claim: freeing lambda per partition can only
        reduce total cost relative to the best single lambda."""
        choices = optimize_partition_feature_sizes(cpu_like_system)
        split_cost = sum(c.die_cost_dollars for c in choices)
        uniform_costs = []
        for lam in [0.3 + 0.05 * k for k in range(19)]:
            try:
                uniform_costs.append(cpu_like_system.cost_at_uniform_lambda(lam))
            except ParameterError:
                continue
        assert split_cost <= min(uniform_costs) + 1e-12

    def test_optimum_not_minimum_lambda_for_all(self, cpu_like_system):
        """At least some partitions prefer a coarser-than-minimum node."""
        choices = optimize_partition_feature_sizes(cpu_like_system)
        assert any(c.feature_size_um > 0.35 for c in choices)

    def test_die_cost_consistency(self, cpu_like_system):
        choice = optimize_partition_feature_sizes(cpu_like_system)[0]
        assert choice.die_cost_dollars == pytest.approx(
            choice.cost_per_transistor_dollars
            * choice.partition.n_transistors)

    def test_grid_validation(self, cpu_like_system):
        with pytest.raises(ParameterError):
            optimize_partition_feature_sizes(cpu_like_system,
                                             lam_lo_um=1.0, lam_hi_um=0.5)
        with pytest.raises(ParameterError):
            optimize_partition_feature_sizes(cpu_like_system, n_grid=2)


class TestSystem:
    def test_total_transistors(self, cpu_like_system):
        assert cpu_like_system.total_transistors == pytest.approx(2.9e6)

    def test_empty_system_rejected(self):
        with pytest.raises(ParameterError):
            PartitionedSystem(partitions=())

    def test_partition_validation(self):
        with pytest.raises(ParameterError):
            Partition(name="x", n_transistors=0.0, design_density=100.0)


class TestPartitionCountSweep:
    def test_splitting_large_design_pays(self):
        """A 5M-transistor monolith at d_d=152 yields terribly; splitting
        into several dies must cut total cost (cheap assembly)."""
        best_n, best_cost, single_cost = optimal_partition_count(
            5.0e6, 152.0, per_die_assembly_cost=2.0, max_partitions=8)
        assert best_n > 1
        assert best_cost < single_cost

    def test_expensive_assembly_discourages_splitting(self):
        cheap_n, _, _ = optimal_partition_count(
            5.0e6, 152.0, per_die_assembly_cost=0.0, max_partitions=8)
        dear_n, _, _ = optimal_partition_count(
            5.0e6, 152.0, per_die_assembly_cost=10_000.0, max_partitions=8)
        assert dear_n <= cheap_n

    def test_small_design_stays_monolithic(self):
        best_n, _, _ = optimal_partition_count(
            1.0e5, 152.0, per_die_assembly_cost=50.0, max_partitions=8)
        assert best_n == 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            optimal_partition_count(0.0, 152.0)
        with pytest.raises(ParameterError):
            optimal_partition_count(1e6, 152.0, max_partitions=0)
