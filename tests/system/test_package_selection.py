"""Packaging-strategy crossovers (single chip / MCM / board)."""

import math

import pytest

from repro.errors import ParameterError
from repro.system import PackagingCostModel, PackagingStrategy, crossover_points


@pytest.fixture(scope="module")
def model():
    return PackagingCostModel()


class TestStrategyCosts:
    def test_all_strategies_priced_for_midsize(self, model):
        for strategy in PackagingStrategy:
            cost = model.packaging_cost(strategy, 2.0e6)
            assert 0.0 < cost < math.inf

    def test_single_chip_cheapest_for_small_systems(self, model):
        winner, _ = model.best_strategy(1.0e5)
        assert winner is PackagingStrategy.SINGLE_CHIP

    def test_mcm_wins_the_middle(self, model):
        """Sec. VI: MCMs are dismissed for small systems but win once a
        single die would yield terribly."""
        winner, _ = model.best_strategy(3.0e6)
        assert winner is PackagingStrategy.MCM

    def test_single_chip_collapses_for_large_systems(self, model):
        single = model.packaging_cost(PackagingStrategy.SINGLE_CHIP, 8.0e6)
        mcm = model.packaging_cost(PackagingStrategy.MCM, 8.0e6)
        assert single > 100.0 * mcm

    def test_substrate_premium_pushes_small_systems_away_from_mcm(self, model):
        small = 2.0e5
        mcm = model.packaging_cost(PackagingStrategy.MCM, small)
        single = model.packaging_cost(PackagingStrategy.SINGLE_CHIP, small)
        assert mcm > single + model.mcm_substrate.cost_dollars / 2.0

    def test_board_vs_mcm_ordering_flips_with_substrate_cost(self):
        import dataclasses
        from repro.system.mcm import McmSubstrate
        cheap_sub = PackagingCostModel(mcm_substrate=McmSubstrate(
            name="cheap", cost_dollars=20.0, self_test=True,
            diagnosis_cost_dollars=10.0, rework_success=0.9))
        dear_sub = PackagingCostModel(mcm_substrate=McmSubstrate(
            name="dear", cost_dollars=3000.0,
            diagnosis_cost_dollars=10.0, rework_success=0.9))
        budget = 3.0e6
        assert cheap_sub.packaging_cost(PackagingStrategy.MCM, budget) < \
            cheap_sub.packaging_cost(PackagingStrategy.BOARD, budget)
        assert dear_sub.packaging_cost(PackagingStrategy.MCM, budget) > \
            dear_sub.packaging_cost(PackagingStrategy.BOARD, budget)


class TestCrossoverSweep:
    def test_winner_sequence_is_ordered(self, model):
        budgets = (1e5, 5e5, 2e6, 5e6, 8e6)
        results = crossover_points(model, budgets)
        winners = [w for _, w, _ in results]
        # Single chip first, then multi-die strategies; single chip
        # never returns once abandoned.
        seen_multi = False
        for w in winners:
            if w is not PackagingStrategy.SINGLE_CHIP:
                seen_multi = True
            else:
                assert not seen_multi, "single chip returned after multi-die"
        assert winners[0] is PackagingStrategy.SINGLE_CHIP
        assert seen_multi

    def test_costs_grow_with_system_size(self, model):
        results = crossover_points(model, (1e5, 1e6, 5e6))
        costs = [c for _, _, c in results]
        assert costs == sorted(costs)

    def test_empty_budgets_rejected(self, model):
        with pytest.raises(ParameterError):
            crossover_points(model, ())


class TestValidation:
    def test_bad_quality_rejected(self):
        with pytest.raises(ParameterError):
            PackagingCostModel(die_quality=0.0)

    def test_unreachable_budget_raises(self, model):
        with pytest.raises(ParameterError):
            model.best_strategy(1.0e12)
