"""The Fig.-10 integrated system cost optimizer."""

import pytest

from repro.errors import ParameterError
from repro.system import (
    McmSubstrate,
    PartitionDesign,
    SystemCostModel,
    optimize_system,
    silicon_only_baseline,
)
from repro.system.partitioning import Partition


@pytest.fixture
def model():
    partitions = (
        Partition(name="cache", n_transistors=1.2e6, design_density=45.0),
        Partition(name="logic", n_transistors=3.0e5, design_density=250.0),
        Partition(name="io", n_transistors=5.0e4, design_density=400.0),
    )
    substrate = McmSubstrate(name="smart", cost_dollars=150.0,
                             self_test=True, diagnosis_cost_dollars=5.0,
                             rework_success=0.9)
    return SystemCostModel(partitions=partitions, substrate=substrate)


class TestEvaluate:
    def test_report_structure(self, model):
        designs = [PartitionDesign(partition=p, feature_size_um=0.8,
                                   test_coverage=0.95)
                   for p in model.partitions]
        report = model.evaluate(designs)
        assert report.silicon_dollars > 0.0
        assert report.test_dollars > 0.0
        assert 0.0 < report.module_yield <= 1.0
        assert report.cost_per_good_system > report.silicon_dollars

    def test_wrong_design_count_rejected(self, model):
        with pytest.raises(ParameterError):
            model.evaluate([])

    def test_infeasible_lambda_rejected(self, model):
        designs = [PartitionDesign(partition=p, feature_size_um=0.3,
                                   test_coverage=0.95)
                   for p in model.partitions]
        # cache at 0.3 um with 1.2M tr: tiny die... may be feasible; use
        # a genuinely infeasible case: huge partition.
        big = SystemCostModel(
            partitions=(Partition(name="huge", n_transistors=5e8,
                                  design_density=250.0),),
            substrate=model.substrate)
        with pytest.raises(ParameterError):
            big.evaluate([PartitionDesign(partition=big.partitions[0],
                                          feature_size_um=1.2,
                                          test_coverage=0.95)])

    def test_higher_coverage_better_quality_costlier_test(self, model):
        low = model.evaluate([PartitionDesign(partition=p,
                                              feature_size_um=0.8,
                                              test_coverage=0.85)
                              for p in model.partitions])
        high = model.evaluate([PartitionDesign(partition=p,
                                               feature_size_um=0.8,
                                               test_coverage=0.999)
                               for p in model.partitions])
        assert high.module_yield > low.module_yield
        assert high.test_dollars > low.test_dollars


class TestOptimization:
    def test_joint_opt_never_worse_than_baseline(self, model):
        base = silicon_only_baseline(model)
        opt = optimize_system(model)
        assert opt.cost_per_good_system <= base.cost_per_good_system + 1e-9

    def test_optimizer_output_on_grid(self, model):
        grid_l = (0.65, 0.8, 1.0)
        grid_c = (0.9, 0.99)
        report = optimize_system(model, lambda_grid=grid_l,
                                 coverage_grid=grid_c)
        for design in report.designs:
            assert design.feature_size_um in grid_l
            assert design.test_coverage in grid_c

    def test_partitions_get_individual_lambdas(self, model):
        """With densities spanning 45-400, the jointly optimal lambdas
        need not be uniform."""
        report = optimize_system(
            model, lambda_grid=(0.5, 0.65, 0.8, 1.0, 1.2, 1.5))
        lams = {d.partition.name: d.feature_size_um for d in report.designs}
        assert len(lams) == 3  # all partitions present

    def test_empty_grid_rejected(self, model):
        with pytest.raises(ParameterError):
            optimize_system(model, lambda_grid=())

    def test_baseline_requires_feasible_partition(self):
        substrate = McmSubstrate(name="s", cost_dollars=50.0)
        model = SystemCostModel(
            partitions=(Partition(name="huge", n_transistors=5e8,
                                  design_density=250.0),),
            substrate=substrate)
        with pytest.raises(ParameterError):
            silicon_only_baseline(model)


class TestDesignValidation:
    def test_rejects_bad_coverage(self, model):
        with pytest.raises(ParameterError):
            PartitionDesign(partition=model.partitions[0],
                            feature_size_um=0.8, test_coverage=1.5)

    def test_rejects_bad_lambda(self, model):
        with pytest.raises(ParameterError):
            PartitionDesign(partition=model.partitions[0],
                            feature_size_um=0.0, test_coverage=0.9)
