"""Golden tests for :mod:`repro.system.chiplet`.

Two load-bearing properties anchor the model:

* the monolithic-vs-chiplet crossover budget moves **monotonically
  down** as bonding yield improves — better assembly makes splitting
  pay off sooner — with golden values at λ = 0.8 µm, k = 4;
* with free packaging (``BARE_ASSEMBLY``), free test (``FREE_TEST``)
  and full probe coverage, ``k = 1`` degenerates **bitwise** to the
  monolithic eq.-(1) cost of
  :func:`repro.core.optimization.transistor_cost_full`.
"""

import dataclasses
import math

import pytest

from repro.core.optimization import transistor_cost_full
from repro.errors import ParameterError
from repro.manufacturing.test_cost import TestCostModel
from repro.system.chiplet import (
    BARE_ASSEMBLY,
    FREE_TEST,
    ORGANIC_SUBSTRATE,
    PACKAGING_TECHS,
    SILICON_INTERPOSER,
    ChipletCostModel,
    PackagingTech,
    monolithic_crossover,
)


class TestPackagingTech:
    def test_registry_holds_the_canonical_techs(self):
        assert PACKAGING_TECHS == {
            "organic": ORGANIC_SUBSTRATE,
            "interposer": SILICON_INTERPOSER,
            "bare": BARE_ASSEMBLY,
        }
        assert ORGANIC_SUBSTRATE.bond_yield == 0.98
        assert SILICON_INTERPOSER.bond_yield == 0.995
        assert BARE_ASSEMBLY.bond_yield == 1.0
        assert BARE_ASSEMBLY.package_cost(4, 1.0) == 0.0

    def test_package_cost_is_base_plus_per_die_plus_per_area(self):
        tech = PackagingTech(name="t", base_cost_dollars=2.0,
                             cost_per_die_dollars=0.5,
                             cost_per_cm2_dollars=1.25, bond_yield=0.99)
        assert tech.package_cost(4, 3.0) == 2.0 + 0.5 * 4 + 1.25 * (4 * 3.0)

    def test_bond_yield_must_be_a_positive_fraction(self):
        with pytest.raises(ParameterError):
            PackagingTech(name="t", base_cost_dollars=0.0,
                          cost_per_die_dollars=0.0,
                          cost_per_cm2_dollars=0.0, bond_yield=0.0)
        with pytest.raises(ParameterError):
            PackagingTech(name="t", base_cost_dollars=-1.0,
                          cost_per_die_dollars=0.0,
                          cost_per_cm2_dollars=0.0, bond_yield=0.9)


class TestChipletCostModel:
    def test_chiplet_count_validation(self):
        model = ChipletCostModel()
        for bad in (0, -2, 1.5, True, "4"):
            with pytest.raises(ParameterError):
                model.system_cost(bad, 1e6, 0.8)

    def test_point_validation(self):
        model = ChipletCostModel()
        with pytest.raises(ParameterError):
            model.system_cost(2, -1e6, 0.8)
        with pytest.raises(ParameterError):
            model.system_cost(2, 1e6, 0.0)
        with pytest.raises(ParameterError):
            ChipletCostModel(probe_coverage=1.5)

    def test_breakdown_accounting_identities(self):
        model = ChipletCostModel(packaging=SILICON_INTERPOSER)
        b = model.system_cost(4, 5e6, 0.8)
        assert b.feasible
        assert b.transistors_per_chiplet == 5e6 / 4
        assert b.cost_per_transistor_dollars \
            == b.silicon_cost_per_transistor_dollars \
            + b.overhead_cost_per_transistor_dollars
        assert b.system_cost_dollars \
            == b.cost_per_transistor_dollars * b.n_transistors
        assert b.cost_per_transistor_microdollars \
            == b.cost_per_transistor_dollars * 1e6
        assert 0.0 < b.effective_yield <= b.assembly_yield <= 1.0
        assert b.packaging_cost_dollars == \
            SILICON_INTERPOSER.package_cost(4, b.chiplet_area_cm2)

    def test_infeasible_budget_prices_as_inf(self):
        # A die bigger than the wafer fits zero dies per wafer.
        b = ChipletCostModel().system_cost(1, 1e12, 3.0)
        assert not b.feasible
        assert math.isinf(b.cost_per_transistor_dollars)
        assert math.isinf(b.silicon_cost_per_transistor_dollars)
        assert math.isinf(b.overhead_cost_per_transistor_dollars)

    def test_k1_degenerates_to_monolithic_eq1_bitwise(self):
        # Free packaging + free test + full probe coverage leaves only
        # the eq.-(1) silicon term, bit-for-bit.
        model = ChipletCostModel(packaging=BARE_ASSEMBLY, test=FREE_TEST,
                                 probe_coverage=1.0)
        for n in (1e5, 3.7e5, 2e6, 1.3e7, 8e7):
            for lam in (0.4, 0.8, 1.3, 2.1):
                got = model.cost_per_transistor(1, n, lam)
                want = transistor_cost_full(n, lam)
                if math.isinf(want):
                    assert math.isinf(got)
                else:
                    assert got == want

    def test_splitting_restores_feasibility_of_big_budgets(self):
        # A budget whose monolithic die cannot be built becomes
        # buildable once partitioned.
        model = ChipletCostModel()
        mono = model.system_cost(1, 2e8, 0.8)
        split = model.system_cost(8, 2e8, 0.8)
        assert not mono.feasible or math.isinf(
            mono.cost_per_transistor_dollars) \
            or mono.cost_per_transistor_dollars \
            > split.cost_per_transistor_dollars
        assert split.feasible

    def test_interposer_overhead_exceeds_organic(self):
        organic = ChipletCostModel(packaging=ORGANIC_SUBSTRATE)
        interposer = ChipletCostModel(packaging=SILICON_INTERPOSER)
        # Same silicon, pricier package (bond-yield gains aside the
        # interposer charges more per die and per cm²) at a point
        # where assembly yield differences are negligible.
        b_org = organic.system_cost(2, 2e5, 0.8)
        b_int = interposer.system_cost(2, 2e5, 0.8)
        assert b_int.packaging_cost_dollars > b_org.packaging_cost_dollars


class TestMonolithicCrossover:
    #: Golden crossover budgets at λ = 0.8 µm, k = 4, organic
    #: packaging with the bond yield swept: better bonding moves the
    #: crossover earlier (smaller budget).
    GOLDEN = {
        0.90: 3.7195e5,
        0.95: 3.1866e5,
        0.98: 2.8748e5,
        0.995: 2.7034e5,
    }

    def test_crossover_moves_down_as_bond_yield_improves(self):
        crossovers = {}
        for bond, want in self.GOLDEN.items():
            model = ChipletCostModel(packaging=dataclasses.replace(
                ORGANIC_SUBSTRATE, bond_yield=bond))
            got = monolithic_crossover(model, 0.8, chiplets=4)
            assert got is not None
            assert got == pytest.approx(want, rel=1e-3)
            crossovers[bond] = got
        ordered = [crossovers[b] for b in sorted(crossovers)]
        assert ordered == sorted(ordered, reverse=True)

    def test_crossover_budget_actually_crosses(self):
        model = ChipletCostModel()
        n_star = monolithic_crossover(model, 0.8, chiplets=4)
        assert n_star is not None
        below = 0.98 * n_star
        above = 1.02 * n_star
        assert model.cost_per_transistor(1, below, 0.8) \
            <= model.cost_per_transistor(4, below, 0.8)
        assert model.cost_per_transistor(4, above, 0.8) \
            < model.cost_per_transistor(1, above, 0.8)

    def test_crossover_requires_at_least_two_chiplets(self):
        with pytest.raises(ParameterError):
            monolithic_crossover(ChipletCostModel(), 0.8, chiplets=1)

    def test_no_crossover_returns_none(self):
        # An absurdly expensive package never wins over the scanned
        # budget range (the range matters: close to the monolithic
        # feasibility edge the monolithic cost grows without bound, so
        # any finite package eventually pays off).
        never = ChipletCostModel(packaging=PackagingTech(
            name="gold", base_cost_dollars=1e12,
            cost_per_die_dollars=1e12, cost_per_cm2_dollars=1e12,
            bond_yield=0.999))
        assert monolithic_crossover(
            never, 0.8, chiplets=4, n_lo=1e5, n_hi=2e6) is None


class TestRecordingRoundTrip:
    def test_chiplet_query_round_trips_through_the_record_codec(self):
        import json

        from repro.obs.recording import query_to_record, record_to_query
        from repro.serve import ChipletCostQuery
        query = ChipletCostQuery(
            n_transistors=3.3e6, feature_size_um=0.7, chiplets=3,
            model=ChipletCostModel(
                packaging=SILICON_INTERPOSER,
                test=TestCostModel(tester_rate_dollars_per_hour=450.0),
                probe_coverage=0.9))
        payload = json.loads(json.dumps(query_to_record(query)))
        rebuilt = record_to_query(payload)
        assert rebuilt == query
        assert rebuilt.signature() == query.signature()
        assert rebuilt.point() == query.point()
