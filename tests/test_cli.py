"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig6"])
        assert args.name == "fig6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.lot_size == 10
        assert args.seed == 0
        assert args.workers is None

    def test_cost_defaults(self):
        args = build_parser().parse_args([
            "cost", "--transistors", "1e6", "--feature-size", "0.8",
            "--density", "150"])
        assert args.yield0 == 0.7
        assert args.c0 == 500.0
        assert args.wafer_radius == 7.5


class TestCommands:
    @pytest.mark.parametrize("fig", ["fig1", "fig3", "fig5", "fig6", "fig7"])
    def test_figures_render(self, fig, capsys):
        assert main(["figure", fig]) == 0
        out = capsys.readouterr().out
        assert "Fig." in out
        assert len(out.splitlines()) > 10

    def test_fig8_renders_contours(self, capsys):
        assert main(["figure", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "levels:" in out

    @pytest.mark.parametrize("table", ["table1", "table2", "table3"])
    def test_tables_render(self, table, capsys):
        assert main(["table", table]) == 0
        out = capsys.readouterr().out
        assert "Table" in out

    def test_cost_command(self, capsys):
        rc = main(["cost", "--transistors", "3.1e6", "--feature-size", "0.8",
                   "--density", "150", "--c0", "700", "--x", "1.8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost per transistor" in out
        # The Table-3 row-2 value should appear (20.5 x 1e-6).
        assert "20.5" in out

    def test_cost_command_bad_parameters_exit_2(self, capsys):
        rc = main(["cost", "--transistors", "5e9", "--feature-size", "0.8",
                   "--density", "150"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_optimize_command(self, capsys):
        assert main(["optimize", "--die-area", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "optimal feature size" in out

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "scen1" in out and "scen2" in out

    def test_module_invocation(self):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "table", "table1"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "I-cache" in result.stdout

    def test_shrink_command(self, capsys):
        rc = main(["shrink", "--transistors", "1.2e6", "--density", "150",
                   "--from-node", "0.8", "--to-node", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mature cost gain" in out
        assert "dies per wafer" in out

    def test_shrink_command_infeasible_exit_2(self, capsys):
        rc = main(["shrink", "--transistors", "5e9", "--density", "150",
                   "--from-node", "1.0", "--to-node", "0.5"])
        assert rc == 2

    def test_wafermap_command(self, capsys):
        rc = main(["wafermap", "--die-side", "1.2",
                   "--defect-density", "0.6", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "good" in out
        assert "X" in out or "." in out

    def test_wafermap_counts_mode(self, capsys):
        rc = main(["wafermap", "--die-side", "1.2",
                   "--defect-density", "1.5", "--counts"])
        assert rc == 0
        assert "good" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        rc = main(["simulate", "--lot-size", "4", "--die-side", "1.2",
                   "--defect-density", "0.6", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lot yield (Monte Carlo)" in out
        assert "closed-form yield" in out
        wafer_rows = [l for l in out.splitlines() if l.startswith("wafer ")]
        assert len(wafer_rows) == 4

    def test_simulate_command_workers_do_not_change_output(self, capsys):
        args = ["simulate", "--lot-size", "4", "--die-side", "1.2",
                "--defect-density", "0.8", "--seed", "9"]
        assert main(args) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        # Everything except the echoed worker count must be identical.
        strip = [l for l in sequential.splitlines() if "workers" not in l]
        assert strip == [l for l in sharded.splitlines()
                         if "workers" not in l]

    def test_simulate_command_clustered(self, capsys):
        rc = main(["simulate", "--lot-size", "3", "--alpha", "1.5",
                   "--defect-density", "1.0", "--seed", "2"])
        assert rc == 0
        assert "closed-form yield" in capsys.readouterr().out

    def test_simulate_command_bad_workers_exit_2(self, capsys):
        rc = main(["simulate", "--lot-size", "2", "--workers", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_report_command_to_file(self, tmp_path, capsys):
        target = tmp_path / "r.md"
        assert main(["report", str(target)]) == 0
        assert "Headline checks" in target.read_text()


class TestBatchIO:
    """cost/optimize --input: file-driven batches through repro.serve."""

    def _points_csv(self, tmp_path):
        path = tmp_path / "points.csv"
        path.write_text("transistors,feature_size,density,yield0\n"
                        "3.1e6,0.8,150,\n"
                        "1e6,0.5,,0.8\n")
        return path

    def test_cost_input_csv_emits_result_table(self, tmp_path, capsys):
        rc = main(["cost", "--input", str(self._points_csv(tmp_path)),
                   "--density", "150"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("n_transistors,feature_size_um,")
        assert len(lines) == 3  # header + one row per point

    def test_cost_input_matches_scalar_evaluate(self, tmp_path, capsys):
        import csv
        import io

        from repro.core import TransistorCostModel, WaferCostModel
        from repro.geometry import Wafer
        from repro.yieldsim import ReferenceAreaYield

        rc = main(["cost", "--input", str(self._points_csv(tmp_path)),
                   "--density", "150", "--c0", "700"])
        assert rc == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        model = TransistorCostModel(
            wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                      cost_growth_rate=1.8),
            wafer=Wafer(radius_cm=7.5))
        specs = [(3.1e6, 0.8, 0.7), (1e6, 0.5, 0.8)]
        for row, (n, lam, y0) in zip(rows, specs):
            want = model.evaluate(
                n_transistors=n, feature_size_um=lam,
                design_density=150.0,
                yield_model=ReferenceAreaYield(reference_yield=y0,
                                               reference_area_cm2=1.0))
            assert float(row["cost_per_transistor_dollars"]) \
                == want.cost_per_transistor_dollars
            assert int(row["dies_per_wafer"]) == want.dies_per_wafer
            assert row["feasible"] == "True"

    def test_cost_input_json_columnar_output(self, tmp_path, capsys):
        import json
        path = tmp_path / "points.json"
        path.write_text(json.dumps(
            {"transistors": [3.1e6, 1e6], "feature_size": [0.8, 0.5]}))
        rc = main(["cost", "--input", str(path), "--density", "150",
                   "--format", "json"])
        assert rc == 0
        columns = json.loads(capsys.readouterr().out)
        assert len(columns["cost_per_transistor_dollars"]) == 2
        assert columns["feasible"] == [True, True]

    def test_cost_without_input_requires_point_flags(self, capsys):
        rc = main(["cost", "--feature-size", "0.8", "--density", "150"])
        assert rc == 2
        assert "--transistors is required" in capsys.readouterr().err

    def test_cost_input_unknown_field_exit_2(self, tmp_path, capsys):
        path = tmp_path / "points.csv"
        path.write_text("transistors,feature_sise\n1e6,0.8\n")
        rc = main(["cost", "--input", str(path), "--density", "150"])
        assert rc == 2
        assert "feature_sise" in capsys.readouterr().err

    def test_cost_input_missing_density_exit_2(self, tmp_path, capsys):
        path = tmp_path / "points.csv"
        path.write_text("transistors,feature_size\n1e6,0.8\n")
        rc = main(["cost", "--input", str(path)])
        assert rc == 2
        assert "--density is required" in capsys.readouterr().err

    def test_optimize_input_csv(self, tmp_path, capsys):
        from repro.core.optimization import optimal_feature_size_for_die_area
        path = tmp_path / "areas.csv"
        path.write_text("die_area\n0.5\n1.0\n")
        rc = main(["optimize", "--input", str(path)])
        assert rc == 0
        import csv
        import io
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert len(rows) == 2
        for row, area in zip(rows, (0.5, 1.0)):
            lam, cost = optimal_feature_size_for_die_area(area)
            assert float(row["optimal_feature_size_um"]) == lam
            assert float(row["cost_per_transistor_dollars"]) == cost

    def test_optimize_input_json_format(self, tmp_path, capsys):
        import json
        path = tmp_path / "areas.json"
        path.write_text(json.dumps([{"die_area": 1.0}]))
        rc = main(["optimize", "--input", str(path), "--format", "json"])
        assert rc == 0
        columns = json.loads(capsys.readouterr().out)
        assert len(columns["optimal_feature_size_um"]) == 1

    def test_optimize_without_input_requires_die_area(self, capsys):
        rc = main(["optimize"])
        assert rc == 2
        assert "--die-area is required" in capsys.readouterr().err


class TestServeFlags:
    """cost --serve-backend/--serve-workers/--prewarm."""

    def _points_csv(self, tmp_path):
        path = tmp_path / "points.csv"
        path.write_text("transistors,feature_size,density,yield0\n"
                        "3.1e6,0.8,150,\n"
                        "1e6,0.5,,0.8\n")
        return path

    def test_process_backend_output_matches_default(self, tmp_path,
                                                    capsys):
        path = str(self._points_csv(tmp_path))
        assert main(["cost", "--input", path, "--density", "150"]) == 0
        default_out = capsys.readouterr().out
        assert main(["cost", "--input", path, "--density", "150",
                     "--serve-backend", "process",
                     "--serve-workers", "2"]) == 0
        process_out = capsys.readouterr().out
        assert process_out == default_out

    def test_unknown_backend_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["cost", "--serve-backend", "fiber",
                  "--transistors", "1e6", "--feature-size", "0.8",
                  "--density", "150"])

    def test_prewarm_only_reports_unique_points(self, tmp_path, capsys):
        rc = main(["cost", "--prewarm", str(self._points_csv(tmp_path)),
                   "--density", "150"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "prewarmed 2 unique points from 2 recorded queries" \
            in captured.err
        assert captured.out == ""

    def test_prewarm_then_input_serves_batch(self, tmp_path, capsys):
        path = str(self._points_csv(tmp_path))
        rc = main(["cost", "--input", path, "--prewarm", path,
                   "--density", "150"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "prewarmed 2 unique points" in captured.err
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3  # header + one row per point

    def test_record_writes_replayable_log(self, tmp_path, capsys):
        from repro.obs.recording import is_recorded_log, load_recorded_log
        log_path = tmp_path / "traffic.jsonl"
        rc = main(["cost", "--input", str(self._points_csv(tmp_path)),
                   "--density", "150", "--record", str(log_path)])
        assert rc == 0
        capsys.readouterr()
        assert is_recorded_log(log_path)
        log = load_recorded_log(log_path)
        assert len(log) == 2
        assert log.unreplayable == 0

    def test_prewarm_autodetects_recorded_log(self, tmp_path, capsys):
        log_path = tmp_path / "traffic.jsonl"
        points = str(self._points_csv(tmp_path))
        assert main(["cost", "--input", points, "--density", "150",
                     "--record", str(log_path)]) == 0
        capsys.readouterr()
        # Re-serve, prewarming from the recorded log instead of a
        # points file — same results, and the warm pass reports the
        # recorded queries.
        rc = main(["cost", "--input", points, "--density", "150",
                   "--prewarm", str(log_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "prewarmed 2 unique points from 2 recorded queries" \
            in captured.err
        assert len(captured.out.strip().splitlines()) == 3


class TestReplayCommand:
    """replay: record → re-drive → run-dir report from the CLI."""

    def _record(self, tmp_path, capsys):
        points = tmp_path / "points.csv"
        points.write_text(
            "transistors,feature_size\n" + "".join(
                f"{1e5 * (i % 6 + 1)},{0.5 + 0.1 * (i % 3)}\n"
                for i in range(30)))
        log_path = tmp_path / "traffic.jsonl"
        assert main(["cost", "--input", str(points), "--density", "150",
                     "--record", str(log_path)]) == 0
        capsys.readouterr()
        return log_path

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["replay", "--log", "t.jsonl", "--run-dir", "out"])
        assert args.configs == "thread,process,auto,tuned"
        assert args.mode == "closed"
        assert args.workers == 2
        assert args.speed == 1.0

    def test_replay_writes_run_dir_and_passes_parity(self, tmp_path,
                                                     capsys):
        log_path = self._record(tmp_path, capsys)
        run_dir = tmp_path / "run"
        rc = main(["replay", "--log", str(log_path),
                   "--run-dir", str(run_dir),
                   "--configs", "thread,auto,tuned", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parity: all replayed costs bitwise equal" in out
        assert "mismatches" in out
        for artifact in ("raw/thread.json", "raw/auto.json",
                         "raw/tuned.json", "profile.json",
                         "results.csv", "report.md"):
            assert (run_dir / artifact).exists(), artifact

    def test_replay_open_mode_with_speedup(self, tmp_path, capsys):
        log_path = self._record(tmp_path, capsys)
        run_dir = tmp_path / "run"
        rc = main(["replay", "--log", str(log_path),
                   "--run-dir", str(run_dir), "--configs", "thread",
                   "--workers", "1", "--mode", "open",
                   "--speed", "1000"])
        assert rc == 0
        assert "parity: all replayed costs bitwise equal" \
            in capsys.readouterr().out

    def test_replay_missing_log_exit_2(self, tmp_path, capsys):
        rc = main(["replay", "--log", str(tmp_path / "missing.jsonl"),
                   "--run-dir", str(tmp_path / "run")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_replay_unknown_config_exit_2(self, tmp_path, capsys):
        log_path = self._record(tmp_path, capsys)
        rc = main(["replay", "--log", str(log_path),
                   "--run-dir", str(tmp_path / "run"),
                   "--configs", "fiber"])
        assert rc == 2
        assert "config" in capsys.readouterr().err


class TestSweepCommand:
    """sweep: the tiled mega-sweep engine from the command line."""

    _SMALL = ["sweep", "--ntr-points", "12", "--lam-points", "15",
              "--tile-size", "40"]

    def test_sweep_renders_summary_table(self, capsys):
        assert main(self._SMALL) == 0
        out = capsys.readouterr().out
        assert "grid points" in out
        assert "180" in out  # 12 x 15
        assert "tiles (computed/resumed/total)" in out
        assert "optimal feature size [um]" in out

    def test_sweep_output_grid_matches_landscape(self, tmp_path, capsys):
        import numpy as np

        from repro.core.optimization import FIG8_FAB, CostLandscape
        target = tmp_path / "grid.npy"
        assert main(self._SMALL + ["--output", str(target)]) == 0
        grid = np.load(target)
        want = CostLandscape(
            fab=FIG8_FAB,
            feature_sizes_um=np.linspace(0.3, 2.0, 15),
            transistor_counts=np.geomspace(1e5, 1e7, 12)).grid()
        assert np.array_equal(grid, want)

    def test_sweep_backend_workers_do_not_change_output(self, tmp_path,
                                                        capsys):
        import numpy as np
        seq = tmp_path / "seq.npy"
        pooled = tmp_path / "pool.npy"
        assert main(self._SMALL + ["--output", str(seq)]) == 0
        assert main(self._SMALL + ["--output", str(pooled),
                                   "--backend", "process",
                                   "--workers", "2"]) == 0
        assert np.array_equal(np.load(seq), np.load(pooled))

    def test_sweep_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "run")
        assert main(self._SMALL + ["--checkpoint", ckpt]) == 0
        capsys.readouterr()
        # Without --resume a completed directory is refused (exit 2)...
        assert main(self._SMALL + ["--checkpoint", ckpt]) == 2
        assert "resume=True" in capsys.readouterr().err
        # ...with it, everything loads from the checkpoint.
        assert main(self._SMALL + ["--checkpoint", ckpt,
                                   "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 / 6 / 6" in out  # computed / resumed / total

    def test_sweep_bad_points_exit_2(self, capsys):
        rc = main(["sweep", "--ntr-points", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_metrics_flag_reports_counters(self, capsys):
        assert main(self._SMALL + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "sweep.runs" in out
        assert "sweep.tiles" in out

    def test_sweep_trace_flag_writes_spans(self, tmp_path, capsys):
        trace = tmp_path / "spans.jsonl"
        assert main(self._SMALL + ["--trace", str(trace)]) == 0
        assert "wrote" in capsys.readouterr().err
        assert "sweep.run" in trace.read_text()
        assert "sweep.tile" in trace.read_text()


class TestFitYield:
    _SMALL = ["fit-yield", "--lots", "2", "--wafers", "2", "--seed", "7",
              "--wafer-radius", "5.0"]

    @pytest.fixture(autouse=True)
    def _fresh_obs(self):
        # --metrics/--trace on a previous main() call leave the global
        # observability switch on, which would append the metrics table
        # after this test's stdout (breaking e.g. JSON parsing).
        from repro import obs
        obs.disable()
        yield
        obs.disable()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fit-yield"])
        assert args.lots == 8
        assert args.wafers == 5
        assert args.defect_density == 0.8
        assert args.wafer_alpha == 1.5
        assert args.lot_alpha == 2.0
        assert args.format == "table"
        assert args.workers is None

    def test_table_output_ranks_all_laws(self, capsys):
        assert main(self._SMALL) == 0
        out = capsys.readouterr().out
        assert "rank" in out and "AIC" in out
        for law in ("poisson", "murphy", "seeds", "bose_einstein",
                    "negative_binomial", "compound_poisson_gamma",
                    "hierarchical", "mixture"):
            assert law in out
        assert "best by AIC" in out

    def test_law_subset_and_json_format(self, capsys):
        import json
        assert main(self._SMALL + ["--laws", "poisson,seeds",
                                   "--format", "json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert {fit["name"] for fit in blob["ranking"]} \
            == {"poisson", "seeds"}
        assert blob["n_lots"] == 2
        assert blob["ranking"][0]["aic"] <= blob["ranking"][1]["aic"]

    def test_deterministic_for_fixed_seed(self, capsys):
        assert main(self._SMALL) == 0
        first = capsys.readouterr().out
        assert main(self._SMALL) == 0
        assert capsys.readouterr().out == first

    def test_unknown_law_exit_2(self, capsys):
        rc = main(self._SMALL + ["--laws", "weibull"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_flag_reports_fit_counters(self, capsys):
        assert main(self._SMALL + ["--laws", "poisson,murphy",
                                   "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "yield.fit.calls" in out
        assert "yield.fit.laws" in out

    def test_trace_flag_writes_fit_spans(self, tmp_path, capsys):
        trace = tmp_path / "spans.jsonl"
        assert main(self._SMALL + ["--laws", "poisson,seeds",
                                   "--trace", str(trace)]) == 0
        assert "wrote" in capsys.readouterr().err
        text = trace.read_text()
        assert "yield.fit" in text
        assert "yield.fit.poisson" in text
        assert "yield.fit.seeds" in text


class TestServeAndLoadgenCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.serve_backend == "auto"
        assert args.serve_workers == 1
        assert args.record is None
        assert args.density == 150.0

    def test_loadgen_parser_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen"])
        args = build_parser().parse_args(["loadgen", "--port", "8123"])
        assert args.rps == 200.0
        assert args.requests == 200
        assert args.connections == 8
        assert not args.no_verify

    def test_loadgen_against_live_server(self, capsys):
        from repro.serve.http import ServerThread
        with ServerThread(cache=None) as srv:
            rc = main(["loadgen", "--port", str(srv.port),
                       "--requests", "20", "--rps", "400",
                       "--connections", "2", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 bitwise mismatches" in out
        assert "p99=" in out

    def test_loadgen_bad_mix_exit_2(self, capsys):
        rc = main(["loadgen", "--port", "1", "--mix", "cost"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
