"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig6"])
        assert args.name == "fig6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.lot_size == 10
        assert args.seed == 0
        assert args.workers is None

    def test_cost_defaults(self):
        args = build_parser().parse_args([
            "cost", "--transistors", "1e6", "--feature-size", "0.8",
            "--density", "150"])
        assert args.yield0 == 0.7
        assert args.c0 == 500.0
        assert args.wafer_radius == 7.5


class TestCommands:
    @pytest.mark.parametrize("fig", ["fig1", "fig3", "fig5", "fig6", "fig7"])
    def test_figures_render(self, fig, capsys):
        assert main(["figure", fig]) == 0
        out = capsys.readouterr().out
        assert "Fig." in out
        assert len(out.splitlines()) > 10

    def test_fig8_renders_contours(self, capsys):
        assert main(["figure", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "levels:" in out

    @pytest.mark.parametrize("table", ["table1", "table2", "table3"])
    def test_tables_render(self, table, capsys):
        assert main(["table", table]) == 0
        out = capsys.readouterr().out
        assert "Table" in out

    def test_cost_command(self, capsys):
        rc = main(["cost", "--transistors", "3.1e6", "--feature-size", "0.8",
                   "--density", "150", "--c0", "700", "--x", "1.8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost per transistor" in out
        # The Table-3 row-2 value should appear (20.5 x 1e-6).
        assert "20.5" in out

    def test_cost_command_bad_parameters_exit_2(self, capsys):
        rc = main(["cost", "--transistors", "5e9", "--feature-size", "0.8",
                   "--density", "150"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_optimize_command(self, capsys):
        assert main(["optimize", "--die-area", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "optimal feature size" in out

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "scen1" in out and "scen2" in out

    def test_module_invocation(self):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "table", "table1"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "I-cache" in result.stdout

    def test_shrink_command(self, capsys):
        rc = main(["shrink", "--transistors", "1.2e6", "--density", "150",
                   "--from-node", "0.8", "--to-node", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mature cost gain" in out
        assert "dies per wafer" in out

    def test_shrink_command_infeasible_exit_2(self, capsys):
        rc = main(["shrink", "--transistors", "5e9", "--density", "150",
                   "--from-node", "1.0", "--to-node", "0.5"])
        assert rc == 2

    def test_wafermap_command(self, capsys):
        rc = main(["wafermap", "--die-side", "1.2",
                   "--defect-density", "0.6", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "good" in out
        assert "X" in out or "." in out

    def test_wafermap_counts_mode(self, capsys):
        rc = main(["wafermap", "--die-side", "1.2",
                   "--defect-density", "1.5", "--counts"])
        assert rc == 0
        assert "good" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        rc = main(["simulate", "--lot-size", "4", "--die-side", "1.2",
                   "--defect-density", "0.6", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lot yield (Monte Carlo)" in out
        assert "closed-form yield" in out
        wafer_rows = [l for l in out.splitlines() if l.startswith("wafer ")]
        assert len(wafer_rows) == 4

    def test_simulate_command_workers_do_not_change_output(self, capsys):
        args = ["simulate", "--lot-size", "4", "--die-side", "1.2",
                "--defect-density", "0.8", "--seed", "9"]
        assert main(args) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        # Everything except the echoed worker count must be identical.
        strip = [l for l in sequential.splitlines() if "workers" not in l]
        assert strip == [l for l in sharded.splitlines()
                         if "workers" not in l]

    def test_simulate_command_clustered(self, capsys):
        rc = main(["simulate", "--lot-size", "3", "--alpha", "1.5",
                   "--defect-density", "1.0", "--seed", "2"])
        assert rc == 0
        assert "closed-form yield" in capsys.readouterr().out

    def test_simulate_command_bad_workers_exit_2(self, capsys):
        rc = main(["simulate", "--lot-size", "2", "--workers", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_report_command_to_file(self, tmp_path, capsys):
        target = tmp_path / "r.md"
        assert main(["report", str(target)]) == 0
        assert "Headline checks" in target.read_text()
