"""System partitioning: one die or several, and at which feature sizes?

The Sec.-IV.B / Sec.-VI exercise on a Table-1-like microprocessor:
dense caches and sparse control logic have very different cost-optimal
feature sizes, so implementing the system as multiple dies (each at its
own node, assembled on an MCM) can beat the monolithic SoC.

Run:  python examples/partition_optimizer.py
"""

from repro.system import (
    Partition,
    PartitionedSystem,
    optimal_partition_count,
    optimize_partition_feature_sizes,
)

# The ISSCC'93 3M-transistor microprocessor of Table 1, block by block.
BLOCKS = (
    Partition(name="i-cache", n_transistors=1.2e6, design_density=43.2),
    Partition(name="d-cache", n_transistors=1.1e6, design_density=50.7),
    Partition(name="fp-unit", n_transistors=3.23e5, design_density=222.3),
    Partition(name="int-unit", n_transistors=2.32e5, design_density=257.9),
    Partition(name="mmu", n_transistors=1.18e5, design_density=270.5),
    Partition(name="bus-unit", n_transistors=5.0e4, design_density=399.0),
)


def per_block_optimization() -> None:
    system = PartitionedSystem(partitions=BLOCKS)
    choices = optimize_partition_feature_sizes(system)

    print("Per-partition optimal feature size (Fig.-8 fab):")
    total = 0.0
    for choice in choices:
        total += choice.die_cost_dollars
        print(f"  {choice.partition.name:9s} "
              f"d_d={choice.partition.design_density:6.1f}  "
              f"lambda_opt={choice.feature_size_um:5.2f} um  "
              f"die cost=${choice.die_cost_dollars:8.2f}")
    print(f"  {'TOTAL':9s} {'':20s} ${total:8.2f}")

    best_uniform = None
    for k in range(19):
        lam = 0.3 + 0.05 * k
        try:
            cost = system.cost_at_uniform_lambda(lam)
        except Exception:
            continue
        if best_uniform is None or cost < best_uniform[1]:
            best_uniform = (lam, cost)
    assert best_uniform is not None
    print(f"\nBest single-lambda SoC: lambda={best_uniform[0]:.2f} um, "
          f"total ${best_uniform[1]:.2f}")
    print(f"Per-partition splitting saves "
          f"{1.0 - total / best_uniform[1]:.1%}")


def how_many_dies() -> None:
    print("\nHow many dies should a 5M-transistor logic design become?")
    for assembly in (1.0, 5.0, 25.0):
        best_n, best_cost, single = optimal_partition_count(
            5.0e6, 152.0, per_die_assembly_cost=assembly, max_partitions=8)
        print(f"  assembly ${assembly:5.1f}/die: best split = {best_n} dies "
              f"(${best_cost:8.2f} vs ${single:8.2f} monolithic)")


def main() -> None:
    per_block_optimization()
    how_many_dies()


if __name__ == "__main__":
    main()
