"""Multi-project wafer broker: low-volume silicon without the penalty.

The paper's Phase-2 niche players survive by sharing: MPW runs split a
wafer (and its cost) among projects.  This example prices three small
projects on a shared 6-inch wafer, compares against each buying whole
wafers, and shows the aspect-ratio lever the eq.-(4) geometry offers
for free.

Run:  python examples/mpw_broker.py
"""

from repro.geometry import (
    Die,
    ProjectRequest,
    Wafer,
    aspect_ratio_penalty,
    best_aspect_ratio,
    dies_per_wafer_maly,
    mpw_cost_per_die,
    multi_project_allocation,
)

WAFER = Wafer(radius_cm=7.5)
WAFER_COST = 1500.0


def broker_run() -> None:
    requests = (
        ProjectRequest(name="asic-alpha", die=Die.square(1.0),
                       dies_wanted=30),
        ProjectRequest(name="asic-beta", die=Die.square(0.7),
                       dies_wanted=40),
        ProjectRequest(name="testchip", die=Die.square(0.4),
                       dies_wanted=60),
    )
    allocations = multi_project_allocation(WAFER, requests, WAFER_COST)
    print(f"One shared wafer (${WAFER_COST:.0f}):")
    for alloc in allocations:
        req = alloc.request
        per_die = mpw_cost_per_die(alloc)
        solo_dies = dies_per_wafer_maly(WAFER, req.die)
        solo_per_die = WAFER_COST / solo_dies
        print(f"  {req.name:11s} rows={alloc.rows_assigned:2d} "
              f"dies={alloc.dies_obtained:4d} (wanted {req.dies_wanted:3d}) "
              f"share=${alloc.cost_share_dollars:7.2f} "
              f"per-die=${per_die:6.2f} "
              f"(whole-wafer buy: ${solo_per_die:5.2f}/die but "
              f"${WAFER_COST:.0f} upfront)")
    total = sum(a.cost_share_dollars for a in allocations)
    print(f"  broker collects ${total:.2f} — the full wafer, fairly split")


def aspect_lever() -> None:
    print("\nAspect-ratio lever for a 2 cm^2 die on the 6-inch wafer:")
    ratio, count = best_aspect_ratio(WAFER, 2.0)
    print(f"  best ratio {ratio:.2f} packs {count} dies")
    for r in (1.0, 2.0, 4.0, 8.0):
        penalty = aspect_ratio_penalty(WAFER, 2.0, r)
        die = Die.from_area(2.0, aspect_ratio=r)
        n = dies_per_wafer_maly(WAFER, die)
        print(f"  ratio {r:4.1f}: {n:3d} dies "
              f"({penalty:5.1%} cost penalty vs best)")


def main() -> None:
    broker_run()
    aspect_lever()


if __name__ == "__main__":
    main()
