"""The Fig.-10 workflow: one model, all the strategic variables.

The paper's final argument: silicon, test and packaging must be
optimized *together*.  This example builds a three-partition system on
a smart-substrate MCM, compares three design flows —

1. silicon-only (pick each λ for cheapest silicon; coverage by habit),
2. test-only (habit λ; crank coverage to the maximum),
3. the joint Fig.-10 optimization —

and then stresses the conclusion: as escape/diagnosis costs grow, the
gap between the disconnected flows and the joint optimum widens.

Run:  python examples/system_cosynthesis.py
"""

from repro.system import (
    McmSubstrate,
    PartitionDesign,
    SystemCostModel,
    optimize_system,
    silicon_only_baseline,
)
from repro.system.partitioning import Partition

PARTITIONS = (
    Partition(name="cache", n_transistors=1.2e6, design_density=45.0),
    Partition(name="logic", n_transistors=3.0e5, design_density=250.0),
    Partition(name="io", n_transistors=5.0e4, design_density=400.0),
)


def build_model(diagnosis_cost: float) -> SystemCostModel:
    substrate = McmSubstrate(name="smart silicon", cost_dollars=150.0,
                             self_test=True,
                             diagnosis_cost_dollars=diagnosis_cost,
                             rework_success=0.9)
    return SystemCostModel(partitions=PARTITIONS, substrate=substrate)


def compare_flows(model: SystemCostModel) -> None:
    silicon_flow = silicon_only_baseline(model)
    test_flow = model.evaluate([
        PartitionDesign(partition=p, feature_size_um=0.8,
                        test_coverage=0.999)
        for p in model.partitions])
    joint = optimize_system(model)

    print(f"{'flow':28s} {'silicon':>9s} {'test':>7s} "
          f"{'yield':>7s} {'$/good system':>14s}")
    for name, report in (("silicon-only", silicon_flow),
                         ("test-only (0.8 um habit)", test_flow),
                         ("joint Fig.-10 optimum", joint)):
        print(f"{name:28s} {report.silicon_dollars:9.2f} "
              f"{report.test_dollars:7.2f} {report.module_yield:7.1%} "
              f"{report.cost_per_good_system:14.2f}")
    print("joint choices:")
    for design in joint.designs:
        print(f"  {design.partition.name:6s} lambda = "
              f"{design.feature_size_um:4.2f} um, coverage = "
              f"{design.test_coverage:.2f}")


def main() -> None:
    print("=== cheap diagnosis (smart substrate working as designed)")
    compare_flows(build_model(diagnosis_cost=5.0))
    print("\n=== expensive diagnosis (passive-substrate world)")
    compare_flows(build_model(diagnosis_cost=400.0))
    print("\nThe dearer failures become, the more the disconnected flows"
          "\nleave on the table — the paper's case for integrated cost"
          "\nmodels, in numbers.")


if __name__ == "__main__":
    main()
