"""MCM economics: smart substrates and known-good die (Sec. VI).

Reproduces the paper's closing argument with the system-level models:

1. A 5x-more-expensive *active silicon* substrate (self-testing, cheap
   diagnosis) can yield a cheaper module than a passive substrate —
   "traditional MCM strategies focus on the cost of the substrate
   itself" and miss this.
2. Known-good-die testing: the per-die premium pays off beyond a
   module-size threshold, answering [31]'s question.

Run:  python examples/mcm_tradeoff.py
"""

from repro.system import KgdEconomics, McmCostModel, McmSubstrate
from repro.system.mcm import compare_substrates

PASSIVE = McmSubstrate(name="passive ceramic", cost_dollars=50.0,
                       diagnosis_cost_dollars=400.0, rework_success=0.6)
SMART = McmSubstrate(name="active silicon (smart)", cost_dollars=250.0,
                     self_test=True, diagnosis_cost_dollars=5.0,
                     rework_success=0.95)


def substrate_tradeoff() -> None:
    print("Module: 8 dies, $80/die, 95% incoming quality")
    result = compare_substrates(
        McmCostModel(substrate=PASSIVE, n_dies=8, die_cost_dollars=80.0,
                     incoming_quality=0.95),
        McmCostModel(substrate=SMART, n_dies=8, die_cost_dollars=80.0,
                     incoming_quality=0.95))
    print(f"  passive substrate ${result['passive_substrate_dollars']:.0f} "
          f"-> ${result['passive_cost_per_good_module']:.0f} per good module")
    print(f"  smart substrate   ${result['smart_substrate_dollars']:.0f} "
          f"-> ${result['smart_cost_per_good_module']:.0f} per good module")
    verdict = "saves" if result["smart_saves"] > 0 else "loses"
    print(f"  the 5x-dearer smart substrate {verdict} "
          f"${abs(result['smart_saves']):.0f} per module at system level")


def kgd_threshold() -> None:
    econ = KgdEconomics(
        die_yield=0.8, probe_coverage=0.90, kgd_coverage=0.99,
        kgd_test_cost_dollars=15.0, die_cost_dollars=60.0,
        n_dies=8, substrate=PASSIVE)
    print("\nKnown-good-die decision (probe 90% vs KGD 99% coverage, "
          "$15/die premium):")
    for n in (2, 4, 8, 16, 32):
        trial = KgdEconomics(
            die_yield=0.8, probe_coverage=0.90, kgd_coverage=0.99,
            kgd_test_cost_dollars=15.0, die_cost_dollars=60.0,
            n_dies=n, substrate=PASSIVE)
        delta = trial.kgd_premium_worth_paying()
        verdict = "KGD pays" if delta > 0 else "probe-only wins"
        print(f"  {n:3d} dies/module: KGD saves ${delta:8.2f} "
              f"per good module ({verdict})")
    threshold = econ.breakeven_module_size()
    print(f"  breakeven module size: {threshold} dies")


def main() -> None:
    substrate_tradeoff()
    kgd_threshold()


if __name__ == "__main__":
    main()
