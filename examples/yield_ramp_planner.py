"""Yield ramp planner: when to shrink, and what faster learning is worth.

The [26] "product shrink" question end to end:

1. A 1.2M-transistor product ships at 0.8 µm on a mature line.  The
   0.5 µm node is dirtier today but learning — when does moving pay?
2. What is "computer aids in rapid yield learning" (the paper's Phase-2
   survival item) worth in program dollars?
3. Read the fab like an engineer: simulate wafer maps, estimate the
   defect density and clustering back out of them.

Run:  python examples/yield_ramp_planner.py
"""

import numpy as np

from repro.core import ShrinkAnalysis, WaferCostModel
from repro.geometry import Die, Wafer
from repro.yieldsim import (
    RampEconomics,
    SpotDefectSimulator,
    YieldLearningCurve,
    fit_lot,
)


def shrink_timing() -> None:
    # Density coefficient 0.05 at the 1 um reference: eq. (7)'s
    # lambda^-p killer scaling means the 0.5 um node still sees
    # ~0.84 killers/cm^2 at maturity.
    analysis = ShrinkAnalysis(
        n_transistors=1.2e6, design_density=150.0,
        wafer_cost=WaferCostModel(reference_cost_dollars=500.0,
                                  cost_growth_rate=1.4),
        mature_density_per_cm2=0.05)

    old_cost = analysis.cost_per_transistor(0.8) * 1e6
    mature_new = analysis.cost_per_transistor(0.5) * 1e6
    print("Shrink 0.8 um -> 0.5 um (1.2M-transistor product):")
    print(f"  today  at 0.8 um (mature) : C_tr = {old_cost:6.2f} x 1e-6 $")
    print(f"  future at 0.5 um (mature) : C_tr = {mature_new:6.2f} x 1e-6 $ "
          f"({analysis.shrink_gain_at_maturity(0.8, 0.5):.2f}x gain)")

    floor = analysis.mature_density_at(0.5)
    for tau in (3.0, 6.0, 12.0):
        curve = YieldLearningCurve(initial_density_per_cm2=8.0,
                                   mature_density_per_cm2=floor,
                                   time_constant_months=tau)
        month = analysis.breakeven_month(0.8, 0.5, curve)
        print(f"  learning tau = {tau:4.1f} months -> shrink pays from "
              f"month {month:.0f}" if month is not None else
              f"  learning tau = {tau:4.1f} months -> never pays in horizon")


def learning_value() -> None:
    curve = YieldLearningCurve(5.0, 0.5, 6.0)
    ramp = RampEconomics(curve=curve, die_area_cm2=1.0, dies_per_wafer=120,
                         wafers_per_month=2000.0, wafer_cost_dollars=800.0,
                         die_price_dollars=40.0, window_months=24.0)
    print(f"\nA 24-month ramp earns ${ramp.program_profit() / 1e6:.1f}M.")
    for factor in (1.5, 2.0, 4.0):
        value = ramp.value_of_faster_learning(factor)
        print(f"  learning {factor}x faster is worth "
              f"${value / 1e6:6.1f}M extra")
    print(f"  breakeven month: {ramp.breakeven_month():.2f}")


def read_the_fab() -> None:
    wafer, die = Wafer(radius_cm=7.5), Die.square(1.0)
    rng = np.random.default_rng(7)
    lot = SpotDefectSimulator(wafer, die, defect_density_per_cm2=1.2,
                              clustering_alpha=2.0).simulate_lot(60, rng)
    report = fit_lot(lot, die.area_cm2)
    print("\nEstimating the fab from its own wafer maps "
          "(true: D = 1.2 /cm^2, alpha = 2.0):")
    print(f"  density (count MLE)     : {report.density_mle_per_cm2:.2f} /cm^2")
    print(f"  density (yield inverted): "
          f"{report.density_from_yield_per_cm2:.2f} /cm^2 "
          "(biased low under clustering!)")
    print(f"  clustering alpha (MoM)  : {report.clustering_alpha:.2f}")
    print(f"  clustered?              : {report.is_clustered}")


def main() -> None:
    shrink_timing()
    learning_value()
    read_the_fab()


if __name__ == "__main__":
    main()
