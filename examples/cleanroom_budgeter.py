"""Cleanroom budgeter: turning Fig. 4's requirement into a work plan.

Each generation *requires* a cleaner fab (Fig. 4's lower curve).  A
process integrator must translate that single density target into
per-layer cleaning work at minimum engineering cost.  This example
budgets a 4-layer stack for a 64 Mb-class die at three yield targets
and shows the water-filling structure: clean the cheap layers hard,
leave the already-clean ones alone.

Run:  python examples/cleanroom_budgeter.py
"""

from repro.yieldsim import LayerDefectivity, plan_for_yield
from repro.yieldsim.budget import required_total_density, total_density

STACK = (
    LayerDefectivity(name="metal-1", density_per_cm2=1.2,
                     cost_per_decade_dollars=2.0e6),
    LayerDefectivity(name="gate", density_per_cm2=0.8,
                     cost_per_decade_dollars=8.0e6),
    LayerDefectivity(name="contact", density_per_cm2=0.5,
                     cost_per_decade_dollars=3.0e6),
    LayerDefectivity(name="implant", density_per_cm2=0.1,
                     cost_per_decade_dollars=5.0e6),
)

DIE_AREA_CM2 = 1.4  # a 64 Mb-class DRAM die


def main() -> None:
    print(f"Current stack: {total_density(STACK):.2f} killers/cm^2 total")
    for layer in STACK:
        print(f"  {layer.name:9s} {layer.density_per_cm2:5.2f} /cm^2  "
              f"(${layer.cost_per_decade_dollars / 1e6:.0f}M per decade "
              "of cleaning)")

    for target_yield in (0.5, 0.7, 0.85):
        budget = required_total_density(DIE_AREA_CM2, target_yield)
        allocations, cost = plan_for_yield(STACK, DIE_AREA_CM2, target_yield)
        print(f"\nYield target {target_yield:.0%} on a {DIE_AREA_CM2} cm^2 "
              f"die -> density budget {budget:.2f} /cm^2, "
              f"cleaning spend ${cost / 1e6:.1f}M:")
        for alloc in allocations:
            action = ("leave alone" if alloc.decades_cleaned < 1e-9 else
                      f"clean {alloc.decades_cleaned:.2f} decades "
                      f"(${alloc.cleaning_cost_dollars / 1e6:.1f}M)")
            print(f"  {alloc.layer.name:9s} "
                  f"{alloc.layer.density_per_cm2:5.2f} -> "
                  f"{alloc.target_density_per_cm2:5.3f} /cm^2   {action}")
    print("\nWater-filling at work: metal (cheap) absorbs most of the "
          "cleaning;\nthe already-clean implant layer is never touched.")


if __name__ == "__main__":
    main()
