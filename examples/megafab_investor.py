"""Megafab investor: pricing the Phase-1 "invest-now-to-dominate-later" bet.

Sec. V's first trend is the race to billion-dollar fabs.  This example
prices that bet with the investment substrate:

1. NPV/IRR of a $1B megafab under healthy and compressed margins
   (the [5] "Siege of Intel" margin-squeeze).
2. The margin floor at which the build stops clearing its hurdle rate.
3. The capital-indivisibility moat: the same fab at niche volume.
4. The Bi-rule connection: how fast cumulative-volume price learning
   erodes the margin toward that floor.

Run:  python examples/megafab_investor.py
"""

from repro.core import LearningCurvePrice, MarginModel
from repro.manufacturing import FabInvestment


def the_bet() -> None:
    healthy = FabInvestment(construction_cost_dollars=1.0e9,
                            wafers_per_year=120_000,
                            margin_per_wafer_dollars=2500.0,
                            ramp_years=2, life_years=8)
    squeezed = FabInvestment(construction_cost_dollars=1.0e9,
                             wafers_per_year=120_000,
                             margin_per_wafer_dollars=2500.0,
                             ramp_years=2, life_years=8,
                             margin_erosion_per_year=0.25)
    print("A $1B megafab, 120k wafers/year, $2500 margin:")
    print(f"  flat margins    : NPV(12%) = "
          f"${healthy.npv(0.12) / 1e6:7.0f}M, IRR = {healthy.irr():.1%}, "
          f"payback year {healthy.discounted_payback_years(0.12)}")
    print(f"  25%/yr erosion  : NPV(12%) = "
          f"${squeezed.npv(0.12) / 1e6:7.0f}M, IRR = {squeezed.irr():.1%}")
    floor = healthy.breakeven_margin(0.12)
    print(f"  margin floor at a 12% hurdle: ${floor:.0f}/wafer")


def the_moat() -> None:
    print("\nThe capital-indivisibility moat:")
    for volume in (120_000, 60_000, 30_000, 20_000):
        fab = FabInvestment(construction_cost_dollars=1.0e9,
                            wafers_per_year=volume,
                            margin_per_wafer_dollars=2500.0)
        verdict = "builds" if fab.npv(0.12) > 0 else "cannot build"
        print(f"  {volume:7,d} wafers/year: NPV(12%) = "
              f"${fab.npv(0.12) / 1e6:7.0f}M -> a player at this volume "
              f"{verdict}")
    print("  (why niche players 'can not spend 1 billion dollars' — Sec. V)")


def the_erosion_clock() -> None:
    """How long before Bi-rule price learning eats a $2500 margin?"""
    # Wafer revenue follows the bit-price learning curve as the product
    # commoditizes; stylize: revenue starts at $4500, variable cost $2000.
    price = LearningCurvePrice(first_unit_price_dollars=4500.0,
                               learning_rate=0.85)
    print("\nBi-rule erosion of the wafer margin "
          "(85% learning rate, one cumulative doubling/year):")
    for year in range(0, 9, 2):
        revenue = price.price(2.0 ** year)
        net = revenue - 2000.0
        if net > 0.0:
            gross = MarginModel(unit_price_dollars=revenue,
                                unit_cost_dollars=2000.0).gross_margin
            print(f"  year {year}: wafer revenue ${revenue:6.0f}, "
                  f"margin ${net:6.0f} (gross {gross:5.1%})")
        else:
            print(f"  year {year}: wafer revenue ${revenue:6.0f}, "
                  f"margin ${net:6.0f} (under water)")
    print("  -> the decade-scale clock behind Phase 2's "
          "'true and smart cost cutting effort stage'")


def main() -> None:
    the_bet()
    the_moat()
    the_erosion_clock()


if __name__ == "__main__":
    main()
