"""Cost diversity survey: regenerate and explore the paper's Table 3.

Runs the full cost model over the 17-product catalog, prints model vs
paper, then does the what-if the paper invites: replay the non-memory
rows under memory-style economics (high yield, low density) to show why
"what is cost effective for memories is not necessarily beneficial for
non-memory products".

Run:  python examples/cost_diversity_survey.py
"""

from dataclasses import replace

from repro import evaluate_catalog, evaluate_product, PRODUCT_CATALOG
from repro.analysis import ascii_table
from repro.core.diversity import agreement_statistics, cheapest_and_dearest


def print_table3() -> None:
    results = evaluate_catalog()
    rows = []
    for i, r in enumerate(results, 1):
        rows.append((i, r.spec.name[:30], r.spec.feature_size_um,
                     r.spec.design_density,
                     r.ctr_microdollars,
                     r.published_microdollars
                     if r.published_microdollars else float("nan")))
    print(ascii_table(
        ("#", "product", "lam [um]", "d_d", "model C_tr [$1e-6]",
         "paper C_tr [$1e-6]"), rows))
    stats = agreement_statistics(results)
    print(f"\nmean |log error| vs paper: {stats['mean_abs_log_error']:.3f} "
          f"over {stats['n_compared']:.0f} rows; "
          f"spread {stats['modeled_spread']:.0f}x")
    cheapest, dearest = cheapest_and_dearest(results)
    print(f"cheapest: {cheapest.spec.name} "
          f"({cheapest.ctr_microdollars:.2f}); "
          f"dearest: {dearest.spec.name} "
          f"({dearest.ctr_microdollars:.1f})")


def memory_economics_what_if() -> None:
    """Replay the PLD row with progressively more memory-like economics."""
    pld = PRODUCT_CATALOG[16]
    steps = [
        ("as published (PLD)", pld),
        ("with memory-grade yield (0.9)",
         replace(pld, reference_yield=0.9)),
        ("+ memory-grade density (d_d=30)",
         replace(pld, reference_yield=0.9, design_density=30.0)),
        ("+ memory-grade wafer cost (C0=$500)",
         replace(pld, reference_yield=0.9, design_density=30.0,
                 reference_wafer_cost_dollars=500.0)),
    ]
    print("\nWhat makes memory transistors 250x cheaper than PLD ones?")
    for label, spec in steps:
        spec = replace(spec, published_ctr_microdollars=None)
        r = evaluate_product(spec)
        print(f"  {label:38s} C_tr = {r.ctr_microdollars:8.2f} x 1e-6 $")
    print("  -> design density is the dominant lever (~90x); yield and "
          "wafer cost add the rest.  Integration scale per se does not "
          "matter: eq. (1) charges by wafer area, and N_ch x N_tr is "
          "roughly constant at fixed density")


def main() -> None:
    print_table3()
    memory_economics_what_if()


if __name__ == "__main__":
    main()
