"""Scenario explorer: when does shrinking stop paying?

Reproduces the paper's Scenario #1 / Scenario #2 contrast (Figs. 6-7)
interactively: sweeps feature size under both scenario assumptions,
locates the cost-optimal feature size for a user-defined custom
scenario, and runs a tornado sensitivity analysis showing which
parameter dominates the cost of a shrink decision.

Run:  python examples/scenario_explorer.py
"""

import numpy as np

from repro import SCENARIO_1, SCENARIO_2
from repro.analysis import ascii_chart
from repro.core import Scenario
from repro.core.sensitivity import tornado


def sweep_scenarios() -> None:
    lams = np.linspace(0.25, 1.0, 26)
    s1 = {f"scen1 X={x}": np.array([SCENARIO_1.cost_dollars(l, x) * 1e6
                                    for l in lams])
          for x in (1.1, 1.3)}
    s2 = {f"scen2 X={x}": np.array([SCENARIO_2.cost_dollars(l, x) * 1e6
                                    for l in lams])
          for x in (1.8, 2.4)}
    print("Cost per transistor [$1e-6] vs feature size [um]")
    print(ascii_chart(lams, {**s1, **s2}, log_y=True,
                      x_label="feature size [um]", y_label="C_tr [$1e-6]"))
    print("\nScenario #1 (memory, Y=100%): shrink keeps paying.")
    print("Scenario #2 (custom uP, growing die, 70%/cm^2): shrink backfires.")


def find_sweet_spot() -> None:
    # A custom scenario between the two extremes: ASIC-like density,
    # moderate cost growth, 80% reference yield, die growing slowly.
    custom = Scenario(
        name="ASIC house",
        growth_rates=(1.6,),
        design_density=300.0,
        reference_cost_dollars=900.0,
        reference_yield=0.8,
        die_area_cm2_fn=lambda lam: 0.8 * np.exp(-2.0 * (lam - 0.6)))
    lam_opt = custom.crossover_feature_size(1.6, lam_lo_um=0.3,
                                            lam_hi_um=1.2)
    print(f"\nCustom ASIC scenario: cost-optimal feature size = "
          f"{lam_opt:.2f} um" if lam_opt is not None else
          "\nCustom ASIC scenario: optimum at the sweep boundary")
    for lam in (0.35, 0.5, 0.8, 1.0):
        c = custom.cost_dollars(lam, 1.6) * 1e6
        print(f"  lambda = {lam:4.2f} um -> C_tr = {c:7.2f} x 1e-6 $")


def dominant_lever() -> None:
    def cost(x=1.8, y0=0.7, d_d=200.0, lam=0.5):
        scenario = Scenario(name="probe", growth_rates=(x,),
                            design_density=d_d, reference_yield=y0)
        return scenario.cost_dollars(lam, x)

    baseline = {"x": 1.8, "y0": 0.7, "d_d": 200.0, "lam": 0.5}
    ranges = {
        "x": (1.2, 2.4),        # the published X estimates span this
        "y0": (0.5, 0.9),       # fab maturity
        "d_d": (100.0, 400.0),  # design style (Table 2's uP range)
        "lam": (0.35, 0.8),     # node choice
    }
    print("\nTornado analysis at the Scenario-#2 operating point:")
    for bar in tornado(cost, baseline, ranges):
        print(f"  {bar.parameter:4s}: swing = "
              f"{bar.relative_swing:5.1%} of baseline cost "
              f"({bar.low_value} -> {bar.high_value})")


def main() -> None:
    sweep_scenarios()
    find_sweet_spot()
    dominant_lever()


if __name__ == "__main__":
    main()
