"""Fab planner: volume, overhead and product mix (Sec. III.A in numbers).

Answers three planning questions with the manufacturing substrates:

1. At what volume does a $100M-overhead microprocessor program reach a
   sane wafer cost (eq. 2)?
2. Own fab vs foundry: where is the breakeven volume?
3. What does running four ASIC products at low volume through one fab
   do to the ownership cost per wafer (the [12] penalty)?

Run:  python examples/fab_planner.py
"""

from repro.manufacturing import VolumeCostCurve, mix_cost_ratio
from repro.manufacturing.equipment import ProcessFlow
from repro.technology import FabLine


def overhead_amortization() -> None:
    # The paper: overhead $100k (ASIC) to $100M (uP) [14].
    microprocessor = VolumeCostCurve(pure_cost_dollars=900.0,
                                     overhead_dollars=100.0e6)
    asic = VolumeCostCurve(pure_cost_dollars=1200.0,
                           overhead_dollars=100.0e3)
    print("Wafer cost vs volume (eq. 2):")
    print(f"  {'volume':>10s} {'uP ($100M over)':>16s} {'ASIC ($100k over)':>18s}")
    for volume in (1e3, 1e4, 1e5, 1e6):
        print(f"  {volume:10.0f} {microprocessor.cost(volume):16.0f} "
              f"{asic.cost(volume):18.0f}")
    v_half = microprocessor.volume_for_cost(1800.0)
    print(f"  -> the uP program needs {v_half:,.0f} wafers before overhead "
          "drops to half the wafer cost")


def make_vs_buy() -> None:
    own = VolumeCostCurve(pure_cost_dollars=500.0, overhead_dollars=120.0e6)
    foundry = VolumeCostCurve(pure_cost_dollars=1400.0,
                              overhead_dollars=2.0e6)
    v = own.breakeven_volume(foundry)
    print(f"\nOwn fab vs foundry breakeven: {v:,.0f} wafers "
          f"(${own.cost(v):.0f}/wafer either way)")
    fab = FabLine(construction_cost_dollars=600.0e6,
                  wafer_starts_per_month=10_000)
    print("  capital cost per wafer at utilization "
          f"100%: ${fab.capital_cost_per_wafer(1.0):.0f}, "
          f"40%: ${fab.capital_cost_per_wafer(0.4):.0f} "
          "(idle tools still depreciate)")


def mix_penalty() -> None:
    flows = tuple(ProcessFlow.generic_cmos(n_metal_layers=m,
                                           name=f"asic-{m}M")
                  for m in (1, 2, 3, 4))
    print("\nMulti-product fab penalty vs per-product volume "
          "(reference: mono-product 5000 wafers/week):")
    for volume in (10.0, 50.0, 200.0, 1000.0):
        ratio = mix_cost_ratio(flows, wafers_per_week_each=volume,
                               reference_volume_per_week=5000.0)
        print(f"  {volume:6.0f} wafers/week/product -> "
              f"{ratio:4.1f}x ownership cost per wafer")
    print("  (the paper, citing [12]: 'may reach as high value as 7')")


def main() -> None:
    overhead_amortization()
    make_vs_buy()
    mix_penalty()


if __name__ == "__main__":
    main()
