"""Quickstart: price a design with the Maly transistor cost model.

Builds the eq.-(1) model for a 1994-vintage fab, evaluates a 3.1M-
transistor BiCMOS microprocessor (row 2 of the paper's Table 3), and
prints the full cost breakdown plus the two levers the paper highlights:
yield and wafer size.

Run:  python examples/quickstart.py
"""

from repro import (
    ReferenceAreaYield,
    TransistorCostModel,
    Wafer,
    WaferCostModel,
)


def main() -> None:
    # A fab whose 1 um wafer costs $700, with wafer cost growing 1.8x
    # per technology generation (the paper's Scenario-#2 X).
    model = TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                  cost_growth_rate=1.8),
        wafer=Wafer(radius_cm=7.5))

    # Row 2 of Table 3: 3.1M transistors, 0.8 um, d_d = 150, 70% yield
    # for a 1 cm^2 reference die.
    breakdown = model.evaluate(
        n_transistors=3.1e6,
        feature_size_um=0.8,
        design_density=150.0,
        yield_model=ReferenceAreaYield(reference_yield=0.7,
                                       reference_area_cm2=1.0))

    print("BiCMOS microprocessor, 0.8 um (Table 3, row 2)")
    print(f"  wafer cost          : ${breakdown.wafer_cost_dollars:8.0f}")
    print(f"  die area            : {breakdown.die_area_cm2:8.2f} cm^2")
    print(f"  dies per wafer      : {breakdown.dies_per_wafer:8d}")
    print(f"  yield               : {breakdown.yield_value:8.1%}")
    print(f"  good dies per wafer : {breakdown.good_dies_per_wafer:8.1f}")
    print(f"  cost per good die   : ${breakdown.cost_per_good_die_dollars:8.2f}")
    print(f"  cost per transistor : "
          f"{breakdown.cost_per_transistor_microdollars:8.2f} x 1e-6 $")
    print(f"  (paper's value      :    25.50 x 1e-6 $)")

    # Lever 1: yield. The same design at 90% reference yield.
    improved = model.evaluate(
        n_transistors=3.1e6, feature_size_um=0.8, design_density=150.0,
        yield_model=ReferenceAreaYield(0.9, 1.0))
    gain = 1.0 - improved.cost_per_transistor_dollars \
        / breakdown.cost_per_transistor_dollars
    print(f"\nraising reference yield 70% -> 90% cuts C_tr by {gain:.0%}")

    # Lever 2: wafer size. The same design on an 8-inch wafer.
    bigger = TransistorCostModel(wafer_cost=model.wafer_cost,
                                 wafer=Wafer(radius_cm=10.0))
    on_8in = bigger.evaluate(
        n_transistors=3.1e6, feature_size_um=0.8, design_density=150.0,
        yield_model=ReferenceAreaYield(0.7, 1.0))
    gain = 1.0 - on_8in.cost_per_transistor_dollars \
        / breakdown.cost_per_transistor_dollars
    print(f"moving 6-inch -> 8-inch wafers cuts C_tr by {gain:.0%}")


if __name__ == "__main__":
    main()
