"""ASCII wafer-map rendering.

Turns a :class:`~repro.yieldsim.monte_carlo.WaferMap` into the familiar
fab-floor picture: a circle of dies, good ones marked ``.``, failing
ones ``X`` (or digits for defect counts).  Used by examples and the
estimation bench so the simulated maps are inspectable.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError
from ..yieldsim.monte_carlo import WaferMap


def render_wafer_map(wafer_map: WaferMap, *, show_counts: bool = False,
                     max_width: int = 100) -> str:
    """Render one wafer map as character art.

    ``show_counts`` prints per-die defect counts (``.`` for zero,
    digits 1–9, ``+`` beyond); otherwise good dies are ``.`` and failed
    dies ``X``.  Dies are placed on their true grid; empty space prints
    as blanks.  Wider maps than ``max_width`` columns are decimated.
    """
    centers = wafer_map.die_centers_cm
    counts = wafer_map.defect_counts
    if centers.shape[0] == 0:
        raise ParameterError("wafer map has no dies")

    xs = np.unique(np.round(centers[:, 0], 6))
    ys = np.unique(np.round(centers[:, 1], 6))
    col_of = {x: i for i, x in enumerate(xs)}
    row_of = {y: i for i, y in enumerate(ys)}
    grid = np.full((len(ys), len(xs)), " ", dtype="<U1")

    for (x, y), count in zip(np.round(centers, 6), counts):
        if show_counts:
            if count == 0:
                ch = "."
            elif count <= 9:
                ch = str(int(count))
            else:
                ch = "+"
        else:
            ch = "." if count == 0 else "X"
        grid[row_of[y], col_of[x]] = ch

    step = max(1, math.ceil(len(xs) / max_width))
    lines = ["".join(row[::step]) for row in grid[::-1][::step]]
    summary = (f"{wafer_map.n_good}/{wafer_map.n_dies} good "
               f"({wafer_map.yield_fraction:.1%}), "
               f"{wafer_map.n_defects_total} defects thrown")
    return "\n".join(lines) + "\n" + summary


def render_lot_summary(maps: list[WaferMap]) -> str:
    """One-line-per-wafer lot summary plus pooled statistics."""
    if not maps:
        raise ParameterError("lot is empty")
    lines = []
    for i, m in enumerate(maps, 1):
        bar = "#" * int(round(m.yield_fraction * 40))
        lines.append(f"wafer {i:3d}: {m.yield_fraction:6.1%} {bar}")
    good = sum(m.n_good for m in maps)
    total = sum(m.n_dies for m in maps)
    lines.append(f"lot: {good}/{total} good ({good / total:.1%})")
    return "\n".join(lines)
