"""Row data for the paper's three tables.

``table1()`` and ``table2()`` repackage the published design-density
data (with Table 1's density column recomputed from its own area/count
columns as a consistency check); ``table3()`` runs the full cost model
over the product catalog and pairs each modeled C_tr with the published
value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.diversity import agreement_statistics, evaluate_catalog
from ..errors import ParameterError
from ..technology.density import (
    FUNCTIONAL_BLOCK_DENSITIES,
    PRODUCT_DENSITIES,
    table1_recomputed,
)


@dataclass(frozen=True)
class TableData:
    """One reproduced table: headers, rows, and free-form notes."""

    name: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.headers:
            raise ParameterError(f"table {self.name!r} has no headers")
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ParameterError(
                    f"table {self.name!r}: row length {len(row)} != "
                    f"{len(self.headers)} headers")

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(header)
        except ValueError as exc:
            raise ParameterError(
                f"table {self.name!r} has no column {header!r}") from exc
        return [row[idx] for row in self.rows]


def table1() -> TableData:
    """Table 1: design densities of µP functional blocks, with recheck."""
    rows = tuple(
        (r["name"], r["area_mm2"], r["n_transistors"],
         r["d_d_published"], r["d_d_recomputed"])
        for r in table1_recomputed())
    return TableData(
        name="Table 1",
        headers=("block", "area [mm^2]", "# transistors",
                 "d_d published", "d_d recomputed"),
        rows=rows,
        notes="recomputed column uses eq. (5) at the source design's 0.8 um")


def table2() -> TableData:
    """Table 2: design densities for a spectrum of ICs (verbatim data)."""
    rows = tuple((d.name, d.feature_size_um, d.d_d)
                 for d in PRODUCT_DENSITIES)
    return TableData(
        name="Table 2",
        headers=("IC", "feature size [um]", "d_d [lambda^2/tr]"),
        rows=rows,
        notes="memories pack 18-36; uPs 100-900; PLD 2631 — two orders of "
              "magnitude of density diversity")


def table3() -> TableData:
    """Table 3: cost per transistor across 17 scenarios, model vs. paper."""
    results = evaluate_catalog()
    rows = []
    for i, res in enumerate(results, start=1):
        spec = res.spec
        rows.append((
            i,
            spec.name + (" [N_tr reconstructed]" if spec.reconstructed else ""),
            spec.n_transistors,
            spec.feature_size_um,
            spec.design_density,
            spec.wafer_radius_cm,
            spec.reference_yield,
            spec.reference_wafer_cost_dollars,
            spec.cost_growth_rate,
            res.ctr_microdollars,
            spec.published_ctr_microdollars
            if spec.published_ctr_microdollars is not None else float("nan"),
            res.ratio if res.ratio is not None else float("nan"),
        ))
    stats = agreement_statistics(results)
    return TableData(
        name="Table 3",
        headers=("#", "IC type", "# tr", "lambda [um]", "d_d", "R_w [cm]",
                 "Y0", "C0 [$]", "X", "C_tr model [$1e-6]",
                 "C_tr paper [$1e-6]", "model/paper"),
        rows=tuple(rows),
        notes=(f"mean |log error| = {stats['mean_abs_log_error']:.3f} over "
               f"{int(stats['n_compared'])} rows; modeled spread "
               f"{stats['modeled_spread']:.0f}x vs published "
               f"{stats['published_spread']:.0f}x"))
