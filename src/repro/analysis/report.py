"""Plain-text rendering for figures and tables.

matplotlib is unavailable in the offline environment, so every figure
bench renders its series as an ASCII chart and its rows as an aligned
table.  These renderers are deliberately dependency-free and tolerant:
they are presentation code, used by benches and examples, and unit
tests only assert structural properties (dimensions, monotone axes).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..errors import ParameterError


def ascii_chart(x: Sequence[float], series: Mapping[str, Sequence[float]], *,
                width: int = 72, height: int = 20, log_y: bool = False,
                x_label: str = "", y_label: str = "") -> str:
    """Render one or more y(x) series as an ASCII line chart.

    Each series gets its own marker character; the legend maps markers
    to series names.  ``log_y`` plots log10(y) (all values must then be
    positive).
    """
    if width < 16 or height < 4:
        raise ParameterError("chart must be at least 16x4 characters")
    xs = np.asarray(list(x), dtype=float)
    if xs.size < 2:
        raise ParameterError("need at least two x points")
    if not series:
        raise ParameterError("need at least one series")

    markers = "*o+x#@%&"
    prepared: dict[str, np.ndarray] = {}
    for name, ys in series.items():
        arr = np.asarray(list(ys), dtype=float)
        if arr.shape != xs.shape:
            raise ParameterError(
                f"series {name!r} length {arr.size} != x length {xs.size}")
        if log_y:
            if np.any(arr <= 0):
                raise ParameterError(
                    f"series {name!r} has non-positive values; cannot log-scale")
            arr = np.log10(arr)
        prepared[name] = arr

    all_y = np.concatenate(list(prepared.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(prepared.items(), markers):
        for xv, yv in zip(xs, ys):
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    def y_tick(row: int) -> float:
        frac = (height - 1 - row) / (height - 1)
        val = y_lo + frac * (y_hi - y_lo)
        return 10.0 ** val if log_y else val

    lines = []
    for r, row_chars in enumerate(grid):
        tick = f"{y_tick(r):10.3g} |" if r % max(height // 5, 1) == 0 \
            else " " * 10 + " |"
        lines.append(tick + "".join(row_chars))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_lo:<12.3g}" + " " * max(width - 28, 0)
                 + f"{x_hi:>12.3g}")
    if x_label or y_label:
        lines.append(f"   x: {x_label}    y: {y_label}"
                     + ("  [log scale]" if log_y else ""))
    legend = "   ".join(f"{marker}={name}"
                        for (name, _), marker in zip(prepared.items(), markers))
    lines.append("   " + legend)
    return "\n".join(lines)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *,
                float_format: str = "{:.4g}") -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not headers:
        raise ParameterError("headers must be non-empty")
    formatted_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ParameterError(
                f"row length {len(row)} != header length {len(headers)}")
        formatted_rows.append([
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row])
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in formatted_rows)
    return "\n".join(lines)


def render_contour_grid(grid: np.ndarray, levels: Sequence[float], *,
                        x_values: Sequence[float] | None = None,
                        y_values: Sequence[float] | None = None,
                        tolerance: float = 0.08) -> str:
    """Render a 2-D cost grid as a character map with contour bands.

    Cells within ``tolerance`` (relative) of level k print digit ``k``;
    infeasible (non-finite) cells print ``.``; everything else a space.
    The y axis prints top row first (largest y at top) to match the
    usual plot orientation.
    """
    g = np.asarray(grid, dtype=float)
    if g.ndim != 2:
        raise ParameterError(f"grid must be 2-D, got shape {g.shape}")
    if not levels:
        raise ParameterError("levels must be non-empty")
    if len(levels) > 10:
        raise ParameterError("at most 10 contour levels (single digits)")
    chars = np.full(g.shape, " ", dtype="<U1")
    chars[~np.isfinite(g)] = "."
    for k, level in enumerate(levels):
        if level <= 0:
            raise ParameterError("contour levels must be positive")
        with np.errstate(invalid="ignore"):
            near = np.isfinite(g) & (np.abs(g - level) / level <= tolerance)
        chars[near] = str(k)
    lines = ["".join(row) for row in chars[::-1]]
    if y_values is not None and len(y_values) == g.shape[0]:
        lines = [f"{y_values[len(y_values) - 1 - i]:>10.3g} |{line}"
                 for i, line in enumerate(lines)]
    out = "\n".join(lines)
    if x_values is not None and len(x_values) == g.shape[1]:
        out += "\n" + " " * 12 + f"{x_values[0]:<10.3g}" \
            + " " * max(g.shape[1] - 20, 1) + f"{x_values[-1]:>10.3g}"
    legend = "  ".join(f"{k}={lvl:.3g}" for k, lvl in enumerate(levels))
    return out + "\nlevels: " + legend
