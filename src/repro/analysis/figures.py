"""Numeric series for every quantitative figure in the paper.

Each ``figN_*`` function evaluates the models and returns a
:class:`FigureData` with the x axis, one or more named y series, and
labels — the exact data the corresponding bench prints and checks.
Figures 9–11 of the paper are conceptual diagrams with no numeric
content and are not reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.optimization import CostLandscape, FIG8_FAB
from ..core.scenarios import SCENARIO_1, SCENARIO_2
from ..errors import ParameterError
from ..technology.fabline import (
    FABLINE_COST_HISTORY,
    WAFER_COST_HISTORY,
    extract_cost_growth_rate,
)
from ..technology.roadmap import GENERATIONS_UM, TechnologyRoadmap, die_area_trend_cm2
from ..yieldsim.defects import DefectSizeDistribution


@dataclass(frozen=True)
class FigureData:
    """One reproduced figure: x axis, named y series, labels, notes."""

    name: str
    x: np.ndarray
    series: dict[str, np.ndarray]
    x_label: str
    y_label: str
    log_y: bool = False
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.series:
            raise ParameterError(f"figure {self.name!r} has no series")
        for key, ys in self.series.items():
            if ys.shape != self.x.shape:
                raise ParameterError(
                    f"figure {self.name!r} series {key!r}: shape {ys.shape} "
                    f"!= x shape {self.x.shape}")


def fig1_feature_size(year_lo: float = 1970.0, year_hi: float = 2000.0,
                      n_points: int = 31) -> FigureData:
    """Fig. 1: minimum feature size vs. year."""
    roadmap = TechnologyRoadmap()
    years = np.linspace(year_lo, year_hi, n_points)
    lam = np.array([roadmap.feature_size_um(y) for y in years])
    return FigureData(
        name="Fig. 1", x=years, series={"feature size": lam},
        x_label="year", y_label="minimum feature size [um]", log_y=True,
        notes="exponential shrink, 0.7x per 3-year generation, 1 um at 1989")


def fig2_fab_cost() -> FigureData:
    """Fig. 2: fabline and wafer cost vs. year, with the extracted X values."""
    years = np.array([y for y, _ in FABLINE_COST_HISTORY])
    fab_costs = np.array([c for _, c in FABLINE_COST_HISTORY])
    wafer_by_year = dict(WAFER_COST_HISTORY)
    wafer_costs = np.array([wafer_by_year.get(y, np.nan) for y in years])
    # Interpolate the wafer series onto the fabline years for one chart.
    w_years = np.array([y for y, _ in WAFER_COST_HISTORY])
    w_costs = np.array([c for _, c in WAFER_COST_HISTORY])
    wafer_costs = np.exp(np.interp(years, w_years, np.log(w_costs)))
    x_fab = extract_cost_growth_rate(FABLINE_COST_HISTORY)
    x_wafer = extract_cost_growth_rate(WAFER_COST_HISTORY)
    return FigureData(
        name="Fig. 2", x=years,
        series={"fab cost [$M]": fab_costs, "wafer cost [$]": wafer_costs},
        x_label="year", y_label="cost (mixed units)", log_y=True,
        notes=f"extracted per-generation growth: wafers X = {x_wafer:.2f} "
              f"(paper band 1.2-1.4), fablines X = {x_fab:.2f}")


def fig3_die_size(lam_lo_um: float = 0.25, lam_hi_um: float = 1.0,
                  n_points: int = 31) -> FigureData:
    """Fig. 3: leading-edge die area vs. feature size (the 16.5 e^-5.3λ fit)."""
    lam = np.linspace(lam_lo_um, lam_hi_um, n_points)
    area = np.array([die_area_trend_cm2(l) for l in lam])
    return FigureData(
        name="Fig. 3", x=lam, series={"die area": area},
        x_label="feature size [um]", y_label="die area [cm^2]",
        notes="A_ch(lambda) = 16.5 exp(-5.3 lambda), the paper's own fit")


def fig4_steps_and_defects() -> FigureData:
    """Fig. 4: process steps and required defect density per generation."""
    roadmap = TechnologyRoadmap()
    lam = np.array([l for l in GENERATIONS_UM if l <= 1.0])
    steps = np.array([roadmap.process_steps(l) for l in lam])
    density = np.array([roadmap.required_defect_density(l) for l in lam])
    # Series share one chart; scale density into a visible range via notes.
    return FigureData(
        name="Fig. 4", x=lam,
        series={"process steps": steps,
                "required defect density [1/cm^2]": density},
        x_label="feature size [um]", y_label="(mixed units)", log_y=True,
        notes="steps rise, tolerable defect density falls, per generation")


def fig5_defect_distribution(r0_um: float = 0.2, p: float = 4.07,
                             n_points: int = 200) -> FigureData:
    """Fig. 5: defect size density and the λ-sensitive critical fraction."""
    dist = DefectSizeDistribution(r0_um=r0_um, p=p)
    r = np.linspace(0.01, 10.0 * r0_um, n_points)
    pdf = np.asarray(dist.pdf(r))
    surv = np.asarray(dist.survival(r))
    return FigureData(
        name="Fig. 5", x=r,
        series={"pdf f(R)": pdf, "P(R > r) (critical fraction)": surv},
        x_label="defect radius [um]", y_label="density / probability",
        notes=f"peak at R0={r0_um} um, 1/R^{p} tail; smaller features are "
              "killed by smaller (more numerous) defects")


def fig6_scenario1(lam_lo_um: float = 0.25, lam_hi_um: float = 1.0,
                   n_points: int = 31) -> FigureData:
    """Fig. 6: C_tr vs. λ under Scenario #1 for X = 1.1, 1.2, 1.3."""
    lam = np.linspace(lam_lo_um, lam_hi_um, n_points)
    curves = SCENARIO_1.curves(lam)
    series = {f"X={x}": ys * 1.0e6 for x, ys in curves.items()}
    return FigureData(
        name="Fig. 6", x=lam, series=series,
        x_label="feature size [um]", y_label="C_tr [$1e-6]", log_y=True,
        notes="C0=$500, d_d=30, R_w=7.5 cm, Y=1 (eq. 8): cost falls with "
              "shrink for modest X")


def fig7_scenario2(lam_lo_um: float = 0.25, lam_hi_um: float = 1.0,
                   n_points: int = 31) -> FigureData:
    """Fig. 7: C_tr vs. λ under Scenario #2 for X = 1.8, 2.1, 2.4."""
    lam = np.linspace(lam_lo_um, lam_hi_um, n_points)
    curves = SCENARIO_2.curves(lam)
    series = {f"X={x}": ys * 1.0e6 for x, ys in curves.items()}
    return FigureData(
        name="Fig. 7", x=lam, series=series,
        x_label="feature size [um]", y_label="C_tr [$1e-6]", log_y=True,
        notes="C0=$500, d_d=200, Y0=70% @ 1 cm^2, die area 16.5 exp(-5.3 "
              "lambda) (eq. 9): cost RISES with shrink")


def fig8_contours(n_lam: int = 40, n_counts: int = 40) -> tuple[FigureData, CostLandscape]:
    """Fig. 8: constant-C_tr contours in the (λ, N_tr) plane.

    Returns both a :class:`FigureData` (the per-N_tr optimal-λ locus,
    the figure's most quotable content) and the full
    :class:`CostLandscape` for contour rendering.
    """
    landscape = CostLandscape(
        fab=FIG8_FAB,
        feature_sizes_um=np.linspace(0.3, 2.0, n_lam),
        transistor_counts=np.geomspace(1e5, 1e7, n_counts))
    optima = landscape.optimal_lambda_per_count()
    counts = np.array([n for n, _, _ in optima])
    lam_opt = np.array([l for _, l, _ in optima])
    cost_opt = np.array([c * 1e6 for _, _, c in optima])
    return FigureData(
        name="Fig. 8", x=counts,
        series={"lambda_opt [um]": lam_opt,
                "C_tr at optimum [$1e-6]": cost_opt},
        x_label="transistors per die", y_label="(mixed)", log_y=False,
        notes="X=1.4, C0=$500, R_w=7.5 cm, d_d=152, D=1.72, p=4.07 "
              "(the fitted fab of [26])"), landscape
