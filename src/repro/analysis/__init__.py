"""Reproduction glue: figure/table data generators and ASCII rendering.

* :mod:`~repro.analysis.figures` — ``fig1()`` … ``fig8()`` return
  :class:`FigureData` holding the numeric series each paper figure
  plots.
* :mod:`~repro.analysis.tables` — ``table1()``, ``table2()``,
  ``table3()`` return :class:`TableData`.
* :mod:`~repro.analysis.report` — terminal rendering: line charts,
  log-scale charts, contour maps and aligned tables, pure ASCII (no
  matplotlib available offline).
"""

from .figures import (
    FigureData,
    fig1_feature_size,
    fig2_fab_cost,
    fig3_die_size,
    fig4_steps_and_defects,
    fig5_defect_distribution,
    fig6_scenario1,
    fig7_scenario2,
    fig8_contours,
)
from .tables import TableData, table1, table2, table3
from .report import ascii_chart, ascii_table, render_contour_grid
from .wafermap import render_lot_summary, render_wafer_map

__all__ = [
    "FigureData",
    "fig1_feature_size",
    "fig2_fab_cost",
    "fig3_die_size",
    "fig4_steps_and_defects",
    "fig5_defect_distribution",
    "fig6_scenario1",
    "fig7_scenario2",
    "fig8_contours",
    "TableData",
    "table1",
    "table2",
    "table3",
    "ascii_chart",
    "ascii_table",
    "render_contour_grid",
    "render_wafer_map",
    "render_lot_summary",
]
