"""repro.batch — the NumPy-vectorized batch-evaluation engine.

The scalar models in :mod:`repro.core`, :mod:`repro.geometry` and
:mod:`repro.yieldsim` are the reference semantics; this subsystem
evaluates them over arrays of (λ, N_tr, die geometry) in one pass and
is what the sweep-shaped consumers (the Fig.-8 landscape, the scenario
curves, the geometry optimizers, the Monte Carlo lot simulator) run on.

Entry points:

* :func:`transistor_cost_batch` — eq. (1) for the Fig.-8 fab form,
* :func:`evaluate_batch` — eq. (1) for any
  :class:`~repro.core.transistor_cost.TransistorCostModel`,
* :func:`scenario1_cost_batch` / :func:`scenario2_cost_batch` —
  eqs. (8)/(9),
* the substrate kernels ``wafer_cost_batch`` (eq. 3),
  ``dies_per_wafer_batch`` (eq. 4), ``transistors_per_die_batch``
  (eq. 5), ``poisson_yield_batch`` / ``scaled_poisson_yield_batch`` /
  ``yield_for_area_batch`` (eqs. 6–7),
* :class:`~repro.batch.cache.BatchCache` — the keyed memoization layer
  shared across sweeps (see :func:`~repro.batch.cache.default_cache`),
* :func:`~repro.batch.crossval.cross_validate_yield_batch` — the
  closed-form-vs-Monte-Carlo consumer: one density sweep through the
  batched yield kernels and through process-sharded simulator lots
  (``workers=`` forwards to :mod:`repro.yieldsim.parallel`),
* :class:`~repro.batch.sweep.TiledSweepRunner` — million-point tiled
  mega-sweeps over the shared-memory process pool, with checkpoint/
  resume (see :mod:`repro.batch.sweep`).

See ``docs/performance.md`` for the parity contract and measured
speedups.
"""

from .cache import BatchCache, CacheStats, array_fingerprint, default_cache
from .crossval import (
    ModelValidationRow,
    YieldCrossValidation,
    cross_validate_model_suite,
    cross_validate_yield_batch,
)
from .engine import (
    USE_DEFAULT_CACHE,
    BatchCostResult,
    ChipletBatchResult,
    chiplet_cost_batch,
    dies_per_wafer_batch,
    evaluate_batch,
    generations_batch,
    poisson_yield_batch,
    scaled_poisson_yield_batch,
    scenario1_cost_batch,
    scenario2_cost_batch,
    transistor_cost_batch,
    transistors_per_die_batch,
    wafer_cost_batch,
    yield_for_area_batch,
    yield_from_expectation_batch,
)
from .sweep import (
    ChipletCrossoverSweep,
    DieAreaCostSweep,
    FabCostSweep,
    ScenarioSweep,
    SweepPlan,
    SweepResult,
    Tile,
    TiledSweepRunner,
)

__all__ = [
    "BatchCache",
    "CacheStats",
    "array_fingerprint",
    "default_cache",
    "USE_DEFAULT_CACHE",
    "BatchCostResult",
    "generations_batch",
    "wafer_cost_batch",
    "dies_per_wafer_batch",
    "transistors_per_die_batch",
    "poisson_yield_batch",
    "scaled_poisson_yield_batch",
    "yield_for_area_batch",
    "yield_from_expectation_batch",
    "transistor_cost_batch",
    "ChipletBatchResult",
    "chiplet_cost_batch",
    "evaluate_batch",
    "scenario1_cost_batch",
    "scenario2_cost_batch",
    "YieldCrossValidation",
    "cross_validate_yield_batch",
    "ModelValidationRow",
    "cross_validate_model_suite",
    "ChipletCrossoverSweep",
    "DieAreaCostSweep",
    "FabCostSweep",
    "ScenarioSweep",
    "SweepPlan",
    "SweepResult",
    "Tile",
    "TiledSweepRunner",
]
