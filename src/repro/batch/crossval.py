"""Monte Carlo cross-validation of the batched yield kernels.

The closed-form yield curves that :func:`~repro.batch.engine.
yield_for_area_batch` evaluates over arrays (eq. 6, the clustering
baselines) are certified against an *independent* implementation of the
same physics: the spot-defect Monte Carlo simulator.  This module is
the ``repro.batch`` consumer of that check — it sweeps an array of
defect densities through the batched closed form and through sharded
Monte Carlo lots in one call, so the comparison scales to the lot sizes
that make the statistical bounds tight.

The Monte Carlo side runs on spawned seed streams
(:mod:`repro.yieldsim.parallel`): one child stream per density point,
each expanded into per-wafer streams, so the sweep is reproducible and
bitwise independent of the ``workers`` knob that shards it across
processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..geometry.die import Die
from ..geometry.wafer import Wafer
from ..yieldsim.defects import DefectSizeDistribution
from ..yieldsim.models import NegativeBinomialYield, PoissonYield, YieldModel
from ..yieldsim.monte_carlo import SpotDefectSimulator
from .engine import yield_for_area_batch


@dataclass(frozen=True)
class YieldCrossValidation:
    """One density sweep: batched closed form vs Monte Carlo, aligned.

    All arrays share the shape of the density sweep.  ``workers`` and
    ``n_wafers`` record how the Monte Carlo side was run (results are
    bitwise independent of ``workers``; ``n_wafers`` sets the
    statistical error bar).
    """

    defect_densities_per_cm2: np.ndarray
    effective_densities_per_cm2: np.ndarray
    closed_form_yield: np.ndarray
    mc_yield: np.ndarray
    n_wafers: int
    workers: int | None

    @property
    def abs_error(self) -> np.ndarray:
        """Per-density |Monte Carlo − closed form|."""
        return np.abs(self.mc_yield - self.closed_form_yield)

    @property
    def max_abs_error(self) -> float:
        """Worst disagreement over the sweep (0.0 for an empty sweep)."""
        return float(self.abs_error.max()) if self.abs_error.size else 0.0

    def within(self, tol: float) -> bool:
        """True when every density point agrees to ``tol`` absolute."""
        return bool(self.max_abs_error <= tol)


def cross_validate_yield_batch(wafer: Wafer, die: Die, defect_densities, *,
                               n_wafers: int = 40,
                               seed: int | np.random.SeedSequence = 0,
                               workers: int | None = None,
                               clustering_alpha: float | None = None,
                               size_distribution: DefectSizeDistribution
                               | None = None,
                               kill_radius_um: float = 0.0,
                               yield_model: YieldModel | None = None
                               ) -> YieldCrossValidation:
    """Sweep densities through the batched closed form and Monte Carlo.

    For each density ``D`` the closed form is evaluated at the
    effective killer density ``D_eff = D · survival(kill_radius)`` via
    :func:`~repro.batch.engine.yield_for_area_batch` (one array call
    for the whole sweep), and a lot of ``n_wafers`` wafers is simulated
    with :meth:`SpotDefectSimulator.simulate_lot` on spawned seed
    streams, sharded over ``workers`` processes when given.

    ``yield_model`` defaults to the model the simulator's statistics
    converge to: :class:`PoissonYield` for homogeneous defects, or
    :class:`NegativeBinomialYield` with ``clustering_alpha`` when the
    wafer-to-wafer density is gamma-mixed.
    """
    if n_wafers <= 0:
        raise ParameterError(f"n_wafers must be > 0, got {n_wafers}")
    densities = np.asarray(defect_densities, dtype=float).ravel()
    if densities.size == 0:
        raise ParameterError("defect_densities must not be empty")
    if bool((densities < 0).any()):
        raise ParameterError("defect_densities must be >= 0 everywhere")

    if yield_model is None:
        yield_model = (PoissonYield() if clustering_alpha is None
                       else NegativeBinomialYield(alpha=clustering_alpha))
    survival = 1.0 if size_distribution is None \
        else float(size_distribution.survival(kill_radius_um))
    d_eff = densities * survival
    closed = yield_for_area_batch(yield_model, die.area_cm2, d_eff)

    root = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    children = root.spawn(densities.size)
    mc = np.empty_like(densities)
    for i, (d0, child) in enumerate(zip(densities, children)):
        sim = SpotDefectSimulator(
            wafer, die, defect_density_per_cm2=float(d0),
            size_distribution=size_distribution,
            kill_radius_um=kill_radius_um,
            clustering_alpha=clustering_alpha)
        mc[i] = sim.estimate_yield(n_wafers, seed=child, workers=workers)
    return YieldCrossValidation(
        defect_densities_per_cm2=densities,
        effective_densities_per_cm2=d_eff,
        closed_form_yield=closed,
        mc_yield=mc,
        n_wafers=n_wafers,
        workers=workers)
