"""Monte Carlo cross-validation of the batched yield kernels.

The closed-form yield curves that :func:`~repro.batch.engine.
yield_for_area_batch` evaluates over arrays (eq. 6, the clustering
baselines) are certified against an *independent* implementation of the
same physics: the spot-defect Monte Carlo simulator.  This module is
the ``repro.batch`` consumer of that check — it sweeps an array of
defect densities through the batched closed form and through sharded
Monte Carlo lots in one call, so the comparison scales to the lot sizes
that make the statistical bounds tight.

The Monte Carlo side runs on spawned seed streams
(:mod:`repro.yieldsim.parallel`): one child stream per density point,
each expanded into per-wafer streams, so the sweep is reproducible and
bitwise independent of the ``workers`` knob that shards it across
processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..geometry.die import Die
from ..geometry.wafer import Wafer
from ..yieldsim.defects import DefectSizeDistribution
from ..yieldsim.models import (
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    MixtureYieldModel,
    NegativeBinomialYield,
    PoissonYield,
    YieldModel,
)
from ..yieldsim.monte_carlo import SpotDefectSimulator
from .engine import yield_for_area_batch


@dataclass(frozen=True)
class YieldCrossValidation:
    """One density sweep: batched closed form vs Monte Carlo, aligned.

    All arrays share the shape of the density sweep.  ``workers`` and
    ``n_wafers`` record how the Monte Carlo side was run (results are
    bitwise independent of ``workers``; ``n_wafers`` sets the
    statistical error bar).
    """

    defect_densities_per_cm2: np.ndarray
    effective_densities_per_cm2: np.ndarray
    closed_form_yield: np.ndarray
    mc_yield: np.ndarray
    n_wafers: int
    workers: int | None
    n_lots: int = 1

    @property
    def abs_error(self) -> np.ndarray:
        """Per-density |Monte Carlo − closed form|."""
        return np.abs(self.mc_yield - self.closed_form_yield)

    @property
    def max_abs_error(self) -> float:
        """Worst disagreement over the sweep (0.0 for an empty sweep)."""
        return float(self.abs_error.max()) if self.abs_error.size else 0.0

    def within(self, tol: float) -> bool:
        """True when every density point agrees to ``tol`` absolute."""
        return bool(self.max_abs_error <= tol)


def cross_validate_yield_batch(wafer: Wafer, die: Die, defect_densities, *,
                               n_wafers: int = 40,
                               seed: int | np.random.SeedSequence = 0,
                               workers: int | None = None,
                               clustering_alpha: float | None = None,
                               lot_alpha: float | None = None,
                               n_lots: int = 1,
                               size_distribution: DefectSizeDistribution
                               | None = None,
                               kill_radius_um: float = 0.0,
                               yield_model: YieldModel | None = None
                               ) -> YieldCrossValidation:
    """Sweep densities through the batched closed form and Monte Carlo.

    For each density ``D`` the closed form is evaluated at the
    effective killer density ``D_eff = D · survival(kill_radius)`` via
    :func:`~repro.batch.engine.yield_for_area_batch` (one array call
    for the whole sweep), and ``n_lots`` lots of ``n_wafers`` wafers
    are simulated with :meth:`SpotDefectSimulator.simulate_lot` /
    :meth:`~SpotDefectSimulator.simulate_lots` on spawned seed
    streams, sharded over ``workers`` processes when given.

    ``yield_model`` defaults to the model the simulator's statistics
    converge to: :class:`PoissonYield` for homogeneous defects;
    :class:`NegativeBinomialYield` with ``clustering_alpha`` when the
    wafer-to-wafer density is gamma-mixed; with ``lot_alpha`` the
    lot-level hyper-distribution is added on top —
    :class:`HierarchicalYieldModel` when both levels mix, or the
    single-level NB(``lot_alpha``) when only the lot level does.
    Hierarchical sweeps average over lots, so raise ``n_lots`` (not
    just ``n_wafers``) to tighten their error bars.
    """
    if n_wafers <= 0:
        raise ParameterError(f"n_wafers must be > 0, got {n_wafers}")
    if n_lots <= 0:
        raise ParameterError(f"n_lots must be > 0, got {n_lots}")
    densities = np.asarray(defect_densities, dtype=float).ravel()
    if densities.size == 0:
        raise ParameterError("defect_densities must not be empty")
    if bool((densities < 0).any()):
        raise ParameterError("defect_densities must be >= 0 everywhere")

    if yield_model is None:
        yield_model = _converged_model(clustering_alpha, lot_alpha)
    survival = 1.0 if size_distribution is None \
        else float(size_distribution.survival(kill_radius_um))
    d_eff = densities * survival
    closed = yield_for_area_batch(yield_model, die.area_cm2, d_eff)

    root = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    children = root.spawn(densities.size)
    mc = np.empty_like(densities)
    for i, (d0, child) in enumerate(zip(densities, children)):
        sim = SpotDefectSimulator(
            wafer, die, defect_density_per_cm2=float(d0),
            size_distribution=size_distribution,
            kill_radius_um=kill_radius_um,
            clustering_alpha=clustering_alpha,
            lot_alpha=lot_alpha)
        if n_lots == 1:
            mc[i] = sim.estimate_yield(n_wafers, seed=child,
                                       workers=workers)
        else:
            lots = sim.simulate_lots(n_lots, n_wafers, seed=child,
                                     workers=workers)
            good = sum(lot.n_good_total for lot in lots)
            total = sum(lot.n_dies_total for lot in lots)
            mc[i] = good / total if total else 0.0
    return YieldCrossValidation(
        defect_densities_per_cm2=densities,
        effective_densities_per_cm2=d_eff,
        closed_form_yield=closed,
        mc_yield=mc,
        n_wafers=n_wafers,
        workers=workers,
        n_lots=n_lots)


@dataclass(frozen=True)
class ModelValidationRow:
    """One closed-form law checked against its generating Monte Carlo.

    ``closed_form_yield`` is the batched-kernel evaluation at the
    swept density; ``mc_yield`` the pooled simulated yield of the
    matching sampling configuration; ``n_dies`` the pooled sample size
    behind the Monte Carlo estimate (its binomial error bar).
    """

    name: str
    model: YieldModel
    closed_form_yield: float
    mc_yield: float
    n_dies: int

    @property
    def abs_error(self) -> float:
        """|Monte Carlo − closed form| for this law."""
        return abs(self.mc_yield - self.closed_form_yield)


def cross_validate_model_suite(wafer: Wafer, die: Die,
                               defect_density_per_cm2: float, *,
                               wafer_alpha: float = 1.5,
                               lot_alpha: float = 2.0,
                               mixture_weight: float = 0.3,
                               n_wafers: int = 24,
                               n_lots: int = 8,
                               seed: int | np.random.SeedSequence = 0,
                               workers: int | None = None
                               ) -> tuple[ModelValidationRow, ...]:
    """Check every closed-form yield law against its generating MC.

    One row per law, each pairing the batched closed-form kernel with
    the clustered-defect sampling configuration whose pooled statistics
    converge to it:

    * ``poisson`` — homogeneous defects;
    * ``negative_binomial`` / ``compound_poisson_gamma`` — wafer-level
      gamma mixing at ``wafer_alpha`` (the two laws are algebraically
      identical; both rows document the NB equivalence);
    * ``hierarchical`` — wafer-level mixing at ``wafer_alpha`` under a
      lot-level gamma at ``lot_alpha``, ``n_lots`` lots pooled;
    * ``mixture`` — a ``mixture_weight``/(1−``mixture_weight``)
      Poisson/CPG population; by linearity of expectation its MC side
      is the same weighted average of the two component estimates.

    Every sampling leg runs the same wafer budget (``n_lots·n_wafers``
    wafers) on its own spawned seed stream, sharded over ``workers``
    (results are bitwise worker-invariant).  Tolerance guidance: the
    pooled binomial error is ~``1/(2·sqrt(n_dies))`` per row, but the
    hierarchical row averages over ``n_lots`` *lot factors*, whose
    between-lot variance dominates — use lot counts, not wafer counts,
    to tighten it.
    """
    if not 0.0 < mixture_weight < 1.0:
        raise ParameterError(
            f"mixture_weight must be in (0, 1), got {mixture_weight}")
    root = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    poisson_seed, wafer_seed, hier_seed = root.spawn(3)
    total_wafers = n_lots * n_wafers
    density = float(defect_density_per_cm2)
    area = die.area_cm2

    def closed(model: YieldModel) -> float:
        return float(yield_for_area_batch(model, area, density))

    def pooled(sim: SpotDefectSimulator,
               seed_: np.random.SeedSequence,
               lots: int) -> tuple[float, int]:
        results = sim.simulate_lots(lots, n_wafers, seed=seed_,
                                    workers=workers) if lots > 1 else \
            [sim.simulate_lot(total_wafers, seed=seed_, workers=workers)]
        good = sum(lot.n_good_total for lot in results)
        total = sum(lot.n_dies_total for lot in results)
        return (good / total if total else 0.0), total

    plain = SpotDefectSimulator(wafer, die, density)
    mixed = SpotDefectSimulator(wafer, die, density,
                                clustering_alpha=wafer_alpha)
    hier = SpotDefectSimulator(wafer, die, density,
                               clustering_alpha=wafer_alpha,
                               lot_alpha=lot_alpha)
    mc_poisson, n_poisson = pooled(plain, poisson_seed, 1)
    mc_wafer, n_wafer = pooled(mixed, wafer_seed, 1)
    mc_hier, n_hier = pooled(hier, hier_seed, n_lots)

    cpg = CompoundPoissonGamma(alpha=wafer_alpha)
    mixture = MixtureYieldModel(((mixture_weight, PoissonYield()),
                                 (1.0 - mixture_weight, cpg)))
    mc_mixture = mixture_weight * mc_poisson \
        + (1.0 - mixture_weight) * mc_wafer
    return (
        ModelValidationRow("poisson", PoissonYield(),
                           closed(PoissonYield()), mc_poisson, n_poisson),
        ModelValidationRow("negative_binomial",
                           NegativeBinomialYield(alpha=wafer_alpha),
                           closed(NegativeBinomialYield(alpha=wafer_alpha)),
                           mc_wafer, n_wafer),
        ModelValidationRow("compound_poisson_gamma", cpg, closed(cpg),
                           mc_wafer, n_wafer),
        ModelValidationRow("hierarchical",
                           HierarchicalYieldModel(lot_alpha=lot_alpha,
                                                  wafer_alpha=wafer_alpha),
                           closed(HierarchicalYieldModel(
                               lot_alpha=lot_alpha,
                               wafer_alpha=wafer_alpha)),
                           mc_hier, n_hier),
        ModelValidationRow("mixture", mixture, closed(mixture),
                           mc_mixture, n_poisson + n_wafer),
    )


def _converged_model(clustering_alpha: float | None,
                     lot_alpha: float | None) -> YieldModel:
    # The closed form the simulator's pooled statistics converge to,
    # for each combination of mixing levels.
    if clustering_alpha is None and lot_alpha is None:
        return PoissonYield()
    if lot_alpha is None:
        return NegativeBinomialYield(alpha=clustering_alpha)
    if clustering_alpha is None:
        # Poisson wafers under a lot-level gamma: pooled yield is the
        # single-level gamma mixture, i.e. NB at the lot shape.
        return NegativeBinomialYield(alpha=lot_alpha)
    return HierarchicalYieldModel(lot_alpha=lot_alpha,
                                  wafer_alpha=clustering_alpha)
