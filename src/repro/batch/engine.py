"""NumPy-vectorized batch evaluation of the paper's cost model.

Every headline result of the paper is a *sweep* — Fig. 8 evaluates
eqs. (1)+(3)+(4)+(7) over the whole (λ, N_tr) plane, Figs. 6/7 sweep λ,
the optimizers sweep die geometry.  The scalar functions in
:mod:`repro.core`, :mod:`repro.geometry` and :mod:`repro.yieldsim` are
the *reference semantics*; this module recomputes them over arrays in
one pass:

* :func:`wafer_cost_batch` — eq. (3) under all four
  :class:`~repro.core.wafer_cost.GenerationModel` laws (plus the
  eq.-(2) volume term),
* :func:`dies_per_wafer_batch` — eq. (4) with the per-row chord sum
  expressed as array reductions over a batch of die sizes,
* :func:`transistors_per_die_batch` — eq. (5),
* :func:`scaled_poisson_yield_batch` / :func:`poisson_yield_batch` /
  :func:`yield_for_area_batch` — eqs. (6)–(7) and the classical
  clustering baselines,
* :func:`transistor_cost_batch` / :func:`evaluate_batch` — eq. (1)
  composed, returning every :class:`~repro.core.transistor_cost.
  CostBreakdown` intermediate as an array,
* :func:`scenario1_cost_batch` / :func:`scenario2_cost_batch` —
  eqs. (8) and (9).

Parity contract with the scalar reference
-----------------------------------------
Pure-arithmetic quantities (die dimensions, areas, the eq.-(4) die
counts, feasibility masks) replicate the scalar code's operations in
the same order and are **bit-for-bit identical** — IEEE-754 multiply,
divide, sqrt and floor are exactly rounded in both NumPy and the C
library.  Quantities passing through transcendental functions (``pow``,
``exp``, ``log``) may differ in the last ulp because NumPy's SIMD
kernels and libm round those independently; they agree to
``np.allclose(rtol=1e-12)`` (observed ≤ 3e-16 relative).  Infeasible
cells — die does not fit the wafer, or eq.-(7) yield underflow — are
masked to ``inf`` exactly like :func:`repro.core.optimization.
transistor_cost_full`.

Caching
-------
The dies-per-wafer and wafer-cost sub-results are memoized in a
:class:`~repro.batch.cache.BatchCache` keyed on the exact input bytes,
shared across sweeps.  Pass ``cache=None`` to disable, or a private
:class:`BatchCache` to isolate; by default the process-wide cache from
:func:`~repro.batch.cache.default_cache` is used.  Cached arrays are
read-only.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ParameterError
from ..obs import metrics as _metrics, span as _span
from ..obs.state import enabled as _obs_enabled, \
    tracing_enabled as _tracing_enabled
from ..geometry.wafer import Wafer
from ..core.wafer_cost import GenerationModel, WaferCostModel
from ..core.transistor_cost import TransistorCostModel
from ..units import UM2_PER_CM2, require_nonnegative
from ..yieldsim.models import (
    BoseEinsteinYield,
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    ReferenceAreaYield,
    SeedsYield,
    YieldModel,
)
from .cache import BatchCache, array_fingerprint, default_cache

if TYPE_CHECKING:  # pragma: no cover - import cycle with core.optimization
    from ..core.optimization import FabCharacterization
    from ..system.chiplet import ChipletCostModel

#: Eq.-(7) exponent above which exp() underflows; the scalar reference
#: clamps the yield to the smallest positive denormal there.
_EXPONENT_CLAMP = 700.0
_TINY_YIELD = 5e-324

#: Yields below this are treated as economically infeasible cells,
#: matching ``transistor_cost_full``.
_YIELD_CUTOFF = 1e-250

#: Refuse eq.-(4) batches whose row reduction would exceed this many
#: rows for a single die (the scalar loop would effectively hang too).
_MAX_ROWS = 100_000_000

#: Upper bound on elements per temporary in the chunked row reduction.
_ROW_CHUNK_BUDGET = 1 << 22

#: Sentinel: "use the process-wide default cache".
USE_DEFAULT_CACHE: Any = object()


def _deliver(result: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    # The array-out contract shared by the cached kernels: with
    # ``out=None`` the (possibly cached, read-only) result is returned
    # as-is; otherwise it is copied into the caller's float64 buffer.
    # The shape must match exactly (no broadcasting: an out= caller is
    # landing results in a preallocated slab, and a silently broadcast
    # write would corrupt its neighbors) and the dtype must be float64
    # (np.copyto would otherwise silently downcast, e.g. into a
    # float32 buffer).  int64 results — the eq.-(4) die counts — land
    # exactly in float64 below 2^53, which a wafer guarantees.  ``out``
    # is returned so call sites read like the plain form.
    if out is None:
        return result
    if out.shape != result.shape:
        raise ParameterError(
            f"out has shape {out.shape}, result needs {result.shape}")
    if out.dtype != np.float64:
        raise ParameterError(
            f"out must be a float64 buffer, got dtype {out.dtype}")
    np.copyto(out, result, casting="same_kind")
    return out


def _resolve_cache(cache: Any) -> BatchCache | None:
    if cache is USE_DEFAULT_CACHE:
        return default_cache()
    if cache is None or isinstance(cache, BatchCache):
        return cache
    raise ParameterError(
        f"cache must be a BatchCache, None, or USE_DEFAULT_CACHE; "
        f"got {cache!r}")


def _cached(cache: BatchCache | None, key, compute) -> np.ndarray:
    if _tracing_enabled():
        # A span per *computed* sub-result (cache hits record nothing):
        # key[0] names the kernel ("wafer_cost", "dies_per_wafer").
        kind = key[0] if isinstance(key, tuple) and key else "anonymous"
        inner = compute

        def compute() -> np.ndarray:
            with _span(f"batch.compute.{kind}"):
                return inner()

    if cache is None:
        return np.asarray(compute())
    return cache.get_or_compute(key, compute)


def _as_float_array(name: str, value) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.dtype != np.float64:  # pragma: no cover - asarray guarantees
        arr = arr.astype(np.float64)
    return arr


def _require_all_positive(name: str, arr: np.ndarray) -> None:
    # Mirrors require_positive elementwise: raises on value <= 0 (NaN
    # propagates, as in the scalar code, rather than raising).
    if bool((arr <= 0).any()):
        raise ParameterError(f"{name} must be > 0 for every element")


def _require_all_fraction(name: str, arr: np.ndarray) -> None:
    if bool(((arr <= 0) | (arr > 1.0)).any()):
        raise ParameterError(f"{name} must be in (0, 1] for every element")


# ---------------------------------------------------------------------------
# eq. (3) — wafer cost
# ---------------------------------------------------------------------------

def generations_batch(feature_sizes_um, reference_um: float = 1.0, *,
                      model: GenerationModel = GenerationModel.SHRINK_LOG,
                      shrink: float = 0.7,
                      linear_step_um: float = 0.15) -> np.ndarray:
    """g(λ) over an array of feature sizes — all four laws of
    :class:`~repro.core.wafer_cost.GenerationModel`."""
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    _require_all_positive("feature_sizes_um", lam)
    if reference_um <= 0:
        raise ParameterError(f"reference_um must be > 0, got {reference_um}")
    ratio = reference_um / lam
    if model is GenerationModel.SHRINK_LOG:
        if not 0.0 < shrink < 1.0:
            raise ParameterError(f"shrink must be in (0, 1), got {shrink}")
        return np.log(ratio) / math.log(1.0 / shrink)
    if model is GenerationModel.LINEAR:
        if linear_step_um <= 0:
            raise ParameterError(
                f"linear_step_um must be > 0, got {linear_step_um}")
        return (reference_um - lam) / linear_step_um
    if model is GenerationModel.INVERSE:
        return 2.0 * (ratio - 1.0)
    if model is GenerationModel.PRINTED:
        return 0.5 * (1.0 - lam / reference_um)
    raise ParameterError(f"unknown generation model {model!r}")


def wafer_cost_batch(model: WaferCostModel, feature_sizes_um, *,
                     volume_wafers: float | None = None,
                     cache: Any = USE_DEFAULT_CACHE,
                     out: np.ndarray | None = None) -> np.ndarray:
    """Eq. (3) — C'_w(λ) over an array of λ, optionally with the
    eq.-(2) overhead term at ``volume_wafers``.

    Matches :meth:`WaferCostModel.pure_cost` /
    :meth:`WaferCostModel.cost_at_volume` elementwise to 1e-12.
    With ``out`` the result is copied into the caller's buffer (e.g. a
    shared-memory row) and that buffer is returned.
    """
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    _require_all_positive("feature_sizes_um", lam)
    if volume_wafers is not None and volume_wafers <= 0:
        raise ParameterError(
            f"volume_wafers must be > 0, got {volume_wafers}")
    cache = _resolve_cache(cache)
    key = ("wafer_cost", model.reference_cost_dollars,
           model.cost_growth_rate, model.reference_feature_um,
           model.overhead_dollars, model.generation_model,
           model.shrink, model.linear_step_um, volume_wafers,
           array_fingerprint(lam))

    def compute() -> np.ndarray:
        g = generations_batch(lam, model.reference_feature_um,
                              model=model.generation_model,
                              shrink=model.shrink,
                              linear_step_um=model.linear_step_um)
        pure = model.reference_cost_dollars * model.cost_growth_rate ** g
        if volume_wafers is None:
            return pure
        return pure + model.overhead_dollars / volume_wafers

    return _deliver(_cached(cache, key, compute), out)


# ---------------------------------------------------------------------------
# eq. (4) — dies per wafer
# ---------------------------------------------------------------------------

def dies_per_wafer_batch(wafer: Wafer, width_cm, height_cm, *,
                         scribe_cm: float = 0.0,
                         cache: Any = USE_DEFAULT_CACHE,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Eq. (4) over arrays of die sizes — exact integer parity with
    :func:`repro.geometry.wafer.dies_per_wafer_maly`.

    ``width_cm`` and ``height_cm`` broadcast together; the result is an
    int64 array of that broadcast shape (0 where the die does not fit).
    The per-row chord sum runs as array reductions, chunked so no
    temporary exceeds a fixed element budget regardless of batch size.
    With ``out`` the counts are copied into the caller's buffer and
    that buffer is returned — a float64 ``out`` (a shared-memory row)
    holds them exactly, since a wafer bounds N_ch far below 2^53.
    """
    w = _as_float_array("width_cm", width_cm)
    h = _as_float_array("height_cm", height_cm)
    w, h = np.broadcast_arrays(w, h)
    _require_all_positive("width_cm", w)
    _require_all_positive("height_cm", h)
    require_nonnegative("scribe_cm", scribe_cm)
    cache = _resolve_cache(cache)
    key = ("dies_per_wafer", wafer.radius_cm, wafer.edge_exclusion_cm,
           float(scribe_cm), array_fingerprint(w), array_fingerprint(h))

    def compute() -> np.ndarray:
        return _dies_per_wafer_rows(wafer.usable_radius_cm,
                                    w.ravel(), h.ravel(),
                                    float(scribe_cm)).reshape(w.shape)

    return _deliver(_cached(cache, key, compute), out)


def _dies_per_wafer_rows(radius: float, w: np.ndarray, h: np.ndarray,
                         scribe: float) -> np.ndarray:
    # Same operations, same order, as the scalar row loop: pitch
    # a = w + scribe, b = h + scribe; floor(2R/b) rows; each row holds
    # floor(2·min(R_j, R_{j+1})/a) dies with R_j = sqrt(R² − (jb − R)²).
    a = w + scribe
    b = h + scribe
    n = w.size
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    fits = ~((w > 2.0 * radius) | (h > 2.0 * radius))
    rows = np.zeros(n, dtype=np.int64)
    rows[fits] = np.floor(2.0 * radius / b[fits]).astype(np.int64)
    if bool((rows > _MAX_ROWS).any()):
        raise ParameterError(
            f"a die in the batch implies more than {_MAX_ROWS} wafer rows; "
            f"refusing the (intractable) eq.-(4) reduction")
    order = np.argsort(rows, kind="stable")
    rows_sorted = rows[order]
    r2 = radius * radius
    pos = int(np.searchsorted(rows_sorted, 1))  # zero-row dies stay 0
    if pos >= n:
        return counts
    active = order[pos:]
    r_active = rows_sorted[pos:]
    # Dies are padded to their chunk's max row count (rows past a die's
    # own floor(2R/b) contribute exactly 0: the chord at offset
    # (j+1)·b − R already lies outside the circle).  Chunk boundaries
    # group dies whose row counts agree within ×1.5 so that padding
    # wastes at most ~50% of each chunk's row matrix, and each chunk is
    # further split to keep its temporaries under the element budget.
    bucket = np.floor(np.log(r_active.astype(np.float64))
                      / math.log(1.5)).astype(np.int64)
    cuts = np.flatnonzero(np.diff(bucket)) + 1
    starts = np.concatenate(([0], cuts))
    ends = np.concatenate((cuts, [r_active.size]))
    for start, end in zip(starts, ends):
        max_size = max(1, _ROW_CHUNK_BUDGET // (int(r_active[end - 1]) + 2))
        for lo in range(start, end, max_size):
            hi = min(lo + max_size, end)
            sel = active[lo:hi]
            r_chunk = int(r_active[hi - 1])
            j = np.arange(r_chunk + 1, dtype=np.float64)
            offset = j[None, :] * b[sel, None] - radius
            inside = r2 - offset * offset
            chord = np.sqrt(np.maximum(inside, 0.0))
            row_chord = np.minimum(chord[:, :-1], chord[:, 1:])
            per_row = np.floor(2.0 * row_chord / a[sel, None])
            counts[sel] = per_row.sum(axis=1).astype(np.int64)
    return counts


# ---------------------------------------------------------------------------
# eq. (5) — transistors per die
# ---------------------------------------------------------------------------

def transistors_per_die_batch(die_area_cm2, design_density,
                              feature_sizes_um) -> np.ndarray:
    """Eq. (5): ``N_tr = A_ch / (d_d · λ²)`` over arrays.

    Matches :meth:`repro.geometry.die.Die.transistor_count` bit-for-bit.
    """
    area = _as_float_array("die_area_cm2", die_area_cm2)
    d = _as_float_array("design_density", design_density)
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    _require_all_positive("die_area_cm2", area)
    _require_all_positive("design_density", d)
    _require_all_positive("feature_sizes_um", lam)
    area_um2 = area * UM2_PER_CM2
    return area_um2 / (d * (lam * lam))


# ---------------------------------------------------------------------------
# eqs. (6)–(7) — yield
# ---------------------------------------------------------------------------

def poisson_yield_batch(area_cm2, defect_density_per_cm2) -> np.ndarray:
    """Eq. (6): ``Y = exp(−A·D₀)`` over arrays."""
    area = _as_float_array("area_cm2", area_cm2)
    density = _as_float_array("defect_density_per_cm2",
                              defect_density_per_cm2)
    if bool((area < 0).any()) or bool((density < 0).any()):
        raise ParameterError("areas and densities must be >= 0")
    return np.exp(-(area * density))


def scaled_poisson_yield_batch(n_transistors, design_density,
                               defect_coefficient, feature_sizes_um,
                               p, *,
                               out: np.ndarray | None = None) -> np.ndarray:
    """Eq. (7): ``Y = exp[−N_tr·d_d·D / λ^{p−2}]`` over arrays.

    Preserves the scalar reference's underflow clamp: cells whose
    exponent exceeds 700 return the smallest positive denormal rather
    than 0.0, so callers dividing by Y never hit a zero division.
    With ``out`` the yields land in the caller's buffer, which is
    returned.
    """
    n = _as_float_array("n_transistors", n_transistors)
    d = _as_float_array("design_density", design_density)
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    p_arr = _as_float_array("p", p)
    coeff = _as_float_array("defect_coefficient", defect_coefficient)
    _require_all_positive("n_transistors", n)
    _require_all_positive("design_density", d)
    _require_all_positive("feature_sizes_um", lam)
    _require_all_positive("p", p_arr)
    if bool((coeff < 0).any()):
        raise ParameterError("defect_coefficient must be >= 0 everywhere")
    area_cm2 = n * d * (lam * lam) * 1.0e-8
    d0_per_cm2 = coeff / lam ** p_arr
    exponent = area_cm2 * d0_per_cm2
    with np.errstate(under="ignore"):
        y = np.exp(-exponent)
    return _deliver(np.where(exponent > _EXPONENT_CLAMP, _TINY_YIELD, y),
                    out)


def yield_for_area_batch(model: YieldModel, area_cm2,
                         defect_density_per_cm2, *,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Any :class:`YieldModel` evaluated over arrays of (area, density).

    The classical models are dispatched to closed-form array kernels
    (1e-12 parity through the transcendentals); the compound family
    (:class:`CompoundPoissonGamma`, :class:`HierarchicalYieldModel`,
    :class:`MixtureYieldModel`) replays the scalar reference's exact
    operation order per element and is **bitwise** identical to it;
    unknown subclasses fall back to a per-element loop so every custom
    model keeps working.  With ``out`` the yields land in the caller's
    float64 buffer (e.g. a shared-memory row), which is returned.
    """
    area = _as_float_array("area_cm2", area_cm2)
    density = _as_float_array("defect_density_per_cm2",
                              defect_density_per_cm2)
    if bool((area < 0).any()) or bool((density < 0).any()):
        raise ParameterError("areas and densities must be >= 0")
    m = area * density
    return _deliver(_yield_from_expectation_batch(model, m), out)


def yield_from_expectation_batch(model: YieldModel, m, *,
                                 out: np.ndarray | None = None
                                 ) -> np.ndarray:
    """Any :class:`YieldModel` over an array of fault expectations.

    The array form of :meth:`YieldModel.yield_from_expectation`, under
    the same dispatch and parity rules as :func:`yield_for_area_batch`
    (closed-form kernels for the classical laws, bitwise scalar replay
    for the compound family).  With ``out`` the result is copied into
    the caller's float64 buffer, which is returned.
    """
    arr = _as_float_array("m", m)
    if bool((arr < 0).any()):
        raise ParameterError("m must be >= 0 for every element")
    return _deliver(_yield_from_expectation_batch(model, arr), out)


def _scalar_pow_elementwise(base: np.ndarray, exponent: float) -> np.ndarray:
    # ``base ** exponent`` through the *scalar* libm pow, element by
    # element.  NumPy's SIMD pow may round differently in the last ulp,
    # which would break the bitwise contract of the compound-family
    # kernels; the surrounding arithmetic stays vectorized (IEEE-exact
    # ops only) and just the transcendental goes through Python floats.
    flat = np.fromiter((b ** exponent for b in base.ravel().tolist()),
                       dtype=np.float64, count=base.size)
    return flat.reshape(base.shape)


def _yield_from_expectation_batch(model: YieldModel,
                                  m: np.ndarray) -> np.ndarray:
    # Dispatch on the exact type, not isinstance: a subclass that
    # overrides yield_from_expectation must NOT ride its parent's
    # vectorized kernel, or the batched result would diverge from the
    # scalar semantics it promises to replay bitwise.
    kind = type(model)
    if kind in (PoissonYield, ReferenceAreaYield):
        return np.exp(-m)
    if kind is MurphyYield:
        safe_m = np.where(m == 0.0, 1.0, m)
        with np.errstate(under="ignore"):
            y = (-np.expm1(-m) / safe_m) ** 2
        return np.where(m == 0.0, 1.0, y)
    if kind is SeedsYield:
        return 1.0 / (1.0 + m)
    if kind is BoseEinsteinYield:
        return (1.0 + m / model.n_layers) ** (-model.n_layers)
    if kind is CompoundPoissonGamma:
        # Same expression as NegativeBinomialYield below, but routed
        # through scalar pow so batched == scalar bit-for-bit (the
        # base ``1.0 + m/α`` is exactly rounded either way).
        return _scalar_pow_elementwise(1.0 + m / model.alpha, -model.alpha)
    if kind is NegativeBinomialYield:
        return (1.0 + m / model.alpha) ** (-model.alpha)
    if kind is HierarchicalYieldModel:
        return _hierarchical_yield_batch(model, m)
    # MixtureYieldModel and unknown subclasses: per-element scalar
    # replay — bitwise by construction.
    flat = np.array([model.yield_from_expectation(float(v))
                     for v in m.ravel()], dtype=np.float64)
    return flat.reshape(m.shape)


def _hierarchical_yield_batch(model: HierarchicalYieldModel,
                              m: np.ndarray) -> np.ndarray:
    # Replays HierarchicalYieldModel.yield_from_expectation exactly:
    # per quadrature node the base ``1.0 + (m·t)/β`` is IEEE-exact
    # arithmetic (vectorized), the pow goes through scalar libm, and
    # the accumulation order over nodes matches the scalar loop —
    # so every element is bit-for-bit the scalar result.
    nodes, weights = model.mixing_nodes()
    beta = model.wafer_alpha
    acc = np.zeros(m.shape, dtype=np.float64)
    for t, w in zip(nodes, weights):
        acc += w * _scalar_pow_elementwise(1.0 + (m * t) / beta, -beta)
    return np.where(m == 0.0, 1.0, np.minimum(acc, 1.0))


# ---------------------------------------------------------------------------
# eq. (1) composed
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchCostResult:
    """Array-valued analog of :class:`~repro.core.transistor_cost.
    CostBreakdown` for one batched eq.-(1) evaluation.

    All arrays share one broadcast shape.  ``feasible`` is False where
    the die does not fit the wafer or the eq.-(7) yield underflows; at
    those cells ``cost_per_transistor_dollars`` is ``inf`` (matching
    :func:`~repro.core.optimization.transistor_cost_full`) while the
    intermediates keep their computed values for auditing.  Arrays that
    came out of the shared cache are read-only; copy before mutating.
    """

    feature_size_um: np.ndarray
    wafer_cost_dollars: np.ndarray
    die_area_cm2: np.ndarray
    dies_per_wafer: np.ndarray
    transistors_per_die: np.ndarray
    yield_value: np.ndarray
    cost_per_transistor_dollars: np.ndarray
    feasible: np.ndarray

    @property
    def shape(self) -> tuple[int, ...]:
        """The common broadcast shape of every array field."""
        return self.cost_per_transistor_dollars.shape

    @property
    def n_feasible(self) -> int:
        """Number of cells with a finite cost."""
        return int(np.count_nonzero(self.feasible))

    @property
    def cost_per_transistor_microdollars(self) -> np.ndarray:
        """C_tr in the paper's Table-3 unit, $·10⁻⁶ (inf where masked)."""
        return self.cost_per_transistor_dollars * 1.0e6

    @property
    def good_dies_per_wafer(self) -> np.ndarray:
        """Expected functioning dies per wafer: N_ch · Y."""
        return self.dies_per_wafer * self.yield_value

    @property
    def cost_per_good_die_dollars(self) -> np.ndarray:
        """Wafer cost spread over functioning dies (inf where none fit)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            out = self.wafer_cost_dollars / self.good_dies_per_wafer
        return np.where(self.dies_per_wafer >= 1, out, np.inf)


def _die_geometry(n: np.ndarray, design_density: float, lam: np.ndarray,
                  aspect_ratio: float
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    # Die.from_transistor_count → Die.from_area, same operation order.
    area_um2 = n * design_density * (lam * lam)
    area_cm2 = area_um2 / UM2_PER_CM2
    height = np.sqrt(area_cm2 / aspect_ratio)
    width = area_cm2 / height
    # Report the area the way Die.area_cm2 does — recomposed from the
    # rounded dimensions — so it matches the scalar breakdown bit-for-bit
    # (width · height re-rounds and can differ from area_cm2 by 1 ulp).
    return width, height, width * height


def transistor_cost_batch(n_transistors, feature_sizes_um,
                          fab: "FabCharacterization | None" = None, *,
                          cache: Any = USE_DEFAULT_CACHE
                          ) -> BatchCostResult:
    """Batched eqs. (1)+(3)+(4)+(7) — the vector form of
    :func:`repro.core.optimization.transistor_cost_full`.

    ``n_transistors`` and ``feature_sizes_um`` broadcast together, so a
    full (λ, N_tr) landscape is one call with ``counts[:, None]`` and
    ``lams[None, :]``.  ``fab`` defaults to the Fig.-8 fitted fab.
    """
    from ..core.optimization import FIG8_FAB
    if fab is None:
        fab = FIG8_FAB
    n = _as_float_array("n_transistors", n_transistors)
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    n, lam = np.broadcast_arrays(n, lam)
    _require_all_positive("n_transistors", n)
    _require_all_positive("feature_sizes_um", lam)
    cache = _resolve_cache(cache)

    obs_on = _obs_enabled()
    t0 = time.perf_counter() if obs_on else 0.0
    with _span("batch.transistor_cost", cells=int(n.size)):
        wafer = Wafer(radius_cm=fab.wafer_radius_cm)
        wafer_cost_model = WaferCostModel(
            reference_cost_dollars=fab.reference_cost_dollars,
            cost_growth_rate=fab.cost_growth_rate)
        width, height, area_cm2 = _die_geometry(n, fab.design_density,
                                                lam, 1.0)
        n_ch = dies_per_wafer_batch(wafer, width, height, cache=cache)
        y = scaled_poisson_yield_batch(n, fab.design_density,
                                       fab.defect_coefficient, lam,
                                       fab.size_exponent_p)
        c_w = wafer_cost_batch(wafer_cost_model, lam, cache=cache)
        with np.errstate(divide="ignore", over="ignore", invalid="ignore",
                         under="ignore"):
            cost = c_w / (n_ch * n * y)
        feasible = (n_ch >= 1) & (y >= _YIELD_CUTOFF)
        cost = np.where(feasible, cost, np.inf)
    if obs_on:
        _metrics.inc("batch.evaluate.calls")
        _metrics.inc("batch.evaluate.cells", int(n.size))
        _metrics.observe("batch.evaluate.seconds", time.perf_counter() - t0)
    return BatchCostResult(
        feature_size_um=lam,
        wafer_cost_dollars=np.broadcast_to(c_w, cost.shape),
        die_area_cm2=area_cm2,
        dies_per_wafer=n_ch,
        transistors_per_die=n,
        yield_value=y,
        cost_per_transistor_dollars=cost,
        feasible=feasible)


def evaluate_batch(model: TransistorCostModel, *, n_transistors,
                   feature_sizes_um, design_density: float,
                   yield_model: YieldModel | None = None,
                   defect_density_per_cm2: float | None = None,
                   yield_value=None,
                   aspect_ratio: float = 1.0,
                   cache: Any = USE_DEFAULT_CACHE) -> BatchCostResult:
    """Batched :meth:`TransistorCostModel.evaluate` over arrays.

    Yield is specified exactly one of three ways, as in the scalar
    method; ``yield_value`` may itself be an array.  Where the scalar
    method *raises* because the die does not fit the wafer, the batch
    form masks the cell to ``inf`` instead (``feasible=False``), so
    aggressive sweeps need no per-cell exception handling.
    """
    n = _as_float_array("n_transistors", n_transistors)
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    n, lam = np.broadcast_arrays(n, lam)
    _require_all_positive("n_transistors", n)
    _require_all_positive("feature_sizes_um", lam)
    if design_density <= 0:
        raise ParameterError(
            f"design_density must be > 0, got {design_density}")
    if aspect_ratio <= 0:
        raise ParameterError(
            f"aspect_ratio must be > 0, got {aspect_ratio}")
    cache = _resolve_cache(cache)

    obs_on = _obs_enabled()
    t0 = time.perf_counter() if obs_on else 0.0
    with _span("batch.evaluate", cells=int(n.size)):
        width, height, area_cm2 = _die_geometry(n, design_density, lam,
                                                aspect_ratio)
        n_ch = dies_per_wafer_batch(model.wafer, width, height, cache=cache)
        y = _resolve_yield_batch(area_cm2, yield_model,
                                 defect_density_per_cm2, yield_value)
        c_w = wafer_cost_batch(model.wafer_cost, lam,
                               volume_wafers=model.volume_wafers, cache=cache)
        with np.errstate(divide="ignore", over="ignore", invalid="ignore",
                         under="ignore"):
            cost = c_w / (n_ch * n * y)
        feasible = n_ch >= 1
        cost = np.where(feasible, cost, np.inf)
    if obs_on:
        _metrics.inc("batch.evaluate.calls")
        _metrics.inc("batch.evaluate.cells", int(n.size))
        _metrics.observe("batch.evaluate.seconds", time.perf_counter() - t0)
    return BatchCostResult(
        feature_size_um=lam,
        wafer_cost_dollars=np.broadcast_to(c_w, cost.shape),
        die_area_cm2=area_cm2,
        dies_per_wafer=n_ch,
        transistors_per_die=n,
        yield_value=np.broadcast_to(y, cost.shape),
        cost_per_transistor_dollars=cost,
        feasible=feasible)


def _resolve_yield_batch(die_area_cm2: np.ndarray,
                         yield_model: YieldModel | None,
                         defect_density_per_cm2: float | None,
                         yield_value) -> np.ndarray:
    given = [yield_model is not None, yield_value is not None]
    if sum(given) != 1:
        raise ParameterError(
            "specify exactly one of yield_model or yield_value")
    if yield_value is not None:
        y = _as_float_array("yield_value", yield_value)
        _require_all_fraction("yield_value", y)
        return y
    assert yield_model is not None
    if isinstance(yield_model, ReferenceAreaYield):
        return yield_model.reference_yield ** (
            die_area_cm2 / yield_model.reference_area_cm2)
    if defect_density_per_cm2 is None:
        raise ParameterError(
            "defect_density_per_cm2 is required with this yield model")
    return yield_for_area_batch(yield_model, die_area_cm2,
                                defect_density_per_cm2)


# ---------------------------------------------------------------------------
# eqs. (8) and (9) — the scenario approximations
# ---------------------------------------------------------------------------

def scenario1_cost_batch(model: TransistorCostModel, feature_sizes_um,
                         design_density: float, *,
                         cache: Any = USE_DEFAULT_CACHE) -> np.ndarray:
    """Eq. (8) over an array of λ: ``C_tr = C_w(λ)·d_d·λ² / A_w``.

    The vector form of :meth:`TransistorCostModel.scenario1_cost`.
    """
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    _require_all_positive("feature_sizes_um", lam)
    if design_density <= 0:
        raise ParameterError(
            f"design_density must be > 0, got {design_density}")
    c_w = wafer_cost_batch(model.wafer_cost, lam,
                           volume_wafers=model.volume_wafers, cache=cache)
    wafer_area_um2 = model.wafer.area_cm2 * UM2_PER_CM2
    return c_w * design_density * (lam * lam) / wafer_area_um2


def scenario2_cost_batch(model: TransistorCostModel, feature_sizes_um,
                         design_density: float, *,
                         reference_yield: float = 0.7,
                         reference_area_cm2: float = 1.0,
                         die_area_cm2=None,
                         cache: Any = USE_DEFAULT_CACHE) -> np.ndarray:
    """Eq. (9) over an array of λ: eq. (8) divided by ``Y₀^{A(λ)/A₀}``.

    ``die_area_cm2`` may be an array aligned with λ; the default is the
    Fig.-3 trend evaluated per λ, exactly as the scalar
    :meth:`TransistorCostModel.scenario2_cost` does.
    """
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    _require_all_positive("feature_sizes_um", lam)
    law = ReferenceAreaYield(reference_yield, reference_area_cm2)
    if die_area_cm2 is None:
        from ..technology.roadmap import die_area_trend_cm2
        area = np.array([die_area_trend_cm2(float(l)) for l in lam.ravel()],
                        dtype=np.float64).reshape(lam.shape)
    else:
        area = _as_float_array("die_area_cm2", die_area_cm2)
    _require_all_positive("die_area_cm2", area)
    y = law.reference_yield ** (area / law.reference_area_cm2)
    return scenario1_cost_batch(model, lam, design_density,
                                cache=cache) / y


# ---------------------------------------------------------------------------
# chiplet system cost — repro.system.chiplet, vectorized
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChipletBatchResult:
    """Array-valued analog of :class:`~repro.system.chiplet.
    ChipletCostBreakdown` for one batched chiplet evaluation.

    All arrays share one broadcast shape.  ``feasible`` is False where
    a chiplet does not fit the wafer or the effective (probe ×
    assembly) yield underflows the economic cutoff; the three cost
    fields are ``inf`` there — exactly like the scalar reference —
    while the physical intermediates keep their computed values.
    """

    feature_size_um: np.ndarray
    chiplet_count: np.ndarray
    transistors_per_chiplet: np.ndarray
    chiplet_area_cm2: np.ndarray
    wafer_cost_dollars: np.ndarray
    dies_per_wafer: np.ndarray
    die_yield: np.ndarray
    assembly_yield: np.ndarray
    effective_yield: np.ndarray
    packaging_cost_dollars: np.ndarray
    silicon_cost_per_transistor_dollars: np.ndarray
    overhead_cost_per_transistor_dollars: np.ndarray
    cost_per_transistor_dollars: np.ndarray
    feasible: np.ndarray

    @property
    def shape(self) -> tuple[int, ...]:
        """The common broadcast shape of every array field."""
        return self.cost_per_transistor_dollars.shape

    @property
    def n_feasible(self) -> int:
        """Number of cells with a finite cost."""
        return int(np.count_nonzero(self.feasible))

    @property
    def cost_per_transistor_microdollars(self) -> np.ndarray:
        """C_tr in the paper's Table-3 unit, $·10⁻⁶ (inf where masked)."""
        return self.cost_per_transistor_dollars * 1.0e6


def _scalar_pow_pairwise(base: np.ndarray,
                         exponent: np.ndarray) -> np.ndarray:
    # ``base ** exponent`` with a per-element exponent, through the
    # scalar libm pow — the pairwise sibling of
    # ``_scalar_pow_elementwise`` (same bitwise rationale).
    flat = np.fromiter((b ** e for b, e in zip(base.ravel().tolist(),
                                               exponent.ravel().tolist())),
                       dtype=np.float64, count=base.size)
    return flat.reshape(base.shape)


def _scalar_exp_neg_clamped(exponent: np.ndarray) -> np.ndarray:
    # ``exp(-exponent)`` through scalar libm with the eq.-(7) underflow
    # clamp — replays scaled_poisson_yield's tail (and its bits)
    # exactly, element by element.
    exp = math.exp
    flat = np.fromiter(
        (_TINY_YIELD if e > _EXPONENT_CLAMP else exp(-e)
         for e in exponent.ravel().tolist()),
        dtype=np.float64, count=exponent.size)
    return flat.reshape(exponent.shape)


def _scalar_wafer_cost_batch(model: WaferCostModel, lam: np.ndarray,
                             cache: BatchCache | None) -> np.ndarray:
    # Eq. (3) per *unique* λ through the scalar ``pure_cost`` (libm pow
    # and log), fanned back out — bitwise equal to the scalar path, and
    # cheap because sweeps carry few distinct feature sizes.
    key = ("chiplet_wafer_cost", model.reference_cost_dollars,
           model.cost_growth_rate, model.reference_feature_um,
           model.generation_model, model.shrink, model.linear_step_um,
           array_fingerprint(lam))

    def compute() -> np.ndarray:
        uniq, inv = np.unique(lam.ravel(), return_inverse=True)
        pure = model.pure_cost
        vals = np.fromiter((pure(l) for l in uniq.tolist()),
                           dtype=np.float64, count=uniq.size)
        return vals[inv].reshape(lam.shape)

    return _cached(cache, key, compute)


def chiplet_cost_batch(n_transistors, feature_sizes_um, chiplets,
                       model: "ChipletCostModel | None" = None, *,
                       cache: Any = USE_DEFAULT_CACHE,
                       out: np.ndarray | None = None
                       ) -> ChipletBatchResult:
    """Batched :meth:`~repro.system.chiplet.ChipletCostModel.
    system_cost` — the vector form of the chiplet parity reference.

    ``n_transistors``, ``feature_sizes_um`` and ``chiplets`` broadcast
    together, so a (k × N_tr) crossover plane at fixed λ is one call
    with ``ks[:, None]`` and ``counts[None, :]``.  ``chiplets`` must be
    integer-valued (floats are fine — the sweep engine feeds float
    axes) and ≥ 1 everywhere.

    Parity is **bitwise**, not 1e-12: the pure arithmetic (geometry,
    eq.-(4) die counts, every cost composition) is vectorized in the
    scalar operation order, while the transcendental steps — eq.-(3)
    wafer cost per unique λ, the eq.-(7) exp, and the three KGD/
    assembly pows — run through scalar libm element by element
    (the ``_scalar_pow_elementwise`` idiom the compound yield family
    established).  That lets the serve executor and the loadgen
    verifier hold chiplet traffic to the same bitwise contract as fab
    queries.  Sub-results (die counts, wafer cost, die yield) memoize
    in the shared :class:`~repro.batch.cache.BatchCache`.

    With ``out`` the composed C_tr lands in the caller's float64
    buffer (e.g. a shared-memory sweep tile), which also becomes the
    result's ``cost_per_transistor_dollars``.
    """
    from ..system.chiplet import ChipletCostModel
    if model is None:
        model = ChipletCostModel()
    elif not isinstance(model, ChipletCostModel):
        raise ParameterError(
            f"model must be a ChipletCostModel, got {model!r}")
    n = _as_float_array("n_transistors", n_transistors)
    lam = _as_float_array("feature_sizes_um", feature_sizes_um)
    kk = _as_float_array("chiplets", chiplets)
    n, lam, kk = np.broadcast_arrays(n, lam, kk)
    _require_all_positive("n_transistors", n)
    _require_all_positive("feature_sizes_um", lam)
    if bool((kk < 1).any()) or bool((np.floor(kk) != kk).any()):
        raise ParameterError(
            "chiplets must be integer-valued and >= 1 for every element")
    cache = _resolve_cache(cache)
    fab = model.fab
    pk = model.packaging
    t = model.test

    obs_on = _obs_enabled()
    t0 = time.perf_counter() if obs_on else 0.0
    with _span("batch.chiplet_cost", cells=int(n.size)):
        wafer = Wafer(radius_cm=fab.wafer_radius_cm)
        wafer_cost_model = WaferCostModel(
            reference_cost_dollars=fab.reference_cost_dollars,
            cost_growth_rate=fab.cost_growth_rate)
        n_k = n / kk
        width, height, area_cm2 = _die_geometry(n_k, fab.design_density,
                                                lam, 1.0)
        n_ch = dies_per_wafer_batch(wafer, width, height, cache=cache)
        c_w = _scalar_wafer_cost_batch(wafer_cost_model, lam, cache)
        ykey = ("chiplet_die_yield", fab.design_density,
                fab.defect_coefficient, fab.size_exponent_p,
                array_fingerprint(n_k), array_fingerprint(lam))

        def compute_yield() -> np.ndarray:
            # scaled_poisson_yield's exact operation order: the d0 pow
            # per unique λ through scalar libm, the area product
            # vectorized (IEEE-exact), the exp per element.
            uniq, inv = np.unique(lam.ravel(), return_inverse=True)
            p = fab.size_exponent_p
            coeff = fab.defect_coefficient
            d0_u = np.fromiter((coeff / l ** p for l in uniq.tolist()),
                               dtype=np.float64, count=uniq.size)
            area_y = n_k * fab.design_density * (lam * lam) * 1.0e-8
            exponent = area_y * d0_u[inv].reshape(lam.shape)
            return _scalar_exp_neg_clamped(exponent)

        y = _cached(cache, ykey, compute_yield)
        pc = model.probe_coverage
        pass_rate = _scalar_pow_elementwise(y, pc)
        q = _scalar_pow_elementwise(y, 1.0 - pc)
        y_asm = _scalar_pow_pairwise(q * pk.bond_yield, kk)
        y_eff = pass_rate * y_asm
        packaging_cost = pk.base_cost_dollars \
            + pk.cost_per_die_dollars * kk \
            + pk.cost_per_cm2_dollars * (kk * area_cm2)
        rate = t.tester_rate_dollars_per_hour
        probe_c = (t.probe_base_seconds
                   + t.probe_seconds_per_kilotransistor * n_k / 1000.0) \
            * rate / 3600.0
        final_c = (t.final_base_seconds
                   + t.final_seconds_per_kilotransistor * n / 1000.0) \
            * rate / 3600.0
        feasible = (n_ch >= 1) & (y_eff >= _YIELD_CUTOFF)
        with np.errstate(divide="ignore", over="ignore", invalid="ignore",
                         under="ignore"):
            silicon = c_w / (n_ch * n_k * y_eff)
            overhead_total = kk * (probe_c / pass_rate) \
                + packaging_cost + final_c
            overhead = overhead_total / (y_asm * n)
            cost = silicon + overhead
        silicon = np.where(feasible, silicon, np.inf)
        overhead = np.where(feasible, overhead, np.inf)
        cost = _deliver(np.where(feasible, cost, np.inf), out)
    if obs_on:
        _metrics.inc("batch.chiplet.calls")
        _metrics.inc("batch.chiplet.cells", int(n.size))
        _metrics.observe("batch.chiplet.seconds", time.perf_counter() - t0)
    return ChipletBatchResult(
        feature_size_um=lam,
        chiplet_count=kk,
        transistors_per_chiplet=n_k,
        chiplet_area_cm2=area_cm2,
        wafer_cost_dollars=c_w,
        dies_per_wafer=n_ch,
        die_yield=y,
        assembly_yield=y_asm,
        effective_yield=y_eff,
        packaging_cost_dollars=packaging_cost,
        silicon_cost_per_transistor_dollars=silicon,
        overhead_cost_per_transistor_dollars=overhead,
        cost_per_transistor_dollars=cost,
        feasible=feasible)
