"""Keyed memoization for batch sub-results shared across sweeps.

The batch engine's two expensive sub-computations — dies-per-wafer
(eq. 4, a per-row reduction over every die in the batch) and wafer cost
(eq. 3, a transcendental per λ) — recur verbatim across sweeps: every
Fig.-8 landscape over the same (λ, N_tr) axes needs the same die-count
array, every scenario curve over the same λ grid needs the same wafer
costs.  :class:`BatchCache` memoizes them under exact keys built from
the model parameters plus the raw bytes of the input arrays, so a hit
requires bit-identical inputs — there is no approximate matching and
therefore no way for the cache to change results.

Cached arrays are stored (and returned) with ``writeable=False`` so a
consumer cannot corrupt entries in place; callers that need to mutate
must copy.  Eviction is LRU with a bounded entry count, and the cache
is lock-protected so concurrent sweeps (the ROADMAP's service-style
workloads) can share one instance safely.

``default_cache()`` returns the process-wide instance the engine uses
unless a call site supplies its own (or ``None`` to disable caching).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from ..errors import ParameterError
from ..obs import metrics as _metrics


@dataclass(frozen=True)
class CacheStats:
    """Lifetime traffic counters for one :class:`BatchCache`.

    ``hits``, ``misses`` and ``evictions`` count every lookup/eviction
    since the cache was *constructed* — they are lifetime totals and
    deliberately survive :meth:`BatchCache.clear`, which resets the
    stored entries only.  ``entries`` is the one live quantity: the
    number of arrays currently held.  When metrics are enabled
    (:mod:`repro.obs`), the same traffic also lands on the
    process-wide ``batch.cache.{hits,misses,evictions}`` counters.
    """

    hits: int
    misses: int
    entries: int
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 when the cache is untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def array_fingerprint(arr: np.ndarray) -> tuple:
    """An exact, hashable key component for an ndarray's full contents."""
    a = np.ascontiguousarray(arr)
    return (a.shape, a.dtype.str, a.tobytes())


class BatchCache:
    """A bounded, thread-safe, LRU map from exact keys to result arrays."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ParameterError(
                f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the cached array for ``key``, computing it on a miss.

        The computed array is frozen (``writeable=False``) before being
        stored and returned; the same frozen array object is handed to
        every subsequent hit.
        """
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                value = self._entries[key]
                _metrics.inc("batch.cache.hits")
                return value
        value = np.asarray(compute())
        value.flags.writeable = False
        evicted = 0
        with self._lock:
            self._misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        _metrics.inc("batch.cache.misses")
        if evicted:
            _metrics.inc("batch.cache.evictions", evicted)
        return value

    def prewarm(self, queries) -> int:
        """Replay recorded cost queries into this cache; return uniques.

        ``queries`` is any iterable of
        :class:`repro.serve.query.CostQuery` — typically rebuilt from
        a recorded traffic file (``python -m repro cost --prewarm
        FILE``) — or a path: a recorder JSONL log
        (:mod:`repro.obs.recording`, auto-detected by
        :func:`~repro.obs.recording.is_recorded_log`) loads its
        replayable queries directly, and any other file goes through
        the caller's legacy loader first.  Queries are coalesced
        exactly the way a flush would
        (grouped by signature, deduplicated by point) and priced
        through the serve executor with *this* cache, so the
        expensive memoized sub-results — eq.-(4) die-count arrays,
        eq.-(3) wafer costs — are resident before live traffic
        arrives.  A service whose flushes repeat the recorded grids
        then starts at its steady-state hit rate instead of paying
        the cold-start misses (see ``docs/serving.md``).

        Returns the number of unique points evaluated.  The computed
        group results are discarded — only the cache entries matter.
        """
        # Lazy import: repro.serve imports this module at load time.
        from ..serve.executor import execute_group

        if isinstance(queries, (str, os.PathLike)):
            from ..obs.recording import (
                is_recorded_log,
                load_recorded_queries,
            )
            if not is_recorded_log(queries):
                raise ParameterError(
                    f"{queries}: not a recorded-traffic log (for legacy "
                    f"point files, load the queries and pass them in)")
            queries = load_recorded_queries(queries)

        groups: dict[Hashable, tuple[Any, dict]] = {}
        for query in queries:
            sig = query.signature()
            entry = groups.get(sig)
            if entry is None:
                entry = groups[sig] = (query, {})
            entry[1][query.point()] = None
        total = 0
        for exemplar, points in groups.values():
            unique = list(points)
            execute_group(exemplar, unique, cache=self)
            total += len(unique)
        _metrics.inc("batch.cache.prewarm.points", total)
        return total

    def clear(self) -> None:
        """Drop every stored entry; lifetime counters are preserved.

        Only the *entries* reset — the hit/miss/eviction counters in
        :attr:`stats` keep counting across clears, so a long-lived
        service can clear for memory without losing its traffic
        history.  (Cleared entries do not count as evictions; the
        eviction counter tracks LRU capacity pressure only.)
        """
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        # Locked: len(OrderedDict) alone is atomic in CPython, but
        # taking the lock keeps the count coherent with a concurrent
        # eviction loop in get_or_compute (and costs nothing off the
        # hot path).
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """A snapshot: lifetime hit/miss/eviction counters + live entries."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self._entries),
                              evictions=self._evictions)


_DEFAULT_CACHE = BatchCache()


def default_cache() -> BatchCache:
    """The process-wide cache used by the engine unless told otherwise."""
    return _DEFAULT_CACHE
