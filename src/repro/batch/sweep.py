"""Tiled mega-sweeps: million-point landscapes on the shm pool.

The paper's headline artifacts are *sweeps* — the Fig.-8 cost
landscape over (λ, N_tr), the per-die-area optimal-λ curves, the
Fig.-6/7 scenario curves.  :class:`TiledSweepRunner` evaluates any
such two-axis grid by cutting it into tiles (:class:`SweepPlan`) and
executing the tiles sequentially, on a thread pool, or on a process
pool that communicates through one :class:`~repro.shm.ShmBlock` —
the PR-5 serve transport pushed down into :mod:`repro.batch`, as
ROADMAP's "shared-memory mega-sweeps" item calls for.

Process-backend data flow (zero per-point pickling)
---------------------------------------------------
One shared segment holds the whole sweep as a flat float64 row::

    [ row-axis (R) | col-axis (C) | result grid (R·C, row-major) ]

The parent writes both axes once; a task pickles only ``(block name,
spec, tile bounds, obs flags)``.  Each worker maps the block by name,
reads its tile's axis slices, evaluates the spec's kernel straight
into its slab of the result grid (the ``out=`` write path end to
end), and unmaps.  The parent copies finished slabs into the caller's
array.  Worker crashes degrade through
:func:`repro.yieldsim.parallel._run_pool`'s sequential fallback and
the pool is rebuilt on the next wave; worker spans/metrics re-parent
into the caller's trace via the ``capture_flags``/``absorb`` protocol.

Bitwise parity
--------------
Tiling must be invisible: every backend, worker count, tile size and
resume path produces a result array **bit-for-bit identical** to the
sequential full-grid evaluation.  The sweep kernels only ever slice
axis arrays and evaluate the same elementwise :mod:`repro.batch`
ufunc pipelines on them, so a cell's value depends on nothing but its
own (row, col) inputs.  ``tests/property_based/test_sweep_parity.py``
quantifies over all four degrees of freedom.

Checkpoint / resume
-------------------
With ``checkpoint_dir=`` each finished tile is flushed to
``<dir>/tiles/tile_<index>.npy`` (written atomically via rename) under
a ``plan.json`` manifest recording the grid shape, tile shape, axis
hashes and spec fingerprint.  A killed sweep re-run with
``resume=True`` validates the manifest, loads every finished tile
back into the result array, and computes only the remainder — the
resumed array is bitwise identical to an uninterrupted run (the
parity contract above makes the merge safe).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, TYPE_CHECKING

import numpy as np

from ..errors import ParameterError
from ..obs import metrics as _metrics, span as _span
from ..obs.capture import absorb, begin_capture, capture_flags, end_capture
from ..obs.state import enabled as _obs_enabled
from ..shm import ShmBlock
from ..yieldsim.parallel import _run_pool
from .cache import BatchCache, default_cache
from .engine import (
    USE_DEFAULT_CACHE,
    _resolve_cache,
    chiplet_cost_batch,
    transistor_cost_batch,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle with core
    from ..core.optimization import FabCharacterization
    from ..core.scenarios import Scenario
    from ..system.chiplet import ChipletCostModel

__all__ = [
    "BACKEND_CHOICES",
    "ChipletCrossoverSweep",
    "DieAreaCostSweep",
    "FabCostSweep",
    "ScenarioSweep",
    "SweepPlan",
    "SweepResult",
    "Tile",
    "TiledSweepRunner",
]

#: Accepted values of the runner's ``backend=`` knob (same vocabulary
#: as the serve scheduler).
BACKEND_CHOICES = ("auto", "thread", "process")

#: Default points per tile: big enough that NumPy ufunc dispatch is
#: amortized, small enough that a pool sees many tiles per worker.
DEFAULT_TILE_SIZE = 65536

#: Fault-injection hook for the resilience tests
#: (``tests/batch/test_sweep.py``), mirroring the serve backend's
#: ``REPRO_SERVE_WORKER_FAULT``: ``"raise"`` raises in every process;
#: ``"exit:<pid>"`` hard-kills any process *except* ``<pid>`` so the
#: parent's sequential fallback still completes.
FAULT_ENV = "REPRO_SWEEP_WORKER_FAULT"

_MANIFEST_NAME = "plan.json"
_MANIFEST_VERSION = 1


def validate_backend(backend: str) -> str:
    """Check a ``backend=`` knob value, returning it unchanged."""
    if backend not in BACKEND_CHOICES:
        raise ParameterError(
            f"backend must be one of {BACKEND_CHOICES}, got {backend!r}")
    return backend


def _apply_fault() -> None:
    fault = os.environ.get(FAULT_ENV)
    if not fault:
        return
    if fault == "raise":
        raise RuntimeError("injected sweep worker fault")
    if fault.startswith("exit:") and os.getpid() != int(fault[5:]):
        os._exit(17)


# ---------------------------------------------------------------------------
# plan: axes → tiles
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Tile:
    """One rectangular slab of the sweep grid (half-open bounds)."""

    index: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    @property
    def shape(self) -> tuple[int, int]:
        """The slab's (rows, cols) extent."""
        return (self.row_hi - self.row_lo, self.col_hi - self.col_lo)

    @property
    def n_points(self) -> int:
        """Cells in the slab."""
        return (self.row_hi - self.row_lo) * (self.col_hi - self.col_lo)


@dataclass(frozen=True)
class SweepPlan:
    """A deterministic row-major tiling of an (n_rows, n_cols) grid.

    Tiles prefer full grid width (``tile_cols = min(n_cols,
    tile_size)``) so slabs stay contiguous runs of the row-major
    result array; leftover budget stacks rows.  The enumeration order
    is part of the checkpoint format — a resumed sweep must agree with
    the killed one about which index means which slab.
    """

    n_rows: int
    n_cols: int
    tile_rows: int
    tile_cols: int

    @classmethod
    def for_grid(cls, n_rows: int, n_cols: int,
                 tile_size: int = DEFAULT_TILE_SIZE) -> "SweepPlan":
        """Tile an (n_rows, n_cols) grid into ≈``tile_size``-point tiles."""
        if n_rows < 1 or n_cols < 1:
            raise ParameterError(
                f"sweep grid must be at least 1x1, got {n_rows}x{n_cols}")
        if tile_size < 1:
            raise ParameterError(f"tile_size must be >= 1, got {tile_size}")
        tile_cols = min(n_cols, tile_size)
        tile_rows = min(n_rows, max(1, tile_size // tile_cols))
        return cls(n_rows=n_rows, n_cols=n_cols,
                   tile_rows=tile_rows, tile_cols=tile_cols)

    @property
    def n_row_bands(self) -> int:
        """Tiles stacked along the row axis."""
        return -(-self.n_rows // self.tile_rows)

    @property
    def n_col_bands(self) -> int:
        """Tiles abreast along the column axis."""
        return -(-self.n_cols // self.tile_cols)

    @property
    def n_tiles(self) -> int:
        """Total tile count."""
        return self.n_row_bands * self.n_col_bands

    def tiles(self) -> Iterator[Tile]:
        """Every tile, row-major, indices ``0..n_tiles-1``."""
        index = 0
        for row_lo in range(0, self.n_rows, self.tile_rows):
            row_hi = min(row_lo + self.tile_rows, self.n_rows)
            for col_lo in range(0, self.n_cols, self.tile_cols):
                col_hi = min(col_lo + self.tile_cols, self.n_cols)
                yield Tile(index=index, row_lo=row_lo, row_hi=row_hi,
                           col_lo=col_lo, col_hi=col_hi)
                index += 1

    def tile(self, index: int) -> Tile:
        """The tile at one enumeration index."""
        if not 0 <= index < self.n_tiles:
            raise ParameterError(
                f"tile index {index} outside 0..{self.n_tiles - 1}")
        band, col_band = divmod(index, self.n_col_bands)
        row_lo = band * self.tile_rows
        col_lo = col_band * self.tile_cols
        return Tile(index=index,
                    row_lo=row_lo,
                    row_hi=min(row_lo + self.tile_rows, self.n_rows),
                    col_lo=col_lo,
                    col_hi=min(col_lo + self.tile_cols, self.n_cols))


# ---------------------------------------------------------------------------
# sweep specs: what one tile evaluates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FabCostSweep:
    """Fig.-8 landscape rows: C_tr over (N_tr rows, λ cols).

    Rows are transistor counts, columns are feature sizes — the same
    orientation as :meth:`repro.core.optimization.CostLandscape.grid`.
    ``fab=None`` resolves to the Fig.-8 fitted fab lazily (the spec
    must stay importable without :mod:`repro.core`, which imports this
    package).
    """

    fab: "FabCharacterization | None" = None

    def _resolved_fab(self) -> "FabCharacterization":
        if self.fab is not None:
            return self.fab
        from ..core.optimization import FIG8_FAB
        return FIG8_FAB

    def fingerprint(self) -> str:
        """Stable identity for the checkpoint manifest."""
        f = self._resolved_fab()
        return ("fab_cost:" + repr((
            f.cost_growth_rate, f.reference_cost_dollars,
            f.wafer_radius_cm, f.design_density,
            f.defect_coefficient, f.size_exponent_p)))

    def evaluate_tile(self, row_values: np.ndarray, col_values: np.ndarray,
                      out: np.ndarray, *,
                      cache: BatchCache | None = None) -> None:
        """Write C_tr for ``row_values × col_values`` into ``out``."""
        result = transistor_cost_batch(
            row_values[:, None], col_values[None, :],
            self._resolved_fab(), cache=cache)
        out[...] = result.cost_per_transistor_dollars


@dataclass(frozen=True)
class DieAreaCostSweep:
    """Optimal-λ-per-die-size rows: C_tr over (die-area rows, λ cols).

    Each cell fixes the die area (row) and feature size (column); λ
    then sets N_tr via eq. (5), replicating the scalar
    :func:`~repro.core.optimization.optimal_feature_size_for_die_area`
    operation order exactly (``area·1e8 / (d_d·λ²)``, left to right)
    so per-row argmins match the scalar optimizer bit-for-bit.
    """

    fab: "FabCharacterization | None" = None

    def _resolved_fab(self) -> "FabCharacterization":
        if self.fab is not None:
            return self.fab
        from ..core.optimization import FIG8_FAB
        return FIG8_FAB

    def fingerprint(self) -> str:
        """Stable identity for the checkpoint manifest."""
        f = self._resolved_fab()
        return ("die_area_cost:" + repr((
            f.cost_growth_rate, f.reference_cost_dollars,
            f.wafer_radius_cm, f.design_density,
            f.defect_coefficient, f.size_exponent_p)))

    def evaluate_tile(self, row_values: np.ndarray, col_values: np.ndarray,
                      out: np.ndarray, *,
                      cache: BatchCache | None = None) -> None:
        """Write C_tr for ``die areas × feature sizes`` into ``out``."""
        fab = self._resolved_fab()
        lam_sq_density = fab.design_density * col_values * col_values
        n_tr = row_values[:, None] * 1.0e8 / lam_sq_density[None, :]
        result = transistor_cost_batch(
            n_tr, col_values[None, :], fab, cache=cache)
        out[...] = result.cost_per_transistor_dollars


@dataclass(frozen=True)
class ScenarioSweep:
    """Fig.-6/7 curve bundles: C_tr over (growth-rate X rows, λ cols).

    Each row is one eq.-(8)/(9) curve — the array
    :meth:`repro.core.scenarios.Scenario.curves` computes per X value,
    so a tiled run of all X at once reproduces the whole figure.
    """

    scenario: "Scenario"

    def fingerprint(self) -> str:
        """Stable identity for the checkpoint manifest."""
        s = self.scenario
        fn = s.die_area_cm2_fn
        return ("scenario:" + repr((
            s.name, s.design_density, s.reference_cost_dollars,
            s.wafer_radius_cm, s.reference_yield, s.reference_area_cm2,
            s.generation_model.name,
            f"{fn.__module__}.{getattr(fn, '__qualname__', fn)}")))

    def evaluate_tile(self, row_values: np.ndarray, col_values: np.ndarray,
                      out: np.ndarray, *,
                      cache: BatchCache | None = None) -> None:
        """Write one curve slice per growth-rate row into ``out``."""
        for i, growth_rate in enumerate(row_values.tolist()):
            out[i, :] = self.scenario._curve(col_values, growth_rate)


@dataclass(frozen=True)
class ChipletCrossoverSweep:
    """Monolithic-vs-chiplet crossover plane: C_tr over (k rows, N_tr
    cols) at one fixed feature size.

    Rows are chiplet counts (integer-valued floats — row 1.0 is the
    monolithic baseline), columns are system transistor budgets; each
    cell prices the whole k-die assembly through
    :func:`~repro.batch.engine.chiplet_cost_batch`, so per-column
    argmins read off the cheapest die count per budget and the k=1 row
    is the eq.-(1) reference the crossover is measured against.
    ``model=None`` resolves to the default
    :class:`~repro.system.chiplet.ChipletCostModel` lazily (the spec
    must stay importable without :mod:`repro.system`, which imports
    :mod:`repro.core` and hence this package).
    """

    feature_size_um: float = 0.8
    model: "ChipletCostModel | None" = None

    def _resolved_model(self) -> "ChipletCostModel":
        if self.model is not None:
            return self.model
        from ..system.chiplet import ChipletCostModel
        return ChipletCostModel()

    def fingerprint(self) -> str:
        """Stable identity for the checkpoint manifest."""
        m = self._resolved_model()
        f, pk, t = m.fab, m.packaging, m.test
        return ("chiplet_crossover:" + repr((
            self.feature_size_um,
            f.cost_growth_rate, f.reference_cost_dollars,
            f.wafer_radius_cm, f.design_density,
            f.defect_coefficient, f.size_exponent_p,
            pk.name, pk.base_cost_dollars, pk.cost_per_die_dollars,
            pk.cost_per_cm2_dollars, pk.bond_yield,
            t.tester_rate_dollars_per_hour, t.probe_base_seconds,
            t.probe_seconds_per_kilotransistor, t.final_base_seconds,
            t.final_seconds_per_kilotransistor,
            m.probe_coverage)))

    def evaluate_tile(self, row_values: np.ndarray, col_values: np.ndarray,
                      out: np.ndarray, *,
                      cache: BatchCache | None = None) -> None:
        """Write C_tr for ``chiplet counts × budgets`` into ``out``."""
        chiplet_cost_batch(
            col_values[None, :], self.feature_size_um,
            row_values[:, None], self._resolved_model(),
            cache=cache, out=out)


# ---------------------------------------------------------------------------
# checkpoint store
# ---------------------------------------------------------------------------

class SweepCheckpoint:
    """Run-dir persistence: one manifest plus one ``.npy`` per tile.

    Tile files land via write-to-temp + :func:`os.replace`, so a file
    that exists is always a complete slab — a sweep killed mid-write
    leaves only a temp file the next run ignores.
    """

    def __init__(self, directory: str | os.PathLike, *,
                 resume: bool = False) -> None:
        self.directory = Path(directory)
        self.tiles_dir = self.directory / "tiles"
        self.resume = resume

    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def prepare(self, manifest: dict) -> set[int]:
        """Validate/initialize the run dir; return finished tile indices.

        A directory already holding a manifest is only usable with
        ``resume=True`` *and* a matching plan — anything else raises
        rather than silently mixing two different sweeps' tiles.
        """
        self.tiles_dir.mkdir(parents=True, exist_ok=True)
        path = self._manifest_path()
        if path.exists():
            existing = json.loads(path.read_text())
            if existing != manifest:
                raise ParameterError(
                    f"checkpoint directory {self.directory} holds an "
                    f"incompatible sweep plan; point at a fresh directory")
            if not self.resume:
                raise ParameterError(
                    f"checkpoint directory {self.directory} already "
                    f"contains a sweep; pass resume=True to continue it "
                    f"or use a fresh directory")
            return self._completed(int(manifest["n_tiles"]))
        # Fresh run: sweep out stale tiles from a manifest-less dir so
        # a later resume can trust every file it finds.
        for stale in self.tiles_dir.glob("tile_*.npy"):
            stale.unlink()
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp, path)
        return set()

    def _completed(self, n_tiles: int) -> set[int]:
        done: set[int] = set()
        for f in self.tiles_dir.glob("tile_*.npy"):
            try:
                index = int(f.stem.split("_")[1])
            except (IndexError, ValueError):
                continue
            if 0 <= index < n_tiles:
                done.add(index)
        return done

    def _tile_path(self, index: int) -> Path:
        return self.tiles_dir / f"tile_{index:06d}.npy"

    def load(self, tile: Tile) -> np.ndarray | None:
        """The stored slab for a tile, or None if absent/unreadable."""
        path = self._tile_path(tile.index)
        try:
            slab = np.load(path)
        except Exception:
            return None
        if slab.shape != tile.shape or slab.dtype != np.float64:
            return None
        return slab

    def store(self, tile: Tile, slab: np.ndarray) -> None:
        """Atomically persist one finished slab."""
        path = self._tile_path(tile.index)
        tmp = path.with_name(f".tile_{tile.index:06d}.tmp")
        with open(tmp, "wb") as f:
            np.save(f, np.ascontiguousarray(slab))
        os.replace(tmp, path)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _shm_extent(n_rows: int, n_cols: int) -> int:
    # Flat layout: row axis, col axis, then the row-major grid.
    return n_rows + n_cols + n_rows * n_cols


def _tile_worker(name: str, n_rows: int, n_cols: int, spec: Any,
                 tile: Tile, flags: tuple[bool, bool] | None,
                 use_cache: bool) -> dict | None:
    """Evaluate one tile of a shared-memory sweep in place.

    Maps the named block, slices this tile's axis values out of the
    shared header, evaluates the spec's kernel directly into the
    tile's slab of the shared grid, and returns only the observability
    payload.  Runs identically in a pool worker and in the parent
    during the ``_run_pool`` sequential fallback.
    """
    frame = begin_capture(flags) if flags else None
    try:
        _apply_fault()
        cache: BatchCache | None = default_cache() if use_cache else None
        block = ShmBlock.attach(name, 1, _shm_extent(n_rows, n_cols))
        try:
            flat = block.array[0]
            # Copy the axis slices out: the kernels broadcast and
            # slice them freely, and a private copy keeps every view
            # of the shared buffer short-lived.
            rows = np.array(flat[tile.row_lo:tile.row_hi])
            cols = np.array(
                flat[n_rows + tile.col_lo:n_rows + tile.col_hi])
            grid = flat[n_rows + n_cols:].reshape(n_rows, n_cols)
            with _span("sweep.tile", index=tile.index,
                       points=tile.n_points):
                spec.evaluate_tile(
                    rows, cols,
                    grid[tile.row_lo:tile.row_hi, tile.col_lo:tile.col_hi],
                    cache=cache)
            del grid, flat
        finally:
            block.close()
    finally:
        payload = end_capture(frame) if frame else None
    return payload


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    """One finished sweep: the grid, its axes, and how it was run."""

    values: np.ndarray
    row_values: np.ndarray
    col_values: np.ndarray
    plan: SweepPlan
    stats: dict = field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, int]:
        """The grid shape (n_rows, n_cols)."""
        return self.values.shape  # type: ignore[return-value]

    @property
    def n_points(self) -> int:
        """Cells in the grid."""
        return int(self.values.size)

    def argmin(self) -> tuple[int, int] | None:
        """Indices of the cheapest finite cell, or None if all masked."""
        finite = np.isfinite(self.values)
        if not finite.any():
            return None
        flat = int(np.argmin(np.where(finite, self.values, np.inf)))
        return tuple(np.unravel_index(flat, self.values.shape))


class TiledSweepRunner:
    """Execute a :class:`SweepPlan` over a spec, any backend, bitwise.

    ``backend="auto"`` picks the shared-memory process pool when more
    than one worker is configured (tile evaluation is CPU-bound NumPy
    plus the eq.-(4) reduction's Python bookkeeping, which threads
    serialize on) and in-process execution otherwise.  ``workers <= 1``
    always runs sequentially, tile by tile — that path is the parity
    reference everything else must match bit-for-bit.

    A runner owns at most one process pool; it is created lazily,
    rebuilt if a crashed worker broke it (the wave that observed the
    break completes in-process via ``_run_pool``'s fallback), and shut
    down by :meth:`close` / the context manager.
    """

    def __init__(self, *, backend: str = "auto", workers: int | None = None,
                 tile_size: int = DEFAULT_TILE_SIZE,
                 checkpoint_dir: str | os.PathLike | None = None,
                 resume: bool = False,
                 cache: Any = USE_DEFAULT_CACHE) -> None:
        self.backend = validate_backend(backend)
        self.workers = 1 if workers is None else int(workers)
        if self.workers < 1:
            raise ParameterError(
                f"workers must be >= 1, got {self.workers}")
        if tile_size < 1:
            raise ParameterError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = int(tile_size)
        if resume and checkpoint_dir is None:
            raise ParameterError("resume=True requires checkpoint_dir")
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self._cache = _resolve_cache(cache)
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def __enter__(self) -> "TiledSweepRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the process pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- backend plumbing ---------------------------------------------------

    def _resolved_backend(self) -> str:
        if self.backend == "auto":
            return "process" if self.workers > 1 else "thread"
        return self.backend

    def _ensure_pool(self) -> ProcessPoolExecutor:
        pool = self._pool
        if pool is not None and getattr(pool, "_broken", False):
            pool.shutdown(wait=False)
            pool = self._pool = None
        if pool is None:
            pool = self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return pool

    # -- the sweep ----------------------------------------------------------

    def run(self, spec: Any, row_values, col_values, *,
            out: np.ndarray | None = None,
            on_tile: Callable[[Tile, int, int], None] | None = None
            ) -> SweepResult:
        """Evaluate ``spec`` over ``row_values × col_values``.

        ``out``, if given, must be a float64 array of exactly
        ``(len(row_values), len(col_values))`` — the result lands in it
        and it is returned inside the :class:`SweepResult` (the same
        caller-buffer contract as the engine's ``out=`` kernels).
        ``on_tile(tile, n_done, n_total)`` fires in the parent after
        every finished tile, checkpoint write included — the hook the
        kill-and-resume tests interrupt at.
        """
        rows = np.ascontiguousarray(row_values, dtype=np.float64).ravel()
        cols = np.ascontiguousarray(col_values, dtype=np.float64).ravel()
        if rows.size < 1 or cols.size < 1:
            raise ParameterError("sweep axes must be non-empty")
        if out is None:
            out = np.empty((rows.size, cols.size), dtype=np.float64)
        else:
            if out.shape != (rows.size, cols.size):
                raise ParameterError(
                    f"out has shape {out.shape}, sweep needs "
                    f"{(rows.size, cols.size)}")
            if out.dtype != np.float64:
                raise ParameterError(
                    f"out must be float64, got dtype {out.dtype}")
        plan = SweepPlan.for_grid(rows.size, cols.size, self.tile_size)
        backend = self._resolved_backend()

        checkpoint: SweepCheckpoint | None = None
        done: set[int] = set()
        if self.checkpoint_dir is not None:
            checkpoint = SweepCheckpoint(self.checkpoint_dir,
                                         resume=self.resume)
            done = checkpoint.prepare(self._manifest(spec, plan, rows, cols))

        resumed = 0
        pending: list[Tile] = []
        for tile in plan.tiles():
            if tile.index in done and checkpoint is not None:
                slab = checkpoint.load(tile)
                if slab is not None:
                    out[tile.row_lo:tile.row_hi,
                        tile.col_lo:tile.col_hi] = slab
                    resumed += 1
                    continue
            pending.append(tile)

        obs_on = _obs_enabled()
        t0 = time.perf_counter()
        progress = {"done": resumed}
        with _span("sweep.run", shape=(rows.size, cols.size),
                   tiles=plan.n_tiles, backend=backend,
                   workers=self.workers):
            if obs_on:
                _metrics.inc("sweep.runs")
                if resumed:
                    _metrics.inc("sweep.tiles_resumed", resumed)
            if not pending:
                pass
            elif backend == "process" and self.workers > 1:
                self._run_process(spec, rows, cols, out, pending,
                                  checkpoint, on_tile, progress, plan)
            elif backend == "thread" and self.workers > 1:
                self._run_threads(spec, rows, cols, out, pending,
                                  checkpoint, on_tile, progress, plan)
            else:
                self._run_sequential(spec, rows, cols, out, pending,
                                     checkpoint, on_tile, progress, plan)
        seconds = time.perf_counter() - t0
        if obs_on:
            _metrics.observe("sweep.run.seconds", seconds)

        stats = {
            "backend": backend if self.workers > 1 else "sequential",
            "workers": self.workers,
            "tile_rows": plan.tile_rows,
            "tile_cols": plan.tile_cols,
            "tiles_total": plan.n_tiles,
            "tiles_computed": len(pending),
            "tiles_resumed": resumed,
            "points": int(rows.size * cols.size),
            "seconds": seconds,
        }
        return SweepResult(values=out, row_values=rows, col_values=cols,
                           plan=plan, stats=stats)

    def _manifest(self, spec: Any, plan: SweepPlan, rows: np.ndarray,
                  cols: np.ndarray) -> dict:
        return {
            "version": _MANIFEST_VERSION,
            "n_rows": plan.n_rows,
            "n_cols": plan.n_cols,
            "tile_rows": plan.tile_rows,
            "tile_cols": plan.tile_cols,
            "n_tiles": plan.n_tiles,
            "rows_sha256": hashlib.sha256(rows.tobytes()).hexdigest(),
            "cols_sha256": hashlib.sha256(cols.tobytes()).hexdigest(),
            "spec": spec.fingerprint(),
        }

    def _finish_tile(self, tile: Tile, out: np.ndarray,
                     checkpoint: SweepCheckpoint | None,
                     on_tile: Callable[[Tile, int, int], None] | None,
                     progress: dict, plan: SweepPlan) -> None:
        # Parent-side bookkeeping for one finished tile: persist it,
        # publish progress, then let the caller's hook observe the
        # (checkpointed) state — in that order, so a hook that kills
        # the process mid-run never loses the tile it saw finish.
        if checkpoint is not None:
            checkpoint.store(tile, out[tile.row_lo:tile.row_hi,
                                       tile.col_lo:tile.col_hi])
        progress["done"] += 1
        if _obs_enabled():
            _metrics.inc("sweep.tiles")
            _metrics.inc("sweep.points", tile.n_points)
            _metrics.set_gauge("sweep.progress",
                               progress["done"] / plan.n_tiles)
        if on_tile is not None:
            on_tile(tile, progress["done"], plan.n_tiles)

    def _run_sequential(self, spec, rows, cols, out, pending,
                        checkpoint, on_tile, progress, plan) -> None:
        for tile in pending:
            with _span("sweep.tile", index=tile.index,
                       points=tile.n_points):
                spec.evaluate_tile(
                    rows[tile.row_lo:tile.row_hi],
                    cols[tile.col_lo:tile.col_hi],
                    out[tile.row_lo:tile.row_hi, tile.col_lo:tile.col_hi],
                    cache=self._cache)
            self._finish_tile(tile, out, checkpoint, on_tile, progress,
                              plan)

    def _run_threads(self, spec, rows, cols, out, pending,
                     checkpoint, on_tile, progress, plan) -> None:
        # Tiles are disjoint slabs of `out`, so concurrent in-place
        # writes never overlap; finish-order bookkeeping serializes in
        # the parent thread as futures drain, tile order preserved so
        # checkpoint/progress semantics match the sequential path.
        def evaluate(tile: Tile) -> None:
            with _span("sweep.tile", index=tile.index,
                       points=tile.n_points):
                spec.evaluate_tile(
                    rows[tile.row_lo:tile.row_hi],
                    cols[tile.col_lo:tile.col_hi],
                    out[tile.row_lo:tile.row_hi, tile.col_lo:tile.col_hi],
                    cache=self._cache)

        with ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-sweep-worker") as pool:
            futures = [(tile, pool.submit(evaluate, tile))
                       for tile in pending]
            for tile, future in futures:
                future.result()
                self._finish_tile(tile, out, checkpoint, on_tile,
                                  progress, plan)

    def _run_process(self, spec, rows, cols, out, pending,
                     checkpoint, on_tile, progress, plan) -> None:
        flags = capture_flags()
        n_rows, n_cols = rows.size, cols.size
        pool = self._ensure_pool()
        block = ShmBlock.create(1, _shm_extent(n_rows, n_cols))
        if _obs_enabled():
            _metrics.inc("sweep.shm.blocks")
            _metrics.inc("sweep.shm.bytes", block.shm.size)
        try:
            flat = block.array[0]
            flat[:n_rows] = rows
            flat[n_rows:n_rows + n_cols] = cols
            grid = flat[n_rows + n_cols:].reshape(n_rows, n_cols)
            # Waves of ~2 tiles per worker: enough in flight to keep
            # the pool busy, small enough that checkpoints and the
            # progress gauge advance throughout the run instead of
            # once at the end.
            wave = max(1, 2 * self.workers)
            for start in range(0, len(pending), wave):
                tiles = pending[start:start + wave]
                pool = self._ensure_pool()
                argsets = [(block.name, n_rows, n_cols, spec, tile,
                            flags, self._cache is not None)
                           for tile in tiles]
                payloads = _run_pool(_tile_worker, argsets, pool=pool)
                for tile, payload in zip(tiles, payloads):
                    absorb(payload)
                    src = grid[tile.row_lo:tile.row_hi,
                               tile.col_lo:tile.col_hi]
                    out[tile.row_lo:tile.row_hi,
                        tile.col_lo:tile.col_hi] = src
                    self._finish_tile(tile, out, checkpoint, on_tile,
                                      progress, plan)
            del grid, flat
        finally:
            block.release()
