"""repro.serve — in-process micro-batching for cost-query traffic.

Design-space explorers built on Maly-style cost models issue floods of
*small independent* queries — one ``(λ, N_tr, fab)`` point at a time.
The vectorized :mod:`repro.batch` engine is 55–300× faster than the
scalar path, but only for callers that hand-assemble arrays.  This
package closes that gap with a service: callers submit scalar queries
from any number of threads or asyncio tasks, and a tick-based
scheduler coalesces them into few large vectorized evaluations.

Pieces:

* :class:`~repro.serve.query.FabCostQuery` /
  :class:`~repro.serve.query.ModelCostQuery` /
  :class:`~repro.serve.query.ChipletCostQuery` — one design point
  plus its model (the chiplet form prices a whole k-die assembly per
  point); :class:`~repro.serve.query.ServedCost` — the scalar
  result, bitwise equal to direct scalar evaluation regardless of how
  the scheduler sliced the traffic (the batch-boundary invariance
  contract, enforced by ``tests/property_based/test_serve_parity.py``).
* :class:`~repro.serve.scheduler.MicroBatchScheduler` — bounded queue
  with explicit backpressure, flush on max-batch-size or max-wait
  (whichever first, with an optional adaptive tick sized from the
  observed arrival rate), signature coalescing + point dedup, and
  :mod:`repro.obs` spans/metrics per flush.
* :mod:`repro.serve.backend` — the execution backends behind the
  scheduler: :class:`~repro.serve.backend.ThreadBackend` (chunked
  in-process execution) and
  :class:`~repro.serve.backend.ProcessBackend` (flush payloads in
  :class:`~repro.serve.shm.ShmBlock` shared memory, priced by a
  persistent process pool — the GIL-free path for CPU-bound
  flushes).  Both share the :class:`~repro.batch.cache.BatchCache`
  exact-key memoization and are bitwise interchangeable.
* :class:`~repro.serve.service.CostService` — the thread-safe
  synchronous client; :class:`~repro.serve.aio.AsyncCostService` —
  the asyncio front-end over the same scheduler.
* :mod:`repro.serve.io` — point-file loading and served-array
  serialization behind ``python -m repro cost --input``.
* :mod:`repro.serve.tuning` —
  :class:`~repro.serve.tuning.TuningProfile`, the learned
  per-signature routing thresholds behind ``backend="tuned"``
  (produced offline by :mod:`repro.replay` from recorded traffic;
  recording itself lives in :mod:`repro.obs.recording` and is enabled
  with ``record=PATH``).

See ``docs/serving.md`` for scheduler semantics and tuning,
``docs/replay.md`` for the record → replay → tune loop, and
``benchmarks/bench_serve.py`` for the measured throughput win.
"""

from .aio import AsyncCostService
from .backend import BACKEND_CHOICES, ProcessBackend, ThreadBackend
from .codec import error_body, retry_after_s, status_for
from .executor import GroupResult, execute_group
from .http import (
    CostHttpServer,
    HttpParseError,
    HttpRequest,
    RequestParser,
    ServerThread,
    run_server,
)
from .io import (
    RESULT_FIELDS,
    format_served_csv,
    format_served_json,
    load_points,
    normalize_point,
    served_row,
)
from .query import (
    ChipletCostQuery,
    CostQuery,
    FabCostQuery,
    ModelCostQuery,
    ServedCost,
    scalar_reference_cost,
)
from .scheduler import (
    SCHEDULER_BACKEND_CHOICES,
    CostTicket,
    FlushRecord,
    GroupRecord,
    MicroBatchScheduler,
)
from .service import CostService
from .shm import ShmBlock
from .tuning import SignatureTuning, TuningProfile, signature_key

__all__ = [
    "AsyncCostService",
    "BACKEND_CHOICES",
    "SCHEDULER_BACKEND_CHOICES",
    "ChipletCostQuery",
    "CostHttpServer",
    "CostQuery",
    "CostService",
    "CostTicket",
    "FabCostQuery",
    "FlushRecord",
    "GroupRecord",
    "GroupResult",
    "HttpParseError",
    "HttpRequest",
    "MicroBatchScheduler",
    "ModelCostQuery",
    "ProcessBackend",
    "RequestParser",
    "ServedCost",
    "ServerThread",
    "ShmBlock",
    "SignatureTuning",
    "ThreadBackend",
    "TuningProfile",
    "RESULT_FIELDS",
    "error_body",
    "execute_group",
    "format_served_csv",
    "format_served_json",
    "load_points",
    "normalize_point",
    "retry_after_s",
    "run_server",
    "scalar_reference_cost",
    "served_row",
    "signature_key",
    "status_for",
]
