"""The thread-safe synchronous client over the micro-batch scheduler.

:class:`CostService` is what most callers touch: it owns a
:class:`~repro.serve.scheduler.MicroBatchScheduler`, exposes
submit/wait in a handful of shapes, and cleans up on ``close()`` /
``with``.  Any number of threads may share one service — the
scheduler's queue is the serialization point, and concurrent callers
are exactly what micro-batching feeds on (their queries coalesce into
the same flushes).

Usage::

    from repro.serve import CostService, FabCostQuery

    with CostService(max_batch_size=256, max_wait_s=0.002) as svc:
        one = svc.cost(FabCostQuery(3.1e6, 0.8))        # blocking single
        many = svc.map([FabCostQuery(n, 0.8)            # bulk sweep
                        for n in (1e5, 1e6, 1e7)])
        ticket = svc.submit(FabCostQuery(2e6, 0.6))     # fire, join later
        ...
        later = ticket.result()

For the asyncio shape of the same scheduler see
:class:`repro.serve.aio.AsyncCostService`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..batch.engine import USE_DEFAULT_CACHE
from .query import CostQuery, ServedCost
from .scheduler import CostTicket, MicroBatchScheduler

__all__ = ["CostService"]


class CostService:
    """In-process cost-query service: submit scalars, get batched speed.

    Keyword arguments are forwarded verbatim to
    :class:`~repro.serve.scheduler.MicroBatchScheduler` — see it for
    the tuning surface (``max_batch_size``, ``max_wait_s``,
    ``max_queue_depth``, ``chunk_size``, ``workers``, ``backend``,
    ``process_threshold``, ``adaptive``, ``wait_bounds``,
    ``flush_history``, ``record``, ``profile``, ``cache``).  The
    flusher thread starts lazily on first submit (or explicitly via
    :meth:`start` / ``with``).
    """

    def __init__(self, *, max_batch_size: int = 256,
                 max_wait_s: float = 0.002,
                 max_queue_depth: int = 10_000,
                 chunk_size: int = 4096,
                 workers: int = 1,
                 backend: str = "auto",
                 process_threshold: int = 2048,
                 adaptive: bool = False,
                 wait_bounds: tuple[float, float] | None = None,
                 flush_history: int = 0,
                 record: Any = None,
                 profile: Any = None,
                 cache: Any = USE_DEFAULT_CACHE) -> None:
        self.scheduler = MicroBatchScheduler(
            max_batch_size=max_batch_size, max_wait_s=max_wait_s,
            max_queue_depth=max_queue_depth, chunk_size=chunk_size,
            workers=workers, backend=backend,
            process_threshold=process_threshold, adaptive=adaptive,
            wait_bounds=wait_bounds, flush_history=flush_history,
            record=record, profile=profile, cache=cache)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "CostService":
        """Start the flusher thread now instead of on first submit."""
        self.scheduler.start()
        return self

    def close(self) -> None:
        """Flush pending queries and stop the flusher (idempotent)."""
        self.scheduler.close()

    def __enter__(self) -> "CostService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- submission ------------------------------------------------------

    def submit(self, query: CostQuery, *,
               timeout: float | None = None) -> CostTicket:
        """Enqueue one query; returns a ticket to join on later.

        ``timeout`` bounds the wait for *queue space* (backpressure),
        not for the result — see
        :meth:`~repro.serve.scheduler.MicroBatchScheduler.submit`.
        """
        return self.scheduler.submit(query, timeout=timeout)

    def submit_many(self, queries: Iterable[CostQuery], *,
                    timeout: float | None = None) -> list[CostTicket]:
        """Bulk :meth:`submit` with one lock acquisition per space wait."""
        return self.scheduler.submit_many(queries, timeout=timeout)

    # -- blocking conveniences ------------------------------------------

    def cost(self, query: CostQuery, *,
             timeout: float | None = None) -> float:
        """Submit one query and block for its C_tr in dollars."""
        return self.submit(query).cost(timeout)

    def evaluate(self, query: CostQuery, *,
                 timeout: float | None = None) -> ServedCost:
        """Submit one query and block for its full breakdown."""
        return self.submit(query).result(timeout)

    def map(self, queries: Sequence[CostQuery], *,
            timeout: float | None = None) -> list[ServedCost]:
        """Submit a batch and block for every breakdown, in order.

        The bulk entry point sweeps should use: all queries are
        enqueued before the first wait, so the scheduler sees the
        whole sweep and slices it into maximal flushes.
        """
        tickets = self.submit_many(queries, timeout=timeout)
        return [t.result(timeout) for t in tickets]

    def costs(self, queries: Sequence[CostQuery], *,
              timeout: float | None = None) -> list[float]:
        """Like :meth:`map` but returns only C_tr dollars per query."""
        tickets = self.submit_many(queries, timeout=timeout)
        return [t.cost(timeout) for t in tickets]

    # -- introspection ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush."""
        return self.scheduler.queue_depth
