"""asyncio front-end over the same micro-batch scheduler.

:class:`AsyncCostService` gives coroutine code the service's batching
without a second scheduler: awaiting tasks submit into the *same*
queue as threads, their completions are bridged back to the event
loop with ``call_soon_threadsafe``, and concurrent ``await``-ers
coalesce into the same flushes as everyone else.

Usage::

    from repro.serve import AsyncCostService, FabCostQuery

    async def price_designs(points):
        async with AsyncCostService(max_wait_s=0.001) as svc:
            return await asyncio.gather(
                *(svc.cost(FabCostQuery(n, lam)) for n, lam in points))

Backpressure in the async world: submits first try without blocking;
when the queue is full the blocking wait is pushed to the default
executor so the event loop never stalls, and the same
:class:`~repro.errors.BackpressureError` surfaces on timeout.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Any, Iterable

from ..batch.engine import USE_DEFAULT_CACHE
from ..errors import BackpressureError
from .query import CostQuery, ServedCost
from .scheduler import CostTicket, MicroBatchScheduler
from .service import CostService

__all__ = ["AsyncCostService"]


class AsyncCostService:
    """Awaitable cost queries over a (possibly shared) scheduler.

    Construct it standalone (keyword arguments go to
    :class:`~repro.serve.scheduler.MicroBatchScheduler`) or wrap an
    existing :class:`~repro.serve.service.CostService` to share one
    queue between sync and async callers::

        svc = CostService(max_batch_size=512)
        async_svc = AsyncCostService(service=svc)

    When wrapping, closing the async facade does *not* close the
    shared service; standalone instances own their scheduler and
    close it.
    """

    def __init__(self, *, service: CostService | None = None,
                 max_batch_size: int = 256,
                 max_wait_s: float = 0.002,
                 max_queue_depth: int = 10_000,
                 chunk_size: int = 4096,
                 workers: int = 1,
                 backend: str = "auto",
                 process_threshold: int = 2048,
                 adaptive: bool = False,
                 wait_bounds: tuple[float, float] | None = None,
                 flush_history: int = 0,
                 record: Any = None,
                 profile: Any = None,
                 cache: Any = USE_DEFAULT_CACHE) -> None:
        if service is not None:
            self.scheduler: MicroBatchScheduler = service.scheduler
            self._owns_scheduler = False
        else:
            self.scheduler = MicroBatchScheduler(
                max_batch_size=max_batch_size, max_wait_s=max_wait_s,
                max_queue_depth=max_queue_depth, chunk_size=chunk_size,
                workers=workers, backend=backend,
                process_threshold=process_threshold, adaptive=adaptive,
                wait_bounds=wait_bounds, flush_history=flush_history,
                record=record, profile=profile, cache=cache)
            self._owns_scheduler = True

    # -- lifecycle -------------------------------------------------------

    async def __aenter__(self) -> "AsyncCostService":
        self.scheduler.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        """Close the owned scheduler off-loop (no-op when wrapping)."""
        if self._owns_scheduler:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.scheduler.close)

    # -- submission ------------------------------------------------------

    async def submit(self, query: CostQuery, *,
                     timeout: float | None = None
                     ) -> "asyncio.Future[CostTicket]":
        """Enqueue one query; resolves when its flush lands.

        Returns an :class:`asyncio.Future` whose result is the
        completed :class:`~repro.serve.scheduler.CostTicket`.  The
        fast path never blocks the loop; a full queue falls back to a
        blocking submit in the default executor, honoring ``timeout``
        as the backpressure bound.
        """
        loop = asyncio.get_running_loop()
        try:
            ticket = self.scheduler.submit(query, timeout=0)
        except BackpressureError:
            if timeout is not None and timeout <= 0:
                raise
            ticket = await loop.run_in_executor(
                None, functools.partial(self.scheduler.submit, query,
                                        timeout=timeout))
        future: "asyncio.Future[CostTicket]" = loop.create_future()

        def _resolve(done: CostTicket) -> None:
            loop.call_soon_threadsafe(_land, done)

        def _land(done: CostTicket) -> None:
            if future.cancelled():
                return
            try:
                done.result(timeout=0)
            except BaseException as exc:
                future.set_exception(exc)
            else:
                future.set_result(done)

        ticket.add_done_callback(_resolve)
        return future

    async def evaluate(self, query: CostQuery, *,
                       timeout: float | None = None) -> ServedCost:
        """Await one query's full served breakdown."""
        ticket = await (await self.submit(query, timeout=timeout))
        return ticket.result(timeout=0)

    async def cost(self, query: CostQuery, *,
                   timeout: float | None = None) -> float:
        """Await one query's C_tr in dollars."""
        ticket = await (await self.submit(query, timeout=timeout))
        return ticket.cost(timeout=0)

    async def map(self, queries: Iterable[CostQuery], *,
                  timeout: float | None = None) -> list[ServedCost]:
        """Await a whole sweep, results in submission order."""
        futures = [await self.submit(q, timeout=timeout) for q in queries]
        tickets = await asyncio.gather(*futures)
        return [t.result(timeout=0) for t in tickets]

    # -- bulk submission -------------------------------------------------

    async def submit_bulk(self, queries: Iterable[CostQuery], *,
                          timeout: float | None = None
                          ) -> list[CostTicket]:
        """Bulk-enqueue through the scheduler's coalesced path.

        The async mirror of
        :meth:`~repro.serve.service.CostService.submit_many`: all
        queries enter the queue in one
        :meth:`~repro.serve.scheduler.MicroBatchScheduler.submit_many`
        call — so a bulk request is drained as one pre-coalesced flush
        (no tick wait) instead of fanning out per-point ``await``\\ s
        and futures like :meth:`map` does.  Resolves once **every**
        ticket's flush has landed; returns the completed tickets in
        submission order.  Backpressure behaves like :meth:`submit`:
        the fast path never blocks the loop, a full queue falls back
        to a blocking bulk submit in the default executor, and
        ``timeout <= 0`` surfaces
        :class:`~repro.errors.BackpressureError` immediately.  A
        failed flush raises its exception here (all-or-nothing, like
        the sync bulk path's first failing ticket).
        """
        queries = list(queries)
        if not queries:
            return []
        loop = asyncio.get_running_loop()
        try:
            tickets = self.scheduler.submit_many(queries, timeout=0)
        except BackpressureError:
            if timeout is not None and timeout <= 0:
                raise
            tickets = await loop.run_in_executor(
                None, functools.partial(self.scheduler.submit_many,
                                        queries, timeout=timeout))
        future: "asyncio.Future[None]" = loop.create_future()
        remaining = len(tickets)

        def _land(done: CostTicket) -> None:
            # Runs on the loop thread only, so the countdown needs no
            # lock; the first flush failure wins the future.
            nonlocal remaining
            if future.done():
                return
            try:
                done.result(timeout=0)
            except BaseException as exc:
                future.set_exception(exc)
                return
            remaining -= 1
            if remaining == 0:
                future.set_result(None)

        def _resolve(done: CostTicket) -> None:
            loop.call_soon_threadsafe(_land, done)

        for ticket in tickets:
            ticket.add_done_callback(_resolve)
        await future
        return tickets

    async def map_bulk(self, queries: Iterable[CostQuery], *,
                       timeout: float | None = None) -> list[ServedCost]:
        """Bulk :meth:`submit_bulk` + collect: breakdowns in order."""
        tickets = await self.submit_bulk(queries, timeout=timeout)
        return [t.result(timeout=0) for t in tickets]

    async def costs_bulk(self, queries: Iterable[CostQuery], *,
                         timeout: float | None = None) -> list[float]:
        """Like :meth:`map_bulk` but only C_tr dollars per query."""
        tickets = await self.submit_bulk(queries, timeout=timeout)
        return [t.cost(timeout=0) for t in tickets]
