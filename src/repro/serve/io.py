"""Point-file loading and result serialization for batch CLI traffic.

The CLI's batch mode (``python -m repro cost --input points.csv
--format json``) reads design points from a file, prices them through
:class:`~repro.serve.service.CostService`, and emits the served
arrays.  This module is the I/O half of that pipeline:

* :func:`load_points` — read a ``.csv`` (header + one row per point)
  or ``.json`` file (either a list of objects or a columnar dict of
  equal-length arrays) into a list of per-point field dicts;
* :func:`format_served_csv` / :func:`format_served_json` — serialize
  a list of :class:`~repro.serve.query.ServedCost` results as a CSV
  table or a columnar JSON document (the
  :class:`~repro.batch.engine.BatchCostResult` array convention).

Field names accepted per point: ``transistors`` (or
``n_transistors``), ``feature_size`` (or ``feature_size_um``), and
optional per-point overrides ``density`` and ``yield0``.  Unknown
fields are rejected loudly — silently ignoring a typo'd column would
misprice every point in the file.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence

from ..errors import ParameterError
from .query import ServedCost

__all__ = [
    "RESULT_FIELDS",
    "format_served_csv",
    "format_served_json",
    "load_points",
    "normalize_point",
    "served_row",
]

#: Emitted per point, in column order — the served analog of the
#: :class:`~repro.batch.engine.BatchCostResult` array fields.
RESULT_FIELDS = (
    "n_transistors",
    "feature_size_um",
    "wafer_cost_dollars",
    "die_area_cm2",
    "dies_per_wafer",
    "yield_value",
    "cost_per_transistor_dollars",
    "cost_per_transistor_microdollars",
    "feasible",
)

_ALIASES = {
    "transistors": "transistors",
    "n_transistors": "transistors",
    "feature_size": "feature_size",
    "feature_size_um": "feature_size",
    "density": "density",
    "design_density": "density",
    "yield0": "yield0",
    "reference_yield": "yield0",
    "die_area": "die_area",
    "die_area_cm2": "die_area",
}


def normalize_point(record: dict, where: str) -> dict[str, float]:
    """Normalize one raw point mapping to canonical field names.

    Shared by the file loaders here and by the HTTP front-end's JSON
    request bodies (:mod:`repro.serve.http`): aliases resolve
    (``n_transistors`` → ``transistors``), unknown fields raise
    :class:`~repro.errors.ParameterError` loudly, and empty values fall
    through to the caller's defaults.  ``where`` labels the error.
    """
    return _normalize_record(record, where)


def _normalize_record(record: dict, where: str) -> dict[str, float]:
    point: dict[str, float] = {}
    for raw_key, value in record.items():
        key = _ALIASES.get(str(raw_key).strip().lower())
        if key is None:
            raise ParameterError(
                f"{where}: unknown point field {raw_key!r} (expected one "
                f"of {sorted(set(_ALIASES))})")
        if value is None or (isinstance(value, str) and not value.strip()):
            continue  # empty CSV cell: fall back to the CLI default
        try:
            point[key] = float(value)
        except (TypeError, ValueError):
            raise ParameterError(
                f"{where}: field {raw_key!r} has non-numeric value "
                f"{value!r}") from None
    if not point:
        raise ParameterError(f"{where}: empty point record")
    return point


def _load_csv(path: Path) -> list[dict[str, float]]:
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ParameterError(f"{path}: missing CSV header row")
        return [_normalize_record(row, f"{path}:{i + 2}")
                for i, row in enumerate(reader)]


def _load_json(path: Path) -> list[dict[str, float]]:
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise ParameterError(f"{path}: invalid JSON ({exc})") from None
    if isinstance(payload, dict):  # columnar: {"transistors": [...], ...}
        lengths = {len(v) for v in payload.values()
                   if isinstance(v, (list, tuple))}
        if len(lengths) != 1 or not all(
                isinstance(v, (list, tuple)) for v in payload.values()):
            raise ParameterError(
                f"{path}: columnar JSON needs equal-length arrays per key")
        n = lengths.pop()
        payload = [{k: v[i] for k, v in payload.items()} for i in range(n)]
    if not isinstance(payload, list):
        raise ParameterError(
            f"{path}: JSON points must be a list of objects or a "
            f"columnar dict of arrays")
    return [_normalize_record(rec, f"{path}[{i}]")
            for i, rec in enumerate(payload)]


def load_points(path: str | Path) -> list[dict[str, float]]:
    """Read a points file (.csv or .json) into per-point field dicts."""
    p = Path(path)
    if not p.exists():
        raise ParameterError(f"points file not found: {p}")
    suffix = p.suffix.lower()
    if suffix == ".csv":
        return _load_csv(p)
    if suffix == ".json":
        return _load_json(p)
    raise ParameterError(
        f"unsupported points file type {suffix!r} (use .csv or .json)")


def served_row(result: ServedCost) -> list:
    """One result's values in :data:`RESULT_FIELDS` column order."""
    return _row(result)


def _row(result: ServedCost) -> list:
    return [
        result.n_transistors,
        result.feature_size_um,
        result.wafer_cost_dollars,
        result.die_area_cm2,
        result.dies_per_wafer,
        result.yield_value,
        result.cost_per_transistor_dollars,
        result.cost_per_transistor_microdollars,
        result.feasible,
    ]


def format_served_csv(results: Sequence[ServedCost]) -> str:
    """CSV table (header + one row per point) of served results."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(RESULT_FIELDS)
    for result in results:
        writer.writerow(_row(result))
    return out.getvalue()


def format_served_json(results: Sequence[ServedCost]) -> str:
    """Columnar JSON — one equal-length array per result field."""
    rows = [_row(result) for result in results]
    columns = {name: [row[i] for row in rows]
               for i, name in enumerate(RESULT_FIELDS)}
    return json.dumps(columns, indent=2) + "\n"
