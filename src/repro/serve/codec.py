"""Structured error bodies shared by the HTTP front-end and the CLI.

Every service-boundary error — backpressure, a closed service, a bad
request — maps to one JSON object shape so that clients (and shell
pipelines around ``python -m repro cost --input``) can branch on a
stable ``error`` code instead of parsing prose::

    {"error": "backpressure", "message": "queue full (…)",
     "queue_depth": 10000, "retry_after_s": 1.0}

:func:`error_body` builds the object, :func:`status_for` the matching
HTTP status, and :func:`retry_after_s` the coarse backoff hint the
server also emits as a ``Retry-After`` header.  The codec is
deliberately one-way: it renders exceptions, it does not rebuild them.

Code map (statuses are what :mod:`repro.serve.http` sends):

==================  ==================  ======
exception           ``error`` code      status
==================  ==================  ======
BackpressureError   ``backpressure``    429
ServiceClosedError  ``service_closed``  503
ParameterError      ``bad_request``     400
other ReproError    ``internal``        500
anything else       ``internal``        500
==================  ==================  ======
"""

from __future__ import annotations

from typing import Any

from ..errors import (
    BackpressureError,
    ParameterError,
    ReproError,
    ServiceClosedError,
)

__all__ = ["error_body", "retry_after_s", "status_for"]

#: Assumed drain rate (requests/s) behind the Retry-After estimate —
#: deliberately conservative; the hint only needs the right order of
#: magnitude to keep a polite client from hammering a full queue.
_ASSUMED_DRAIN_RPS = 10_000.0

#: Bounds on the Retry-After hint in seconds.
_RETRY_AFTER_MIN_S = 0.05
_RETRY_AFTER_MAX_S = 5.0


def retry_after_s(exc: BaseException) -> float | None:
    """Backoff hint in seconds, or ``None`` when retrying won't help.

    Only backpressure is retryable: the hint scales with the queue
    depth the submit saw (``depth / 10k req/s``), clamped to
    [0.05 s, 5 s].  A closed service and a bad request return ``None``
    — retrying those verbatim can never succeed.
    """
    if not isinstance(exc, BackpressureError):
        return None
    depth = getattr(exc, "queue_depth", 0) or 0
    return min(_RETRY_AFTER_MAX_S,
               max(_RETRY_AFTER_MIN_S, depth / _ASSUMED_DRAIN_RPS))


def status_for(exc: BaseException) -> int:
    """The HTTP status code for one service-boundary exception."""
    if isinstance(exc, BackpressureError):
        return 429
    if isinstance(exc, ServiceClosedError):
        return 503
    if isinstance(exc, ParameterError):
        return 400
    return 500


def error_body(exc: BaseException) -> dict[str, Any]:
    """The structured JSON error object for one exception.

    Always carries ``error`` (the stable code) and ``message`` (the
    exception text).  Backpressure adds ``queue_depth`` and
    ``retry_after_s``; unexpected exceptions add ``type`` so a 500
    names what blew up without leaking a traceback.
    """
    if isinstance(exc, BackpressureError):
        return {
            "error": "backpressure",
            "message": str(exc),
            "queue_depth": getattr(exc, "queue_depth", 0) or 0,
            "retry_after_s": retry_after_s(exc),
        }
    if isinstance(exc, ServiceClosedError):
        return {"error": "service_closed", "message": str(exc)}
    if isinstance(exc, ParameterError):
        return {"error": "bad_request", "message": str(exc)}
    if isinstance(exc, ReproError):
        return {"error": "internal", "message": str(exc),
                "type": type(exc).__name__}
    return {"error": "internal", "message": str(exc),
            "type": type(exc).__name__}
