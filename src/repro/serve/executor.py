"""Vectorized, bitwise-scalar-exact execution of one coalesced group.

The scheduler hands this module a *group*: queries sharing one model
signature, already deduplicated to unique ``(N_tr, λ)`` points.  The
executor prices all points at once and must satisfy the service's
headline contract:

    **every served number is bitwise equal to the direct scalar
    evaluation of that query, no matter how the scheduler sliced the
    traffic into batches.**

The batch engine alone cannot promise that: its pure-arithmetic
kernels are bit-for-bit with the scalar path, but quantities routed
through NumPy's SIMD transcendentals (``exp``, ``pow``, ``log``) can
differ from libm in the last ulp (see the parity contract in
:mod:`repro.batch.engine`).  So the executor splits the work by
arithmetic class:

* die geometry (multiply/divide/sqrt — exactly rounded, bit-identical
  by IEEE-754) and the eq.-(4) die count (exact integer parity, and
  the dominant scalar cost: a per-row Python loop in
  :func:`~repro.geometry.wafer.dies_per_wafer_maly`) run **vectorized**
  through :func:`repro.batch.engine.dies_per_wafer_batch`, reusing the
  shared :class:`~repro.batch.cache.BatchCache`;
* the cheap transcendental steps — eq.-(3) wafer cost (memoized per
  unique λ) and eq.-(6/7) yield — run the **same scalar arithmetic**
  as the reference path, operation for operation (either by calling
  the same functions or by inlining their exact body with validation
  hoisted to query construction), so they agree bitwise by
  construction;
* the final eq.-(1) division composes them elementwise in exactly the
  scalar operation order.

Because every step is elementwise in the unique points, results are
independent of batch composition and order — the batch-boundary
invariance the hypothesis suite (``tests/property_based/
test_serve_parity.py``) enforces.  That same independence makes
chunked execution safe: :func:`execute_group` may split a very large
group across a thread pool and concatenate, without changing a bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..batch.cache import BatchCache
from ..batch.engine import _die_geometry, chiplet_cost_batch, \
    dies_per_wafer_batch
from ..core.wafer_cost import WaferCostModel
from ..errors import ParameterError
from ..geometry.wafer import Wafer
from ..yieldsim.models import ReferenceAreaYield
from .query import CostQuery, ServedCost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor

__all__ = ["GroupResult", "GroupRows", "execute_group",
           "execute_group_rows", "group_result_from_rows"]

#: Matches the scalar reference's economic-feasibility cutoff in
#: :func:`repro.core.optimization.transistor_cost_full`.
_YIELD_CUTOFF = 1e-250


@dataclass(frozen=True)
class GroupResult:
    """Array-valued results for one group's unique design points.

    Tickets hold ``(GroupResult, slot)`` pairs; :meth:`served` and
    :meth:`cost` fan a single point back out.  Materializing a
    :class:`ServedCost` is deferred to the waiter so the flush loop
    never pays per-request dataclass construction.
    """

    n_transistors: np.ndarray
    feature_sizes_um: np.ndarray
    wafer_cost_dollars: np.ndarray
    die_area_cm2: np.ndarray
    dies_per_wafer: np.ndarray
    yield_value: np.ndarray
    cost_per_transistor_dollars: np.ndarray
    feasible: np.ndarray

    def __len__(self) -> int:
        return self.cost_per_transistor_dollars.size

    def cost(self, slot: int) -> float:
        """C_tr of unique point ``slot`` (inf where infeasible).

        The array is converted to a plain Python-float list on first
        access and memoized in ``__dict__`` — waiters fan out one
        ``cost()`` per request, and list indexing is several times
        cheaper than boxing a NumPy scalar each time.  (``tolist``
        round-trips float64 exactly; a racing double-build is benign
        because the conversion is idempotent.)
        """
        costs = self.__dict__.get("_costs")
        if costs is None:
            costs = self.__dict__["_costs"] = \
                self.cost_per_transistor_dollars.tolist()
        return costs[slot]

    def served(self, slot: int) -> ServedCost:
        """The full :class:`ServedCost` of unique point ``slot``."""
        return ServedCost(
            n_transistors=float(self.n_transistors[slot]),
            feature_size_um=float(self.feature_sizes_um[slot]),
            wafer_cost_dollars=float(self.wafer_cost_dollars[slot]),
            die_area_cm2=float(self.die_area_cm2[slot]),
            dies_per_wafer=int(self.dies_per_wafer[slot]),
            yield_value=float(self.yield_value[slot]),
            cost_per_transistor_dollars=float(
                self.cost_per_transistor_dollars[slot]),
            feasible=bool(self.feasible[slot]))


#: Row order of the result half of a shared flush matrix — rows 2..7 of
#: a :class:`~repro.serve.shm.ShmBlock` (rows 0/1 are the N_tr/λ
#: inputs).  Everything is stored as float64; die counts and the
#: feasibility mask round-trip exactly (counts < 2^53, mask is 0/1).
RESULT_ROW_FIELDS = ("wafer_cost_dollars", "die_area_cm2",
                     "dies_per_wafer", "yield_value",
                     "cost_per_transistor_dollars", "feasible")
N_RESULT_ROWS = len(RESULT_ROW_FIELDS)


class GroupRows:
    """Caller-provided output buffers for one group evaluation.

    Six float64 rows in :data:`RESULT_ROW_FIELDS` order, typically
    views into a shared-memory matrix: the group executors write every
    result in place, so a worker process returns nothing but its
    observability payload.
    """

    __slots__ = RESULT_ROW_FIELDS

    def __init__(self, wafer_cost_dollars: np.ndarray,
                 die_area_cm2: np.ndarray, dies_per_wafer: np.ndarray,
                 yield_value: np.ndarray,
                 cost_per_transistor_dollars: np.ndarray,
                 feasible: np.ndarray) -> None:
        self.wafer_cost_dollars = wafer_cost_dollars
        self.die_area_cm2 = die_area_cm2
        self.dies_per_wafer = dies_per_wafer
        self.yield_value = yield_value
        self.cost_per_transistor_dollars = cost_per_transistor_dollars
        self.feasible = feasible

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "GroupRows":
        """Wrap the six rows of a ``(6, k)`` result matrix (no copies)."""
        if matrix.shape[0] != N_RESULT_ROWS:
            raise ParameterError(
                f"result matrix needs {N_RESULT_ROWS} rows, "
                f"got {matrix.shape[0]}")
        return cls(*(matrix[i] for i in range(N_RESULT_ROWS)))


def group_result_from_rows(n: np.ndarray, lam: np.ndarray,
                           matrix: np.ndarray) -> GroupResult:
    """Rebuild a :class:`GroupResult` from a filled ``(6, k)`` matrix.

    Copies every row out of the (shared) buffer so the caller can
    unlink the segment immediately, and restores the native dtypes:
    die counts back to int64 (exact — see :mod:`repro.serve.shm`),
    the feasibility row back to bool.
    """
    if matrix.shape[0] != N_RESULT_ROWS:
        raise ParameterError(
            f"result matrix needs {N_RESULT_ROWS} rows, "
            f"got {matrix.shape[0]}")
    return GroupResult(
        n_transistors=np.array(n, dtype=np.float64),
        feature_sizes_um=np.array(lam, dtype=np.float64),
        wafer_cost_dollars=matrix[0].copy(),
        die_area_cm2=matrix[1].copy(),
        dies_per_wafer=matrix[2].astype(np.int64),
        yield_value=matrix[3].copy(),
        cost_per_transistor_dollars=matrix[4].copy(),
        feasible=matrix[5] != 0.0)


def _compose_cost(c_w: np.ndarray, n_ch: np.ndarray, n: np.ndarray,
                  y: np.ndarray, feasible: np.ndarray) -> np.ndarray:
    # Exactly the scalar order: c_w / (n_ch * n_transistors * y), each
    # product/quotient exactly rounded, so elementwise == the scalar.
    with np.errstate(divide="ignore", over="ignore", invalid="ignore",
                     under="ignore"):
        cost = c_w / (n_ch * n * y)
    return np.where(feasible, cost, np.inf)


def _fab_group(exemplar, n: np.ndarray, lam: np.ndarray,
               cache: BatchCache | None,
               rows: GroupRows | None = None) -> GroupResult:
    # Mirrors transistor_cost_full step for step.  With ``rows``, every
    # result lands in the caller's buffers (the shared-memory path);
    # the arithmetic — and therefore the bits — is identical either
    # way, because float64 buffers hold the int64 die counts and the
    # boolean mask exactly.
    fab = exemplar.fab
    wafer = Wafer(radius_cm=fab.wafer_radius_cm)
    width, height, area_cm2 = _die_geometry(n, fab.design_density, lam, 1.0)
    n_ch = dies_per_wafer_batch(
        wafer, width, height, cache=cache,
        out=None if rows is None else rows.dies_per_wafer)
    wafer_cost = WaferCostModel(
        reference_cost_dollars=fab.reference_cost_dollars,
        cost_growth_rate=fab.cost_growth_rate)
    c_w_by_lam: dict[float, float] = {}
    if rows is None:
        c_w = np.empty(n.size, dtype=np.float64)
        y = np.empty(n.size, dtype=np.float64)
    else:
        c_w = rows.wafer_cost_dollars
        y = rows.yield_value
    d, coeff, p = fab.design_density, fab.defect_coefficient, \
        fab.size_exponent_p
    pure_cost = wafer_cost.pure_cost
    cw_get = c_w_by_lam.get
    exp = math.exp
    # One fused pass: eq.-(7) yield with the *inlined* arithmetic of
    # scaled_poisson_yield (validation already ran at query
    # construction; the operation order is identical, so the result is
    # bitwise equal — enforced by tests/property_based/
    # test_serve_parity.py), and eq.-(3) wafer cost memoized per
    # unique λ.
    for i, (n_i, lam_i) in enumerate(zip(n.tolist(), lam.tolist())):
        exponent = (n_i * d * (lam_i * lam_i) * 1.0e-8) \
            * (coeff / lam_i ** p)
        y[i] = 5e-324 if exponent > 700.0 else exp(-exponent)
        cached = cw_get(lam_i)
        if cached is None:
            cached = c_w_by_lam[lam_i] = pure_cost(lam_i)
        c_w[i] = cached
    feasible = (n_ch >= 1) & (y >= _YIELD_CUTOFF)
    cost = _compose_cost(c_w, n_ch, n, y, feasible)
    if rows is not None:
        rows.die_area_cm2[...] = area_cm2
        rows.cost_per_transistor_dollars[...] = cost
        rows.feasible[...] = feasible
        area_cm2, cost = rows.die_area_cm2, rows.cost_per_transistor_dollars
    return GroupResult(
        n_transistors=n, feature_sizes_um=lam, wafer_cost_dollars=c_w,
        die_area_cm2=area_cm2, dies_per_wafer=n_ch, yield_value=y,
        cost_per_transistor_dollars=cost,
        feasible=feasible)


def _model_group(exemplar, n: np.ndarray, lam: np.ndarray,
                 cache: BatchCache | None,
                 rows: GroupRows | None = None) -> GroupResult:
    # Mirrors TransistorCostModel.evaluate step for step, except that an
    # unfittable die masks to an infeasible cell instead of raising.
    model = exemplar.model
    width, height, area_cm2 = _die_geometry(
        n, exemplar.design_density, lam, exemplar.aspect_ratio)
    n_ch = dies_per_wafer_batch(
        model.wafer, width, height, cache=cache,
        out=None if rows is None else rows.dies_per_wafer)
    y = np.empty(n.size, dtype=np.float64) if rows is None \
        else rows.yield_value
    if exemplar.yield_value is not None:
        y.fill(exemplar.yield_value)
    elif isinstance(exemplar.yield_model, ReferenceAreaYield):
        point_yield = exemplar.yield_model.yield_for_die_area
        for i, a in enumerate(area_cm2.tolist()):
            y[i] = point_yield(a)
    else:
        law = exemplar.yield_model
        density = exemplar.defect_density_per_cm2
        for i, a in enumerate(area_cm2.tolist()):
            y[i] = law.yield_for_area(a, density)
    c_w_by_lam: dict[float, float] = {}
    c_w = np.empty(n.size, dtype=np.float64) if rows is None \
        else rows.wafer_cost_dollars
    cw_get = c_w_by_lam.get
    wafer_cost_dollars = model.wafer_cost_dollars
    for i, lam_i in enumerate(lam.tolist()):
        cached = cw_get(lam_i)
        if cached is None:
            cached = c_w_by_lam[lam_i] = wafer_cost_dollars(lam_i)
        c_w[i] = cached
    feasible = n_ch >= 1
    cost = _compose_cost(c_w, n_ch, n, y, feasible)
    if rows is not None:
        rows.die_area_cm2[...] = area_cm2
        rows.cost_per_transistor_dollars[...] = cost
        rows.feasible[...] = feasible
        area_cm2, cost = rows.die_area_cm2, rows.cost_per_transistor_dollars
    return GroupResult(
        n_transistors=n, feature_sizes_um=lam, wafer_cost_dollars=c_w,
        die_area_cm2=area_cm2, dies_per_wafer=n_ch, yield_value=y,
        cost_per_transistor_dollars=cost,
        feasible=feasible)


def _chiplet_group(exemplar, n: np.ndarray, lam: np.ndarray,
                   cache: BatchCache | None,
                   rows: GroupRows | None = None) -> GroupResult:
    # Chiplet queries need no inlining here: chiplet_cost_batch is
    # already *bitwise* equal to the scalar ChipletCostModel (its
    # transcendentals run through scalar libm — see its docstring), so
    # one kernel call serves the group.  The ServedCost projection:
    # die_area is the per-chiplet area, dies_per_wafer the per-chiplet
    # eq.-(4) count, yield_value the effective (probe × assembly)
    # system yield — the quantities the eq.-(1)-shaped cost composes.
    result = chiplet_cost_batch(n, lam, float(exemplar.chiplets),
                                exemplar.model, cache=cache)
    area_cm2 = result.chiplet_area_cm2
    n_ch = result.dies_per_wafer
    c_w = result.wafer_cost_dollars
    y = result.effective_yield
    cost = result.cost_per_transistor_dollars
    feasible = result.feasible
    if rows is not None:
        rows.wafer_cost_dollars[...] = c_w
        rows.die_area_cm2[...] = area_cm2
        rows.dies_per_wafer[...] = n_ch
        rows.yield_value[...] = y
        rows.cost_per_transistor_dollars[...] = cost
        rows.feasible[...] = feasible
        c_w, area_cm2, y = rows.wafer_cost_dollars, rows.die_area_cm2, \
            rows.yield_value
        cost = rows.cost_per_transistor_dollars
    return GroupResult(
        n_transistors=n, feature_sizes_um=lam, wafer_cost_dollars=c_w,
        die_area_cm2=area_cm2, dies_per_wafer=n_ch, yield_value=y,
        cost_per_transistor_dollars=cost,
        feasible=feasible)


_EXECUTORS = {"fab": _fab_group, "model": _model_group,
              "chiplet": _chiplet_group}


def _concat(parts: list[GroupResult]) -> GroupResult:
    if len(parts) == 1:
        return parts[0]
    return GroupResult(*(np.concatenate([getattr(p, f) for p in parts])
                         for f in GroupResult.__dataclass_fields__))


def execute_group(exemplar: CostQuery, points: list[tuple[float, float]],
                  *, cache: BatchCache | None = None,
                  pool: "Executor | None" = None,
                  chunk_size: int = 4096) -> GroupResult:
    """Price one coalesced group of unique ``(N_tr, λ)`` points.

    ``exemplar`` is any query of the group (they share a signature, so
    any member carries the group's model parameters).  When a ``pool``
    is given and the group exceeds ``chunk_size`` points, contiguous
    chunks are priced concurrently and concatenated — bitwise
    invisible, since every step is elementwise in the points.
    """
    run = _EXECUTORS.get(exemplar.kind)
    if run is None:
        raise ParameterError(f"unknown query kind {exemplar.kind!r}")
    n = np.array([p[0] for p in points], dtype=np.float64)
    lam = np.array([p[1] for p in points], dtype=np.float64)
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    if pool is None or n.size <= chunk_size:
        return run(exemplar, n, lam, cache)
    spans = range(0, n.size, chunk_size)
    futures = [pool.submit(run, exemplar, n[lo:lo + chunk_size],
                           lam[lo:lo + chunk_size], cache)
               for lo in spans]
    return _concat([f.result() for f in futures])


def execute_group_rows(exemplar: CostQuery, n: np.ndarray,
                       lam: np.ndarray, rows: GroupRows, *,
                       cache: BatchCache | None = None) -> None:
    """Price unique points in place, writing into ``rows``.

    The write-in-place form of :func:`execute_group` used by the
    shared-memory process backend: ``n``/``lam`` are (views of) the
    input rows, ``rows`` the six result rows of the same segment.
    Same arithmetic, same bits — only the destination differs.
    """
    run = _EXECUTORS.get(exemplar.kind)
    if run is None:
        raise ParameterError(f"unknown query kind {exemplar.kind!r}")
    run(exemplar, n, lam, cache, rows)


def n_chunks(n_points: int, chunk_size: int) -> int:
    """How many chunks :func:`execute_group` will split a group into."""
    return max(1, math.ceil(n_points / max(1, chunk_size)))
