"""HTTP/1.1 front-end over :class:`~repro.serve.aio.AsyncCostService`.

The network tier of the serving stack: a stdlib-only asyncio server
(``asyncio.start_server`` plus a small incremental request parser)
that prices JSON cost queries through the same micro-batch scheduler
as in-process callers — so concurrent HTTP requests coalesce into the
same few vectorized flushes, and every served cost stays bitwise
equal to the scalar reference (:func:`~repro.serve.query
.scalar_reference_cost`).

Endpoints
---------
``POST /v1/cost``
    One point per request.  Body is either a full recorded-query
    payload ``{"q": {...}}`` (the :mod:`repro.obs.recording` format —
    what ``repro.loadgen`` and replayed clients send) or bare point
    fields ``{"transistors": ..., "feature_size": ..., "density"?,
    "yield0"?}`` priced with the server's default model (same
    defaults as the ``python -m repro cost`` flags).  Response: one
    object keyed by :data:`~repro.serve.io.RESULT_FIELDS`.
``POST /v1/cost/bulk``
    Many points in one request, routed through
    :meth:`~repro.serve.aio.AsyncCostService.submit_bulk` so the
    whole request enters the queue as **one** pre-coalesced flush.
    Body: ``{"queries": [q-payload, ...]}`` or ``{"points": [...]}``
    (list of field objects or a columnar dict of equal-length
    arrays).  Response: the columnar served-array document of
    :func:`~repro.serve.io.format_served_json`.
``POST /v1/chiplet``
    Price one ``k``-chiplet assembly per request.  Body is either a
    recorded chiplet payload ``{"q": {...}}`` (the
    :mod:`repro.obs.recording` format) or bare fields
    ``{"transistors": ..., "feature_size": ..., "chiplets"?,
    "packaging"?, "probe_coverage"?}`` priced with the library-default
    :class:`~repro.system.chiplet.ChipletCostModel` (``packaging``
    names an entry of
    :data:`~repro.system.chiplet.PACKAGING_TECHS`).  Chiplet queries
    also ride in ``POST /v1/cost/bulk`` ``"queries"`` payloads.
``POST /v1/optimize``
    Fixed-die-size λ optimization (paper Fig. 8 framing): ``
    {"die_area": x}`` or ``{"die_areas": [...]}`` with optional
    ``lam_lo`` / ``lam_hi`` bounds; runs in the default executor so
    the scan never blocks the loop.
``GET /healthz``
    ``200 {"status": "ok", "queue_depth": n}`` — ``503`` once
    draining.
``GET /metrics``
    The :data:`repro.obs.metrics` registry snapshot (populate it by
    running the server with ``REPRO_METRICS=1`` or ``obs.enable``).

Protocol behavior
-----------------
Keep-alive is the HTTP/1.1 default; pipelined requests on one
connection are parsed as a batch, dispatched **concurrently** (so a
pipelined burst of singles coalesces into one flush exactly like a
bulk body), and answered strictly in order.  Backpressure surfaces as
``429`` with a ``Retry-After`` header and the structured body of
:mod:`repro.serve.codec`; all error bodies use that codec.  ``inf``
costs serialize as JSON ``Infinity`` (the Python ``json`` dialect —
every client in this repo parses it back to ``float("inf")``).

Graceful drain: on SIGTERM/SIGINT (or :meth:`CostHttpServer.drain`)
the server marks itself draining — new requests and connections get
``503 {"error": "service_closed"}`` — waits for in-flight requests to
complete (their costs land in the ``record=`` log), then closes the
listener and the owned service (flushing the recorder) and lets
:meth:`~CostHttpServer.wait_closed` return.  A log recorded here
replays byte-for-byte through ``python -m repro replay`` and feeds
``backend="tuned"``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import functools
import json
import signal
import threading
from typing import Any, Awaitable, Callable

from ..errors import (
    ParameterError,
    ReproError,
    ServiceClosedError,
)
from ..obs import metrics as _metrics, span as _span
from ..obs.recording import record_to_query
from ..obs.state import enabled as _obs_enabled
from .aio import AsyncCostService
from .codec import error_body, retry_after_s, status_for
from .io import RESULT_FIELDS, format_served_json, normalize_point, served_row
from .query import ChipletCostQuery, CostQuery, ModelCostQuery, ServedCost

__all__ = [
    "DEFAULT_MODEL_PARAMS",
    "CostHttpServer",
    "HttpParseError",
    "HttpRequest",
    "RequestParser",
    "ServerThread",
    "chiplet_point_to_query",
    "point_to_query",
    "run_server",
]

#: Server-default model parameters for bare point-field bodies —
#: identical to the ``python -m repro cost`` flag defaults except that
#: ``density`` gets a serving default instead of being required.
DEFAULT_MODEL_PARAMS = {
    "density": 150.0,    # kTr/cm² at λ=1µm   (--density)
    "yield0": 0.7,       # 1 cm² reference yield (--yield0)
    "c0": 500.0,         # reference wafer cost  (--c0)
    "x": 1.8,            # wafer-cost growth rate (--x)
    "wafer_radius": 7.5,  # cm                   (--wafer-radius)
}

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
_READ_CHUNK = 65536

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class HttpParseError(ReproError):
    """A malformed or unsupported request; carries the HTTP status."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class HttpRequest:
    """One parsed request: method, target, lower-cased headers, body."""

    __slots__ = ("method", "target", "version", "headers", "body")

    def __init__(self, method: str, target: str, version: str,
                 headers: dict[str, str], body: bytes) -> None:
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        """Persistent-connection default per version + Connection header."""
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in conn
        return "close" not in conn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HttpRequest({self.method} {self.target} {self.version}, "
                f"{len(self.body)} body bytes)")


class RequestParser:
    """Incremental HTTP/1.1 request parser for one connection.

    Feed it whatever the socket produced — a torn request line, one
    byte at a time, or six pipelined requests in one read — and it
    returns every request that *completed* with that feed, keeping
    the tail buffered for the next one.  Bodies are ``Content-Length``
    delimited only (``Transfer-Encoding`` is rejected with 501; the
    clients this serves never chunk).  Oversized headers (64 KiB) and
    bodies (8 MiB) fail loudly rather than buffering without bound.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[HttpRequest]:
        """Buffer ``data``; return the requests it completed (maybe [])."""
        self._buf += data
        requests: list[HttpRequest] = []
        while True:
            request = self._parse_one()
            if request is None:
                return requests
            requests.append(request)

    def _parse_one(self) -> HttpRequest | None:
        head_end = self._buf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(self._buf) > _MAX_HEADER_BYTES:
                raise HttpParseError(
                    f"header block exceeds {_MAX_HEADER_BYTES} bytes",
                    status=431)
            return None
        lines = bytes(self._buf[:head_end]).split(b"\r\n")
        parts = lines[0].decode("latin-1").split(" ")
        if len(parts) != 3 or not all(parts):
            raise HttpParseError(
                f"malformed request line {lines[0]!r}")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise HttpParseError(
                f"unsupported protocol version {version!r}", status=505)
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(b":")
            if not sep or not name.strip():
                raise HttpParseError(f"malformed header line {line!r}")
            headers[name.decode("latin-1").strip().lower()] = \
                value.decode("latin-1").strip()
        if "transfer-encoding" in headers:
            raise HttpParseError(
                "Transfer-Encoding is not supported; send Content-Length",
                status=501)
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            raise HttpParseError(
                f"bad Content-Length {raw_length!r}") from None
        if length > _MAX_BODY_BYTES:
            raise HttpParseError(
                f"body of {length} bytes exceeds {_MAX_BODY_BYTES}",
                status=413)
        body_start = head_end + 4
        if len(self._buf) < body_start + length:
            return None  # body still in flight; wait for the next feed
        body = bytes(self._buf[body_start:body_start + length])
        del self._buf[:body_start + length]
        return HttpRequest(method, target, version, headers, body)


def point_to_query(point: dict[str, float], *,
                   density: float = DEFAULT_MODEL_PARAMS["density"],
                   yield0: float = DEFAULT_MODEL_PARAMS["yield0"],
                   c0: float = DEFAULT_MODEL_PARAMS["c0"],
                   x: float = DEFAULT_MODEL_PARAMS["x"],
                   wafer_radius: float = DEFAULT_MODEL_PARAMS["wafer_radius"],
                   ) -> ModelCostQuery:
    """Build the server-default query for one *normalized* point.

    ``point`` uses the canonical field names of
    :func:`~repro.serve.io.normalize_point` (``transistors``,
    ``feature_size``, optional ``density`` / ``yield0`` per-point
    overrides).  The model mirrors the CLI's ``_build_cost_model``
    defaults, so a bare-field HTTP body prices exactly like ``python
    -m repro cost`` with the same flags — the load generator leans on
    this to compute expected costs for verification.
    """
    from ..core.transistor_cost import TransistorCostModel
    from ..core.wafer_cost import WaferCostModel
    from ..geometry.wafer import Wafer
    from ..yieldsim.models import ReferenceAreaYield

    if "die_area" in point:
        raise ParameterError(
            "die_area is a /v1/optimize field; cost points take "
            "transistors/feature_size")
    transistors = point.get("transistors")
    feature_size = point.get("feature_size")
    if transistors is None or feature_size is None:
        raise ParameterError(
            "point needs transistors and feature_size fields")
    model = TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=c0,
                                  cost_growth_rate=x),
        wafer=Wafer(radius_cm=wafer_radius))
    return ModelCostQuery(
        n_transistors=transistors, feature_size_um=feature_size,
        model=model, design_density=point.get("density", density),
        yield_model=ReferenceAreaYield(
            reference_yield=point.get("yield0", yield0),
            reference_area_cm2=1.0))


#: Bare-body fields ``POST /v1/chiplet`` accepts (everything else 400s).
_CHIPLET_POINT_FIELDS = {"transistors", "feature_size", "chiplets",
                         "packaging", "probe_coverage"}


def chiplet_point_to_query(body: dict[str, Any],
                           where: str = "POST /v1/chiplet"
                           ) -> ChipletCostQuery:
    """Build a chiplet query from bare HTTP point fields.

    ``transistors`` and ``feature_size`` are required; ``chiplets``
    defaults to the query default (4), ``packaging`` names an entry of
    :data:`~repro.system.chiplet.PACKAGING_TECHS`, and
    ``probe_coverage`` overrides the model default — everything else
    about the model stays at library defaults, so a bare body prices
    exactly like ``python -m repro chiplet`` with the same flags.
    """
    import dataclasses

    from ..system.chiplet import PACKAGING_TECHS, ChipletCostModel

    unknown = set(body) - _CHIPLET_POINT_FIELDS
    if unknown:
        raise ParameterError(f"{where}: unknown fields {sorted(unknown)}")
    transistors = body.get("transistors")
    feature_size = body.get("feature_size")
    if transistors is None or feature_size is None:
        raise ParameterError(
            f"{where}: body needs transistors and feature_size fields")
    model = ChipletCostModel()
    if "packaging" in body:
        name = body["packaging"]
        tech = PACKAGING_TECHS.get(name)
        if tech is None:
            raise ParameterError(
                f"{where}: unknown packaging {name!r} (choices: "
                f"{sorted(PACKAGING_TECHS)})")
        model = dataclasses.replace(model, packaging=tech)
    if "probe_coverage" in body:
        model = dataclasses.replace(
            model, probe_coverage=body["probe_coverage"])
    kwargs: dict[str, Any] = {}
    if "chiplets" in body:
        kwargs["chiplets"] = body["chiplets"]
    return ChipletCostQuery(
        n_transistors=transistors, feature_size_um=feature_size,
        model=model, **kwargs)


def _result_object(result: ServedCost) -> dict[str, Any]:
    return dict(zip(RESULT_FIELDS, served_row(result)))


class CostHttpServer:
    """The asyncio HTTP server over one (possibly shared) cost service.

    Standalone construction owns an :class:`AsyncCostService` (keyword
    arguments beyond the ones below go to its scheduler — ``backend``,
    ``workers``, ``record``, ...); pass ``service=`` to share an
    existing one, which drain then leaves open.  ``port=0`` binds an
    ephemeral port, readable from :attr:`port` after :meth:`start`.

    ``submit_timeout`` is the backpressure bound handed to every
    submit: the default ``0`` turns a full queue into an immediate
    ``429`` (the open-loop contract — the server never queues hidden
    latency on the socket); ``None`` would block in the executor
    instead.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 service: AsyncCostService | None = None,
                 submit_timeout: float | None = 0,
                 density: float = DEFAULT_MODEL_PARAMS["density"],
                 yield0: float = DEFAULT_MODEL_PARAMS["yield0"],
                 c0: float = DEFAULT_MODEL_PARAMS["c0"],
                 x: float = DEFAULT_MODEL_PARAMS["x"],
                 wafer_radius: float = DEFAULT_MODEL_PARAMS["wafer_radius"],
                 **scheduler_kwargs: Any) -> None:
        if service is not None:
            if scheduler_kwargs:
                raise ParameterError(
                    f"scheduler kwargs {sorted(scheduler_kwargs)} conflict "
                    f"with an explicit service")
            self.service = service
            self._owns_service = False
        else:
            self.service = AsyncCostService(**scheduler_kwargs)
            self._owns_service = True
        self.host = host
        self._requested_port = port
        self._submit_timeout = submit_timeout
        self._model_params = {"density": density, "yield0": yield0,
                              "c0": c0, "x": x,
                              "wafer_radius": wafer_radius}
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._draining = False
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._done: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Start the scheduler and bind the listener."""
        self.service.scheduler.start()
        self._idle = asyncio.Event()
        self._idle.set()
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        """Block until a drain has fully completed."""
        if self._done is None:
            raise ServiceClosedError("server was never started")
        await self._done.wait()

    async def drain(self) -> None:
        """Graceful shutdown: 503 new work, finish in-flight, close.

        Idempotent and safe to call concurrently (signal handler +
        ``async with`` exit): the first caller drives the drain, later
        ones just await completion.  The listener stays open while
        in-flight requests finish so that late arrivals get a clean
        ``503`` + ``Connection: close`` instead of a TCP reset; only
        then does it close, followed by the owned service (which
        flushes any pending queries and the traffic recorder).
        """
        if self._done is None:
            raise ServiceClosedError("server was never started")
        if self._draining:
            await self._done.wait()
            return
        self._draining = True
        assert self._idle is not None and self._server is not None
        await self._idle.wait()
        self._server.close()
        await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._owns_service:
            await self.service.close()
        self._done.set()

    async def __aenter__(self) -> "CostHttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.drain()

    # -- connection handling ---------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        parser = RequestParser()
        self._writers.add(writer)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    return
                try:
                    requests = parser.feed(data)
                except HttpParseError as exc:
                    await self._write_response(
                        writer, exc.status,
                        {"error": "bad_request", "message": str(exc)},
                        keep_alive=False)
                    return
                if not requests:
                    continue
                if self._draining:
                    body = error_body(
                        ServiceClosedError("server is draining"))
                    for _ in requests:
                        await self._write_response(writer, 503, body,
                                                   keep_alive=False)
                    return
                # Pipelined requests dispatch concurrently — a burst of
                # singles on one connection coalesces into one flush
                # just like a bulk body — but respond strictly in order.
                if len(requests) == 1:
                    responses = [await self._handle(requests[0])]
                else:
                    responses = await asyncio.gather(
                        *(self._handle(r) for r in requests))
                for request, (status, body, headers) in zip(requests,
                                                            responses):
                    keep = request.keep_alive and not self._draining
                    await self._write_response(writer, status, body,
                                               keep_alive=keep,
                                               extra_headers=headers)
                    if not keep:
                        return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, body: Any, *,
                              keep_alive: bool,
                              extra_headers: dict[str, str] | None = None,
                              ) -> None:
        payload = body if isinstance(body, str) else json.dumps(body)
        raw = payload.encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "content-type: application/json",
            f"content-length: {len(raw)}",
            f"connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + raw)
        with contextlib.suppress(ConnectionError):
            await writer.drain()

    # -- request dispatch ------------------------------------------------

    async def _handle(self, request: HttpRequest
                      ) -> tuple[int, Any, dict[str, str]]:
        """Route one request; returns ``(status, body, extra_headers)``."""
        if self._idle is not None:
            self._inflight += 1
            self._idle.clear()
        try:
            with _span("http.request", method=request.method,
                       target=request.target):
                status, body, headers = await self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - boundary: render, don't die
            status, headers = status_for(exc), {}
            body = error_body(exc)
            retry = retry_after_s(exc)
            if retry is not None:
                headers["retry-after"] = f"{retry:.3f}"
        finally:
            if self._idle is not None:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()
        if _obs_enabled():
            _metrics.inc("http.requests")
            _metrics.inc(f"http.status.{status}")
        return status, body, headers

    async def _dispatch(self, request: HttpRequest
                        ) -> tuple[int, Any, dict[str, str]]:
        route = (request.method, request.target)
        handler: Callable[[HttpRequest],
                          Awaitable[tuple[int, Any, dict[str, str]]]] | None
        handler = {
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/metrics"): self._get_metrics,
            ("POST", "/v1/cost"): self._post_cost,
            ("POST", "/v1/cost/bulk"): self._post_cost_bulk,
            ("POST", "/v1/chiplet"): self._post_chiplet,
            ("POST", "/v1/optimize"): self._post_optimize,
        }.get(route)
        if handler is None:
            known = {"/healthz", "/metrics", "/v1/cost", "/v1/cost/bulk",
                     "/v1/chiplet", "/v1/optimize"}
            if request.target in known:
                return 405, {"error": "bad_request",
                             "message": f"{request.method} not allowed "
                                        f"on {request.target}"}, {}
            return 404, {"error": "bad_request",
                         "message": f"no route {request.target}"}, {}
        return await handler(request)

    def _json_body(self, request: HttpRequest) -> Any:
        try:
            return json.loads(request.body)
        except ValueError as exc:
            raise ParameterError(f"invalid JSON body: {exc}") from None

    def _query_from_body(self, body: Any, where: str) -> CostQuery:
        if not isinstance(body, dict):
            raise ParameterError(f"{where}: body must be a JSON object")
        if "q" in body:
            return record_to_query(body["q"])
        point = normalize_point(body, where)
        return point_to_query(point, **self._model_params)

    async def _get_healthz(self, request: HttpRequest
                           ) -> tuple[int, Any, dict[str, str]]:
        status = 503 if self._draining else 200
        return status, {
            "status": "draining" if self._draining else "ok",
            "queue_depth": self.service.scheduler.queue_depth,
        }, {}

    async def _get_metrics(self, request: HttpRequest
                           ) -> tuple[int, Any, dict[str, str]]:
        return 200, _metrics.snapshot(), {}

    async def _post_cost(self, request: HttpRequest
                         ) -> tuple[int, Any, dict[str, str]]:
        with _span("http.parse"):
            query = self._query_from_body(self._json_body(request),
                                          "POST /v1/cost")
        result = await self.service.evaluate(
            query, timeout=self._submit_timeout)
        return 200, _result_object(result), {}

    async def _post_chiplet(self, request: HttpRequest
                            ) -> tuple[int, Any, dict[str, str]]:
        with _span("http.parse"):
            body = self._json_body(request)
            if not isinstance(body, dict):
                raise ParameterError(
                    "POST /v1/chiplet: body must be a JSON object")
            if "q" in body:
                query = record_to_query(body["q"])
                if not isinstance(query, ChipletCostQuery):
                    raise ParameterError(
                        "POST /v1/chiplet: recorded payload is not a "
                        "chiplet query (use POST /v1/cost)")
            else:
                query = chiplet_point_to_query(body)
        result = await self.service.evaluate(
            query, timeout=self._submit_timeout)
        return 200, _result_object(result), {}

    async def _post_cost_bulk(self, request: HttpRequest
                              ) -> tuple[int, Any, dict[str, str]]:
        with _span("http.parse"):
            queries = self._bulk_queries(self._json_body(request))
        results = await self.service.map_bulk(
            queries, timeout=self._submit_timeout)
        if _obs_enabled():
            _metrics.inc("http.bulk.points", len(results))
        return 200, format_served_json(results), {}

    def _bulk_queries(self, body: Any) -> list[CostQuery]:
        where = "POST /v1/cost/bulk"
        if not isinstance(body, dict):
            raise ParameterError(f"{where}: body must be a JSON object")
        if ("queries" in body) == ("points" in body):
            raise ParameterError(
                f"{where}: body needs exactly one of 'queries' or 'points'")
        if "queries" in body:
            payloads = body["queries"]
            if not isinstance(payloads, list):
                raise ParameterError(f"{where}: 'queries' must be a list")
            return [record_to_query(p) for p in payloads]
        points = body["points"]
        if isinstance(points, dict):  # columnar: {"transistors": [...]}
            lengths = {len(v) for v in points.values()
                       if isinstance(v, (list, tuple))}
            if len(lengths) != 1 or not all(
                    isinstance(v, (list, tuple)) for v in points.values()):
                raise ParameterError(
                    f"{where}: columnar points need equal-length arrays")
            n = lengths.pop()
            points = [{k: v[i] for k, v in points.items()}
                      for i in range(n)]
        if not isinstance(points, list):
            raise ParameterError(
                f"{where}: 'points' must be a list of objects or a "
                f"columnar dict of arrays")
        return [point_to_query(normalize_point(p, f"{where}[{i}]"),
                               **self._model_params)
                for i, p in enumerate(points)]

    async def _post_optimize(self, request: HttpRequest
                             ) -> tuple[int, Any, dict[str, str]]:
        from ..core.optimization import (
            optimal_feature_size_for_die_area,
            optimal_feature_size_for_die_areas,
        )

        body = self._json_body(request)
        if not isinstance(body, dict):
            raise ParameterError("POST /v1/optimize: body must be an object")
        if ("die_area" in body) == ("die_areas" in body):
            raise ParameterError(
                "POST /v1/optimize: body needs exactly one of 'die_area' "
                "or 'die_areas'")
        bounds = {}
        if "lam_lo" in body:
            bounds["lam_lo_um"] = body["lam_lo"]
        if "lam_hi" in body:
            bounds["lam_hi_um"] = body["lam_hi"]
        unknown = set(body) - {"die_area", "die_areas", "lam_lo", "lam_hi"}
        if unknown:
            raise ParameterError(
                f"POST /v1/optimize: unknown fields {sorted(unknown)}")
        loop = asyncio.get_running_loop()
        if "die_area" in body:
            area = body["die_area"]
            lam, cost = await loop.run_in_executor(
                None, functools.partial(optimal_feature_size_for_die_area,
                                        area, **bounds))
            return 200, {"die_area_cm2": area,
                         "optimal_feature_size_um": lam,
                         "cost_per_transistor_dollars": cost}, {}
        areas = body["die_areas"]
        if not isinstance(areas, list) or not areas:
            raise ParameterError(
                "POST /v1/optimize: 'die_areas' must be a non-empty list")
        lams, costs = await loop.run_in_executor(
            None, functools.partial(optimal_feature_size_for_die_areas,
                                    areas, **bounds))
        return 200, {"die_area_cm2": areas,
                     "optimal_feature_size_um": lams.tolist(),
                     "cost_per_transistor_dollars": costs.tolist()}, {}


def run_server(*, host: str = "127.0.0.1", port: int = 8787,
               quiet: bool = False,
               **server_kwargs: Any) -> int:
    """Blocking entry point behind ``python -m repro serve``.

    Binds, prints ``serving on http://host:port`` (the CLI smoke tests
    and the CI e2e chain wait for that line), installs SIGTERM/SIGINT
    handlers that trigger a graceful drain where the platform supports
    them (KeyboardInterrupt drains too, for the rest), and blocks
    until the drain completes.  Returns the process exit code.
    """
    async def _main() -> None:
        server = CostHttpServer(host=host, port=port, **server_kwargs)
        await server.start()
        loop = asyncio.get_running_loop()

        def _begin_drain() -> None:
            loop.create_task(server.drain())

        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, _begin_drain)
        if not quiet:
            print(f"serving on http://{server.host}:{server.port}",
                  flush=True)
        try:
            await server.wait_closed()
        except asyncio.CancelledError:  # loop torn down without a signal
            await server.drain()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


class ServerThread:
    """A live server on a background thread, for tests and benches.

    ``with ServerThread(record=log) as srv:`` starts a
    :class:`CostHttpServer` on its own event loop thread, exposes the
    bound :attr:`port`, and drains it (flushing the recorder) on
    exit.  :meth:`drain` can also be called early to exercise the
    drain path while the context is still open.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._kwargs = server_kwargs
        self.server: CostHttpServer | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-http-server")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise TimeoutError("HTTP server failed to start in 30 s")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to foreground
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = CostHttpServer(**self._kwargs)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self.server.wait_closed()

    def drain(self, timeout: float = 60.0) -> None:
        """Drain the server from the foreground thread (idempotent)."""
        if self.server is None or self._loop is None:
            return
        if self._error is not None and self.port is None:
            return  # startup already failed; nothing to drain
        coro = self.server.drain()
        try:
            future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        except RuntimeError:  # loop already closed: drain finished
            coro.close()
            if self._thread is not None:
                self._thread.join(timeout=timeout)
            return
        try:
            future.result(timeout=timeout)
        except concurrent.futures.CancelledError:
            # A completed drain lets the loop shut down out from under
            # this call — the race means the work is already done.
            if self._thread is not None:
                self._thread.join(timeout=timeout)

    def __exit__(self, *exc_info: object) -> None:
        try:
            self.drain()
        finally:
            if self._thread is not None:
                self._thread.join(timeout=30)
