"""Named shared-memory float64 matrices for cross-process flushes.

The process execution backend (:mod:`repro.serve.backend`) moves one
coalesced signature group per flush through a single
:class:`multiprocessing.shared_memory.SharedMemory` segment viewed as
a ``(rows, cols)`` float64 matrix: the parent writes the input rows
(``N_tr``, λ), workers map the *same* segment by name and write their
result rows in place, and the parent reads everything back — zero
pickling of per-point data in either direction.

Everything in the matrix is float64 on purpose: the eq.-(4) die counts
are integers far below 2⁵³ (a wafer physically bounds them), so the
int64→float64→int64 round trip is exact, and the feasibility mask
round-trips as 0.0/1.0.  That keeps the segment a single homogeneous
block with trivial slicing arithmetic.

Lifecycle contract (enforced by ``tests/serve/test_shm.py`` and the
leak tests in ``tests/serve/test_backend.py``):

* the **parent** :meth:`ShmBlock.create`\\ s a block and must
  :meth:`unlink` it when the flush completes, fails, or the service
  closes — creation registers the segment with the resource tracker,
  so even a crashed parent is eventually cleaned up;
* **workers** :meth:`ShmBlock.attach` by name and only ever
  :meth:`close` their mapping (``track=False`` where the runtime
  supports it; older runtimes auto-register on attach, so the attach
  helper unregisters again — a worker-side tracker must never
  "clean up" a segment the parent still owns);
* :meth:`close` tolerates live NumPy views (a view pins the mapping
  until garbage collection — the *name* is still removed by
  ``unlink``, which is what "no leak" means here).
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import ParameterError

__all__ = ["ShmBlock"]

_ITEMSIZE = 8  # float64


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    # Python 3.13+ lets an attaching process opt out of resource
    # tracking.  Older runtimes always register, and a pool worker
    # forked before the parent's tracker existed registers with its
    # *own* tracker — which then "cleans up" the parent's segment at
    # worker exit.  Undo the registration immediately: the attaching
    # side never owns the name; unlinking is the creator's job.
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on runtime version
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return shm


class ShmBlock:
    """One named shared float64 matrix: parent creates, workers attach."""

    __slots__ = ("shm", "shape", "_owner")

    def __init__(self, shm: shared_memory.SharedMemory,
                 shape: tuple[int, int], owner: bool) -> None:
        self.shm = shm
        self.shape = shape
        self._owner = owner

    @classmethod
    def create(cls, rows: int, cols: int) -> "ShmBlock":
        """Allocate a fresh named segment sized for ``rows × cols``."""
        if rows < 1 or cols < 1:
            raise ParameterError(
                f"shared block must be at least 1x1, got {rows}x{cols}")
        shm = shared_memory.SharedMemory(
            create=True, size=_ITEMSIZE * rows * cols)
        return cls(shm, (rows, cols), owner=True)

    @classmethod
    def attach(cls, name: str, rows: int, cols: int) -> "ShmBlock":
        """Map an existing segment by name (worker side, never unlinks)."""
        return cls(_attach_untracked(name), (rows, cols), owner=False)

    @property
    def name(self) -> str:
        """The segment's system-wide name (ship this to workers)."""
        return self.shm.name

    @property
    def array(self) -> np.ndarray:
        """A fresh ``(rows, cols)`` float64 view of the whole segment.

        Views alias the shared buffer directly — writes are visible to
        every process mapping the block.  Drop all views before
        :meth:`close` where possible; a surviving view merely delays
        the unmap until garbage collection (see :meth:`close`).
        """
        return np.ndarray(self.shape, dtype=np.float64, buffer=self.shm.buf)

    def close(self) -> None:
        """Unmap this process's view of the segment.

        A NumPy view still referencing the buffer raises
        ``BufferError`` inside ``mmap.close``; that is tolerated here —
        the mapping is then released when the view is collected, and
        the segment *name* is governed by :meth:`unlink` regardless.
        """
        try:
            self.shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment name system-wide (owner only, idempotent).

        After unlink, :meth:`attach` with this name raises
        ``FileNotFoundError`` — the assertion the leak tests use.
        """
        if not self._owner:
            return
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def release(self) -> None:
        """Owner teardown: :meth:`close` then :meth:`unlink`."""
        self.close()
        self.unlink()
