"""Compatibility shim — :class:`ShmBlock` moved to :mod:`repro.shm`.

The block started life here as the serve process backend's transport
(one coalesced flush group per segment).  The tiled sweep engine
(:mod:`repro.batch.sweep`) now shares the same primitive, so the
implementation lives in the top-level :mod:`repro.shm` module; this
module re-exports it so existing ``repro.serve.shm`` imports keep
working unchanged.
"""

from __future__ import annotations

from ..shm import ShmBlock

__all__ = ["ShmBlock"]
