"""Learned scheduler tuning profiles: the ``backend="tuned"`` contract.

PR 5 gave :class:`~repro.serve.scheduler.MicroBatchScheduler` a
hand-set ``process_threshold`` — the group size above which the
``"auto"`` backend routes a coalesced signature group to the
shared-memory process pool.  One global number cannot be right for
every signature: a group whose yield law is a pure-Python integral is
worth shipping to a process at a few hundred points, while a cheap
fab-form group only clears the shm setup cost in the tens of
thousands.  A :class:`TuningProfile` replaces the single knob with
*measured*, per-signature thresholds (plus chunk sizes), learned from
``flush_history`` telemetry by :func:`repro.replay.tuning.
learn_profile` and loaded by ``MicroBatchScheduler(backend="tuned",
profile=...)``.

The profile is deliberately dumb at serve time — a dict lookup per
group, no statistics on the hot path.  All the estimation lives in
the offline analyzer; this module only defines the persisted schema
(versioned JSON via :meth:`TuningProfile.save` /
:meth:`TuningProfile.load`) and the lookup surface the scheduler
consults (:meth:`~TuningProfile.process_threshold_for`,
:meth:`~TuningProfile.chunk_size_for`).

Signatures are keyed by :func:`signature_key` — a stable hex digest
of the coalescing signature's ``repr`` — so profiles survive process
restarts and can be joined against recorded-traffic logs
(:mod:`repro.obs.recording`) and flush spans, which stamp the same
key.  See ``docs/replay.md`` for the schema and the learning rule.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Hashable, Mapping

from ..errors import ParameterError

__all__ = ["PROFILE_VERSION", "SignatureTuning", "TuningProfile",
           "signature_key"]

#: Schema version written by :meth:`TuningProfile.save`; :meth:`load`
#: rejects anything newer (older readers must not misread new fields).
PROFILE_VERSION = 1

#: The routing threshold meaning "never use the process backend" —
#: large enough that no real flush reaches it, small enough to stay an
#: exact float64/JSON integer.
NEVER_PROCESS = 2 ** 53


def signature_key(sig: Hashable) -> str:
    """Stable 16-hex-digit key for one coalescing signature.

    The scheduler's signatures are tuples of floats/strings/hashables
    whose ``repr`` is deterministic across runs (float ``repr`` is the
    shortest exact round-trip), so a digest of it identifies the same
    model parameters in a recorded log, a flush span, and a tuning
    profile.  Custom yield models that fall back to identity-based
    signatures (``id(model)``) get a key that is only stable within
    one process — such groups simply miss the profile and use its
    defaults.
    """
    return hashlib.sha1(repr(sig).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SignatureTuning:
    """Learned knobs (and their evidence) for one signature group.

    ``process_threshold`` is the unique-point count above which the
    process backend is predicted to beat the thread backend for this
    signature; ``chunk_size`` optionally overrides the scheduler's
    chunking for it (``None`` keeps the scheduler default).  The
    remaining fields are the fitted evidence the analyzer derived the
    knobs from, kept so a profile is auditable: seconds-per-point
    rates on each backend, the fitted shm/pool overhead, and how many
    group observations backed the fit.
    """

    process_threshold: int
    chunk_size: int | None = None
    thread_s_per_point: float | None = None
    process_s_per_point: float | None = None
    process_overhead_s: float | None = None
    samples: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.process_threshold < 1:
            raise ParameterError(
                f"process_threshold must be >= 1, "
                f"got {self.process_threshold}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.samples < 0:
            raise ParameterError(
                f"samples must be >= 0, got {self.samples}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready plain dict (the per-signature schema)."""
        return {
            "process_threshold": self.process_threshold,
            "chunk_size": self.chunk_size,
            "thread_s_per_point": self.thread_s_per_point,
            "process_s_per_point": self.process_s_per_point,
            "process_overhead_s": self.process_overhead_s,
            "samples": self.samples,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SignatureTuning":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        known = {"process_threshold", "chunk_size", "thread_s_per_point",
                 "process_s_per_point", "process_overhead_s", "samples",
                 "label"}
        extra = set(data) - known
        if extra:
            raise ParameterError(
                f"unknown SignatureTuning fields {sorted(extra)}")
        if "process_threshold" not in data:
            raise ParameterError(
                "SignatureTuning needs a process_threshold")
        return cls(**{k: data[k] for k in known if k in data})


@dataclass(frozen=True)
class TuningProfile:
    """Versioned per-signature scheduler tuning, persisted as JSON.

    ``signatures`` maps :func:`signature_key` digests to
    :class:`SignatureTuning`; groups whose signature is not in the map
    fall back to ``default_process_threshold`` /
    ``default_chunk_size``.  ``meta`` carries free-form provenance
    (what log the profile was learned from, how many flushes) and is
    round-tripped verbatim.

    Instances are frozen: a profile is an immutable artifact the
    scheduler reads concurrently from its flusher thread; learn a new
    one and swap rather than mutating in place.
    """

    default_process_threshold: int = 2048
    default_chunk_size: int | None = None
    signatures: dict[str, SignatureTuning] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default_process_threshold < 1:
            raise ParameterError(
                f"default_process_threshold must be >= 1, "
                f"got {self.default_process_threshold}")
        if self.default_chunk_size is not None \
                and self.default_chunk_size < 1:
            raise ParameterError(
                f"default_chunk_size must be >= 1, "
                f"got {self.default_chunk_size}")
        for key, tuning in self.signatures.items():
            if not isinstance(tuning, SignatureTuning):
                raise ParameterError(
                    f"signatures[{key!r}] must be a SignatureTuning, "
                    f"got {tuning!r}")

    # -- scheduler lookups ----------------------------------------------

    def process_threshold_for(self, key: str | None) -> int:
        """The routing threshold for one signature key (or the default)."""
        if key is not None:
            tuning = self.signatures.get(key)
            if tuning is not None:
                return tuning.process_threshold
        return self.default_process_threshold

    def chunk_size_for(self, key: str | None) -> int | None:
        """Chunk-size override for one key (``None`` = scheduler default)."""
        if key is not None:
            tuning = self.signatures.get(key)
            if tuning is not None and tuning.chunk_size is not None:
                return tuning.chunk_size
        return self.default_chunk_size

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The full JSON document (schema in ``docs/replay.md``)."""
        return {
            "version": PROFILE_VERSION,
            "default_process_threshold": self.default_process_threshold,
            "default_chunk_size": self.default_chunk_size,
            "signatures": {key: tuning.to_dict()
                           for key, tuning in sorted(self.signatures.items())},
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TuningProfile":
        """Rebuild from :meth:`to_dict` output, checking the version."""
        if not isinstance(data, Mapping):
            raise ParameterError(
                f"tuning profile must be a JSON object, got {data!r}")
        version = data.get("version")
        if version != PROFILE_VERSION:
            raise ParameterError(
                f"unsupported tuning profile version {version!r} "
                f"(this build reads version {PROFILE_VERSION})")
        signatures = {
            str(key): SignatureTuning.from_dict(value)
            for key, value in dict(data.get("signatures", {})).items()}
        return cls(
            default_process_threshold=data.get(
                "default_process_threshold", 2048),
            default_chunk_size=data.get("default_chunk_size"),
            signatures=signatures,
            meta=dict(data.get("meta", {})))

    def save(self, path: str | os.PathLike) -> Path:
        """Write the profile as pretty-printed JSON; returns the path."""
        p = Path(path)
        p.write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                     encoding="utf-8")
        return p

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TuningProfile":
        """Read a profile written by :meth:`save`."""
        p = Path(path)
        if not p.exists():
            raise ParameterError(f"tuning profile not found: {p}")
        try:
            data = json.loads(p.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ParameterError(
                f"{p}: invalid tuning profile JSON ({exc})") from None
        return cls.from_dict(data)
